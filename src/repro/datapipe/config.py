"""The ``pipeline=off|depth-N`` knob shared by trainer, CLI, and bench."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class PipelineConfig:
    """Parsed pipeline knob: ``depth == 0`` means the serial schedule."""

    depth: int = 0

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise BenchmarkError("pipeline depth must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.depth > 0

    def describe(self) -> str:
        return f"depth-{self.depth}" if self.enabled else "off"


def parse_pipeline(spec: str) -> PipelineConfig:
    """Parse ``"off"`` or ``"depth-N"`` (N >= 1) into a config."""
    if spec == "off":
        return PipelineConfig(0)
    if spec.startswith("depth-"):
        try:
            depth = int(spec[len("depth-"):])
        except ValueError:
            depth = 0
        if depth >= 1:
            return PipelineConfig(depth)
    raise BenchmarkError(
        f"unknown pipeline spec {spec!r}; expected 'off' or 'depth-N' (N >= 1)"
    )


#: Placements that sample on-device: the datapipe pipelines *CPU-side*
#: sampling, so combining them with ``depth-N`` is a contradiction.
ON_DEVICE_PLACEMENTS = ("gpu", "uvagpu")


def validate_pipeline_placement(pipeline: str, placement: str) -> PipelineConfig:
    """The single pipeline × placement validation path (CLI, trainer, serve).

    Parses the ``pipeline`` spec and rejects ``depth-N`` under the
    on-device sampling placements (``gpu``/``uvagpu``) — those sample on
    the GPU already, so there is no CPU-side stage to pipeline.  The CLI
    calls this at argument-parse time so the contradiction is a hard
    argument error, not a mid-run traceback; :class:`TrainConfig` and
    ``repro serve`` reuse the same call as a backstop.
    """
    config = parse_pipeline(pipeline)
    if config.enabled and placement in ON_DEVICE_PLACEMENTS:
        raise BenchmarkError(
            f"--pipeline {pipeline} cannot be combined with "
            f"--placement {placement}: the datapipe pipelines CPU-side "
            "sampling; GPU/UVA placements sample on-device already"
        )
    return config
