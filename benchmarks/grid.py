"""Shared grid runner for the end-to-end GNN figures (6-17)."""

from __future__ import annotations

from typing import Dict

from conftest import DATASETS, EPOCHS, REPRESENTATIVE_BATCHES

from repro.bench import ExperimentResult, format_series, run_training_experiment
from repro.profiling.profiler import PHASES

CONFIGS = (
    ("dglite", "cpu"),
    ("pyglite", "cpu"),
    ("dglite", "cpugpu"),
    ("pyglite", "cpugpu"),
)


def run_model_grid(model: str) -> Dict[str, Dict[str, ExperimentResult]]:
    """Run one GNN across all datasets and the four CPU/CPUGPU configs."""
    grid: Dict[str, Dict[str, ExperimentResult]] = {}
    for framework, placement in CONFIGS:
        row = {}
        for ds in DATASETS:
            row[ds] = run_training_experiment(
                framework, ds, model, placement=placement, epochs=EPOCHS,
                representative_batches=REPRESENTATIVE_BATCHES,
            )
        grid[row[DATASETS[0]].label] = row
    return grid


def breakdown_table(title: str, grid) -> str:
    """Per-config, per-dataset stacked breakdown (the Fig 6/10/14 data)."""
    lines = [title, "=" * len(title)]
    for label, row in grid.items():
        lines.append(f"\n{label}")
        header = f"  {'dataset':<15}" + "".join(f"{p:>16}" for p in PHASES) + f"{'total':>11}"
        lines.append(header)
        for ds, result in row.items():
            cells = "".join(
                f"{result.phases.get(p, 0.0):>10.2f}s {100 * result.phase_fraction(p):>3.0f}%"
                for p in PHASES
            )
            lines.append(f"  {ds:<15}{cells}{result.total_time:>10.2f}s")
    return "\n".join(lines)


def totals_table(title: str, grid) -> str:
    series = {
        label: {ds: r.total_time for ds, r in row.items()}
        for label, row in grid.items()
    }
    return format_series(title, series, unit="s", precision=2)


def power_table(title: str, grid) -> str:
    series = {
        label: {ds: r.avg_power for ds, r in row.items()}
        for label, row in grid.items()
    }
    return format_series(title, series, unit="W", precision=1)


def energy_table(title: str, grid) -> str:
    series = {
        label: {ds: r.total_energy / 1000.0 for ds, r in row.items()}
        for label, row in grid.items()
    }
    return format_series(title, series, unit="kJ", precision=2)


def assert_common_shapes(grid, model: str) -> None:
    """Observations 4 & 5 hold for every model's grid."""
    # Observation 4: sampling dominates somewhere (up to ~90%).
    max_sampling = max(
        result.phase_fraction("sampling")
        for row in grid.values()
        for result in row.values()
    )
    assert max_sampling > 0.5, f"{model}: sampling never dominates"

    # Observation 5: DGL beats PyG on CPU for the large graphs, in both
    # time and energy.
    for ds in ("reddit", "yelp", "ogbn-products"):
        dgl = grid["DGL-CPU"][ds]
        pyg = grid["PyG-CPU"][ds]
        assert dgl.total_time < pyg.total_time, (model, ds)
        assert dgl.total_energy < pyg.total_energy, (model, ds)

    # Energy tracks runtime (no clear average-power winner): for every
    # config pair the energy ratio follows the time ratio within 40%.
    for ds in DATASETS:
        dgl, pyg = grid["DGL-CPU"][ds], grid["PyG-CPU"][ds]
        time_ratio = pyg.total_time / dgl.total_time
        energy_ratio = pyg.total_energy / dgl.total_energy
        assert abs(energy_ratio - time_ratio) / time_ratio < 0.4, (model, ds)

    # CPUGPU runs include a data-movement phase; CPU runs do not.
    for label, row in grid.items():
        for ds, result in row.items():
            if "CPUGPU" in label:
                assert result.phases.get("data_movement", 0) > 0, (label, ds)
            else:
                assert result.phases.get("data_movement", 0) == 0, (label, ds)
