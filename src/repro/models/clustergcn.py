"""ClusterGCN (Chiang et al. 2019) as benchmarked in the paper.

Two GCNConv layers over cluster-union subgraphs: the graph is partitioned
into 2000 clusters (METIS substitute) once; each batch unions 50 random
clusters (40 batches per epoch).
"""

from __future__ import annotations

from typing import Optional

from repro.frameworks.base import Framework, FrameworkGraph
from repro.models.base import two_layer_net
from repro.tensor.module import Module

NUM_PARTS = 2000
PARTS_PER_BATCH = 50
HIDDEN = 256


def build_clustergcn(framework: Framework, fgraph: FrameworkGraph,
                     hidden: int = HIDDEN, dropout: float = 0.5,
                     seed: int = 0) -> Module:
    """The paper's 2-layer ClusterGCN model for this dataset."""
    stats = fgraph.stats
    return two_layer_net(
        framework,
        "gcn",
        in_features=stats.num_features,
        hidden=hidden,
        out_features=stats.num_classes,
        style="subgraph",
        dropout=dropout,
        seed=seed,
    )


def clustergcn_sampler(framework: Framework, fgraph: FrameworkGraph,
                       num_parts: int = NUM_PARTS,
                       parts_per_batch: int = PARTS_PER_BATCH,
                       seed: Optional[int] = 0):
    """The paper's cluster sampler configuration (2000 parts, 50/batch).

    ``seed`` defaults to 0 (deterministic); pass ``None`` for a
    nondeterministic RNG.
    """
    return framework.cluster_sampler(
        fgraph, num_parts=num_parts, parts_per_batch=parts_per_batch, seed=seed
    )
