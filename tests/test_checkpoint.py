"""Tests for model/optimizer checkpointing."""

import numpy as np
import pytest

from repro.models.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.tensor import functional as F
from repro.tensor.module import Linear, Sequential
from repro.tensor.optim import Adam, SGD
from repro.tensor.tensor import Tensor


def _train_a_bit(model, optimizer, steps=5):
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((16, 4)).astype(np.float32))
    y = rng.integers(0, 3, 16)
    for _ in range(steps):
        optimizer.zero_grad()
        F.cross_entropy(model(x), y).backward()
        optimizer.step()


class TestRoundtrip:
    def test_parameters_restored_exactly(self, tmp_path):
        model = Sequential(Linear(4, 8, seed=0), Linear(8, 3, seed=1))
        opt = Adam(model.parameters(), lr=0.01)
        _train_a_bit(model, opt)
        save_checkpoint(tmp_path / "ckpt.npz", model, opt)

        fresh = Sequential(Linear(4, 8, seed=9), Linear(8, 3, seed=9))
        fresh_opt = Adam(fresh.parameters(), lr=0.5)
        load_checkpoint(tmp_path / "ckpt.npz", fresh, fresh_opt)

        for (_, a), (_, b) in zip(model.named_parameters(),
                                  fresh.named_parameters()):
            assert np.array_equal(a.data, b.data)
        assert fresh_opt.lr == 0.01
        assert fresh_opt._step_count == opt._step_count

    def test_adam_moments_restored(self, tmp_path):
        model = Linear(4, 3, seed=0)
        opt = Adam(model.parameters(), lr=0.01)
        _train_a_bit(model, opt)
        save_checkpoint(tmp_path / "ckpt.npz", model, opt)

        fresh = Linear(4, 3, seed=5)
        fresh_opt = Adam(fresh.parameters(), lr=0.01)
        load_checkpoint(tmp_path / "ckpt.npz", fresh, fresh_opt)
        for m_old, m_new in zip(opt._m, fresh_opt._m):
            assert np.allclose(m_old, m_new)

    def test_resume_matches_uninterrupted_training(self, tmp_path):
        """Train 10 steps straight vs 5 + checkpoint + resume + 5."""
        straight = Linear(4, 3, seed=0)
        straight_opt = Adam(straight.parameters(), lr=0.05)
        _train_a_bit(straight, straight_opt, steps=10)

        half = Linear(4, 3, seed=0)
        half_opt = Adam(half.parameters(), lr=0.05)
        _train_a_bit(half, half_opt, steps=5)
        save_checkpoint(tmp_path / "half.npz", half, half_opt)

        resumed = Linear(4, 3, seed=7)
        resumed_opt = Adam(resumed.parameters(), lr=0.05)
        load_checkpoint(tmp_path / "half.npz", resumed, resumed_opt)
        _train_a_bit(resumed, resumed_opt, steps=5)

        assert np.allclose(straight.weight.data, resumed.weight.data, atol=1e-6)

    def test_metadata_roundtrip(self, tmp_path):
        model = Linear(2, 2, seed=0)
        save_checkpoint(tmp_path / "m.npz", model,
                        metadata={"epoch": 7, "dataset": "ppi"})
        meta = load_checkpoint(tmp_path / "m.npz", Linear(2, 2, seed=1))
        assert meta == {"epoch": 7, "dataset": "ppi"}

    def test_model_only_checkpoint(self, tmp_path):
        model = Linear(2, 2, seed=0)
        save_checkpoint(tmp_path / "m.npz", model)
        load_checkpoint(tmp_path / "m.npz", Linear(2, 2, seed=1))

    def test_sgd_lr_restored(self, tmp_path):
        model = Linear(2, 2, seed=0)
        opt = SGD(model.parameters(), lr=0.123)
        save_checkpoint(tmp_path / "m.npz", model, opt)
        fresh_opt = SGD(Linear(2, 2, seed=1).parameters(), lr=0.9)
        load_checkpoint(tmp_path / "m.npz", Linear(2, 2, seed=1), fresh_opt)
        assert fresh_opt.lr == 0.123


class TestErrors:
    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.npz", Linear(2, 2))

    def test_architecture_mismatch(self, tmp_path):
        save_checkpoint(tmp_path / "m.npz", Linear(2, 2, seed=0))
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "m.npz",
                            Sequential(Linear(2, 2), Linear(2, 2)))

    def test_shape_mismatch(self, tmp_path):
        save_checkpoint(tmp_path / "m.npz", Linear(2, 2, seed=0))
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "m.npz", Linear(2, 3, seed=0))

    def test_bad_version(self, tmp_path):
        save_checkpoint(tmp_path / "m.npz", Linear(2, 2, seed=0))
        sidecar = tmp_path / "m.json"
        sidecar.write_text(sidecar.read_text().replace(
            '"_format_version": 1', '"_format_version": 42'))
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "m.npz", Linear(2, 2))


class TestGnnModelCheckpoint:
    def test_trained_gnn_roundtrips_with_eval_parity(self, tmp_path, machine):
        from repro.frameworks import get_framework
        from repro.models.evaluate import evaluate
        from repro.models.fullbatch import FullBatchTrainer, build_fullbatch_sage
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        model = build_fullbatch_sage(fw, fgraph, hidden=16, dropout=0.0, seed=0)
        trainer = FullBatchTrainer(fw, fgraph, model, device="cpu")
        trainer.train_epochs(5)
        save_checkpoint(tmp_path / "gnn.npz", model, trainer.optimizer)

        restored = build_fullbatch_sage(fw, fgraph, hidden=16, dropout=0.0,
                                        seed=99)
        load_checkpoint(tmp_path / "gnn.npz", restored)
        assert (evaluate(fw, fgraph, model).val
                == pytest.approx(evaluate(fw, fgraph, restored).val))


class TestPathNormalization:
    def test_suffixless_path_returns_the_real_file(self, tmp_path):
        """Regression: np.savez appends .npz, so saving to "model.ckpt"
        used to return a path that does not exist on disk."""
        model = Linear(4, 3, seed=0)
        written = save_checkpoint(tmp_path / "model.ckpt", model)
        assert written.exists()
        assert written.name == "model.ckpt.npz"
        assert not (tmp_path / "model.ckpt").exists()

    def test_load_accepts_both_spellings(self, tmp_path):
        model = Linear(4, 3, seed=0)
        save_checkpoint(tmp_path / "model.ckpt", model)
        for spelling in ("model.ckpt", "model.ckpt.npz"):
            fresh = Linear(4, 3, seed=7)
            load_checkpoint(tmp_path / spelling, fresh)
            for (_, a), (_, b) in zip(model.named_parameters(),
                                      fresh.named_parameters()):
                assert np.array_equal(a.data, b.data)

    def test_npz_path_is_untouched(self, tmp_path):
        written = save_checkpoint(tmp_path / "plain.npz", Linear(2, 2, seed=0))
        assert written == tmp_path / "plain.npz"
        assert written.exists()


class TestPartialAdamMoments:
    def _frozen_first_layer(self, seed):
        """A model whose first layer never receives a gradient."""
        model = Sequential(Linear(4, 8, seed=seed), Linear(8, 3, seed=seed))
        for p in model._layers[0].parameters():
            p.requires_grad = False
        return model

    def test_never_stepped_moments_round_trip_as_none(self, tmp_path):
        model = self._frozen_first_layer(seed=0)
        opt = Adam(model.parameters(), lr=0.01)
        _train_a_bit(model, opt)
        stepped = [m is not None for m in opt._m]
        assert True in stepped and False in stepped  # genuinely partial
        save_checkpoint(tmp_path / "partial.npz", model, opt)

        fresh = self._frozen_first_layer(seed=5)
        fresh_opt = Adam(fresh.parameters(), lr=0.01)
        load_checkpoint(tmp_path / "partial.npz", fresh, fresh_opt)
        assert [m is not None for m in fresh_opt._m] == stepped
        assert [v is not None for v in fresh_opt._v] == stepped

    def test_restore_resets_stale_moments(self, tmp_path):
        """Regression: restoring a partial checkpoint into an optimizer
        that HAS stepped used to keep the target's stale moments."""
        model = self._frozen_first_layer(seed=0)
        opt = Adam(model.parameters(), lr=0.01)
        _train_a_bit(model, opt)
        save_checkpoint(tmp_path / "partial.npz", model, opt)

        # The target optimizer trained a fully-trainable copy: every
        # parameter has moments, some of which the checkpoint lacks.
        warm = Sequential(Linear(4, 8, seed=3), Linear(8, 3, seed=3))
        warm_opt = Adam(warm.parameters(), lr=0.01)
        _train_a_bit(warm, warm_opt)
        assert all(m is not None for m in warm_opt._m)

        load_checkpoint(tmp_path / "partial.npz", warm, warm_opt)
        expected = [m is not None for m in opt._m]
        assert [m is not None for m in warm_opt._m] == expected
        assert [v is not None for v in warm_opt._v] == expected
        for m_old, m_new in zip(opt._m, warm_opt._m):
            if m_old is not None:
                assert np.allclose(m_old, m_new)
