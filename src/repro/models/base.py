"""Model skeletons shared by the three benchmarked GNNs."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.frameworks.base import Framework
from repro.kernels.adj import SparseAdj
from repro.tensor import functional as F
from repro.tensor.module import Dropout, Module
from repro.tensor.tensor import Tensor


class BlockNet(Module):
    """Layer-per-block GNN (GraphSAGE mini-batch style).

    ``forward(adjs, x)`` consumes one bipartite block per layer: layer i
    aggregates block i's sources into its destinations, whose output rows
    feed layer i+1.
    """

    def __init__(self, layers: Sequence[Module], dropout: float = 0.5,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for i, layer in enumerate(layers):
            setattr(self, f"conv{i}", layer)
            self._layers.append(layer)
        self.dropout = Dropout(dropout, seed=seed)

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def forward(self, adjs: Sequence[SparseAdj], x: Tensor) -> Tensor:
        if len(adjs) != len(self._layers):
            raise ValueError(
                f"got {len(adjs)} blocks for {len(self._layers)} layers"
            )
        for i, (layer, adj) in enumerate(zip(self._layers, adjs)):
            x = layer(adj, x)
            if i < len(self._layers) - 1:
                x = F.relu(x)
                x = self.dropout(x)
        return x


class SubgraphNet(Module):
    """Full-subgraph GNN (ClusterGCN / GraphSAINT mini-batch style).

    ``forward(adj, x)`` applies every layer over the same square subgraph
    adjacency.
    """

    def __init__(self, layers: Sequence[Module], dropout: float = 0.5,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for i, layer in enumerate(layers):
            setattr(self, f"conv{i}", layer)
            self._layers.append(layer)
        self.dropout = Dropout(dropout, seed=seed)

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        for i, layer in enumerate(self._layers):
            x = layer(adj, x)
            if i < len(self._layers) - 1:
                x = F.relu(x)
                x = self.dropout(x)
        return x


def make_loss(multilabel: bool) -> Callable[[Tensor, np.ndarray], Tensor]:
    """The task loss: BCE for multi-label (PPI/Yelp), CE otherwise."""
    if multilabel:
        return F.binary_cross_entropy_with_logits
    return F.cross_entropy


def two_layer_net(framework: Framework, conv_kind: str, in_features: int,
                  hidden: int, out_features: int, style: str,
                  dropout: float = 0.5, seed: int = 0) -> Module:
    """The paper's two-conv-layer model, built from a framework's nn."""
    layers = [
        framework.conv(conv_kind, in_features, hidden, seed=seed),
        framework.conv(conv_kind, hidden, out_features, seed=seed + 1),
    ]
    if style == "blocks":
        return BlockNet(layers, dropout=dropout, seed=seed + 2)
    if style == "subgraph":
        return SubgraphNet(layers, dropout=dropout, seed=seed + 2)
    raise ValueError(f"unknown model style {style!r}")
