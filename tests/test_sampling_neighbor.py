"""Tests for the GraphSAGE neighborhood sampler algorithm."""

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.sampling.neighbor import NeighborSampler, sample_block_neighbors


class TestSampleBlockNeighbors:
    def test_respects_fanout(self, tiny_graph):
        rng = np.random.default_rng(0)
        seeds = np.arange(20)
        src, dst, _ = sample_block_neighbors(
            tiny_graph.adj.indptr, tiny_graph.adj.indices, seeds, 3, rng
        )
        per_seed = np.bincount(dst, minlength=tiny_graph.num_nodes)
        assert per_seed.max() <= 3

    def test_sampled_edges_exist_in_graph(self, tiny_graph):
        rng = np.random.default_rng(0)
        seeds = np.arange(10)
        src, dst, _ = sample_block_neighbors(
            tiny_graph.adj.indptr, tiny_graph.adj.indices, seeds, 5, rng
        )
        for s, d in zip(src, dst):
            assert s in tiny_graph.adj.neighbors(int(d))

    def test_no_replacement(self, tiny_graph):
        rng = np.random.default_rng(0)
        seeds = np.arange(30)
        src, dst, _ = sample_block_neighbors(
            tiny_graph.adj.indptr, tiny_graph.adj.indices, seeds, 4, rng
        )
        for seed in np.unique(dst):
            mine = src[dst == seed]
            assert len(mine) == len(np.unique(mine))

    def test_counts_examined_candidates(self, tiny_graph):
        rng = np.random.default_rng(0)
        seeds = np.arange(5)
        _, _, examined = sample_block_neighbors(
            tiny_graph.adj.indptr, tiny_graph.adj.indices, seeds, 2, rng
        )
        total_degree = sum(tiny_graph.adj.neighbors(i).size for i in range(5))
        assert examined == total_degree

    def test_invalid_fanout_rejected(self, tiny_graph):
        with pytest.raises(SamplerError):
            sample_block_neighbors(tiny_graph.adj.indptr, tiny_graph.adj.indices,
                                   np.array([0]), 0, np.random.default_rng(0))


class TestNeighborSampler:
    def test_batch_size_shrinks_by_node_scale(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, batch_size=512, seed=0)
        expected = max(2, round(512 / tiny_graph.node_scale))
        assert sampler.actual_batch_size == expected

    def test_num_batches_matches_paper_scale(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, batch_size=512, seed=0)
        train = int(tiny_graph.train_mask.sum())
        logical_train = train * tiny_graph.node_scale
        actual = sampler.num_batches(train)
        assert actual == pytest.approx(logical_train / 512, rel=0.35, abs=2)

    def test_block_structure(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, fanouts=(5, 3), seed=0)
        roots = tiny_graph.train_nodes()[:4]
        batch = sampler.sample(roots)
        assert len(batch.blocks) == 2
        out_block = batch.blocks[-1]
        assert np.array_equal(out_block.dst_nodes, roots)
        # dst nodes are a prefix of src nodes (self-inclusion)
        assert np.array_equal(out_block.src_nodes[:len(roots)], roots)

    def test_blocks_chain(self, tiny_graph):
        """block[k].dst_nodes == block[k+1].src_nodes (DGL layout)."""
        sampler = NeighborSampler(tiny_graph, fanouts=(4, 4), seed=0)
        batch = sampler.sample(tiny_graph.train_nodes()[:3])
        assert np.array_equal(batch.blocks[0].dst_nodes, batch.blocks[1].src_nodes)
        assert np.array_equal(batch.input_nodes, batch.blocks[0].src_nodes)

    def test_local_indices_valid(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, fanouts=(4, 4), seed=0)
        batch = sampler.sample(tiny_graph.train_nodes()[:3])
        for block in batch.blocks:
            if block.num_edges:
                assert block.src.max() < block.src_nodes.size
                assert block.dst.max() < block.dst_nodes.size

    def test_local_edges_map_to_real_edges(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, fanouts=(3, 3), seed=0)
        batch = sampler.sample(tiny_graph.train_nodes()[:3])
        block = batch.blocks[-1]
        for ls, ld in zip(block.src, block.dst):
            global_src = block.src_nodes[ls]
            global_dst = block.dst_nodes[ld]
            assert global_src in tiny_graph.adj.neighbors(int(global_dst))

    def test_work_items_positive_and_scaled(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, seed=0)
        batch = sampler.sample(tiny_graph.train_nodes()[:4])
        assert batch.work.items > 0
        assert batch.work.fetch_bytes > 0

    def test_hop_correction_bounds(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, seed=0)
        corr = sampler.hop_correction(10)
        assert corr >= 1.0 or tiny_graph.stats.avg_degree < sampler._d_actual

    def test_empty_roots_rejected(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, seed=0)
        with pytest.raises(SamplerError):
            sampler.sample(np.array([], dtype=np.int64))

    def test_empty_fanouts_rejected(self, tiny_graph):
        with pytest.raises(SamplerError):
            NeighborSampler(tiny_graph, fanouts=())

    def test_epoch_covers_training_set(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, batch_size=2000, seed=0)
        seen = []
        for batch in sampler.epoch_batches(shuffle=False):
            seen.extend(batch.output_nodes.tolist())
        assert sorted(seen) == sorted(tiny_graph.train_nodes().tolist())

    def test_deterministic_given_seed(self, tiny_graph):
        roots = tiny_graph.train_nodes()[:4]
        a = NeighborSampler(tiny_graph, seed=5).sample(roots)
        b = NeighborSampler(tiny_graph, seed=5).sample(roots)
        assert np.array_equal(a.input_nodes, b.input_nodes)
