"""Tests for the fused SpMM kernel and the SparseAdj wrapper."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, PlacementError
from repro.kernels.adj import SparseAdj
from repro.kernels.spmm import spmm
from repro.tensor.tensor import Tensor

RNG = np.random.default_rng(7)


def dense_of(adj: SparseAdj, weight=None) -> np.ndarray:
    dense = np.zeros((adj.num_dst, adj.num_src), dtype=np.float32)
    w = weight if weight is not None else np.ones(adj.num_edges, dtype=np.float32)
    for e in range(adj.num_edges):
        dense[adj.dst[e], adj.src[e]] += w[e]
    return dense


class TestSparseAdj:
    def test_validates_ranges(self):
        with pytest.raises(GraphFormatError):
            SparseAdj(np.array([5]), np.array([0]), 3, 3)
        with pytest.raises(GraphFormatError):
            SparseAdj(np.array([0]), np.array([9]), 3, 3)

    def test_edges_sorted_by_dst(self, small_adj):
        assert np.all(np.diff(small_adj.dst) >= 0)

    def test_degrees(self):
        adj = SparseAdj(np.array([0, 1, 2]), np.array([1, 1, 0]), 3, 2)
        assert adj.in_degrees().tolist() == [1, 2]
        assert adj.out_degrees().tolist() == [1, 1, 1]

    def test_logical_quantities(self):
        adj = SparseAdj(np.array([0]), np.array([1]), 2, 2,
                        node_scale=10.0, edge_scale=50.0)
        assert adj.logical_num_edges == 50.0
        assert adj.logical_num_src == 20.0
        assert adj.structure_nbytes() == pytest.approx(8 * 21 + 8 * 50)

    def test_from_graph(self, tiny_graph):
        adj = SparseAdj.from_graph(tiny_graph)
        assert adj.num_edges == tiny_graph.num_edges
        assert adj.node_scale == pytest.approx(tiny_graph.node_scale)

    def test_with_device_shares_structure(self, small_adj, machine):
        placed = small_adj.with_device(machine.cpu)
        assert placed.device is machine.cpu
        assert placed.src is small_adj.src


class TestSpmmForward:
    def test_matches_dense_reference(self, small_adj):
        x = Tensor(RNG.random((small_adj.num_src, 6)).astype(np.float32))
        out = spmm(small_adj, x)
        assert np.allclose(out.data, dense_of(small_adj) @ x.data, atol=1e-4)

    def test_weighted_matches_dense(self, small_adj):
        x = Tensor(RNG.random((small_adj.num_src, 6)).astype(np.float32))
        w = RNG.random(small_adj.num_edges).astype(np.float32)
        out = spmm(small_adj, x, weight=Tensor(w))
        assert np.allclose(out.data, dense_of(small_adj, w) @ x.data, atol=1e-4)

    def test_bipartite_output_rows(self):
        adj = SparseAdj(np.array([0, 4]), np.array([1, 0]), num_src=5, num_dst=2)
        x = Tensor(np.eye(5, dtype=np.float32))
        out = spmm(adj, x)
        assert out.shape == (2, 5)
        assert out.data[1, 0] == 1.0 and out.data[0, 4] == 1.0

    def test_multihead_unweighted(self, small_adj):
        x = Tensor(RNG.random((small_adj.num_src, 3, 4)).astype(np.float32))
        out = spmm(small_adj, x)
        assert out.shape == (small_adj.num_dst, 3, 4)
        flat = spmm(small_adj, Tensor(x.data.reshape(small_adj.num_src, -1)))
        assert np.allclose(out.data.reshape(small_adj.num_dst, -1), flat.data, atol=1e-4)

    def test_multihead_weighted_per_head(self, small_adj):
        heads = 2
        x = Tensor(RNG.random((small_adj.num_src, heads, 3)).astype(np.float32))
        w = RNG.random((small_adj.num_edges, heads)).astype(np.float32)
        out = spmm(small_adj, x, weight=Tensor(w))
        for h in range(heads):
            ref = dense_of(small_adj, w[:, h]) @ x.data[:, h, :]
            assert np.allclose(out.data[:, h, :], ref, atol=1e-4)

    def test_shape_validation(self, small_adj):
        bad_x = Tensor(np.zeros((small_adj.num_src + 1, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            spmm(small_adj, bad_x)
        x = Tensor(np.zeros((small_adj.num_src, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            spmm(small_adj, x, weight=Tensor(np.zeros(3, dtype=np.float32)))

    def test_device_mismatch_rejected(self, machine):
        adj = SparseAdj(np.array([0]), np.array([0]), 1, 1, device=machine.gpu)
        x = Tensor(np.ones((1, 2), dtype=np.float32), device=machine.cpu)
        with pytest.raises(PlacementError):
            spmm(adj, x)


class TestSpmmBackward:
    def test_grad_x_matches_transpose(self, small_adj):
        x = Tensor(RNG.random((small_adj.num_src, 4)).astype(np.float32),
                   requires_grad=True)
        spmm(small_adj, x).sum().backward()
        expected = dense_of(small_adj).T @ np.ones((small_adj.num_dst, 4), dtype=np.float32)
        assert np.allclose(x.grad, expected, atol=1e-4)

    def test_grad_weight_is_sddmm(self, small_adj):
        x = Tensor(RNG.random((small_adj.num_src, 4)).astype(np.float32))
        w = Tensor(RNG.random(small_adj.num_edges).astype(np.float32),
                   requires_grad=True)
        spmm(small_adj, x, weight=w).sum().backward()
        # dL/dw[e] = sum_f x[src[e], f] since grad out is ones
        expected = x.data[small_adj.src].sum(axis=1)
        assert np.allclose(w.grad, expected, atol=1e-4)

    def test_multihead_grads_flow(self, small_adj):
        x = Tensor(RNG.random((small_adj.num_src, 2, 3)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(RNG.random((small_adj.num_edges, 2)).astype(np.float32),
                   requires_grad=True)
        spmm(small_adj, x, weight=w).sum().backward()
        assert x.grad.shape == x.shape
        assert w.grad.shape == w.shape
        assert np.abs(w.grad).sum() > 0


class TestSpmmCharging:
    def test_charges_logical_work(self, machine):
        adj = SparseAdj(np.array([0, 1]), np.array([0, 1]), 2, 2,
                        device=machine.cpu, edge_scale=1000.0, node_scale=500.0)
        x = Tensor(np.ones((2, 8), dtype=np.float32), device=machine.cpu)
        baseline = machine.clock.now
        spmm(adj, x)
        big = machine.clock.now - baseline

        small = SparseAdj(np.array([0, 1]), np.array([0, 1]), 2, 2,
                          device=machine.cpu)
        baseline = machine.clock.now
        spmm(small, x)
        tiny = machine.clock.now - baseline
        assert big > tiny  # logical scale drives cost, not actual size
