"""Tests for Module / Parameter / Linear / Sequential / optimizers."""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor.module import Dropout, Linear, Module, Parameter, Sequential
from repro.tensor.optim import SGD, Adam
from repro.tensor.tensor import Tensor


class TestModule:
    def test_parameters_discovered_recursively(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(4, 8)
                self.fc2 = Linear(8, 2)

        net = Net()
        names = dict(net.named_parameters())
        assert {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"} == set(names)
        assert len(net.parameters()) == 4

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2), Dropout(0.5))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad_clears_all(self):
        lin = Linear(3, 2, seed=0)
        out = lin(Tensor(np.ones((1, 3), dtype=np.float32))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, seed=0)
        b = Linear(3, 2, seed=99)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)
        assert np.allclose(a.bias.data, b.bias.data)

    def test_state_dict_mismatch_rejected(self):
        a = Linear(3, 2)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((3, 2))})

    def test_state_dict_shape_checked(self):
        a = Linear(3, 2)
        bad = a.state_dict()
        bad["weight"] = np.zeros((2, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            a.load_state_dict(bad)

    def test_to_device_moves_parameters(self, machine):
        lin = Linear(3, 2, seed=0)
        lin.to(machine.cpu)
        assert all(p.device is machine.cpu for p in lin.parameters())

    def test_to_gpu_with_link_charges_transfer(self, machine):
        lin = Linear(64, 64, seed=0)
        lin.to(machine.cpu)
        before = machine.pcie.counters.bytes_h2d
        lin.to(machine.gpu, link=machine.pcie)
        moved = machine.pcie.counters.bytes_h2d - before
        assert moved >= 64 * 64 * 4

    def test_param_nbytes(self):
        lin = Linear(10, 5, bias=True)
        assert lin.param_nbytes() == (10 * 5 + 5) * 4


class TestLinear:
    def test_forward_shape(self):
        lin = Linear(4, 7, seed=0)
        out = lin(Tensor(np.ones((3, 4), dtype=np.float32)))
        assert out.shape == (3, 7)

    def test_no_bias(self):
        lin = Linear(4, 7, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_seeded_init_is_deterministic(self):
        a, b = Linear(4, 4, seed=5), Linear(4, 4, seed=5)
        assert np.allclose(a.weight.data, b.weight.data)

    def test_different_seeds_differ(self):
        a, b = Linear(4, 4, seed=5), Linear(4, 4, seed=6)
        assert not np.allclose(a.weight.data, b.weight.data)


class TestSequential:
    def test_applies_in_order(self):
        seq = Sequential(Linear(2, 4, seed=0), Linear(4, 3, seed=1))
        out = seq(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert out.shape == (1, 3)
        assert len(seq) == 2
        assert len(list(iter(seq))) == 2


class TestOptimizers:
    def _loss_after(self, optimizer_factory, steps=60):
        rng = np.random.default_rng(0)
        lin = Linear(6, 3, seed=1)
        opt = optimizer_factory(lin.parameters())
        x = Tensor(rng.standard_normal((64, 6)).astype(np.float32))
        y = rng.integers(0, 3, 64)
        first = last = None
        for _ in range(steps):
            opt.zero_grad()
            loss = F.cross_entropy(lin(x), y)
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
            last = loss.item()
        return first, last

    def test_sgd_reduces_loss(self):
        first, last = self._loss_after(lambda p: SGD(p, lr=0.5))
        assert last < first * 0.9

    def test_sgd_momentum_reduces_loss(self):
        first, last = self._loss_after(lambda p: SGD(p, lr=0.2, momentum=0.9))
        assert last < first * 0.9

    def test_adam_reduces_loss(self):
        first, last = self._loss_after(lambda p: Adam(p, lr=0.05))
        assert last < first * 0.8

    def test_weight_decay_shrinks_weights(self):
        lin = Linear(4, 4, seed=0)
        opt = SGD(lin.parameters(), lr=0.1, weight_decay=1.0)
        norm_before = float(np.abs(lin.weight.data).sum())
        # gradient-free step: only decay acts
        for p in opt.params:
            p.grad = np.zeros_like(p.data)
        opt.step()
        assert float(np.abs(lin.weight.data).sum()) < norm_before

    def test_skips_params_without_grad(self):
        lin = Linear(4, 4, seed=0)
        opt = Adam(lin.parameters(), lr=0.1)
        weights = lin.weight.data.copy()
        opt.step()  # no grads anywhere
        assert np.allclose(lin.weight.data, weights)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam(Linear(2, 2).parameters(), lr=0.0)

    def test_bad_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD(Linear(2, 2).parameters(), lr=0.1, momentum=1.0)

    def test_step_charges_device_time(self, machine):
        lin = Linear(32, 32, seed=0)
        lin.to(machine.cpu)
        opt = Adam(lin.parameters(), lr=0.1)
        for p in opt.params:
            p.grad = np.ones_like(p.data)
        before = machine.clock.now
        opt.step()
        assert machine.clock.now > before
