"""Structural graph analysis: the statistics the synthetic datasets must hit.

The substitution argument in DESIGN.md rests on the synthetic graphs
sharing the *shape* of their real counterparts: heavy-tailed degrees,
community structure, and the right density ordering.  This module
computes those statistics; the dataset-fidelity bench asserts them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.formats import AdjacencyCSR


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution."""

    mean: float
    median: float
    maximum: int
    gini: float  # 0 = perfectly even, -> 1 = concentrated on few hubs
    tail_ratio: float  # share of edges touching the top-1% nodes


def degree_stats(adj: AdjacencyCSR) -> DegreeStats:
    """Summarize the (out-)degree distribution of ``adj``."""
    degrees = np.sort(adj.degrees().astype(np.float64))
    n = degrees.size
    total = degrees.sum()
    if n == 0 or total == 0:
        return DegreeStats(0.0, 0.0, 0, 0.0, 0.0)
    # Gini via the standard sorted-rank formula.
    ranks = np.arange(1, n + 1)
    gini = float((2 * ranks - n - 1).dot(degrees) / (n * total))
    top = max(1, n // 100)
    tail_ratio = float(degrees[-top:].sum() / total)
    return DegreeStats(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        maximum=int(degrees.max()),
        gini=gini,
        tail_ratio=tail_ratio,
    )


def clustering_coefficient(adj: AdjacencyCSR, sample_nodes: int = 200,
                           seed: Optional[int] = None) -> float:
    """Estimated average local clustering coefficient (sampled).

    Community-structured graphs sit far above degree-matched random
    graphs; that gap is what makes ClusterGCN's partitioning effective.
    """
    rng = np.random.default_rng(seed)
    n = adj.num_nodes
    nodes = rng.choice(n, size=min(sample_nodes, n), replace=False)
    coefficients = []
    neighbor_sets = {}

    def neigh(v: int) -> set:
        if v not in neighbor_sets:
            neighbor_sets[v] = set(adj.neighbors(v).tolist()) - {v}
        return neighbor_sets[v]

    for node in nodes:
        neighbors = list(neigh(int(node)))
        k = len(neighbors)
        if k < 2:
            continue
        links = 0
        for i, u in enumerate(neighbors):
            u_set = neigh(u)
            for w in neighbors[i + 1:]:
                if w in u_set:
                    links += 1
        coefficients.append(2 * links / (k * (k - 1)))
    return float(np.mean(coefficients)) if coefficients else 0.0


def assortativity_by_labels(adj: AdjacencyCSR, labels: np.ndarray) -> float:
    """Fraction of edges whose endpoints share a label (homophily).

    GNN feature aggregation only helps when this is well above the random
    baseline of ``sum_c p_c^2``.
    """
    coo = adj.to_coo()
    if coo.num_edges == 0:
        return 0.0
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("homophily needs single-label node labels")
    return float((labels[coo.src] == labels[coo.dst]).mean())


def label_homophily_baseline(labels: np.ndarray) -> float:
    """Expected same-label edge fraction under random wiring."""
    labels = np.asarray(labels)
    counts = np.bincount(labels)
    p = counts / counts.sum()
    return float((p ** 2).sum())
