"""Tests for the six dataset builders and the registry (Table 1)."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    build_dataset,
    clear_cache,
    dataset_spec,
    get_dataset,
    list_datasets,
)
from repro.errors import DatasetError

# Table 1 of the paper, verbatim.
TABLE_1 = {
    "ppi": (14_755, 225_270, 50, 121, (0.66, 0.12, 0.22)),
    "flickr": (89_250, 899_756, 500, 7, (0.50, 0.25, 0.25)),
    "ogbn-arxiv": (169_343, 1_166_243, 128, 40, (0.54, 0.29, 0.17)),
    "reddit": (232_965, 114_615_892, 602, 41, (0.66, 0.10, 0.24)),
    "yelp": (716_847, 13_954_819, 300, 100, (0.75, 0.10, 0.15)),
    "ogbn-products": (2_449_029, 61_859_140, 100, 47, (0.08, 0.02, 0.90)),
}


class TestRegistry:
    def test_all_six_datasets_present(self):
        assert set(DATASET_NAMES) == set(TABLE_1)

    def test_order_is_table_1_order(self):
        assert list(DATASET_NAMES) == list(TABLE_1)

    def test_lookup_case_insensitive(self):
        assert dataset_spec("PPI").name == "ppi"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            dataset_spec("cora")

    def test_list_datasets_returns_specs(self):
        specs = list_datasets()
        assert len(specs) == 6


@pytest.mark.parametrize("name", list(TABLE_1))
class TestTable1Fidelity:
    def test_logical_stats_match_paper(self, name):
        nodes, edges, feats, classes, split = TABLE_1[name]
        spec = dataset_spec(name)
        assert spec.logical_num_nodes == nodes
        assert spec.logical_num_edges == edges
        assert spec.num_features == feats
        assert spec.num_classes == classes
        assert (spec.split.train, spec.split.val, spec.split.test) == split

    def test_built_graph_carries_logical_stats(self, name):
        graph = get_dataset(name, scale=0.2)
        nodes, edges, *_ = TABLE_1[name]
        assert graph.stats.logical_num_nodes == nodes
        assert graph.stats.logical_num_edges == edges


class TestTaskTypes:
    def test_multilabel_datasets(self):
        assert dataset_spec("ppi").multilabel
        assert dataset_spec("yelp").multilabel

    def test_single_label_datasets(self):
        for name in ("flickr", "ogbn-arxiv", "reddit", "ogbn-products"):
            assert not dataset_spec(name).multilabel


class TestBundling:
    """Observation 1: PyG bundles 5 of 6 datasets, DGL 3 of 6."""

    def test_pyg_bundles_five(self):
        assert sum(spec.in_pyg for spec in list_datasets()) == 5

    def test_dgl_bundles_three(self):
        assert sum(spec.in_dgl for spec in list_datasets()) == 3


class TestBuilder:
    def test_cache_returns_same_object(self):
        a = get_dataset("ppi", scale=0.25)
        b = get_dataset("ppi", scale=0.25)
        assert a is b

    def test_different_scales_are_distinct(self):
        a = get_dataset("ppi", scale=0.25)
        b = get_dataset("ppi", scale=0.5)
        assert a is not b
        assert b.num_nodes > a.num_nodes

    def test_clear_cache(self):
        a = get_dataset("ppi", scale=0.25)
        clear_cache()
        b = get_dataset("ppi", scale=0.25)
        assert a is not b

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            get_dataset("ppi", scale=0.0)

    def test_masks_follow_split_fractions(self):
        graph = get_dataset("flickr", scale=0.5)
        frac = graph.train_mask.mean()
        assert frac == pytest.approx(0.50, abs=0.02)

    def test_reddit_is_densest(self):
        """Reddit's logical average degree (~492) dwarfs the others —
        the driver behind its Powerup < 1 in Figure 20."""
        degrees = {s.name: s.logical_avg_degree for s in list_datasets()}
        assert max(degrees, key=degrees.get) == "reddit"
        assert degrees["reddit"] > 400

    def test_labels_within_range(self):
        graph = get_dataset("ogbn-arxiv", scale=0.3)
        assert graph.labels.min() >= 0
        assert graph.labels.max() < graph.stats.num_classes

    def test_multilabel_labels_are_binary_matrix(self):
        graph = get_dataset("ppi", scale=0.3)
        assert graph.labels.ndim == 2
        assert graph.labels.shape[1] == 121
