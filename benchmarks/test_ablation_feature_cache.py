"""Ablation: partial GPU feature caching (the paper's pre-loading alternative).

Section 4.3 suggests caching "the features of nodes that are most
frequently used" when the full graph does not fit in GPU memory [12].
This bench sweeps the cache fraction on the feature-heaviest dataset and
shows movement time interpolating between the no-cache baseline and full
pre-loading, plus the degree-policy advantage over random caching.
"""

from conftest import emit

from repro.bench import format_series, run_training_experiment

FRACTIONS = (0.1, 0.25, 0.5, 1.0)
DATASET = "reddit"
RUN = dict(epochs=5, representative_batches=2)


def test_ablation_feature_cache(once):
    def run():
        out = {}
        out["no-cache"] = run_training_experiment(
            "dglite", DATASET, "graphsage", placement="cpugpu", **RUN)
        for fraction in FRACTIONS:
            out[f"cache-{int(100 * fraction)}%"] = run_training_experiment(
                "dglite", DATASET, "graphsage", placement="cpugpu",
                feature_cache_fraction=fraction, **RUN)
        out["random-25%"] = run_training_experiment(
            "dglite", DATASET, "graphsage", placement="cpugpu",
            feature_cache_fraction=0.25, cache_policy="random", **RUN)
        out["preload"] = run_training_experiment(
            "dglite", DATASET, "graphsage", placement="cpugpu",
            preload=True, **RUN)
        return out

    results = once(run)
    series = {
        name: {
            "movement_s": r.phases.get("data_movement", 0.0),
            "total_s": r.total_time,
            "energy_kJ": r.total_energy / 1000.0,
        }
        for name, r in results.items()
    }
    emit("ablation_feature_cache",
         format_series(f"Ablation: GPU feature cache on {DATASET} (GraphSAGE)",
                       series, unit="mixed", precision=2))

    movement = {name: r.phases.get("data_movement", 0.0)
                for name, r in results.items()}

    # Movement decreases monotonically with cache fraction...
    assert (movement["no-cache"] > movement["cache-10%"]
            > movement["cache-25%"] > movement["cache-50%"]
            > movement["cache-100%"])
    # ...approaching (but not beating) full pre-loading.
    assert movement["cache-100%"] >= movement["preload"] * 0.5

    # A degree-ordered cache beats a random one at equal capacity: hubs
    # appear in most sampled neighborhoods.
    assert movement["cache-25%"] < movement["random-25%"]

    # Even a small cache pays: 10% of nodes removes > 15% of movement.
    saving = 1 - movement["cache-10%"] / movement["no-cache"]
    assert saving > 0.15, f"10% cache saved only {saving:.0%}"
