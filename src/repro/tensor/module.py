"""Neural-network module system: Parameter, Module, Linear, containers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import init
from repro.tensor.tensor import Tensor, no_grad
from repro.tensor import functional as F


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data, device=None) -> None:
        super().__init__(data, device=device, requires_grad=True)


class Module:
    """Base class for layers and models.

    Tracks parameters and submodules by attribute assignment, exposes
    ``parameters()`` / ``named_parameters()``, train/eval mode, device
    movement, and state dicts — the subset of the torch API the paper's
    model code relies on.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            object.__setattr__(m, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def to(self, device, link=None) -> "Module":
        """Move all parameters to ``device``.

        When ``link`` (an :class:`~repro.hardware.Interconnect`) is given,
        the copy is charged as a host->device transfer — this is the
        "initial model movement" component of the paper's data-movement
        phase.
        """
        for name, param in list(self._parameters.items()):
            moved = _move_tensor(param, device, link)
            self._parameters[name] = moved
            object.__setattr__(self, name, moved)
        for child in self._modules.values():
            child.to(device, link=link)
        return self

    def param_nbytes(self) -> int:
        return sum(p.nbytes for p in self.parameters())

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        with no_grad():
            for name, array in state.items():
                if own[name].data.shape != array.shape:
                    raise ValueError(f"shape mismatch for {name}")
                own[name].data = array.astype(own[name].data.dtype, copy=True)


def _move_tensor(param: Parameter, device, link) -> Parameter:
    if param.device is device:
        return param
    if link is not None and device is not None:
        link.h2d(param.logical_nbytes, tag="model-weights")
    fresh = Parameter(param.data.copy(), device=device)
    fresh.work_scale = param.work_scale
    return fresh


class Linear(Module):
    """Dense layer ``y = x W + b`` with torch-default initialization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 device=None, seed: Optional[int] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), seed=seed),
                                device=device)
        if bias:
            bias_seed = None if seed is None else seed + 1
            self.bias = Parameter(init.uniform_bias(in_features, out_features, seed=bias_seed),
                                  device=device)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Dropout layer with its own deterministic RNG stream."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training, rng=self._rng)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers = []
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)
            self._layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)
