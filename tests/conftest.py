"""Shared fixtures: fresh machines, tiny graphs, deterministic RNG."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import DatasetSpec, build_dataset, clear_cache
from repro.graph.graph import Split
from repro.hardware.machine import Machine, paper_testbed
from repro.kernels.adj import SparseAdj
from repro.tensor.tensor import Tensor


@pytest.fixture
def machine() -> Machine:
    """A fresh paper-testbed machine (virtual clock at zero)."""
    return paper_testbed()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


TINY_SPEC = DatasetSpec(
    name="tiny",
    description="Tiny test graph",
    logical_num_nodes=10_000,
    logical_num_edges=80_000,
    num_features=16,
    num_classes=5,
    multilabel=False,
    split=Split(0.6, 0.2, 0.2),
    actual_num_nodes=300,
    actual_num_edges=2400,
    num_communities=5,
    seed=7,
)

TINY_MULTILABEL_SPEC = DatasetSpec(
    name="tiny-ml",
    description="Tiny multilabel test graph",
    logical_num_nodes=8_000,
    logical_num_edges=50_000,
    num_features=12,
    num_classes=6,
    multilabel=True,
    split=Split(0.6, 0.2, 0.2),
    actual_num_nodes=240,
    actual_num_edges=1800,
    num_communities=4,
    seed=8,
)


@pytest.fixture
def tiny_graph():
    """A small but non-trivial graph with paper-style logical scaling."""
    return build_dataset(TINY_SPEC)


@pytest.fixture
def tiny_multilabel_graph():
    return build_dataset(TINY_MULTILABEL_SPEC)


@pytest.fixture
def small_adj(rng) -> SparseAdj:
    """A 40-node random square adjacency without device placement."""
    src = rng.integers(0, 40, 300)
    dst = rng.integers(0, 40, 300)
    return SparseAdj(src, dst, 40, 40)


@pytest.fixture
def small_x(rng) -> Tensor:
    return Tensor(rng.random((40, 8)).astype(np.float32), requires_grad=True)


@pytest.fixture(autouse=True)
def _keep_dataset_cache_bounded():
    """Datasets are cached in-process; tests share the cache but never
    mutate graphs, so only clear when a test explicitly asks (see
    ``clear_cache`` import in test modules)."""
    yield


def finite_difference(f, array: np.ndarray, index, eps: float = 1e-3) -> float:
    """Central finite difference of scalar-valued ``f`` at one element."""
    perturbed = array.copy()
    perturbed[index] += eps
    up = f(perturbed)
    perturbed[index] -= 2 * eps
    down = f(perturbed)
    return (up - down) / (2 * eps)
