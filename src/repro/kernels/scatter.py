"""Unfused gather / scatter message passing (PyG's MessagePassing path).

``gather`` materializes the per-edge message buffer — an ``E x F`` tensor
whose *logical* allocation is what OOMs PyG's ChebConv/GATConv/GATv2Conv
on Reddit and ogbn-products (48 GB VRAM, Observation 3).  ``scatter_add``
reduces messages back to destination nodes; the paper attributes PyG's slow
CPU training to exactly this scatter being "not well optimized on CPU".
"""

from __future__ import annotations

import numpy as np

from repro.kernels.adj import SparseAdj
from repro.tensor.context import charge
from repro.tensor.tensor import Tensor


def gather(adj: SparseAdj, x: Tensor, side: str = "src") -> Tensor:
    """Materialize per-edge features: ``out[e] = x[src[e]]`` (or dst).

    The output tensor's logical size is ``E_logical x F`` — allocating it
    on the device ledger is deliberate; it reproduces the unfused path's
    memory blow-up.
    """
    if side not in ("src", "dst"):
        raise ValueError("side must be 'src' or 'dst'")
    index = adj.src if side == "src" else adj.dst
    out = Tensor(
        x.data[index],
        device=adj.device,
        requires_grad=x.requires_grad,
        work_scale=adj.edge_scale,
        _prev=(x,) if x.requires_grad else (),
        _op="gather",
    )
    feat_width = int(np.prod(x.shape[1:]))
    moved = 4.0 * 2.0 * adj.logical_num_edges * feat_width
    charge(adj.device, "gather", "gather", bytes_moved=moved)

    if out.requires_grad:
        def _backward() -> None:
            # Segment-reduce fast path (reduceat over sorted edge order)
            # with the np.add.at reference behind use_reference_kernels().
            x._accumulate(adj.sum_edges(out.grad, side=side))
            charge(adj.device, "gather.bwd", "scatter", flops=adj.logical_num_edges * feat_width,
                   bytes_moved=2.0 * moved)
        out._backward = _backward
    return out


def scatter_add(adj: SparseAdj, messages: Tensor) -> Tensor:
    """Reduce per-edge messages to destinations: ``out[d] += msg[e]``."""
    if messages.shape[0] != adj.num_edges:
        raise ValueError("messages must have one row per edge")
    out_data = adj.sum_edges(messages.data, side="dst")
    out = Tensor(
        out_data,
        device=adj.device,
        requires_grad=messages.requires_grad,
        work_scale=adj.node_scale,
        _prev=(messages,) if messages.requires_grad else (),
        _op="scatter_add",
    )
    feat_width = int(np.prod(messages.shape[1:]))
    e_log = adj.logical_num_edges
    charge(adj.device, "scatter_add", "scatter", flops=e_log * feat_width,
           bytes_moved=4.0 * 3.0 * e_log * feat_width)

    if out.requires_grad:
        def _backward() -> None:
            messages._accumulate(out.grad[adj.dst])
            charge(adj.device, "scatter_add.bwd", "gather",
                   bytes_moved=4.0 * 2.0 * e_log * feat_width)
        out._backward = _backward
    return out


def scatter_mean(adj: SparseAdj, messages: Tensor) -> Tensor:
    """Mean-reduce per-edge messages to destinations (degree-normalized).

    The inverse-degree vector is served from the adjacency's cache — a
    reshape view, not a fresh allocation per call.
    """
    total = scatter_add(adj, messages)
    inv = Tensor(
        adj.inv_in_degrees().reshape((adj.num_dst,) + (1,) * (total.ndim - 1)),
        device=adj.device,
        work_scale=adj.node_scale,
        _owns_memory=False,
    )
    return total * inv
