"""Execution context: which cost profile charges tensor ops.

The paper's core finding is that *the same mathematical kernel* runs at
very different efficiency in DGL vs PyG (Observations 2, 3, 5).  We express
that with :class:`CostProfile`: a set of roofline efficiency factors per
(op family, device kind).  Framework packages activate their profile with
:func:`use_profile`; plain tensor math outside any framework uses
:data:`GENERIC_PROFILE`.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.device import Device


@dataclass(frozen=True)
class CostProfile:
    """Roofline efficiency factors for one framework implementation.

    ``efficiencies`` maps ``(op_family, device_kind)`` to
    ``(compute_eff, memory_eff)``.  Missing entries fall back to
    ``default_eff``.  ``op_overhead`` maps ``(op_family, device_kind)`` to
    extra fixed seconds per call (framework dispatch cost).
    """

    name: str
    default_eff: Tuple[float, float] = (0.5, 0.6)
    efficiencies: Dict[Tuple[str, str], Tuple[float, float]] = field(default_factory=dict)
    op_overhead: Dict[Tuple[str, str], float] = field(default_factory=dict)
    # Per-call framework dispatch overhead (seconds), charged on every op.
    dispatch_overhead: float = 0.0

    def eff(self, family: str, device_kind: str) -> Tuple[float, float]:
        return self.efficiencies.get((family, device_kind), self.default_eff)

    def overhead(self, family: str, device_kind: str) -> float:
        return self.dispatch_overhead + self.op_overhead.get((family, device_kind), 0.0)


#: Profile used when no framework is active (bare tensor math in tests).
GENERIC_PROFILE = CostProfile(name="generic")

_active_profile: contextvars.ContextVar[CostProfile] = contextvars.ContextVar(
    "repro_active_profile", default=GENERIC_PROFILE
)

#: Families used by the dense tensor engine.  Sparse/graph kernels add
#: their own families (``spmm``, ``sddmm``, ``scatter``, ``sample``...).
DENSE_FAMILIES = ("gemm", "elementwise", "reduce", "index")


def active_profile() -> CostProfile:
    """The cost profile charging ops in the current context."""
    return _active_profile.get()


@contextmanager
def use_profile(profile: CostProfile) -> Iterator[CostProfile]:
    """Activate ``profile`` for ops executed inside the block."""
    token = _active_profile.set(profile)
    try:
        yield profile
    finally:
        _active_profile.reset(token)


def charge(
    device: Optional["Device"],
    name: str,
    family: str,
    flops: float = 0.0,
    bytes_moved: float = 0.0,
    scale: float = 1.0,
    launches: int = 1,
) -> None:
    """Charge one kernel's cost to ``device`` under the active profile.

    ``scale`` is the logical/actual work multiplier carried by tensors built
    from scaled-down datasets; no-op when ``device`` is None (pure math).
    """
    if device is None:
        return
    from repro.hardware.device import KernelCost  # local: avoid import cycle

    profile = active_profile()
    compute_eff, memory_eff = profile.eff(family, device.kind)
    device.execute(
        KernelCost(
            name=name,
            flops=flops * scale,
            bytes_moved=bytes_moved * scale,
            compute_eff=compute_eff,
            memory_eff=memory_eff,
            launches=launches,
            fixed_time=profile.overhead(family, device.kind),
        )
    )
