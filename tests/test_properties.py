"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.formats import AdjacencyCOO, coalesce, symmetrize
from repro.hardware.memory import MemoryLedger
from repro.kernels.adj import SparseAdj
from repro.kernels.scatter import gather, scatter_add
from repro.kernels.sddmm import segment_softmax
from repro.kernels.spmm import spmm
from repro.simtime import VirtualClock
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

settings.register_profile("repro", max_examples=40, deadline=None)
settings.load_profile("repro")


@st.composite
def edge_lists(draw, max_nodes=24, max_edges=80):
    """A random (num_nodes, src, dst) triple."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


class TestFormatProperties:
    @given(edge_lists())
    def test_csr_roundtrip_preserves_multiset(self, edges):
        n, src, dst = edges
        coo = AdjacencyCOO(n, src, dst)
        back = coo.to_csr().to_coo()
        assert sorted(zip(src.tolist(), dst.tolist())) == sorted(
            zip(back.src.tolist(), back.dst.tolist())
        )

    @given(edge_lists())
    def test_csc_roundtrip_preserves_multiset(self, edges):
        n, src, dst = edges
        coo = AdjacencyCOO(n, src, dst)
        back = coo.to_csc().to_coo()
        assert sorted(zip(src.tolist(), dst.tolist())) == sorted(
            zip(back.src.tolist(), back.dst.tolist())
        )

    @given(edge_lists())
    def test_degree_sums_equal_edge_count(self, edges):
        n, src, dst = edges
        coo = AdjacencyCOO(n, src, dst)
        assert coo.out_degrees().sum() == coo.num_edges
        assert coo.in_degrees().sum() == coo.num_edges

    @given(edge_lists())
    def test_coalesce_idempotent(self, edges):
        n, src, dst = edges
        once = coalesce(AdjacencyCOO(n, src, dst))
        twice = coalesce(once)
        assert np.array_equal(once.src, twice.src)
        assert np.array_equal(once.dst, twice.dst)

    @given(edge_lists())
    def test_symmetrize_produces_symmetric_set(self, edges):
        n, src, dst = edges
        sym = symmetrize(AdjacencyCOO(n, src, dst))
        pairs = set(zip(sym.src.tolist(), sym.dst.tolist()))
        assert all((d, s) in pairs for s, d in pairs)

    @given(edge_lists())
    def test_transpose_involution(self, edges):
        n, src, dst = edges
        csr = AdjacencyCOO(n, src, dst).to_csr()
        double = csr.transpose().transpose()
        orig = sorted(zip(csr.to_coo().src.tolist(), csr.to_coo().dst.tolist()))
        back = sorted(zip(double.to_coo().src.tolist(), double.to_coo().dst.tolist()))
        assert orig == back


class TestKernelProperties:
    @given(edge_lists(max_nodes=12, max_edges=40),
           st.integers(min_value=1, max_value=5))
    def test_spmm_equals_gather_scatter(self, edges, width):
        n, src, dst = edges
        adj = SparseAdj(src, dst, n, n)
        rng = np.random.default_rng(0)
        x = Tensor(rng.random((n, width)).astype(np.float32))
        fused = spmm(adj, x)
        unfused = scatter_add(adj, gather(adj, x))
        assert np.allclose(fused.data, unfused.data, atol=1e-4)

    @given(edge_lists(max_nodes=12, max_edges=40))
    def test_spmm_linearity(self, edges):
        n, src, dst = edges
        adj = SparseAdj(src, dst, n, n)
        rng = np.random.default_rng(1)
        a = Tensor(rng.random((n, 3)).astype(np.float32))
        b = Tensor(rng.random((n, 3)).astype(np.float32))
        lhs = spmm(adj, a + b)
        rhs = spmm(adj, a) + spmm(adj, b)
        assert np.allclose(lhs.data, rhs.data, atol=1e-4)

    @given(edge_lists(max_nodes=12, max_edges=40))
    def test_segment_softmax_rows_sum_to_one(self, edges):
        n, src, dst = edges
        if src.size == 0:
            return
        adj = SparseAdj(src, dst, n, n)
        scores = Tensor(np.random.default_rng(2).random(
            (adj.num_edges, 2)).astype(np.float32))
        alpha = segment_softmax(adj, scores)
        sums = np.zeros((n, 2), dtype=np.float32)
        np.add.at(sums, adj.dst, alpha.data)
        nonempty = np.bincount(adj.dst, minlength=n) > 0
        assert np.allclose(sums[nonempty], 1.0, atol=1e-4)
        assert np.all(alpha.data >= 0)

    @given(edge_lists(max_nodes=12, max_edges=40))
    def test_spmm_preserves_column_sums(self, edges):
        """sum over dst of (A @ x) == sum over src of out_degree * x."""
        n, src, dst = edges
        adj = SparseAdj(src, dst, n, n)
        x = Tensor(np.ones((n, 1), dtype=np.float32))
        out = spmm(adj, x)
        assert out.data.sum() == pytest.approx(adj.num_edges, abs=1e-2)


class TestAutogradProperties:
    @given(st.lists(st.floats(-3, 3), min_size=2, max_size=10))
    def test_softmax_output_is_distribution(self, values):
        x = Tensor(np.array([values], dtype=np.float32))
        out = F.softmax(x)
        assert out.data.sum() == pytest.approx(1.0, abs=1e-4)
        assert np.all(out.data >= 0)

    @given(st.lists(st.floats(-3, 3), min_size=1, max_size=12),
           st.floats(0.1, 3.0))
    def test_scaling_rule(self, values, scale):
        """d(c * sum(x^2))/dx == 2c x."""
        arr = np.array(values, dtype=np.float32)
        x = Tensor(arr.copy(), requires_grad=True)
        ((x * x).sum() * scale).backward()
        assert np.allclose(x.grad, 2 * scale * arr, atol=1e-3)

    @given(st.integers(2, 8), st.integers(2, 8))
    def test_matmul_grad_shapes(self, m, k):
        rng = np.random.default_rng(3)
        a = Tensor(rng.random((m, k)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.random((k, 3)).astype(np.float32), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (m, k)
        assert b.grad.shape == (k, 3)


class TestLedgerProperties:
    @given(st.lists(st.integers(1, 100), min_size=1, max_size=30))
    def test_alloc_release_returns_to_zero(self, sizes):
        ledger = MemoryLedger("dev", capacity=10_000)
        allocs = [ledger.alloc(s) for s in sizes]
        assert ledger.in_use == sum(sizes)
        for alloc in allocs:
            ledger.release(alloc)
        assert ledger.in_use == 0

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=30))
    def test_peak_monotone_and_bounded(self, sizes):
        ledger = MemoryLedger("dev", capacity=10_000)
        for s in sizes:
            ledger.release(ledger.alloc(s))
        assert ledger.peak == max(sizes)


class TestClockProperties:
    @given(st.lists(st.floats(0, 10), min_size=1, max_size=30))
    def test_time_is_sum_of_advances(self, steps):
        clock = VirtualClock()
        for dt in steps:
            clock.advance(dt)
        assert clock.now == pytest.approx(sum(steps), rel=1e-6, abs=1e-9)

    @given(st.lists(st.floats(0.01, 5), min_size=1, max_size=20))
    def test_busy_time_never_exceeds_wall(self, steps):
        clock = VirtualClock()
        for i, dt in enumerate(steps):
            if i % 2 == 0:
                clock.occupy("cpu", dt)
            else:
                clock.advance(dt)
        assert clock.busy_time("cpu") <= clock.now + 1e-9
