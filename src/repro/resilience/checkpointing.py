"""RNG-state capture for bit-identical crash–resume.

A resumed run replays the exact batches and dropout masks the killed run
would have produced, which requires checkpointing every generator the
training loop consumes: the sampler's ``np.random.Generator`` (batch
order + neighbor draws) and each ``Dropout`` module's private generator.
``Generator.bit_generator.state`` is a plain nested dict of ints, so it
round-trips through the checkpoint's JSON sidecar untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.tensor.module import Module


def _module_generators(model: Module) -> List[np.random.Generator]:
    """Per-module private generators, in deterministic traversal order."""
    found = []
    for module in model.modules():
        rng = getattr(module, "_rng", None)
        if isinstance(rng, np.random.Generator):
            found.append(rng)
    return found


def _sampler_generator(sampler) -> Optional[np.random.Generator]:
    algorithm = getattr(sampler, "algorithm", sampler)
    rng = getattr(algorithm, "rng", None)
    return rng if isinstance(rng, np.random.Generator) else None


def capture_rng_states(model: Module, sampler) -> Dict[str, object]:
    """JSON-serializable snapshot of every generator the loop consumes."""
    states: Dict[str, object] = {
        "modules": [rng.bit_generator.state
                    for rng in _module_generators(model)],
    }
    rng = _sampler_generator(sampler)
    if rng is not None:
        states["sampler"] = rng.bit_generator.state
    return states


def restore_rng_states(model: Module, sampler,
                       states: Dict[str, object]) -> None:
    """Restore a :func:`capture_rng_states` snapshot in place."""
    # Imported here: repro.models pulls the frameworks package, which the
    # hardware seams (importers of repro.resilience) sit underneath.
    from repro.models.checkpoint import CheckpointError

    module_states = list(states.get("modules", []))
    generators = _module_generators(model)
    if len(module_states) != len(generators):
        raise CheckpointError(
            f"checkpoint has {len(module_states)} module RNG state(s) but "
            f"the model exposes {len(generators)}; the architecture changed"
        )
    for rng, state in zip(generators, module_states):
        rng.bit_generator.state = state
    sampler_state = states.get("sampler")
    if sampler_state is not None:
        rng = _sampler_generator(sampler)
        if rng is None:
            raise CheckpointError(
                "checkpoint carries a sampler RNG state but the sampler "
                "has no generator to restore it into"
            )
        rng.bit_generator.state = sampler_state
