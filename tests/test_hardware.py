"""Tests for device specs, the roofline cost model, and the machine."""

import pytest

from repro.errors import DeviceError
from repro.hardware.device import Device, KernelCost
from repro.hardware.machine import Machine, cpu_only_testbed, paper_testbed
from repro.hardware.specs import CpuSpec, DeviceSpec, GpuSpec, LinkSpec, PAPER_CPU, PAPER_GPU, PAPER_PCIE
from repro.simtime import VirtualClock


class TestSpecs:
    def test_paper_cpu_matches_testbed(self):
        assert PAPER_CPU.sockets == 2
        assert PAPER_CPU.cores_per_socket == 10
        assert PAPER_CPU.mem_capacity == 64 * 2**30
        assert PAPER_CPU.total_threads == 40

    def test_paper_gpu_is_rtx8000(self):
        assert PAPER_GPU.mem_capacity == 48 * 2**30
        assert PAPER_GPU.kind == "gpu"

    def test_invalid_power_ordering_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", "cpu", 1e9, 1e9, 1, 0.0, idle_power=100.0, busy_power=50.0)

    def test_nonpositive_rates_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", "cpu", 0.0, 1e9, 1, 0.0, 1.0, 2.0)

    def test_link_requires_positive_bandwidth(self):
        with pytest.raises(ValueError):
            LinkSpec("bad", bandwidth=0.0, latency=0.0)


class TestKernelCost:
    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            KernelCost("k", flops=-1.0)

    def test_rejects_out_of_range_efficiency(self):
        with pytest.raises(ValueError):
            KernelCost("k", compute_eff=0.0)
        with pytest.raises(ValueError):
            KernelCost("k", memory_eff=1.5)

    def test_rejects_zero_launches(self):
        with pytest.raises(ValueError):
            KernelCost("k", launches=0)


class TestRoofline:
    def test_compute_bound_kernel(self):
        device = Device(PAPER_CPU, VirtualClock())
        cost = KernelCost("gemm", flops=PAPER_CPU.peak_flops, compute_eff=1.0,
                          memory_eff=1.0)
        # 1 second of peak compute plus launch overhead.
        assert device.kernel_time(cost) == pytest.approx(
            1.0 + PAPER_CPU.kernel_launch_overhead
        )

    def test_memory_bound_kernel(self):
        device = Device(PAPER_CPU, VirtualClock())
        cost = KernelCost("copy", bytes_moved=PAPER_CPU.mem_bandwidth, memory_eff=1.0)
        assert device.kernel_time(cost) == pytest.approx(
            1.0 + PAPER_CPU.kernel_launch_overhead
        )

    def test_max_of_compute_and_memory(self):
        device = Device(PAPER_CPU, VirtualClock())
        slow_mem = KernelCost("k", flops=1e6, bytes_moved=PAPER_CPU.mem_bandwidth,
                              memory_eff=1.0, compute_eff=1.0)
        assert device.kernel_time(slow_mem) > 0.99

    def test_efficiency_scales_time(self):
        device = Device(PAPER_CPU, VirtualClock())
        full = device.kernel_time(KernelCost("k", flops=1e12, compute_eff=1.0))
        half = device.kernel_time(KernelCost("k", flops=1e12, compute_eff=0.5))
        assert half == pytest.approx(2 * full - PAPER_CPU.kernel_launch_overhead, rel=1e-3)

    def test_launches_multiply_overhead(self):
        device = Device(PAPER_CPU, VirtualClock())
        one = device.kernel_time(KernelCost("k", launches=1))
        ten = device.kernel_time(KernelCost("k", launches=10))
        assert ten == pytest.approx(10 * one)

    def test_execute_advances_clock_and_counters(self):
        clock = VirtualClock()
        device = Device(PAPER_CPU, clock)
        seconds = device.execute(KernelCost("k", flops=1e9))
        assert clock.now == pytest.approx(seconds)
        assert device.counters.kernels == 1
        assert device.counters.flops == pytest.approx(1e9)
        assert device.counters.by_kernel["k"] == pytest.approx(seconds)

    def test_busy_fraction(self):
        clock = VirtualClock()
        device = Device(PAPER_CPU, clock)
        device.execute(KernelCost("k", flops=1.4e12 * 0.5, compute_eff=0.5))
        clock.advance(clock.now)  # equal idle time
        assert device.busy_fraction() == pytest.approx(0.5, rel=1e-4)


class TestMachine:
    def test_device_lookup(self, machine):
        assert machine.device("cpu") is machine.cpu
        assert machine.device("gpu") is machine.gpu

    def test_unknown_device_rejected(self, machine):
        with pytest.raises(DeviceError):
            machine.device("tpu")

    def test_cpu_only_machine_has_no_gpu(self):
        machine = cpu_only_testbed()
        assert not machine.has_gpu
        with pytest.raises(DeviceError):
            machine.device("gpu")

    def test_storage_read_time(self, machine):
        seconds = machine.read_storage(machine.storage.read_bandwidth)
        assert seconds == pytest.approx(1.0 + machine.storage.seek_latency)
        assert machine.clock.now == pytest.approx(seconds)

    def test_power_draw_idle_and_busy(self, machine):
        idle = machine.power_draw("cpu", 0.0, 1.0)
        assert idle == pytest.approx(machine.cpu.spec.idle_power)
        machine.cpu.execute(KernelCost("k", fixed_time=1.0))
        busy = machine.power_draw("cpu", 0.0, machine.clock.now)
        assert busy > idle

    def test_energy_is_power_times_time(self, machine):
        machine.clock.advance(2.0)
        energy = machine.energy("cpu", 0.0, 2.0)
        assert energy == pytest.approx(2.0 * machine.cpu.spec.idle_power)

    def test_fresh_machines_do_not_share_clocks(self):
        a, b = paper_testbed(), paper_testbed()
        a.clock.advance(5.0)
        assert b.clock.now == 0.0

    def test_counters_snapshot_keys(self, machine):
        snap = machine.counters_snapshot()
        assert {"time", "cpu_kernels", "gpu_kernels"} <= set(snap)


class TestAlternativeTestbeds:
    def test_laptop_testbed_specs(self):
        from repro.hardware.machine import laptop_testbed
        machine = laptop_testbed()
        assert machine.gpu.spec.mem_capacity == 6 * 2**30
        assert machine.cpu.spec.peak_flops < PAPER_CPU.peak_flops
        assert machine.cpu.spec.idle_power < PAPER_CPU.idle_power

    def test_laptop_machine_is_independent(self):
        from repro.hardware.machine import laptop_testbed
        a, b = laptop_testbed(), paper_testbed()
        a.clock.advance(1.0)
        assert b.clock.now == 0.0
