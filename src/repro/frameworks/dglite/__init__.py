"""DGLite — the DGL-modelled framework.

Design choices mirrored from DGL v0.8.2:

* graph-centric programming: layers receive a graph (adjacency) object and
  invoke fused ``update_all``-style kernels (g-SpMM / g-SDDMM) for *every*
  conv layer — no per-edge feature materialization anywhere;
* samplers run at native C++/OpenMP rates, with GPU-based and UVA-based
  neighborhood sampling available for GraphSAGE.  The shared vectorized
  sampling engine (:mod:`repro.sampling.relabel`) executes the actual
  draws; DGL's native-rate advantage is charged via
  :data:`~repro.frameworks.profiles.DGLITE_PROFILE` sampler costs, not by
  running slower Python on our side;
* heavier graph-object construction (the DGLGraph abstraction) and higher
  per-op dispatch overhead than PyGLite.
"""

from repro.frameworks.base import Framework
from repro.frameworks.profiles import DGLITE_PROFILE
from repro.frameworks.dglite import nn
from repro.telemetry import runtime as telemetry


class DGLite(Framework):
    """The DGL-modelled framework instance."""

    name = "dglite"
    profile = DGLITE_PROFILE

    _CONVS = {
        "gcn": nn.GCNConv,
        "gcn2": nn.GCN2Conv,
        "cheb": nn.ChebConv,
        "sage": nn.SAGEConv,
        "gat": nn.GATConv,
        "gatv2": nn.GATv2Conv,
        "tag": nn.TAGConv,
        "sg": nn.SGConv,
        # Extension layers (beyond the paper's Figure 5 eight).
        "appnp": nn.APPNPConv,
        "gin": nn.GINConv,
        "graph": nn.GraphConv,
    }

    def conv(self, kind: str, in_features: int, out_features: int, **kwargs):
        """Instantiate one of the eight benchmarked conv layers."""
        if kind not in self._CONVS:
            raise KeyError(f"unknown conv kind {kind!r}")
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("framework.conv_built",
                             framework=self.name, kind=kind).inc()
        return self._CONVS[kind](in_features, out_features, **kwargs)


__all__ = ["DGLite", "nn"]
