"""Online inference serving on the virtual clock (``repro serve``).

The stack, bottom to top: :mod:`repro.serving.workload` draws seeded
open-loop request traces; :mod:`repro.serving.batcher` coalesces them
into latency-budgeted micro-batches; :mod:`repro.serving.engine`
schedules each batch's fetch/h2d/compute/d2h stages on
:class:`repro.simtime.LaneScheduler` lanes with the warm
:class:`~repro.frameworks.feature_cache.GpuFeatureCache` path;
:mod:`repro.serving.latency` turns completions into exact tail
quantiles; :mod:`repro.serving.schema` freezes it all into the
byte-deterministic ``repro.serve/1`` report.
"""

from repro.serving.batcher import Batch, form_batches
from repro.serving.engine import (ServeConfig, ServeResult,
                                  run_serving_curve, run_serving_experiment)
from repro.serving.latency import LatencyAccountant, nearest_rank
from repro.serving.schema import (SERVE_SCHEMA, build_serve_report,
                                  format_serve_table, load_serve_report,
                                  validate_serve_payload, write_serve_report)
from repro.serving.workload import TRACE_KINDS, Request, generate_trace

__all__ = [
    "Batch", "form_batches", "ServeConfig", "ServeResult",
    "run_serving_curve", "run_serving_experiment", "LatencyAccountant",
    "nearest_rank", "SERVE_SCHEMA", "build_serve_report",
    "format_serve_table", "load_serve_report", "validate_serve_payload",
    "write_serve_report", "TRACE_KINDS", "Request", "generate_trace",
]
