"""Ablation: run-to-run stability across seeds.

Backs the paper's "we repeated the same experiments multiple times and
observed more or less the same results": five seeds per configuration,
coefficient of variation of total time / sampling / energy stays small.
"""

import pytest

from conftest import emit

from repro.bench import format_series
from repro.bench.repeats import run_repeated

SEEDS = (0, 1, 2, 3, 4)


def test_ablation_seed_variance(once):
    def run():
        out = {}
        for fw in ("dglite", "pyglite"):
            out[fw] = run_repeated(
                SEEDS, framework=fw, dataset="flickr", model="graphsage",
                placement="cpu", epochs=2, representative_batches=2,
            )
        return out

    results = once(run)
    series = {
        f"{fw}/{metric}": {
            "mean": stats.mean,
            "std": stats.std,
            "cov_%": 100 * stats.cov,
        }
        for fw, metrics in results.items()
        for metric, stats in metrics.items()
    }
    emit("ablation_seed_variance",
         format_series("Ablation: variability across 5 seeds "
                       "(GraphSAGE/flickr/CPU)", series, unit="mixed",
                       precision=3))

    for fw, metrics in results.items():
        for name, stats in metrics.items():
            assert stats.cov < 0.15, (fw, name, stats.values)
        # energy tracks runtime seed-to-seed as well
        assert metrics["energy"].cov == pytest.approx(
            metrics["total_time"].cov, abs=0.05)



