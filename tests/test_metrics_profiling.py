"""Tests for GPS-UP metrics and the phase profiler/report."""

import pytest

from repro.metrics.gpsup import GpsUp, gps_up
from repro.profiling.profiler import PhaseProfiler
from repro.profiling.report import BreakdownReport, format_breakdown_table
from repro.simtime import VirtualClock


class TestGpsUp:
    def test_identities(self):
        m = gps_up(base_time=10.0, base_energy=100.0, opt_time=2.0, opt_energy=50.0)
        assert m.speedup == pytest.approx(5.0)
        assert m.greenup == pytest.approx(2.0)
        assert m.powerup == pytest.approx(2.5)

    def test_powerup_is_speedup_over_greenup(self):
        m = GpsUp(speedup=3.0, greenup=1.5)
        assert m.powerup == pytest.approx(3.0 / 1.5)

    def test_positive_inputs_required(self):
        with pytest.raises(ValueError):
            gps_up(0.0, 1.0, 1.0, 1.0)

    def test_categories(self):
        assert GpsUp(2.0, 3.0).category() == "green-fast-cool"  # powerup < 1
        assert GpsUp(3.0, 2.0).category() == "green-fast-hot"
        assert GpsUp(2.0, 0.5).category() == "red-fast"
        assert GpsUp(0.5, 2.0).category() == "green-slow"
        assert GpsUp(0.5, 0.5).category() == "red-slow"

    def test_figure20_reddit_case(self):
        """GPU sampling on Reddit: faster and greener but draws more power
        (Powerup < 1 in the paper's convention means power went UP when
        Powerup = P_opt / P_base... the paper plots Speedup/Greenup)."""
        m = gps_up(base_time=10.0, base_energy=2000.0,
                   opt_time=3.0, opt_energy=1500.0)
        assert m.speedup > 1
        assert m.greenup > 1
        assert m.powerup > 1  # optimized draws more average power


class TestPhaseProfiler:
    def test_measures_clock_deltas(self):
        clock = VirtualClock()
        prof = PhaseProfiler(clock)
        with prof.phase("sampling"):
            clock.advance(2.0)
        with prof.phase("training"):
            clock.advance(3.0)
        assert prof.seconds("sampling") == pytest.approx(2.0)
        assert prof.total == pytest.approx(5.0)

    def test_phases_accumulate(self):
        clock = VirtualClock()
        prof = PhaseProfiler(clock)
        for _ in range(3):
            with prof.phase("training"):
                clock.advance(1.0)
        assert prof.seconds("training") == pytest.approx(3.0)

    def test_nested_phases_attribute_exclusively(self):
        # Nesting is allowed since the span-tracer refactor; the inner
        # phase's time is excluded from the outer phase so the rollup
        # never double-counts.
        clock = VirtualClock()
        prof = PhaseProfiler(clock)
        with prof.phase("a"):
            clock.advance(2.0)
            with prof.phase("b"):
                clock.advance(1.0)
            clock.advance(0.5)
        assert prof.seconds("a") == pytest.approx(2.5)
        assert prof.seconds("b") == pytest.approx(1.0)
        assert prof.total == pytest.approx(3.5)

    def test_phase_exception_does_not_wedge_profiler(self):
        # Regression: a raise inside ``with phase():`` must close the
        # span (exception-safe shim) and still record the elapsed time.
        clock = VirtualClock()
        prof = PhaseProfiler(clock)
        with pytest.raises(ValueError):
            with prof.phase("sampling"):
                clock.advance(1.0)
                raise ValueError("boom")
        assert prof.tracer.current() is None
        assert prof.seconds("sampling") == pytest.approx(1.0)
        # The profiler is reusable afterwards.
        with prof.phase("training"):
            clock.advance(2.0)
        assert prof.seconds("training") == pytest.approx(2.0)

    def test_add_credits_without_clock(self):
        clock = VirtualClock()
        prof = PhaseProfiler(clock)
        prof.add("training", 5.0)
        assert prof.seconds("training") == 5.0
        assert clock.now == 0.0

    def test_negative_credit_rejected(self):
        with pytest.raises(ValueError):
            PhaseProfiler(VirtualClock()).add("x", -1.0)

    def test_fractions_sum_to_one(self):
        clock = VirtualClock()
        prof = PhaseProfiler(clock)
        with prof.phase("a"):
            clock.advance(1.0)
        with prof.phase("b"):
            clock.advance(3.0)
        fractions = prof.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["b"] == pytest.approx(0.75)


class TestBreakdownReport:
    def test_fractions_and_total(self):
        report = BreakdownReport("DGL-CPU", {"sampling": 3.0, "training": 1.0})
        assert report.total == pytest.approx(4.0)
        assert report.fraction("sampling") == pytest.approx(0.75)
        assert report.seconds("data_movement") == 0.0

    def test_table_renders_all_rows(self):
        reports = [
            BreakdownReport("DGL-CPU", {"sampling": 3.0, "training": 1.0}),
            BreakdownReport("PyG-CPU", {"sampling": 9.0, "training": 2.0}),
        ]
        text = format_breakdown_table(reports)
        assert "DGL-CPU" in text and "PyG-CPU" in text
        assert "sampling" in text
