"""Host <-> device interconnect: bulk DMA copies and UVA zero-copy reads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hardware.specs import LinkSpec
from repro.simtime import VirtualClock
from repro.telemetry import runtime as telemetry


@dataclass
class TransferCounters:
    transfers: int = 0
    bytes_h2d: float = 0.0
    bytes_d2h: float = 0.0
    bytes_uva: float = 0.0
    seconds: float = 0.0
    by_tag: Dict[str, float] = field(default_factory=dict)


class Interconnect:
    """Simulated PCIe link between host memory and device memory.

    Bulk copies (``h2d``/``d2h``) pay per-transfer latency plus bytes over
    DMA bandwidth — this is the "data movement" phase the paper breaks out.
    UVA zero-copy reads (``uva_read``) stream at the lower fine-grained
    bandwidth and are charged to the *GPU* busy time, because the GPU's
    copy engines stall on them during sampling (DGL-UVAGPU case study).
    """

    BUSY_KEY = "pcie"

    def __init__(self, spec: LinkSpec, clock: VirtualClock) -> None:
        self.spec = spec
        self.clock = clock
        self.counters = TransferCounters()

    def transfer_time(self, nbytes: float) -> float:
        """Duration of a bulk DMA copy of ``nbytes`` logical bytes."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return self.spec.latency + nbytes / self.spec.bandwidth

    def h2d(self, nbytes: float, tag: str = "h2d") -> float:
        """Copy host -> device; advances the clock."""
        seconds = self.transfer_time(nbytes)
        self.clock.occupy(self.BUSY_KEY, seconds, tag=tag)
        self.counters.transfers += 1
        self.counters.bytes_h2d += nbytes
        self.counters.seconds += seconds
        self.counters.by_tag[tag] = self.counters.by_tag.get(tag, 0.0) + seconds
        self._record_metrics("h2d", tag, nbytes)
        return seconds

    def d2h(self, nbytes: float, tag: str = "d2h") -> float:
        """Copy device -> host; advances the clock."""
        seconds = self.transfer_time(nbytes)
        self.clock.occupy(self.BUSY_KEY, seconds, tag=tag)
        self.counters.transfers += 1
        self.counters.bytes_d2h += nbytes
        self.counters.seconds += seconds
        self.counters.by_tag[tag] = self.counters.by_tag.get(tag, 0.0) + seconds
        self._record_metrics("d2h", tag, nbytes)
        return seconds

    def _record_metrics(self, direction: str, tag: str, nbytes: float) -> None:
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("pcie.bytes", direction=direction, tag=tag).inc(nbytes)
            registry.counter("pcie.transfers", direction=direction, tag=tag).inc()
            registry.histogram("pcie.transfer_bytes", direction=direction).observe(nbytes)

    def uva_read_time(self, nbytes: float) -> float:
        """Duration for the GPU to read ``nbytes`` from pinned host memory."""
        if self.spec.uva_bandwidth <= 0:
            raise ValueError(f"{self.spec.name} does not support UVA zero-copy")
        return self.spec.latency + nbytes / self.spec.uva_bandwidth

    def record_uva(self, nbytes: float) -> None:
        """Account UVA traffic (time is charged by the GPU kernel itself)."""
        self.counters.bytes_uva += nbytes
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("pcie.bytes", direction="uva", tag="uva").inc(nbytes)
