"""Model evaluation: full-graph inference and task metrics.

The paper excludes inference benchmarking and accuracy comparisons (its
footnote 3), but a usable library needs them: after training with any of
the pipelines, ``evaluate`` runs full-graph inference and reports the
task's metric (accuracy for single-label datasets, micro-F1 for the
multi-label PPI/Yelp) on the train/val/test splits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.frameworks.base import Framework, FrameworkGraph
from repro.kernels.adj import SparseAdj
from repro.tensor import functional as F
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor, no_grad


@dataclass(frozen=True)
class EvalReport:
    """Metric per split, plus which metric it is."""

    metric: str  # "accuracy" | "micro_f1"
    train: float
    val: float
    test: float

    def as_dict(self) -> Dict[str, float]:
        return {"train": self.train, "val": self.val, "test": self.test}


def _split_metric(logits: Tensor, labels: np.ndarray, mask: np.ndarray,
                  multilabel: bool) -> float:
    rows = np.nonzero(mask)[0]
    if rows.size == 0:
        return float("nan")
    subset = Tensor(logits.data[rows])
    if multilabel:
        return F.micro_f1(subset, labels[rows])
    return F.accuracy(subset, labels[rows])


def full_graph_logits(framework: Framework, fgraph: FrameworkGraph,
                      model: Module, device: str = "cpu") -> Tensor:
    """One inference pass over the entire graph (charged on the clock).

    The model must be a :class:`~repro.models.base.SubgraphNet`-style
    network (every layer sees the same square adjacency); block-trained
    GraphSAGE models evaluate this way too — layer-wise full-graph
    inference is exactly how the DGL/PyG examples evaluate sampled models.
    """
    machine = fgraph.machine
    target = machine.device(device)
    adj = fgraph.adj_on(target) if device == "gpu" else fgraph.adj
    if adj.device is not target:
        adj = adj.with_device(target)
    features = fgraph.features_on(target)
    if features.device is not target:
        features = Tensor(features.data, device=target,
                          work_scale=features.work_scale, _owns_memory=False)
    model.eval()
    with framework.activate(), no_grad():
        if hasattr(model, "_layers") and model.__class__.__name__ == "BlockNet":
            # feed the square adjacency to every layer
            logits = _blocknet_full_graph(model, adj, features)
        else:
            logits = model(adj, features)
    return logits


def _blocknet_full_graph(model, adj: SparseAdj, x: Tensor) -> Tensor:
    for i, layer in enumerate(model._layers):
        x = layer(adj, x)
        if i < len(model._layers) - 1:
            x = F.relu(x)
    return x


def evaluate(framework: Framework, fgraph: FrameworkGraph, model: Module,
             device: str = "cpu") -> EvalReport:
    """Full-graph inference + per-split metric."""
    logits = full_graph_logits(framework, fgraph, model, device=device)
    graph = fgraph.graph
    multilabel = fgraph.stats.multilabel
    return EvalReport(
        metric="micro_f1" if multilabel else "accuracy",
        train=_split_metric(logits, graph.labels, graph.train_mask, multilabel),
        val=_split_metric(logits, graph.labels, graph.val_mask, multilabel),
        test=_split_metric(logits, graph.labels, graph.test_mask, multilabel),
    )
