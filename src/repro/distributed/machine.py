"""A single host with several GPUs on a shared interconnect."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.errors import DeviceError
from repro.hardware.device import Device
from repro.hardware.machine import Machine, StorageSpec
from repro.hardware.specs import CpuSpec, GpuSpec, LinkSpec, PAPER_CPU, PAPER_GPU, PAPER_PCIE


@dataclass(frozen=True)
class InterGpuLinkSpec:
    """The GPU<->GPU fabric used by collectives (NVLink-class)."""

    name: str = "nvlink2"
    bandwidth: float = 50e9  # bytes/s per direction
    latency: float = 5e-6  # seconds per ring step


class MultiGpuMachine(Machine):
    """The paper's testbed scaled out to ``num_gpus`` identical GPUs.

    ``machine.gpu`` stays GPU 0 so every single-GPU code path keeps
    working; replicas live in ``machine.gpus``.
    """

    def __init__(
        self,
        num_gpus: int = 2,
        cpu_spec: CpuSpec = PAPER_CPU,
        gpu_spec: GpuSpec = PAPER_GPU,
        link_spec: LinkSpec = PAPER_PCIE,
        inter_gpu: InterGpuLinkSpec = InterGpuLinkSpec(),
        storage_spec: StorageSpec = StorageSpec(),
    ) -> None:
        if num_gpus < 1:
            raise DeviceError("need at least one GPU")
        super().__init__(cpu_spec, gpu_spec, link_spec, storage_spec)
        self.inter_gpu = inter_gpu
        self.gpus: List[Device] = [self.gpu]
        # GPU 0 keeps the base name for compatibility; replicas are -1..k.
        for rank in range(1, num_gpus):
            spec = replace(gpu_spec, name=f"{gpu_spec.name}-{rank}")
            self.gpus.append(Device(spec, self.clock))

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    def gpu_rank(self, rank: int) -> Device:
        if not (0 <= rank < self.num_gpus):
            raise DeviceError(f"no GPU rank {rank} (have {self.num_gpus})")
        return self.gpus[rank]

    def total_gpu_energy(self, start: float = 0.0, end=None) -> float:
        """Exact energy across all GPUs (integration over busy intervals).

        Distributed runs credit replica GPUs retroactively (backfill), so
        energy here is integrated exactly instead of via the sampling
        monitor.
        """
        if end is None:
            end = self.clock.now
        total = 0.0
        for gpu in self.gpus:
            span = end - start
            busy = self.clock.busy_time(gpu.name, start, end)
            spec = gpu.spec
            total += spec.idle_power * span + (spec.busy_power - spec.idle_power) * busy
        return total


def multi_gpu_testbed(num_gpus: int = 2) -> MultiGpuMachine:
    """The paper's host with ``num_gpus`` RTX 8000s."""
    return MultiGpuMachine(num_gpus=num_gpus)
