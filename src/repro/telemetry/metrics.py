"""Process-wide metrics: counters, gauges, and histograms with labels.

The registry is the single place metrics are created — hot paths call
``registry.counter(name, **labels).inc(...)`` and get the same object on
every call (get-or-create keyed by name + sorted labels).  Direct
instantiation of :class:`Counter`/:class:`Gauge`/:class:`Histogram`
outside this module is a TELEMETRY-LEAK lint finding: an unregistered
metric is invisible to every exporter, so its increments vanish from the
run artifacts.

Naming convention (see ``docs/telemetry.md``): ``component.quantity`` in
snake_case with dots as the hierarchy separator (``pcie.bytes``,
``sampler.block_edges``, ``memory.peak_bytes``).  Units are part of the
name when not obvious.  Label keys identify *which* instance
(``device=...``, ``kernel=...``, ``direction=...``), never free text.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
_LABEL_KEY_RE = re.compile(r"^[a-z_][a-z0-9_]*$")

#: Default histogram bucket upper bounds: powers of four, 1 .. 4^20.
#: Wide enough for per-transfer bytes and per-block edge counts alike.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(4.0 ** k for k in range(21))

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    for key in labels:
        if not _LABEL_KEY_RE.match(key):
            raise ValueError(f"invalid label key {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Common identity for one (name, labels) series."""

    kind = "metric"

    def __init__(self, name: str, labels: LabelItems = (), help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def key(self) -> Tuple[str, LabelItems]:
        return (self.name, self.labels)

    def to_record(self) -> Dict[str, object]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease")
        self.value += amount

    def to_record(self) -> Dict[str, object]:
        return {"type": "metric", "kind": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge(Metric):
    """A value that can move both ways (plus a high-water helper)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (allocator peaks)."""
        if value > self.value:
            self.value = float(value)

    def to_record(self) -> Dict[str, object]:
        return {"type": "metric", "kind": "gauge", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram(Metric):
    """Fixed-bucket distribution of observed values."""

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems = (), help: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(name, labels, help)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: buckets must be sorted and non-empty")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # First bound >= value; linear scan is fine for ~20 buckets.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation, clipped to the observed range)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.bucket_counts):
            cum += n
            if cum >= target and n:
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                return float(min(max(upper, self.min), self.max))
        return float(self.max)

    def to_record(self) -> Dict[str, object]:
        return {
            "type": "metric", "kind": "histogram", "name": self.name,
            "labels": dict(self.labels), "count": self.count, "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": [{"le": b, "count": c}
                        for b, c in zip(self.bounds, self.bucket_counts)]
                       + [{"le": "+Inf", "count": self.bucket_counts[-1]}],
        }


class MetricsRegistry:
    """Get-or-create home for every metric in one telemetry session."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}

    def _get_or_create(self, cls, name: str, labels: Dict[str, object],
                       **kwargs) -> Metric:
        key = (name, _label_items(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested {cls.kind}"
                )
            return existing
        metric = cls(name, key[1], **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, labels, help=help)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help=help,
                                   buckets=buckets)

    def get(self, name: str, **labels) -> Optional[Metric]:
        return self._metrics.get((name, _label_items(labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> List[Metric]:
        """All metrics in deterministic (name, labels) order."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def snapshot(self) -> List[Dict[str, object]]:
        """Deterministically ordered records for the exporters/manifest."""
        return [m.to_record() for m in self.metrics()]

    # ------------------------------------------------------------------
    def prometheus_text(self) -> str:
        """Prometheus exposition-format snapshot (text format 0.0.4)."""
        lines: List[str] = []
        seen_headers = set()
        for metric in self.metrics():
            prom = _prom_name(metric.name)
            if prom not in seen_headers:
                seen_headers.add(prom)
                if metric.help:
                    lines.append(f"# HELP {prom} {metric.help}")
                lines.append(f"# TYPE {prom} {metric.kind}")
            if isinstance(metric, Histogram):
                cum = 0
                for bound, count in zip(metric.bounds, metric.bucket_counts):
                    cum += count
                    lines.append(
                        f"{prom}_bucket{_prom_labels(metric.labels, le=_fmt(bound))} {cum}"
                    )
                cum += metric.bucket_counts[-1]
                lines.append(
                    f"{prom}_bucket{_prom_labels(metric.labels, le='+Inf')} {cum}"
                )
                lines.append(f"{prom}_sum{_prom_labels(metric.labels)} {_fmt(metric.sum)}")
                lines.append(f"{prom}_count{_prom_labels(metric.labels)} {metric.count}")
            else:
                lines.append(f"{prom}{_prom_labels(metric.labels)} {_fmt(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_")


def _fmt(value: float) -> str:
    return repr(float(value))


def _prom_labels(labels: LabelItems, **extra: str) -> str:
    items = list(labels) + sorted(extra.items())
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
