"""Figures 10-13: ClusterGCN runtime breakdown, total, power, and energy."""

from conftest import emit
from grid import (
    assert_common_shapes,
    breakdown_table,
    energy_table,
    power_table,
    run_model_grid,
    totals_table,
)


def test_fig10_13_clustergcn(once):
    grid = once(lambda: run_model_grid("clustergcn"))

    emit("fig10_clustergcn_breakdown",
         breakdown_table("Figure 10: ClusterGCN runtime breakdown (10 epochs)", grid))
    emit("fig11_clustergcn_total",
         totals_table("Figure 11: ClusterGCN total runtime", grid))
    emit("fig12_clustergcn_power",
         power_table("Figure 12: ClusterGCN average power", grid))
    emit("fig13_clustergcn_energy",
         energy_table("Figure 13: ClusterGCN energy consumption", grid))

    assert_common_shapes(grid, "clustergcn")

    # ClusterGCN-specific: the one-time METIS partitioning makes sampling
    # a visible phase even for DGL on the largest graph.
    assert grid["DGL-CPU"]["ogbn-products"].phase_fraction("sampling") > 0.15
