"""Common sampler output types and work accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class SampleWork:
    """Logical work performed by one sampler invocation.

    ``items`` is the number of per-element operations at *paper scale*
    (neighbor candidates examined + sampled, walk steps, cluster-member
    touches, induced-subgraph edge probes).  ``fetch_bytes`` is the logical
    bytes of node features gathered for the batch.
    """

    items: float = 0.0
    fetch_bytes: float = 0.0

    def __iadd__(self, other: "SampleWork") -> "SampleWork":
        self.items += other.items
        self.fetch_bytes += other.fetch_bytes
        return self


@dataclass
class Block:
    """One bipartite message-flow block (DGL terminology).

    ``src_nodes``/``dst_nodes`` are global node ids; ``src``/``dst`` are
    edge endpoints in *local* block coordinates (src indexes ``src_nodes``,
    dst indexes ``dst_nodes``).  ``dst_nodes`` is always a prefix of
    ``src_nodes`` (self-inclusion), matching DGL block layout.
    """

    src_nodes: np.ndarray
    dst_nodes: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    edge_scale: float = 1.0
    node_scale: float = 1.0

    @property
    def num_edges(self) -> int:
        return int(self.src.size)


@dataclass
class BlockSample:
    """A mini-batch for layer-wise (GraphSAGE-style) training."""

    blocks: List[Block]  # input-side block first
    input_nodes: np.ndarray  # global ids needing input features
    output_nodes: np.ndarray  # global ids being predicted (the batch roots)
    work: SampleWork = field(default_factory=SampleWork)


@dataclass
class SubgraphSample:
    """A mini-batch that is one induced subgraph (ClusterGCN/GraphSAINT)."""

    nodes: np.ndarray  # global ids, defines local order
    src: np.ndarray  # local endpoints
    dst: np.ndarray
    node_scale: float = 1.0
    edge_scale: float = 1.0
    work: SampleWork = field(default_factory=SampleWork)

    @property
    def num_nodes(self) -> int:
        return int(self.nodes.size)

    @property
    def num_edges(self) -> int:
        return int(self.src.size)
