"""ClusterGCN's sampler: one-time partitioning + per-batch cluster picks.

Paper configuration: METIS partitions the graph into 2000 clusters; each
mini-batch randomly combines 50 of them (40 batches per epoch).  The
scaled-down run keeps the 50/2000 ratio, so batches-per-epoch and the
per-batch fraction of the graph match the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SamplerError
from repro.graph.formats import INDEX_DTYPE, induced_subgraph
from repro.graph.graph import Graph
from repro.graph.partition import PartitionResult, partition_graph
from repro.sampling.base import SampleWork, SubgraphSample


class ClusterSampler:
    """Partition once, then yield random cluster-union subgraphs.

    Batch assembly is fully vectorized: cluster membership is a single
    ``np.isin`` over the assignment array, and the subgraph induction goes
    through :func:`~repro.graph.formats.induced_subgraph`, which gathers
    only the selected rows' CSR slices (O(incident edges), not O(all
    edges)).  ``seed=None`` leaves the RNG nondeterministic; the framework
    wrappers default to ``seed=0``.
    """

    #: Fraction of edges METIS keeps inside clusters at paper scale.  The
    #: scaled-down partition has tiny clusters that retain almost nothing,
    #: so batch work/training cost uses this analytic retention instead of
    #: the (unrepresentative) actual induced-edge count.
    EDGE_RETENTION = 0.6

    def __init__(
        self,
        graph: Graph,
        num_parts: int = 2000,
        parts_per_batch: int = 50,
        seed: Optional[int] = None,
    ) -> None:
        if parts_per_batch < 1 or num_parts < parts_per_batch:
            raise SamplerError("need 1 <= parts_per_batch <= num_parts")
        self.graph = graph
        self.paper_num_parts = num_parts
        self.paper_parts_per_batch = parts_per_batch
        # Keep the paper's batches-per-epoch (num_parts / parts_per_batch)
        # while ensuring clusters have a sane actual size (>= ~4 nodes):
        # pick the actual part count as a multiple of the batch count so an
        # epoch divides evenly into exactly the paper's number of batches.
        batches = max(1, num_parts // parts_per_batch)
        size_cap = max(1, graph.num_nodes // 4)
        per_batch = max(1, min(parts_per_batch, size_cap // batches))
        self.actual_num_parts = int(min(num_parts, batches * per_batch))
        self.actual_parts_per_batch = per_batch
        self.rng = np.random.default_rng(seed)
        self._partition: Optional[PartitionResult] = None
        self.partition_work_items = float(graph.stats.logical_num_edges)

    @property
    def partition(self) -> PartitionResult:
        """The one-time partitioning (computed lazily)."""
        if self._partition is None:
            self._partition = partition_graph(
                self.graph.adj, self.actual_num_parts, seed=int(self.rng.integers(2**31))
            )
        return self._partition

    def num_batches(self) -> int:
        return max(1, self.actual_num_parts // self.actual_parts_per_batch)

    def sample(self, part_ids: Optional[np.ndarray] = None) -> SubgraphSample:
        """Union the given clusters (random pick if None) into a batch."""
        partition = self.partition
        if part_ids is None:
            part_ids = self.rng.choice(
                self.actual_num_parts, size=self.actual_parts_per_batch, replace=False
            )
        part_ids = np.asarray(part_ids)
        member_mask = np.isin(partition.assignments, part_ids)
        nodes = np.nonzero(member_mask)[0].astype(INDEX_DTYPE)
        if nodes.size == 0:
            raise SamplerError("selected clusters are empty")
        # order="dst" emits dst-sorted edges (SparseAdj canonical order)
        # so assembly can use the argsort-free from_sorted_block path.
        sub_coo, _ = induced_subgraph(self.graph.adj, nodes, order="dst")

        node_scale = self.graph.node_scale
        # Paper-scale batch edges: the batch covers q/P of the clusters,
        # whose intra-cluster edges METIS retains at ~EDGE_RETENTION.
        fraction = part_ids.size / self.actual_num_parts
        logical_edges = max(
            float(sub_coo.num_edges),
            self.EDGE_RETENTION * self.graph.stats.logical_num_edges * fraction,
        )
        edge_scale = logical_edges / max(1, sub_coo.num_edges)
        work = SampleWork(
            # Cluster aggregation touches each member node and scans its
            # incident (logical) edges to build the induced subgraph.
            items=nodes.size * node_scale + logical_edges,
            fetch_bytes=4.0 * nodes.size * node_scale * self.graph.num_features,
        )
        return SubgraphSample(
            nodes=nodes,
            src=sub_coo.src,
            dst=sub_coo.dst,
            node_scale=node_scale,
            edge_scale=edge_scale,
            work=work,
        )

    def epoch_batches(self):
        """Yield one epoch: every cluster appears in exactly one batch."""
        order = self.rng.permutation(self.actual_num_parts)
        q = self.actual_parts_per_batch
        for start in range(0, self.num_batches() * q, q):
            part_ids = order[start:start + q]
            if part_ids.size:
                yield self.sample(part_ids)
