"""Figures 18-19: GraphSAGE with the graph + features pre-loaded to GPU.

Figure 18 reports the speedup of DGL/PyG-CPUGPU+preload over plain CPUGPU;
Figure 19 the runtime breakdown with pre-loading.  The paper: pre-loading
saves up to ~20x data-movement time, giving ~2x overall speedup.
"""

from conftest import DATASETS, EPOCHS, FRAMEWORKS, REPRESENTATIVE_BATCHES, emit

from repro.bench import format_series, run_training_experiment
from repro.profiling.profiler import PHASES


def test_fig18_19_preloading(once):
    def run():
        out = {}
        for fw in FRAMEWORKS:
            for preload in (False, True):
                row = {}
                for ds in DATASETS:
                    row[ds] = run_training_experiment(
                        fw, ds, "graphsage", placement="cpugpu",
                        preload=preload, epochs=EPOCHS,
                        representative_batches=REPRESENTATIVE_BATCHES,
                    )
                out[row[DATASETS[0]].label] = row
        return out

    grid = once(run)

    speedups = {}
    movement_savings = {}
    for fw, nick in (("dglite", "DGL"), ("pyglite", "PyG")):
        base_row = grid[f"{nick}-CPUGPU"]
        pre_row = grid[f"{nick}-CPUGPU+preload"]
        speedups[nick] = {
            ds: base_row[ds].total_time / pre_row[ds].total_time for ds in DATASETS
        }
        movement_savings[nick] = {
            ds: (base_row[ds].phases["data_movement"]
                 / max(1e-9, pre_row[ds].phases["data_movement"]))
            for ds in DATASETS
        }

    emit("fig18_preload_speedup",
         format_series("Figure 18: overall speedup from pre-loading",
                       speedups, unit="x", precision=2))
    emit("fig18b_preload_movement_saving",
         format_series("Figure 18 (aux): data-movement time saving",
                       movement_savings, unit="x", precision=1))

    lines = ["Figure 19: GraphSAGE breakdown with pre-loading", "=" * 48]
    for label in ("DGL-CPUGPU+preload", "PyG-CPUGPU+preload"):
        lines.append(f"\n{label}")
        for ds, result in grid[label].items():
            cells = "".join(
                f"{p}={result.phases.get(p, 0.0):.2f}s({100 * result.phase_fraction(p):.0f}%) "
                for p in PHASES
            )
            lines.append(f"  {ds:<15}{cells}")
    emit("fig19_preload_breakdown", "\n".join(lines))

    # Observation 6: pre-loading significantly reduces data movement in
    # BOTH frameworks and speeds up training overall.  The overall gain is
    # big for DGL (movement was a large share of its runtime) and small
    # for PyG (whose total is dominated by Python sampling).
    for nick in ("DGL", "PyG"):
        assert max(movement_savings[nick].values()) > 10
        for ds in ("reddit", "yelp"):
            assert speedups[nick][ds] > 1.0, (nick, ds)
    assert max(speedups["DGL"].values()) > 1.4
    assert max(speedups["PyG"].values()) > 1.02
