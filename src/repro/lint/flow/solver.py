"""Worklist fixpoint solver for interprocedural summaries.

The deep rules all reduce to the same shape: a per-function value from a
small join-semilattice (effect bits, may-raise sets, taint flags), a
transfer function that recomputes one function's value from its
dependencies' current values, and a dependency relation (callees for
bottom-up summaries, callers for top-down context facts).  This module
implements the classic Kildall chaotic-iteration worklist over that
shape, deterministic and cycle-safe:

* nodes are seeded in sorted order so iteration order (and therefore any
  tie-breaking) is stable across runs and platforms;
* recursion and mutual recursion converge because transfer functions are
  monotone over finite lattices — a cycle simply iterates until its
  members stop changing;
* a generous iteration cap guards against a non-monotone transfer
  (a bug in a rule) turning the linter into an infinite loop; hitting it
  returns the partial (sound-but-approximate) state instead of hanging
  CI.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Iterable, Mapping, TypeVar

N = TypeVar("N", bound=Hashable)
V = TypeVar("V")

#: Re-visits allowed per node before the solver declares non-convergence.
#: Real lattices here have height <= a handful; 50 is absurdly generous.
MAX_VISITS_PER_NODE = 50


def fixpoint(
    nodes: Iterable[N],
    dependencies: Mapping[N, Iterable[N]],
    transfer: Callable[[N, Dict[N, V]], V],
    bottom: Callable[[N], V],
) -> Dict[N, V]:
    """Solve ``state[n] = transfer(n, state)`` to a fixpoint.

    ``dependencies[n]`` lists the nodes whose state ``transfer(n, ...)``
    reads; when one of those changes, ``n`` is re-queued.  ``bottom``
    supplies each node's initial (least) value.  Returns the final state
    map.  Unknown dependencies (not in ``nodes``) are ignored — the
    transfer function sees them as absent and must treat absence as
    bottom.
    """
    ordered = sorted(nodes)
    state: Dict[N, V] = {n: bottom(n) for n in ordered}

    dependents: Dict[N, list] = {n: [] for n in ordered}
    for n in ordered:
        for dep in dependencies.get(n, ()):
            if dep in dependents:
                dependents[dep].append(n)

    queue = deque(ordered)
    queued = set(ordered)
    visits: Dict[N, int] = {}
    while queue:
        n = queue.popleft()
        queued.discard(n)
        visits[n] = visits.get(n, 0) + 1
        if visits[n] > MAX_VISITS_PER_NODE:
            continue  # non-monotone transfer; keep the approximate state
        new = transfer(n, state)
        if new != state[n]:
            state[n] = new
            for dep in dependents[n]:
                if dep not in queued:
                    queue.append(dep)
                    queued.add(dep)
    return state
