"""Breakdown records and text rendering for runtime reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.profiling.profiler import PHASES


@dataclass(frozen=True)
class BreakdownReport:
    """Four-phase runtime breakdown of one training run."""

    label: str
    phases: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def seconds(self, phase: str) -> float:
        return self.phases.get(phase, 0.0)

    def fraction(self, phase: str) -> float:
        total = self.total
        return self.phases.get(phase, 0.0) / total if total > 0 else 0.0


def format_breakdown_table(reports: Sequence[BreakdownReport],
                           phases: Sequence[str] = PHASES) -> str:
    """Render reports as the stacked-bar data behind Figures 6/10/14."""
    label_w = max(12, max((len(r.label) for r in reports), default=12))
    header = f"{'config':<{label_w}}" + "".join(f"{p:>16}" for p in phases) + f"{'total':>12}"
    lines = [header, "-" * len(header)]
    for report in reports:
        cells = "".join(
            f"{report.seconds(p):>10.3f}s {100 * report.fraction(p):>3.0f}%" for p in phases
        )
        lines.append(f"{report.label:<{label_w}}{cells}{report.total:>11.3f}s")
    return "\n".join(lines)
