"""Latency-budget micro-batching: coalesce requests, bound the wait.

The dynamic micro-batcher trades per-request latency for per-batch
efficiency under one hard contract: **no request waits in the batcher
longer than the latency budget**.  A batch opens when its first request
arrives and closes at whichever comes first:

* **max-size** — the ``max_size``-th request arrives; the batch closes
  the instant it fills (``formed_at`` is that request's arrival), or
* **deadline** — the opener's ``arrival + max_wait`` passes; the batch
  closes with however many requests have arrived by then.

Because every member arrived at or after the opener, the batching delay
``formed_at - request.arrival`` is at most ``max_wait`` for every
request — the invariant the serving tests assert on the virtual clock.
Batching is a pure function of arrival times (open-loop): server
backpressure shows up downstream as queueing delay on the scheduler
lanes, never as extra batching delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import BenchmarkError
from repro.serving.workload import Request


@dataclass(frozen=True)
class Batch:
    """One closed micro-batch, ready to dispatch at ``formed_at``."""

    batch_id: int
    requests: Tuple[Request, ...]
    formed_at: float  # close time: dispatch may start here, never before
    closed_by: str  # "size" | "deadline"

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def nodes(self) -> np.ndarray:
        """Deduplicated, sorted union of the member requests' target nodes."""
        return np.unique(np.concatenate([r.nodes for r in self.requests]))

    def max_wait(self) -> float:
        """The longest batching delay any member request experienced."""
        return max(self.formed_at - r.arrival for r in self.requests)


def form_batches(requests: Sequence[Request], max_size: int,
                 max_wait: float) -> List[Batch]:
    """Partition an arrival-ordered trace into latency-budgeted batches."""
    if max_size < 1:
        raise BenchmarkError("max batch size must be >= 1")
    if max_wait < 0:
        raise BenchmarkError("latency budget (max_wait) must be >= 0")
    arrivals = [r.arrival for r in requests]
    if any(b < a for a, b in zip(arrivals, arrivals[1:])):
        raise BenchmarkError("requests must be ordered by arrival time")

    batches: List[Batch] = []
    i = 0
    while i < len(requests):
        deadline = requests[i].arrival + max_wait
        j = i + 1
        while (j < len(requests) and j - i < max_size
               and requests[j].arrival <= deadline):
            j += 1
        members = tuple(requests[i:j])
        if len(members) == max_size:
            # Filled: closes the moment the last member arrives.
            formed_at, closed_by = members[-1].arrival, "size"
        else:
            # The batcher cannot see the future: it holds the batch open
            # until the deadline even when no further request will come.
            formed_at, closed_by = deadline, "deadline"
        batches.append(Batch(len(batches), members, formed_at, closed_by))
        i = j
    return batches
