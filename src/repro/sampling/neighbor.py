"""GraphSAGE's k-hop neighborhood sampler.

Sampling runs backwards from the batch roots (DGL block convention): the
*last* fanout is applied to the roots, earlier fanouts to successive
frontiers, producing one bipartite block per GNN layer.

The sampler is fully vectorized: the whole frontier is processed in one
pass (degree computation, take-all slicing, and a single batched draw for
the subsampled seeds — see :func:`sample_block_neighbors`), and block
relabeling goes through :mod:`repro.sampling.relabel`.  Framework-level
sampler cost (DGL's native C++ rates vs PyG's Python rates) is *modeled*
by :mod:`repro.frameworks.profiles`, not an accident of our own Python
overhead.

Scaling: the driver shrinks the paper's batch size (512 roots) by the
dataset's node scale, so the number of batches per epoch matches the
paper-scale run.  Per-root subtree sizes are absolute (fanout-capped), but
the scaled-down graph has lower degrees than the logical one, so each hop
carries a *degree correction* ``min(f, d_logical) / min(f, d_actual)``
folded into the blocks' logical edge scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SamplerError
from repro.graph.formats import INDEX_DTYPE
from repro.graph.graph import Graph
from repro.sampling.base import Block, BlockSample, SampleWork
from repro.sampling.relabel import block_locals, flat_positions


def sample_block_neighbors(
    indptr: np.ndarray,
    indices: np.ndarray,
    seeds: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
):
    """Sample up to ``fanout`` neighbors (without replacement) per seed.

    Returns (srcs, dsts) as global ids (dst = the seed) and the number of
    neighbor candidates examined.  Output edges are grouped by seed in
    ``seeds`` order.

    The whole frontier is handled at once: degrees come from one ``indptr``
    difference; seeds with ``degree <= fanout`` have their entire neighbor
    list sliced out via offset arithmetic; the remaining seeds draw one
    batch of uniform keys and keep the ``fanout`` smallest per seed — a
    segmented sort-of-uniforms scheme that is exactly uniform sampling
    without replacement per seed.
    """
    if fanout < 1:
        raise SamplerError("fanout must be >= 1")
    seeds = np.asarray(seeds, dtype=INDEX_DTYPE)
    empty = np.empty(0, dtype=INDEX_DTYPE)
    if seeds.size == 0:
        return empty, empty, 0
    starts = indptr[seeds]
    degrees = (indptr[seeds + 1] - starts).astype(INDEX_DTYPE, copy=False)
    examined = int(degrees.sum())
    if examined == 0:
        return empty, empty, 0

    # Per-seed number of sampled neighbors, and each seed's slice of the
    # output array (grouped by seed, in input order).
    counts = np.minimum(degrees, fanout)
    out_starts = np.cumsum(counts) - counts
    srcs = np.empty(int(counts.sum()), dtype=INDEX_DTYPE)

    take_all = degrees <= fanout
    take_idx = np.nonzero(take_all & (degrees > 0))[0]
    if take_idx.size:
        positions = flat_positions(starts[take_idx], degrees[take_idx])
        srcs[flat_positions(out_starts[take_idx], counts[take_idx])] = (
            indices[positions]
        )

    sub_idx = np.nonzero(~take_all)[0]
    if sub_idx.size:
        sub_degrees = degrees[sub_idx]
        candidates = flat_positions(starts[sub_idx], sub_degrees)
        # One uniform key per candidate; the fanout smallest keys of each
        # seed's segment are a uniform without-replacement sample.  Keys
        # live in [0, 1), so segment + key sorts by segment then key in a
        # single argsort pass.
        keys = rng.random(candidates.size)
        segment = np.repeat(np.arange(sub_idx.size), sub_degrees)
        order = np.argsort(segment + keys)
        rank = (np.arange(candidates.size, dtype=INDEX_DTYPE)
                - np.repeat(np.cumsum(sub_degrees) - sub_degrees, sub_degrees))
        chosen = candidates[order[rank < fanout]]
        srcs[flat_positions(out_starts[sub_idx], counts[sub_idx])] = (
            indices[chosen]
        )

    dsts = np.repeat(seeds, counts)
    return srcs, dsts, examined


class NeighborSampler:
    """Mini-batch iterator over root batches with per-layer fanouts.

    ``seed=None`` leaves the RNG nondeterministic; the framework wrappers
    and the benchmark harness always pass an explicit seed (default 0) so
    repeated runs are reproducible.
    """

    def __init__(
        self,
        graph: Graph,
        fanouts: Sequence[int] = (25, 10),
        batch_size: int = 512,
        seed: Optional[int] = None,
    ) -> None:
        if not fanouts:
            raise SamplerError("fanouts must be non-empty")
        self.fanouts = tuple(int(f) for f in fanouts)
        if any(f < 1 for f in self.fanouts):
            raise SamplerError(
                f"fanouts must all be >= 1, got {self.fanouts}"
            )
        self.graph = graph
        self.paper_batch_size = int(batch_size)
        # Shrink roots by node scale so batches/epoch match paper scale.
        self.actual_batch_size = max(2, int(round(batch_size / graph.node_scale)))
        self.rng = np.random.default_rng(seed)
        self._indptr = graph.adj.indptr
        self._indices = graph.adj.indices
        # Mean degrees drive the per-hop degree correction.
        self._d_actual = max(1.0, graph.num_edges / max(1, graph.num_nodes))
        self._d_logical = max(1.0, graph.stats.avg_degree)

    def num_batches(self, train_nodes: int) -> int:
        return max(1, int(np.ceil(train_nodes / self.actual_batch_size)))

    def hop_correction(self, fanout: int) -> float:
        """Logical/actual sampled-neighbor ratio for one hop."""
        return min(fanout, self._d_logical) / min(fanout, self._d_actual)

    def sample(self, roots: np.ndarray) -> BlockSample:
        """Build one mini-batch of blocks for the given batch roots."""
        roots = np.asarray(roots, dtype=INDEX_DTYPE)
        if roots.size == 0:
            raise SamplerError("cannot sample an empty root batch")
        node_scale = self.graph.node_scale
        work = SampleWork()
        blocks: List[Block] = []
        seeds = roots
        cumulative = node_scale  # logical/actual ratio of the current frontier
        # Output-side layer first (last fanout applies to the roots).
        for fanout in reversed(self.fanouts):
            src_g, dst_g, examined = sample_block_neighbors(
                self._indptr, self._indices, seeds, fanout, self.rng
            )
            correction = self.hop_correction(fanout)
            edge_scale = cumulative * correction
            # Charged items: neighbors examined plus entries sampled.
            work.items += (examined + src_g.size) * edge_scale

            # Block node set: dst nodes first (self-inclusion), then new
            # srcs; endpoints relabeled with one searchsorted pass.
            src_nodes, src_local, dst_local = block_locals(src_g, dst_g, seeds)
            blocks.append(
                Block(
                    src_nodes=src_nodes,
                    dst_nodes=seeds,
                    src=src_local,
                    dst=dst_local,
                    edge_scale=edge_scale,
                    node_scale=cumulative,
                )
            )
            seeds = src_nodes
            cumulative = edge_scale

        blocks.reverse()  # input-side block first
        input_nodes = blocks[0].src_nodes
        work.fetch_bytes = (
            4.0 * input_nodes.size * cumulative * self.graph.num_features
        )
        return BlockSample(
            blocks=blocks,
            input_nodes=input_nodes,
            output_nodes=roots,
            work=work,
        )

    def epoch_batches(self, shuffle: bool = True):
        """Yield batches of roots covering the training set once."""
        train = self.graph.train_nodes()
        if shuffle:
            train = self.rng.permutation(train)
        for start in range(0, train.size, self.actual_batch_size):
            roots = train[start:start + self.actual_batch_size]
            if roots.size:
                yield self.sample(roots)
