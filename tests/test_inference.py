"""Tests for layer-wise mini-batch inference."""

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.frameworks import get_framework
from repro.models.evaluate import full_graph_logits
from repro.models.graphsage import build_graphsage
from repro.models.inference import layerwise_inference


@pytest.fixture
def setup(machine):
    fw = get_framework("dglite")
    fgraph = fw.load("ppi", machine, scale=0.3)
    net = build_graphsage(fw, fgraph, hidden=16, dropout=0.0, seed=0)
    return fw, fgraph, net


class TestLayerwiseInference:
    def test_matches_full_graph_inference(self, setup):
        """Chunked layer-wise inference must equal the one-shot pass."""
        fw, fgraph, net = setup
        chunked = layerwise_inference(fw, fgraph, net, batch_nodes=500)
        reference = full_graph_logits(fw, fgraph, net)
        assert np.allclose(chunked.logits, reference.data, atol=1e-3)

    def test_chunk_size_does_not_change_results(self, setup):
        fw, fgraph, net = setup
        small = layerwise_inference(fw, fgraph, net, batch_nodes=300)
        large = layerwise_inference(fw, fgraph, net, batch_nodes=100000)
        assert np.allclose(small.logits, large.logits, atol=1e-3)

    def test_output_shape(self, setup):
        fw, fgraph, net = setup
        result = layerwise_inference(fw, fgraph, net)
        assert result.logits.shape == (fgraph.num_nodes,
                                       fgraph.stats.num_classes)

    def test_phases_charged(self, setup):
        fw, fgraph, net = setup
        result = layerwise_inference(fw, fgraph, net)
        assert result.phases["training"] > 0
        assert result.total_time > 0

    def test_gpu_inference_charges_movement(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        net = build_graphsage(fw, fgraph, hidden=16, dropout=0.0, seed=0)
        result = layerwise_inference(fw, fgraph, net, device="gpu")
        assert result.phases["data_movement"] > 0
        assert machine.pcie.counters.bytes_h2d > 0
        assert machine.pcie.counters.bytes_d2h > 0  # outputs stream back

    def test_gpu_faster_than_cpu_compute(self, setup):
        fw, fgraph, net = setup
        cpu = layerwise_inference(fw, fgraph, net, device="cpu")
        gpu = layerwise_inference(fw, fgraph, net, device="gpu")
        assert gpu.phases["training"] < cpu.phases["training"]

    def test_requires_layered_model(self, setup):
        fw, fgraph, _ = setup
        from repro.tensor.module import Linear
        with pytest.raises(BenchmarkError):
            layerwise_inference(fw, fgraph, Linear(4, 2))
