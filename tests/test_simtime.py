"""Tests for the virtual clock."""

import pytest

from repro.simtime import Stopwatch, VirtualClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_listeners_see_old_and_new(self):
        clock = VirtualClock()
        seen = []
        clock.add_listener(lambda old, new: seen.append((old, new)))
        clock.advance(2.0)
        clock.advance(1.0)
        assert seen == [(0.0, 2.0), (2.0, 3.0)]

    def test_removed_listener_stops_firing(self):
        clock = VirtualClock()
        seen = []
        listener = lambda old, new: seen.append(new)
        clock.add_listener(listener)
        clock.advance(1.0)
        clock.remove_listener(listener)
        clock.advance(1.0)
        assert seen == [1.0]


class TestOccupy:
    def test_occupy_advances_and_records(self):
        clock = VirtualClock()
        clock.occupy("cpu", 2.0)
        assert clock.now == pytest.approx(2.0)
        assert clock.busy_time("cpu") == pytest.approx(2.0)

    def test_busy_time_is_per_device(self):
        clock = VirtualClock()
        clock.occupy("cpu", 1.0)
        clock.occupy("gpu", 3.0)
        assert clock.busy_time("cpu") == pytest.approx(1.0)
        assert clock.busy_time("gpu") == pytest.approx(3.0)

    def test_busy_time_window_clips_intervals(self):
        clock = VirtualClock()
        clock.occupy("cpu", 4.0)  # busy over [0, 4)
        assert clock.busy_time("cpu", 1.0, 3.0) == pytest.approx(2.0)
        assert clock.busy_time("cpu", 5.0, 6.0) == 0.0

    def test_zero_occupy_records_nothing(self):
        clock = VirtualClock()
        clock.occupy("cpu", 0.0)
        assert clock.busy_intervals("cpu") == []

    def test_interval_visible_to_listener_during_advance(self):
        """Power sampling reads busy intervals from inside clock listeners."""
        clock = VirtualClock()
        seen_busy = []
        clock.add_listener(lambda old, new: seen_busy.append(clock.busy_time("cpu", old, new)))
        clock.occupy("cpu", 2.0)
        assert seen_busy == [pytest.approx(2.0)]

    def test_negative_occupy_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().occupy("cpu", -1.0)


class TestOverlap:
    def test_overlap_charges_max_not_sum(self):
        clock = VirtualClock()
        with clock.overlap():
            clock.advance(2.0)
            clock.advance(5.0)
            clock.advance(1.0)
        assert clock.now == pytest.approx(5.0)

    def test_overlap_attributes_to_device(self):
        clock = VirtualClock()
        with clock.overlap("gpu"):
            clock.advance(3.0)
        assert clock.busy_time("gpu") == pytest.approx(3.0)

    def test_nested_overlaps_share_one_window(self):
        clock = VirtualClock()
        with clock.overlap():
            clock.advance(1.0)
            with clock.overlap():
                clock.advance(4.0)
        assert clock.now == pytest.approx(4.0)

    def test_occupy_inside_overlap_defers_busy_recording(self):
        clock = VirtualClock()
        with clock.overlap():
            clock.occupy("cpu", 2.0)
        assert clock.busy_time("cpu") == 0.0
        assert clock.now == pytest.approx(2.0)


class TestReset:
    def test_reset_clears_time_and_busy(self):
        clock = VirtualClock()
        clock.occupy("cpu", 1.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.busy_intervals() == []


class TestStopwatch:
    def test_measures_elapsed_virtual_time(self):
        clock = VirtualClock()
        watch = Stopwatch(clock).start()
        clock.advance(2.5)
        assert watch.stop() == pytest.approx(2.5)

    def test_accumulates_across_starts(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        with watch.timing():
            clock.advance(1.0)
        with watch.timing():
            clock.advance(2.0)
        assert watch.elapsed == pytest.approx(3.0)

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch(VirtualClock()).stop()

    def test_reset(self):
        clock = VirtualClock()
        watch = Stopwatch(clock).start()
        clock.advance(1.0)
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0
