"""Phase profiler: attributes virtual time to the paper's four phases."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.simtime import VirtualClock

#: The paper's runtime breakdown (Figures 6, 10, 14, 19, 21).
PHASES = ("data_loading", "sampling", "data_movement", "training")


class PhaseProfiler:
    """Accumulates virtual seconds per named phase.

    ``phase(name)`` measures a block against the clock; ``add`` credits
    extrapolated time (used when representative batches stand in for a
    full epoch).
    """

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._seconds: Dict[str, float] = {}
        self._active: Optional[str] = None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        if self._active is not None:
            raise RuntimeError(
                f"phase {name!r} started while {self._active!r} is active"
            )
        self._active = name
        start = self.clock.now
        try:
            yield
        finally:
            self._active = None
            self._seconds[name] = self._seconds.get(name, 0.0) + (self.clock.now - start)

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` to a phase without touching the clock."""
        if seconds < 0:
            raise ValueError("cannot credit negative time")
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def snapshot(self) -> Dict[str, float]:
        return dict(self._seconds)

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in self._seconds}
        return {name: secs / total for name, secs in self._seconds.items()}
