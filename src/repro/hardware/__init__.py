"""Simulated hardware: devices, memory, interconnects, and the machine.

The paper's testbed (dual Intel Xeon Silver 4114, 64 GB RAM, NVIDIA Quadro
RTX 8000 48 GB, PCIe 3.0 x16) is modelled as a :class:`Machine` whose
devices execute kernels against a roofline-style cost model and advance a
shared :class:`~repro.simtime.VirtualClock`.
"""

from repro.hardware.specs import (
    CpuSpec,
    DeviceSpec,
    GpuSpec,
    LinkSpec,
    PAPER_CPU,
    PAPER_GPU,
    PAPER_PCIE,
)
from repro.hardware.memory import MemoryLedger, Allocation
from repro.hardware.device import Device, KernelCost
from repro.hardware.interconnect import Interconnect
from repro.hardware.machine import Machine, paper_testbed

__all__ = [
    "Allocation",
    "CpuSpec",
    "Device",
    "DeviceSpec",
    "GpuSpec",
    "Interconnect",
    "KernelCost",
    "LinkSpec",
    "Machine",
    "MemoryLedger",
    "PAPER_CPU",
    "PAPER_GPU",
    "PAPER_PCIE",
    "paper_testbed",
]
