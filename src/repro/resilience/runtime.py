"""Ambient resilience session, mirroring ``repro.telemetry.runtime``.

Hot paths never hold an injector reference; they ask this module.  The
disabled path is a single function call returning ``None`` — when no
fault plan is active, :func:`arm` costs one list check and
:func:`with_retries` degenerates to calling the operation once, so the
subsystem is free for every ordinary run.

Sessions stack (LIFO) so a test can nest a plan inside an instrumented
harness without clobbering it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, TypeVar

from repro.errors import InjectedFault, RecoveryExhausted
from repro.resilience.injector import FaultInjector
from repro.resilience.plan import FaultPlan, FaultSpec
from repro.simtime import VirtualClock
from repro.telemetry.runtime import maybe_span

T = TypeVar("T")

_STACK: List[FaultInjector] = []


def active() -> Optional[FaultInjector]:
    """The innermost active injector, or None when injection is off."""
    return _STACK[-1] if _STACK else None


def enabled() -> bool:
    return bool(_STACK)


def push_injector(injector: FaultInjector) -> FaultInjector:
    """Activate ``injector`` (prefer the :func:`session` context manager)."""
    _STACK.append(injector)
    return injector


def pop_injector(injector: FaultInjector) -> None:
    """Deactivate ``injector`` (and anything stacked above it)."""
    while _STACK:
        if _STACK.pop() is injector:
            return
    raise RuntimeError("pop_injector: injector was not active")


@contextmanager
def session(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Activate a fresh injector for ``plan`` for the duration of the block."""
    injector = FaultInjector(plan)
    push_injector(injector)
    try:
        yield injector
    finally:
        pop_injector(injector)


def arm(site: str) -> Optional[FaultSpec]:
    """Arm ``site`` on the active injector; None when injection is off."""
    if not _STACK:
        return None
    return _STACK[-1].arm(site)


def with_retries(site: str, clock: VirtualClock,
                 attempt: Callable[[], T]) -> T:
    """Run ``attempt`` under the site's bounded-retry policy.

    Each :class:`InjectedFault` raised by ``attempt`` consumes one retry:
    the exponential-backoff delay is charged against the *virtual* clock
    inside a ``recover.retry`` span, then the operation re-runs (arming a
    fresh occurrence, so ``count``-limited faults eventually clear).
    Past ``max_retries`` failures the last fault escapes wrapped in
    :class:`RecoveryExhausted`.  Real (non-injected) exceptions are never
    retried.
    """
    injector = _STACK[-1] if _STACK else None
    if injector is None:
        return attempt()
    policy = injector.policy(site)
    failures = 0
    while True:
        try:
            return attempt()
        except InjectedFault as fault:
            failures += 1
            if failures > policy.max_retries:
                # This fault stays unrecovered: recovered < injected in
                # the telemetry marks the run as genuinely failed.
                raise RecoveryExhausted(site, failures) from fault
            delay = injector.backoff_delay(site, failures)
            with maybe_span("recover.retry", category="resilience",
                            site=site, attempt=failures):
                if delay > 0:
                    clock.advance(delay)
            # Each injected fault is cleared by exactly one retry (a
            # repeated fault arms a fresh occurrence with its own
            # retry), keeping recovered == injected for healthy runs.
            injector.record_retry(site)
            injector.record_recovered(site, action="retry")
