"""``repro lint`` — AST-based static analysis for the reproduction stack.

The paper's magnifying-glass methodology attributes framework-level
slowdowns to a handful of recurring code patterns: per-element Python
loops on the sampling hot path, redundant format conversions, silent
dtype promotion, and nondeterministic RNG that makes runs incomparable.
This package turns those observations into mechanical checks so the
patterns cannot creep back in as the codebase grows.

Everything here is stdlib-only (``ast`` + ``tokenize``): the linter must
run in CI before any heavy dependency is importable.

Two tiers of analysis:

* the **flat** rules (:data:`repro.lint.rules.RULES`) see one function
  at a time and always run;
* the **deep** rules (:data:`repro.lint.flow.rules.DEEP_RULES`) see the
  whole program — call graph, effect summaries, per-function CFGs — and
  run under ``repro lint --deep`` (see :mod:`repro.lint.flow`).

Public API:

* :func:`repro.lint.engine.lint_paths` — run the rules over files/dirs
  (``deep=True`` adds the interprocedural pass).
* :data:`repro.lint.rules.RULES` — the flat rule registry.
* :data:`repro.lint.flow.rules.DEEP_RULES` — the deep rule registry.
* :class:`repro.lint.engine.Finding` — one diagnostic.
"""

from repro.lint.engine import FileContext, Finding, LintResult, Rule, lint_paths
from repro.lint.rules import RULES
from repro.lint.baseline import load_baseline, save_baseline

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "RULES",
    "lint_paths",
    "load_baseline",
    "save_baseline",
]
