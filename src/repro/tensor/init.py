"""Weight initializers (Glorot/Xavier and friends).

Both DGL and PyG default to Glorot initialization for conv-layer weights;
using the same initializer keeps the two framework implementations
numerically comparable.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import FLOAT_DTYPE


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def xavier_uniform(shape: Tuple[int, ...], gain: float = 1.0,
                   seed: Optional[int] = None) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return _rng(seed).uniform(-bound, bound, size=shape).astype(FLOAT_DTYPE)


def xavier_normal(shape: Tuple[int, ...], gain: float = 1.0,
                  seed: Optional[int] = None) -> np.ndarray:
    """Glorot normal: N(0, std^2) with std = gain * sqrt(2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return (_rng(seed).standard_normal(size=shape) * std).astype(FLOAT_DTYPE)


def kaiming_uniform(shape: Tuple[int, ...], a: float = math.sqrt(5),
                    seed: Optional[int] = None) -> np.ndarray:
    """He uniform, matching torch.nn.Linear's default weight init."""
    fan_in, _ = _fans(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return _rng(seed).uniform(-bound, bound, size=shape).astype(FLOAT_DTYPE)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=FLOAT_DTYPE)


def uniform_bias(fan_in: int, size: int, seed: Optional[int] = None) -> np.ndarray:
    """torch.nn.Linear's default bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return _rng(seed).uniform(-bound, bound, size=size).astype(FLOAT_DTYPE)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a 0-d shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
