"""Core lint engine: file discovery, rule dispatch, finding filtering.

The engine is deliberately dependency-free (``ast`` + stdlib only) so it
can gate CI before the numeric stack is even importable.  It parses each
file once, hands the tree to every applicable rule, then filters the raw
findings through two mechanisms:

* **inline suppressions** — ``# repro-lint: disable=RULE`` comments
  (see :mod:`repro.lint.suppressions`), and
* a **baseline** — a checked-in JSON file of grandfathered findings
  (see :mod:`repro.lint.baseline`); only findings *not* in the baseline
  count as new.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint.suppressions import suppressions_for_source

#: Directory names never descended into during discovery.
SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "venv", "build", "dist",
             ".eggs", "node_modules"}

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    ``line``/``col`` are 1-based / 0-based (ast conventions).  ``span``
    is the inclusive line range used when matching inline suppressions —
    for a multi-line expression the ``disable=`` comment may sit on any
    line of the expression, not just the first.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    span: Tuple[int, int] = (0, 0)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching."""
        return (self.path, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule may need about one parsed file."""

    path: str                 # display path (as discovered, POSIX separators)
    module: str               # dotted module name, "" when not in a package
    tree: ast.Module
    source: str
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(default=None, repr=False)
    _walked: Optional[List[ast.AST]] = field(default=None, repr=False)

    def walk(self) -> List[ast.AST]:
        """Every node of the tree, walked once and shared by all rules.

        Rules used to each call ``ast.walk`` themselves; with eight flat
        rules that re-traversed every file eight times.  The list is
        materialized lazily on first use and cached for the file's
        lifetime.
        """
        if self._walked is None:
            self._walked = list(ast.walk(self.tree))
        return self._walked

    def parent_map(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent links, built lazily and cached per file."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in self.walk()
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parent_map()
        while node in parents:
            node = parents[node]
            yield node


class Rule:
    """Base class for lint rules.

    Subclasses set ``name``/``severity``/``description`` and implement
    :meth:`check`.  :meth:`applies` lets a rule scope itself to parts of
    the tree (e.g. HOTLOOP only watches the hot-path packages).
    """

    name: str = ""
    severity: str = "error"
    description: str = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                span: Optional[Tuple[int, int]] = None) -> Finding:
        line = getattr(node, "lineno", 1)
        if span is None:
            span = (line, getattr(node, "end_lineno", line) or line)
        return Finding(rule=self.name, severity=self.severity, path=ctx.path,
                       line=line, col=getattr(node, "col_offset", 0),
                       message=message, span=span)


@dataclass
class LintResult:
    """Outcome of one engine run, after suppression/baseline filtering."""

    findings: List[Finding]        # new findings (gate CI / exit code)
    baselined: List[Finding]       # matched the baseline, not new
    suppressed: int                # silenced by inline comments
    files_checked: int
    deep: bool = False             # did the interprocedural pass run?

    @property
    def ok(self) -> bool:
        return not self.findings


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the ``__init__.py`` chain.

    Walks up from ``path`` while each parent directory is a package; the
    result is what ``import`` would call the file.  Returns ``""`` for a
    module that is not inside any package.  Rules use this (not raw
    filesystem paths) to scope themselves, so the linter behaves the same
    whether invoked on ``src/repro`` or from inside ``src``.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories).

    Directory listings are sorted by POSIX string path — not by the
    platform Path ordering — so discovery order (and with it report and
    baseline order) is byte-identical across filesystems and OSes.
    """
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root
        elif root.is_dir():
            for candidate in sorted(root.rglob("*.py"),
                                    key=lambda p: p.as_posix()):
                if any(part in SKIP_DIRS for part in candidate.parts):
                    continue
                yield candidate


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    line = exc.lineno or 1
    return Finding(rule="SYNTAX", severity="error", path=path, line=line,
                   col=(exc.offset or 1) - 1,
                   message=f"file does not parse: {exc.msg}",
                   span=(line, line))


def load_context(path: Path,
                 display_path: Optional[str] = None
                 ) -> Tuple[Optional[FileContext], Optional[Finding]]:
    """Parse one file into a :class:`FileContext`, once, for all rules.

    Returns ``(ctx, None)`` on success and ``(None, finding)`` when the
    file is unreadable or does not parse — a broken file must fail the
    gate, not silently skip every rule.
    """
    display = display_path if display_path is not None else path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, Finding(rule="SYNTAX", severity="error", path=display,
                             line=1, col=0,
                             message=f"file is unreadable: {exc}",
                             span=(1, 1))
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return None, _syntax_finding(display, exc)
    return FileContext(path=display, module=module_name_for(path),
                       tree=tree, source=source), None


def _filter_suppressed(findings: Iterable[Finding],
                       source: str) -> Tuple[List[Finding], int]:
    suppress = suppressions_for_source(source)
    kept, silenced = [], 0
    for f in findings:
        if suppress.is_suppressed(f.rule, f.span):
            silenced += 1
        else:
            kept.append(f)
    return kept, silenced


def check_context(ctx: FileContext,
                  rules: Sequence[Rule]) -> Tuple[List[Finding], int]:
    """Run flat rules over one parsed context; suppression-filtered."""
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies(ctx):
            raw.extend(rule.check(ctx))
    kept, silenced = _filter_suppressed(raw, ctx.source)
    kept.sort(key=Finding.sort_key)
    return kept, silenced


def check_file(path: Path, rules: Sequence[Rule],
               display_path: Optional[str] = None) -> Tuple[List[Finding], int]:
    """Lint one file; returns (kept findings, inline-suppressed count)."""
    ctx, error = load_context(path, display_path)
    if error is not None:
        return [error], 0
    return check_context(ctx, rules)


def split_selection(select: Optional[Sequence[str]],
                    deep: bool) -> Tuple[List[Rule], List[object]]:
    """Resolve ``--select`` against both registries.

    Returns (flat rules, deep rules).  Selecting a deep rule without
    ``deep=True`` is an error — the interprocedural pass it needs would
    not run — reported the same way as an unknown rule name.
    """
    from repro.lint.flow.rules import DEEP_RULES  # late: imports engine
    from repro.lint.rules import RULES

    if not select:
        return list(RULES.values()), (list(DEEP_RULES.values()) if deep
                                      else [])
    wanted = {name.strip().upper() for name in select if name.strip()}
    unknown = wanted - set(RULES) - set(DEEP_RULES)
    if unknown:
        raise KeyError(f"unknown rule(s) {sorted(unknown)}; available: "
                       f"{sorted(RULES) + sorted(DEEP_RULES)}")
    deep_wanted = wanted & set(DEEP_RULES)
    if deep_wanted and not deep:
        raise KeyError(f"rule(s) {sorted(deep_wanted)} are interprocedural; "
                       "run with --deep to enable them")
    flat = [rule for name, rule in RULES.items() if name in wanted]
    deep_rules = [rule for name, rule in DEEP_RULES.items()
                  if name in deep_wanted] if deep else []
    return flat, deep_rules


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Dict[Tuple[str, str, str], int]] = None,
    deep: bool = False,
) -> LintResult:
    """Run the registry's rules over ``paths``.

    ``select`` restricts to the named rules (case-insensitive).
    ``baseline`` maps :meth:`Finding.baseline_key` -> grandfathered
    count; each key absorbs up to that many matching findings.  With
    ``deep=True`` the parsed contexts are additionally fed to the
    whole-program dataflow pass (:mod:`repro.lint.flow`); deep findings
    flow through the same suppression and baseline machinery.
    """
    flat_rules, deep_rules = split_selection(select, deep)
    all_kept: List[Finding] = []
    suppressed = 0
    files = 0
    contexts: List[FileContext] = []
    for path in iter_python_files(paths):
        files += 1
        ctx, error = load_context(path)
        if error is not None:
            all_kept.append(error)
            continue
        kept, silenced = check_context(ctx, flat_rules)
        all_kept.extend(kept)
        suppressed += silenced
        if deep:
            contexts.append(ctx)

    if deep and contexts and deep_rules:
        from repro.lint.flow import analyze  # late: flow imports engine

        source_by_path = {ctx.path: ctx.source for ctx in contexts}
        raw_deep = analyze(contexts, deep_rules)
        for f in raw_deep:
            source = source_by_path.get(f.path)
            if source is None:
                all_kept.append(f)
                continue
            kept, silenced = _filter_suppressed([f], source)
            all_kept.extend(kept)
            suppressed += silenced

    remaining = dict(baseline or {})
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for f in sorted(all_kept, key=Finding.sort_key):
        key = f.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(f)
        else:
            new.append(f)
    return LintResult(findings=new, baselined=grandfathered,
                      suppressed=suppressed, files_checked=files, deep=deep)
