"""Ablation: sampler hyperparameters.

The paper notes "the choices of hyperparameters can affect the sampling
performance" (Observation 2 discussion) without quantifying.  This bench
sweeps the three samplers' knobs on one dataset.
"""

from conftest import emit

from repro.bench import format_series, measure_sampler_epoch
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed

DATASET = "reddit"


def _neighbor_epoch(fanouts, batch_size) -> float:
    machine = paper_testbed()
    fw = get_framework("dglite")
    fgraph = fw.load(DATASET, machine)
    sampler = fw.neighbor_sampler(fgraph, fanouts=fanouts,
                                  batch_size=batch_size, seed=0)
    batches = sampler.num_batches()
    start = machine.clock.now
    iterator = iter(sampler.epoch())
    ran = 0
    for _ in range(min(3, batches)):
        if next(iterator, None) is None:
            break
        ran += 1
    return (machine.clock.now - start) * batches / max(1, ran)


def _saint_epoch(num_roots, walk_length) -> float:
    machine = paper_testbed()
    fw = get_framework("dglite")
    fgraph = fw.load(DATASET, machine)
    sampler = fw.saint_sampler(fgraph, num_roots=num_roots,
                               walk_length=walk_length, seed=0)
    batches = sampler.num_batches()
    start = machine.clock.now
    iterator = iter(sampler.epoch())
    ran = 0
    for _ in range(min(3, batches)):
        if next(iterator, None) is None:
            break
        ran += 1
    return (machine.clock.now - start) * batches / max(1, ran)


def test_ablation_sampler_hyperparams(once):
    def run():
        neighbor = {
            "fanout-10/5": _neighbor_epoch((10, 5), 512),
            "fanout-25/10": _neighbor_epoch((25, 10), 512),
            "fanout-50/20": _neighbor_epoch((50, 20), 512),
            "batch-128": _neighbor_epoch((25, 10), 128),
            "batch-2048": _neighbor_epoch((25, 10), 2048),
        }
        saint = {
            "roots-1500": _saint_epoch(1500, 2),
            "roots-3000": _saint_epoch(3000, 2),
            "roots-6000": _saint_epoch(6000, 2),
            "walk-4": _saint_epoch(3000, 4),
        }
        return neighbor, saint

    neighbor, saint = once(run)
    emit("ablation_hyperparams",
         format_series(f"Ablation: sampler hyperparameters on {DATASET}",
                       {"neighbor": neighbor, "saint_rw": saint}, unit="s"))

    # Bigger fanouts cost more per epoch.
    assert neighbor["fanout-10/5"] < neighbor["fanout-25/10"] < neighbor["fanout-50/20"]
    # Smaller batches mean more per-batch overhead for the same coverage.
    assert neighbor["batch-128"] > neighbor["batch-2048"]
    # SAINT: more roots per batch -> fewer batches; per-epoch cost is
    # roughly flat (coverage-bound), within 3x across a 4x roots sweep.
    ratio = max(saint["roots-1500"], saint["roots-6000"]) / min(
        saint["roots-1500"], saint["roots-6000"])
    assert ratio < 3.0
    # Longer walks touch more nodes per batch.
    assert saint["walk-4"] > saint["roots-3000"] * 0.8
