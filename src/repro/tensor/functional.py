"""Functional ops: activations, softmax, dropout, and losses.

All functions build autograd nodes and charge roofline costs like the core
``Tensor`` methods do.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor.context import charge
from repro.tensor.tensor import FLOAT_DTYPE, Tensor

# Shared fallback stream for callers that don't thread their own
# Generator (repro-lint RNG-SEED): seeded so bare dropout() calls are
# reproducible across runs while successive calls still draw fresh masks.
_FALLBACK_RNG = np.random.default_rng(0)


def relu(x: Tensor) -> Tensor:
    out = Tensor._result(np.maximum(x.data, 0.0), (x,), "relu")
    n = out.data.size
    charge(out.device, "relu", "elementwise", flops=n, bytes_moved=8 * n, scale=out.work_scale)

    if out.requires_grad:
        def _backward() -> None:
            x._accumulate(out.grad * (x.data > 0))
            charge(out.device, "relu.bwd", "elementwise", flops=n, bytes_moved=8 * n,
                   scale=out.work_scale)
        out._backward = _backward
    return out


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    out_data = np.where(x.data > 0, x.data, negative_slope * x.data)
    out = Tensor._result(out_data, (x,), "leaky_relu")
    n = out.data.size
    charge(out.device, "leaky_relu", "elementwise", flops=2 * n, bytes_moved=8 * n,
           scale=out.work_scale)

    if out.requires_grad:
        def _backward() -> None:
            slope = np.where(x.data > 0, 1.0, negative_slope).astype(FLOAT_DTYPE)
            x._accumulate(out.grad * slope)
            charge(out.device, "leaky_relu.bwd", "elementwise", flops=2 * n, bytes_moved=8 * n,
                   scale=out.work_scale)
        out._backward = _backward
    return out


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    out_data = np.where(x.data > 0, x.data, alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0))
    out = Tensor._result(out_data, (x,), "elu")
    n = out.data.size
    charge(out.device, "elu", "elementwise", flops=5 * n, bytes_moved=8 * n, scale=out.work_scale)

    if out.requires_grad:
        def _backward() -> None:
            slope = np.where(x.data > 0, 1.0, out.data + alpha).astype(FLOAT_DTYPE)
            x._accumulate(out.grad * slope)
            charge(out.device, "elu.bwd", "elementwise", flops=2 * n, bytes_moved=8 * n,
                   scale=out.work_scale)
        out._backward = _backward
    return out


def sigmoid(x: Tensor) -> Tensor:
    out_data = 1.0 / (1.0 + np.exp(-x.data))
    out = Tensor._result(out_data, (x,), "sigmoid")
    n = out.data.size
    charge(out.device, "sigmoid", "elementwise", flops=5 * n, bytes_moved=8 * n,
           scale=out.work_scale)

    if out.requires_grad:
        def _backward() -> None:
            x._accumulate(out.grad * out.data * (1.0 - out.data))
            charge(out.device, "sigmoid.bwd", "elementwise", flops=3 * n, bytes_moved=8 * n,
                   scale=out.work_scale)
        out._backward = _backward
    return out


def tanh(x: Tensor) -> Tensor:
    out = Tensor._result(np.tanh(x.data), (x,), "tanh")
    n = out.data.size
    charge(out.device, "tanh", "elementwise", flops=6 * n, bytes_moved=8 * n, scale=out.work_scale)

    if out.requires_grad:
        def _backward() -> None:
            x._accumulate(out.grad * (1.0 - out.data * out.data))
            charge(out.device, "tanh.bwd", "elementwise", flops=3 * n, bytes_moved=8 * n,
                   scale=out.work_scale)
        out._backward = _backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    ex = np.exp(shifted)
    out_data = ex / ex.sum(axis=axis, keepdims=True)
    out = Tensor._result(out_data, (x,), "softmax")
    n = out.data.size
    charge(out.device, "softmax", "elementwise", flops=8 * n, bytes_moved=12 * n,
           scale=out.work_scale)

    if out.requires_grad:
        def _backward() -> None:
            dot = (out.grad * out.data).sum(axis=axis, keepdims=True)
            x._accumulate(out.data * (out.grad - dot))
            charge(out.device, "softmax.bwd", "elementwise", flops=4 * n, bytes_moved=12 * n,
                   scale=out.work_scale)
        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = Tensor._result(shifted - logsum, (x,), "log_softmax")
    n = out.data.size
    charge(out.device, "log_softmax", "elementwise", flops=8 * n, bytes_moved=12 * n,
           scale=out.work_scale)

    if out.requires_grad:
        def _backward() -> None:
            softmax_data = np.exp(out.data)
            grad_sum = out.grad.sum(axis=axis, keepdims=True)
            x._accumulate(out.grad - softmax_data * grad_sum)
            charge(out.device, "log_softmax.bwd", "elementwise", flops=4 * n, bytes_moved=12 * n,
                   scale=out.work_scale)
        out._backward = _backward
    return out


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not (0.0 <= p < 1.0):
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = rng if rng is not None else _FALLBACK_RNG
    mask = (rng.random(x.shape) >= p).astype(FLOAT_DTYPE) / (1.0 - p)
    out = Tensor._result(x.data * mask, (x,), "dropout")
    n = out.data.size
    charge(out.device, "dropout", "elementwise", flops=2 * n, bytes_moved=12 * n,
           scale=out.work_scale)

    if out.requires_grad:
        def _backward() -> None:
            x._accumulate(out.grad * mask)
            charge(out.device, "dropout.bwd", "elementwise", flops=n, bytes_moved=12 * n,
                   scale=out.work_scale)
        out._backward = _backward
    return out


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy with integer class labels.

    Used for the single-label node-classification datasets (Flickr,
    ogbn-arxiv, Reddit, ogbn-products).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ValueError("labels must be 1-D with one entry per row of logits")
    n_rows, n_classes = logits.shape
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - logsum
    picked = log_probs[np.arange(n_rows), labels]
    out = Tensor._result(np.asarray(-picked.mean()), (logits,), "cross_entropy")
    n = logits.data.size
    charge(out.device, "cross_entropy", "elementwise", flops=8 * n, bytes_moved=12 * n,
           scale=out.work_scale)

    if out.requires_grad:
        def _backward() -> None:
            probs = np.exp(log_probs)
            probs[np.arange(n_rows), labels] -= 1.0
            logits._accumulate(out.grad * probs / n_rows)
            charge(out.device, "cross_entropy.bwd", "elementwise", flops=4 * n,
                   bytes_moved=12 * n, scale=out.work_scale)
        out._backward = _backward
    return out


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean multi-label BCE (PPI and Yelp are multi-label tasks)."""
    targets = np.asarray(targets, dtype=FLOAT_DTYPE)
    if targets.shape != logits.shape:
        raise ValueError("targets must match logits shape")
    z = logits.data
    # Numerically stable: max(z,0) - z*y + log(1 + exp(-|z|))
    loss = np.maximum(z, 0.0) - z * targets + np.log1p(np.exp(-np.abs(z)))
    out = Tensor._result(np.asarray(loss.mean()), (logits,), "bce_logits")
    n = logits.data.size
    charge(out.device, "bce_logits", "elementwise", flops=10 * n, bytes_moved=12 * n,
           scale=out.work_scale)

    if out.requires_grad:
        def _backward() -> None:
            probs = 1.0 / (1.0 + np.exp(-z))
            logits._accumulate(out.grad * (probs - targets) / logits.data.size)
            charge(out.device, "bce_logits.bwd", "elementwise", flops=5 * n,
                   bytes_moved=12 * n, scale=out.work_scale)
        out._backward = _backward
    return out


def accuracy(logits: Tensor, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the integer label."""
    pred = logits.data.argmax(axis=1)
    return float((pred == np.asarray(labels)).mean())


def micro_f1(logits: Tensor, targets: np.ndarray, threshold: float = 0.0) -> float:
    """Micro-averaged F1 for multi-label outputs (PPI/Yelp metric)."""
    pred = logits.data > threshold
    truth = np.asarray(targets) > 0.5
    tp = float(np.logical_and(pred, truth).sum())
    fp = float(np.logical_and(pred, ~truth).sum())
    fn = float(np.logical_and(~pred, truth).sum())
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom > 0 else 0.0
