"""Tests for the RAPL/NVML meters and the CodeCarbon-style monitor."""

import pytest

from repro.hardware.device import KernelCost
from repro.hardware.machine import paper_testbed
from repro.power.meter import NvmlMeter, RaplMeter
from repro.power.monitor import EnergyMonitor


class TestRaplMeter:
    def test_counter_is_cumulative(self, machine):
        meter = RaplMeter(machine.clock, machine.cpu)
        machine.clock.advance(2.0)
        first = meter.energy_counter()
        machine.clock.advance(2.0)
        assert meter.energy_counter() == pytest.approx(2 * first)

    def test_idle_energy_is_idle_power_times_time(self, machine):
        meter = RaplMeter(machine.clock, machine.cpu)
        machine.clock.advance(10.0)
        expected = machine.cpu.spec.idle_power * 10.0
        assert meter.energy_counter() == pytest.approx(expected)

    def test_busy_energy_exceeds_idle(self, machine):
        meter = RaplMeter(machine.clock, machine.cpu)
        machine.cpu.execute(KernelCost("k", fixed_time=10.0))
        expected = machine.cpu.spec.busy_power * 10.0
        assert meter.energy_counter() == pytest.approx(expected, rel=1e-3)

    def test_average_power_of_half_busy_window(self, machine):
        meter = RaplMeter(machine.clock, machine.cpu)
        machine.cpu.execute(KernelCost("k", fixed_time=5.0))
        machine.clock.advance(5.0)
        spec = machine.cpu.spec
        mid = (spec.idle_power + spec.busy_power) / 2
        assert meter.average_power(0.0, 10.0) == pytest.approx(mid, rel=1e-3)

    def test_requires_cpu_device(self, machine):
        with pytest.raises(ValueError):
            RaplMeter(machine.clock, machine.gpu)


class TestNvmlMeter:
    def test_idle_instant_power(self, machine):
        meter = NvmlMeter(machine.clock, machine.gpu)
        machine.clock.advance(1.0)
        assert meter.instant_power() == pytest.approx(machine.gpu.spec.idle_power)

    def test_busy_instant_power(self, machine):
        meter = NvmlMeter(machine.clock, machine.gpu, window=0.1)
        machine.gpu.execute(KernelCost("k", fixed_time=1.0))
        assert meter.instant_power() == pytest.approx(machine.gpu.spec.busy_power)

    def test_window_averaging(self, machine):
        meter = NvmlMeter(machine.clock, machine.gpu, window=1.0)
        machine.gpu.execute(KernelCost("k", fixed_time=0.5))
        machine.clock.advance(0.5)  # window now half busy
        spec = machine.gpu.spec
        mid = (spec.idle_power + spec.busy_power) / 2
        assert meter.instant_power() == pytest.approx(mid, rel=1e-2)

    def test_requires_gpu_device(self, machine):
        with pytest.raises(ValueError):
            NvmlMeter(machine.clock, machine.cpu)

    def test_positive_window_required(self, machine):
        with pytest.raises(ValueError):
            NvmlMeter(machine.clock, machine.gpu, window=0.0)


class TestEnergyMonitor:
    def test_reports_duration_and_samples(self, machine):
        monitor = EnergyMonitor(machine, interval=0.1)
        monitor.start()
        machine.clock.advance(1.0)
        report = monitor.stop()
        assert report.duration == pytest.approx(1.0)
        # 10 interval boundaries, plus possibly one final flush sample when
        # float accumulation leaves a sliver before stop().
        assert 10 <= report.samples <= 11

    def test_cpu_energy_matches_exact_integral(self, machine):
        monitor = EnergyMonitor(machine, interval=0.1)
        monitor.start()
        machine.cpu.execute(KernelCost("k", fixed_time=0.75))
        machine.clock.advance(0.25)
        report = monitor.stop()
        exact = (machine.cpu.spec.busy_power * 0.75
                 + machine.cpu.spec.idle_power * 0.25)
        # Kernel launch overhead adds a few microseconds of busy time.
        assert report.cpu_energy == pytest.approx(exact, rel=1e-4)

    def test_gpu_energy_close_to_exact_integral(self, machine):
        monitor = EnergyMonitor(machine, interval=0.1)
        monitor.start()
        machine.gpu.execute(KernelCost("k", fixed_time=0.6))
        machine.clock.advance(0.4)
        report = monitor.stop()
        exact = (machine.gpu.spec.busy_power * 0.6
                 + machine.gpu.spec.idle_power * 0.4)
        # NVML-style sampling integrates window-averaged power: small error.
        assert report.gpu_energy == pytest.approx(exact, rel=0.1)

    def test_avg_power_definition(self, machine):
        monitor = EnergyMonitor(machine, interval=0.1)
        monitor.start()
        machine.clock.advance(2.0)
        report = monitor.stop()
        assert report.avg_power == pytest.approx(report.total_energy / 2.0)

    def test_double_start_rejected(self, machine):
        monitor = EnergyMonitor(machine, interval=0.1)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()

    def test_stop_without_start_rejected(self, machine):
        with pytest.raises(RuntimeError):
            EnergyMonitor(machine).stop()

    def test_stop_detaches_listener(self, machine):
        monitor = EnergyMonitor(machine, interval=0.1)
        monitor.start()
        machine.clock.advance(0.5)
        report = monitor.stop()
        machine.clock.advance(5.0)  # after stop: no more samples taken
        assert report.samples == 5

    def test_fine_sampling_interval_like_paper(self, machine):
        """The paper uses 0.1 s instead of CodeCarbon's 15 s default."""
        fine = EnergyMonitor(machine, interval=0.1)
        assert fine.interval == 0.1
        with pytest.raises(ValueError):
            EnergyMonitor(machine, interval=0.0)

    def test_power_traces_recorded(self, machine):
        monitor = EnergyMonitor(machine, interval=0.1)
        monitor.start()
        machine.clock.advance(0.35)
        report = monitor.stop()
        assert len(report.gpu_power_trace) == report.samples
        assert all(s.watts >= machine.gpu.spec.idle_power - 1e-9
                   for s in report.gpu_power_trace)

    def test_monitor_on_cpu_only_machine(self):
        from repro.hardware.machine import cpu_only_testbed
        machine = cpu_only_testbed()
        monitor = EnergyMonitor(machine, interval=0.1)
        monitor.start()
        machine.clock.advance(0.5)
        report = monitor.stop()
        assert report.gpu_energy == 0.0
        assert report.cpu_energy > 0.0
