"""PyGLite conv layers — MessagePassing with partial fused support.

Layers with a torch-sparse fused path (GCNConv, GCN2Conv, SAGEConv,
TAGConv, SGConv) call ``spmm`` like DGLite does — but the active PyGLite
profile prices that kernel at torch-sparse efficiency (much slower on CPU).

ChebConv, GATConv, and GATv2Conv have **no fused path in PyG**: they run
the literal gather -> per-edge compute -> scatter pipeline, materializing
``E x F`` message buffers whose logical allocation OOMs the 48 GB GPU on
Reddit / ogbn-products (Observation 3).
"""

from __future__ import annotations

from typing import Optional

from repro.frameworks.common import (
    dst_rows,
    gcn_norm_weight,
    mean_norm_weight,
    neg_laplacian_weight,
    with_self_loops,
)
from repro.kernels.adj import SparseAdj
from repro.kernels.scatter import gather, scatter_add
from repro.kernels.sddmm import segment_softmax
from repro.kernels.spmm import spmm
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.module import Linear, Module, Parameter
from repro.tensor.tensor import Tensor


class GCNConv(Module):
    """GCN layer via the fused torch-sparse ``matmul`` path."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=bias, seed=seed)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        h = self.linear(x)
        return spmm(adj_sl, h, weight=norm)


class GCN2Conv(Module):
    """GCNII layer via the fused path (PyG provides SparseTensor support)."""

    def __init__(self, in_features: int, out_features: int, alpha: float = 0.1,
                 beta: float = 0.5, seed: Optional[int] = None) -> None:
        super().__init__()
        if in_features != out_features:
            raise ValueError("GCN2Conv requires in_features == out_features")
        self.alpha = alpha
        self.beta = beta
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), seed=seed))

    def forward(self, adj: SparseAdj, x: Tensor, x0: Optional[Tensor] = None) -> Tensor:
        if x0 is None:
            x0 = x
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        h = spmm(adj_sl, x, weight=norm)
        support = h * (1.0 - self.alpha) + x0 * self.alpha
        return support * (1.0 - self.beta) + (support @ self.weight) * self.beta


class ChebConv(Module):
    """Chebyshev conv — **unfused** in PyG: gather/scatter per hop."""

    def __init__(self, in_features: int, out_features: int, k: int = 3,
                 bias: bool = True, seed: Optional[int] = None) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("ChebConv order k must be >= 1")
        self.k = k
        for i in range(k):
            setattr(self, f"lin{i}", Linear(in_features, out_features,
                                            bias=(bias and i == 0),
                                            seed=None if seed is None else seed + i))

    def _propagate(self, adj: SparseAdj, x: Tensor, norm: Tensor) -> Tensor:
        # gather materializes E x F messages — the unfused path's cost.
        messages = gather(adj, x, side="src")
        messages = messages * norm.reshape(adj.num_edges, 1)
        return scatter_add(adj, messages)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        norm = neg_laplacian_weight(adj)
        t_prev, t_curr = None, x
        out = self.lin0(x)
        for i in range(1, self.k):
            if i == 1:
                t_next = self._propagate(adj, t_curr, norm)
            else:
                t_next = self._propagate(adj, t_curr, norm) * 2.0 - t_prev
            out = out + getattr(self, f"lin{i}")(t_next)
            t_prev, t_curr = t_curr, t_next
        return out


class SAGEConv(Module):
    """GraphSAGE mean layer via the fused path (bipartite-capable)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.lin_self = Linear(in_features, out_features, bias=bias, seed=seed)
        self.lin_neigh = Linear(in_features, out_features, bias=False,
                                seed=None if seed is None else seed + 100)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        mean_w = mean_norm_weight(adj)
        aggregated = spmm(adj, x, weight=mean_w)
        return self.lin_self(dst_rows(x, adj)) + self.lin_neigh(aggregated)


class GATConv(Module):
    """GAT layer — **unfused** in PyG: per-edge feature materialization."""

    def __init__(self, in_features: int, out_features: int, heads: int = 4,
                 negative_slope: float = 0.2, seed: Optional[int] = None) -> None:
        super().__init__()
        if out_features % heads:
            raise ValueError("out_features must be divisible by heads")
        self.heads = heads
        self.head_dim = out_features // heads
        self.negative_slope = negative_slope
        self.lin = Linear(in_features, out_features, bias=False, seed=seed)
        self.att_src = Parameter(
            init.xavier_uniform((heads, self.head_dim),
                                seed=None if seed is None else seed + 200)
        )
        self.att_dst = Parameter(
            init.xavier_uniform((heads, self.head_dim),
                                seed=None if seed is None else seed + 201)
        )

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        z = self.lin(x).reshape(x.shape[0], self.heads, self.head_dim)
        z_dst = dst_rows(z, adj)
        # Unfused: materialize endpoint features per edge (E x H x D).
        z_src_e = gather(adj, z, side="src")
        z_dst_e = gather(adj, z_dst, side="dst")
        scores = (z_src_e * self.att_src).sum(axis=2) + (z_dst_e * self.att_dst).sum(axis=2)
        scores = F.leaky_relu(scores, self.negative_slope)
        alpha = segment_softmax(adj, scores)
        messages = z_src_e * alpha.reshape(adj.num_edges, self.heads, 1)
        out = scatter_add(adj, messages)
        return out.reshape(adj.num_dst, self.heads * self.head_dim)


class GATv2Conv(Module):
    """GATv2 layer — **unfused** in PyG (per-edge MLP inputs materialized)."""

    def __init__(self, in_features: int, out_features: int, heads: int = 4,
                 negative_slope: float = 0.2, seed: Optional[int] = None) -> None:
        super().__init__()
        if out_features % heads:
            raise ValueError("out_features must be divisible by heads")
        self.heads = heads
        self.head_dim = out_features // heads
        self.negative_slope = negative_slope
        self.lin_src = Linear(in_features, out_features, bias=False, seed=seed)
        self.lin_dst = Linear(in_features, out_features, bias=False,
                              seed=None if seed is None else seed + 300)
        self.att = Parameter(
            init.xavier_uniform((heads, self.head_dim),
                                seed=None if seed is None else seed + 301)
        )

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        z_src = self.lin_src(x).reshape(x.shape[0], self.heads, self.head_dim)
        z_dst = self.lin_dst(dst_rows(x, adj)).reshape(adj.num_dst, self.heads, self.head_dim)
        g_src = gather(adj, z_src, side="src")
        g_dst = gather(adj, z_dst, side="dst")
        combined = F.leaky_relu(g_src + g_dst, self.negative_slope)
        scores = (combined * self.att).sum(axis=2)
        alpha = segment_softmax(adj, scores)
        messages = g_src * alpha.reshape(adj.num_edges, self.heads, 1)
        out = scatter_add(adj, messages)
        return out.reshape(adj.num_dst, self.heads * self.head_dim)


class TAGConv(Module):
    """TAG layer via the fused path."""

    def __init__(self, in_features: int, out_features: int, k: int = 3,
                 bias: bool = True, seed: Optional[int] = None) -> None:
        super().__init__()
        if k < 0:
            raise ValueError("TAGConv k must be >= 0")
        self.k = k
        for i in range(k + 1):
            setattr(self, f"lin{i}", Linear(in_features, out_features,
                                            bias=(bias and i == 0),
                                            seed=None if seed is None else seed + i))

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        out = self.lin0(x)
        h = x
        for i in range(1, self.k + 1):
            h = spmm(adj_sl, h, weight=norm)
            out = out + getattr(self, f"lin{i}")(h)
        return out


class SGConv(Module):
    """SGC layer via the fused path."""

    def __init__(self, in_features: int, out_features: int, k: int = 2,
                 bias: bool = True, seed: Optional[int] = None) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("SGConv k must be >= 1")
        self.k = k
        self.linear = Linear(in_features, out_features, bias=bias, seed=seed)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        h = x
        for _ in range(self.k):
            h = spmm(adj_sl, h, weight=norm)
        return self.linear(h)


class APPNPConv(Module):
    """APPNP via the fused torch-sparse path (PyG provides one)."""

    def __init__(self, in_features: int, out_features: int, k: int = 10,
                 alpha: float = 0.1, seed: Optional[int] = None) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("APPNP k must be >= 1")
        if not (0.0 < alpha < 1.0):
            raise ValueError("APPNP alpha must be in (0, 1)")
        self.k = k
        self.alpha = alpha
        self.linear = Linear(in_features, out_features, seed=seed)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        adj_sl = with_self_loops(adj)
        norm = gcn_norm_weight(adj_sl)
        h = self.linear(x)
        z = h
        for _ in range(self.k):
            z = spmm(adj_sl, z, weight=norm) * (1.0 - self.alpha) + h * self.alpha
        return z


class GINConv(Module):
    """GIN — **unfused** in PyG (its MessagePassing default): gather/scatter."""

    def __init__(self, in_features: int, out_features: int,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.eps = Parameter(init.zeros((1,)))
        self.lin1 = Linear(in_features, out_features, seed=seed)
        self.lin2 = Linear(out_features, out_features,
                           seed=None if seed is None else seed + 1)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        messages = gather(adj, x, side="src")
        aggregated = scatter_add(adj, messages)
        combined = x * (self.eps + 1.0) + aggregated
        return self.lin2(F.relu(self.lin1(combined)))


class GraphConv(Module):
    """Plain sum-aggregation convolution via the fused path."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=bias, seed=seed)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        adj_sl = with_self_loops(adj)
        h = self.linear(x)
        return spmm(adj_sl, h)
