"""Structural validators for graphs and datasets.

The dataset builders and storage loader run these checks so malformed
graphs fail loudly at construction instead of corrupting experiments.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph


def validate_graph(graph: Graph, require_symmetric: bool = False) -> List[str]:
    """Run all structural checks; returns a list of problem descriptions.

    An empty list means the graph is well-formed.  ``require_symmetric``
    additionally checks that every edge has its reverse (our synthetic
    datasets are undirected).
    """
    problems: List[str] = []
    adj = graph.adj

    if adj.indptr[0] != 0 or adj.indptr[-1] != adj.indices.size:
        problems.append("CSR indptr endpoints inconsistent")
    if np.any(np.diff(adj.indptr) < 0):
        problems.append("CSR indptr not monotone")
    if adj.indices.size and (adj.indices.min() < 0
                             or adj.indices.max() >= graph.num_nodes):
        problems.append("neighbor index out of range")

    if graph.features.shape[0] != graph.num_nodes:
        problems.append("feature rows != num_nodes")
    if not np.isfinite(graph.features).all():
        problems.append("non-finite feature values")

    if graph.stats.multilabel:
        if graph.labels.ndim != 2:
            problems.append("multilabel graph with 1-D labels")
        elif not set(np.unique(graph.labels)) <= {0.0, 1.0}:
            problems.append("multilabel labels not binary")
    else:
        if graph.labels.ndim != 1:
            problems.append("single-label graph with 2-D labels")
        elif graph.labels.size and (graph.labels.min() < 0
                                    or graph.labels.max() >= graph.stats.num_classes):
            problems.append("label value outside class range")

    overlap = (graph.train_mask & graph.val_mask) | \
              (graph.train_mask & graph.test_mask) | \
              (graph.val_mask & graph.test_mask)
    if overlap.any():
        problems.append("split masks overlap")
    if not (graph.train_mask | graph.val_mask | graph.test_mask).all():
        problems.append("split masks do not cover all nodes")

    if graph.stats.logical_num_nodes < graph.num_nodes:
        problems.append("logical node count below actual (scale < 1)")
    if graph.stats.logical_num_edges < graph.num_edges:
        problems.append("logical edge count below actual (scale < 1)")

    if require_symmetric:
        coo = adj.to_coo()
        pairs = set(zip(coo.src.tolist(), coo.dst.tolist()))
        if any((d, s) not in pairs for s, d in pairs):
            problems.append("edge set is not symmetric")

    return problems


def assert_valid_graph(graph: Graph, require_symmetric: bool = False) -> None:
    """Raise GraphFormatError listing every failed check."""
    problems = validate_graph(graph, require_symmetric=require_symmetric)
    if problems:
        raise GraphFormatError(
            f"graph {graph.stats.name!r} failed validation: "
            + "; ".join(problems)
        )
