"""Ablation: accuracy vs. efficiency across the three GNNs.

The paper excludes accuracy (footnote 3) and notes only that hyperparameter
choices "would affect the efficiency in runtime and energy consumption
differently".  This bench adds the missing axis: train each GNN for the
same number of epochs on one dataset and report validation metric next to
simulated time and energy — the efficiency frontier a practitioner would
actually consult.
"""

from conftest import emit

from repro.bench import format_series
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.base import two_layer_net
from repro.models.evaluate import evaluate
from repro.models.trainer import MiniBatchTrainer, TrainConfig
from repro.power.monitor import EnergyMonitor

DATASET = "flickr"
EPOCHS = 5


def _run(model_kind: str):
    machine = paper_testbed()
    fw = get_framework("dglite")
    monitor = EnergyMonitor(machine, interval=0.1)
    monitor.start()
    fgraph = fw.load(DATASET, machine)
    if model_kind == "graphsage":
        sampler = fw.neighbor_sampler(fgraph, seed=0)
        net = two_layer_net(fw, "sage", fgraph.stats.num_features, 256,
                            fgraph.stats.num_classes, style="blocks",
                            dropout=0.0, seed=0)
    elif model_kind == "clustergcn":
        sampler = fw.cluster_sampler(fgraph, seed=0)
        net = two_layer_net(fw, "gcn", fgraph.stats.num_features, 256,
                            fgraph.stats.num_classes, style="subgraph",
                            dropout=0.0, seed=0)
    else:
        sampler = fw.saint_sampler(fgraph, seed=0)
        net = two_layer_net(fw, "gcn", fgraph.stats.num_features, 256,
                            fgraph.stats.num_classes, style="subgraph",
                            dropout=0.0, seed=0)
    config = TrainConfig(epochs=EPOCHS, placement="cpu",
                         representative_batches=6, lr=5e-3, dropout=0.0)
    result = MiniBatchTrainer(fw, fgraph, sampler, net, config).run()
    report = monitor.stop()
    metric = evaluate(fw, fgraph, net)
    return {
        "val_metric": metric.val,
        "total_s": result.total_time,
        "energy_kJ": report.total_energy / 1000.0,
        "loss_drop": result.losses[0] - result.losses[-1],
    }


def test_ablation_accuracy_frontier(once):
    results = once(lambda: {
        kind: _run(kind) for kind in ("graphsage", "clustergcn", "graphsaint")
    })

    emit("ablation_accuracy_frontier",
         format_series(f"Ablation: accuracy vs efficiency on {DATASET} "
                       f"({EPOCHS} epochs, DGLite-CPU)", results,
                       unit="mixed", precision=3))

    for kind, row in results.items():
        # every model learns something within the budget
        assert row["loss_drop"] > 0, kind
        assert row["val_metric"] > 0.3, kind

    # GraphSAINT is the efficiency king (Observation 5's energy point):
    # cheapest time and energy for the same epoch budget.
    times = {k: r["total_s"] for k, r in results.items()}
    energies = {k: r["energy_kJ"] for k, r in results.items()}
    assert min(times, key=times.get) == "graphsaint"
    assert min(energies, key=energies.get) == "graphsaint"
