"""Host <-> device interconnect: bulk DMA copies and UVA zero-copy reads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import DeviceError, InjectedFault
from repro.hardware.specs import LinkSpec
from repro.resilience import runtime as resilience
from repro.simtime import VirtualClock
from repro.telemetry import runtime as telemetry


@dataclass
class TransferCounters:
    transfers: int = 0
    bytes_h2d: float = 0.0
    bytes_d2h: float = 0.0
    bytes_uva: float = 0.0
    seconds: float = 0.0
    by_tag: Dict[str, float] = field(default_factory=dict)


class Interconnect:
    """Simulated PCIe link between host memory and device memory.

    Bulk copies (``h2d``/``d2h``) pay per-transfer latency plus bytes over
    DMA bandwidth — this is the "data movement" phase the paper breaks out.
    UVA zero-copy reads (``uva_read``) stream at the lower fine-grained
    bandwidth and are charged to the *GPU* busy time, because the GPU's
    copy engines stall on them during sampling (DGL-UVAGPU case study).
    """

    BUSY_KEY = "pcie"

    def __init__(self, spec: LinkSpec, clock: VirtualClock) -> None:
        self.spec = spec
        self.clock = clock
        self.counters = TransferCounters()

    def transfer_time(self, nbytes: float) -> float:
        """Duration of a bulk DMA copy of ``nbytes`` logical bytes."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return self.spec.latency + nbytes / self.spec.bandwidth

    def h2d(self, nbytes: float, tag: str = "h2d") -> float:
        """Copy host -> device; advances the clock.

        The ``transfer.h2d`` fault site: an armed ``stall`` holds the
        link for ``stall_seconds`` extra, an ``error`` (link hiccup /
        failed DMA) wastes ``severity`` of the copy before failing and
        retries under the site's recovery policy.
        """
        return self._dma("h2d", nbytes, tag)

    def d2h(self, nbytes: float, tag: str = "d2h") -> float:
        """Copy device -> host; advances the clock."""
        return self._dma("d2h", nbytes, tag)

    def _dma(self, direction: str, nbytes: float, tag: str) -> float:
        seconds = self.transfer_time(nbytes)

        def attempt() -> float:
            extra = 0.0
            fault = resilience.arm("transfer.h2d") if direction == "h2d" else None
            if fault is not None:
                injector = resilience.active()
                if fault.kind == "stall":
                    injector.record_injected("transfer.h2d", "stall")
                    self._charge(fault.stall_seconds, f"{tag}!stall")
                    injector.record_recovered("transfer.h2d", action="stall")
                    extra = fault.stall_seconds
                else:
                    wasted = seconds * fault.severity
                    if wasted > 0:
                        self._charge(wasted, f"{tag}!{fault.kind}")
                    injector.record_injected("transfer.h2d", fault.kind)
                    raise InjectedFault("transfer.h2d", fault.kind,
                                        injector.occurrence("transfer.h2d"))
            self._charge(seconds, tag)
            self.counters.transfers += 1
            if direction == "h2d":
                self.counters.bytes_h2d += nbytes
            else:
                self.counters.bytes_d2h += nbytes
            self._record_metrics(direction, tag, nbytes)
            return seconds + extra

        if direction != "h2d" or not resilience.enabled():
            return attempt()
        return resilience.with_retries("transfer.h2d", self.clock, attempt)

    def _charge(self, seconds: float, tag: str) -> None:
        """Hold the link busy: clock interval + link-seconds accounting."""
        self.clock.occupy(self.BUSY_KEY, seconds, tag=tag)
        self.counters.seconds += seconds
        self.counters.by_tag[tag] = self.counters.by_tag.get(tag, 0.0) + seconds

    def _record_metrics(self, direction: str, tag: str, nbytes: float) -> None:
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("pcie.bytes", direction=direction, tag=tag).inc(nbytes)
            registry.counter("pcie.transfers", direction=direction, tag=tag).inc()
            registry.histogram("pcie.transfer_bytes", direction=direction).observe(nbytes)

    def uva_read_time(self, nbytes: float) -> float:
        """Duration for the GPU to read ``nbytes`` from pinned host memory.

        Asking a non-UVA link is a configuration fault and raises
        :class:`~repro.errors.DeviceError` (like every other hardware
        misuse), so resilience callers can tell it apart from injected
        faults.  Zero-byte reads are free: no transaction is issued, so
        the per-read latency is not charged.
        """
        if nbytes < 0:
            raise ValueError("negative read size")
        if self.spec.uva_bandwidth <= 0:
            raise DeviceError(
                f"{self.spec.name} does not support UVA zero-copy")
        if nbytes == 0:
            return 0.0
        return self.spec.latency + nbytes / self.spec.uva_bandwidth

    def record_uva(self, nbytes: float) -> None:
        """Account UVA traffic (time is charged by the GPU kernel itself)."""
        self.counters.bytes_uva += nbytes
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("pcie.bytes", direction="uva", tag="uva").inc(nbytes)
