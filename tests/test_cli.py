"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loader", "--dataset", "cora"])

    def test_dataset_all_expands(self):
        args = build_parser().parse_args(["loader", "--dataset", "all"])
        assert len(args.dataset) == 6

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "graphsage"
        assert args.placement == "cpu"
        assert args.epochs == 10


class TestCommands:
    def test_datasets_prints_table1(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "reddit" in out
        assert "114,615,892" in out

    def test_loader(self, capsys):
        assert main(["loader", "--dataset", "ppi"]) == 0
        out = capsys.readouterr().out
        assert "ppi" in out and "s" in out

    def test_samplers(self, capsys):
        assert main(["samplers", "--dataset", "ppi", "--sampler", "saint_rw"]) == 0
        out = capsys.readouterr().out
        assert "saint_rw" in out and "x" in out

    def test_conv(self, capsys):
        assert main(["conv", "--dataset", "ppi", "--kind", "sage"]) == 0
        out = capsys.readouterr().out
        assert "sage" in out and "ms" in out

    def test_conv_reports_oom(self, capsys):
        assert main(["conv", "--dataset", "reddit", "--kind", "gat",
                     "--device", "gpu"]) == 0
        out = capsys.readouterr().out
        assert "OOM" in out

    def test_train(self, capsys):
        assert main(["train", "--dataset", "ppi", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "sampling" in out and "avg power" in out

    def test_train_with_cache(self, capsys):
        assert main(["train", "--dataset", "ppi", "--epochs", "1",
                     "--placement", "cpugpu", "--cache-fraction", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "cache50" in out

    def test_fullbatch(self, capsys):
        assert main(["fullbatch", "--dataset", "ppi", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "ms/epoch" in out


class TestSuiteCommand:
    def _suite_file(self, tmp_path):
        import json
        path = tmp_path / "suite.json"
        path.write_text(json.dumps([
            {"kind": "loader", "framework": "dglite", "dataset": "ppi"},
        ]))
        return path

    def test_runs_and_prints_records(self, tmp_path, capsys):
        assert main(["suite", str(self._suite_file(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "loader/dglite" in out

    def test_writes_results(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        assert main(["suite", str(self._suite_file(tmp_path)),
                     "--out", str(out_file)]) == 0
        assert out_file.exists()

    def test_compare_clean_run_exits_zero(self, tmp_path, capsys):
        suite = self._suite_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["suite", str(suite), "--out", str(baseline)])
        assert main(["suite", str(suite), "--compare", str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_flags_drift(self, tmp_path, capsys):
        import json
        suite = self._suite_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["suite", str(suite), "--out", str(baseline)])
        records = json.loads(baseline.read_text())
        records[0]["seconds"] *= 10
        baseline.write_text(json.dumps(records))
        assert main(["suite", str(suite), "--compare", str(baseline)]) == 1
        assert "regression" in capsys.readouterr().out


class TestReportCommand:
    def test_aggregates_result_tables(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig99_demo.txt").write_text("Figure 99: demo\ncells")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "fig99_demo" in out and "Figure 99" in out

    def test_writes_to_file(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "a.txt").write_text("table A")
        out_file = tmp_path / "report.txt"
        assert main(["report", "--results-dir", str(results),
                     "--out", str(out_file)]) == 0
        assert "table A" in out_file.read_text()

    def test_empty_results_dir_errors(self, tmp_path, capsys):
        empty = tmp_path / "none"
        empty.mkdir()
        assert main(["report", "--results-dir", str(empty)]) == 1


class TestResilienceCli:
    PLAN = {
        "seed": 0,
        "faults": [
            {"site": "storage.read", "kind": "error"},
            {"site": "transfer.h2d", "kind": "stall", "stall_seconds": 0.01},
        ],
    }

    def _write_plan(self, tmp_path):
        import json
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(self.PLAN))
        return path

    def test_train_with_fault_plan(self, tmp_path, capsys):
        plan = self._write_plan(tmp_path)
        assert main(["train", "--dataset", "ppi", "--epochs", "1",
                     "--placement", "cpugpu", "--faults", str(plan)]) == 0
        out = capsys.readouterr().out
        assert "faults: 2 injected, 2 recovered" in out

    def test_report_telemetry_shows_resilience_section(self, tmp_path,
                                                       capsys):
        plan = self._write_plan(tmp_path)
        out_dir = tmp_path / "telemetry"
        assert main(["train", "--dataset", "ppi", "--epochs", "1",
                     "--placement", "cpugpu", "--faults", str(plan),
                     "--telemetry", str(out_dir)]) == 0
        capsys.readouterr()
        assert main(["report", "--telemetry", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "resilience:" in out
        assert "storage.read" in out
        assert "transfer.h2d" in out

    def test_checkpoint_halt_and_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.npz"
        assert main(["train", "--dataset", "ppi", "--epochs", "3",
                     "--checkpoint-every", "1", "--checkpoint", str(ckpt),
                     "--halt-after", "2"]) == 0
        out = capsys.readouterr().out
        assert "halted after" in out
        assert ckpt.exists()
        assert main(["train", "--dataset", "ppi", "--epochs", "3",
                     "--resume-from", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "avg power" in out

    def test_missing_plan_file_fails_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "ppi", "--epochs", "1",
                  "--faults", "/nonexistent/plan.json"])
