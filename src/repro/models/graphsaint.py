"""GraphSAINT (Zeng et al. 2020) as benchmarked in the paper.

Two GCNConv layers over random-walk-sampled subgraphs: 3000 roots, walk
length 2.  The paper uses only the random-walk sampler (node/edge sampling
were shown inferior in the original work).
"""

from __future__ import annotations

from typing import Optional

from repro.frameworks.base import Framework, FrameworkGraph
from repro.models.base import two_layer_net
from repro.tensor.module import Module

NUM_ROOTS = 3000
WALK_LENGTH = 2
HIDDEN = 256


def build_graphsaint(framework: Framework, fgraph: FrameworkGraph,
                     hidden: int = HIDDEN, dropout: float = 0.5,
                     seed: int = 0) -> Module:
    """The paper's 2-layer GraphSAINT model for this dataset."""
    stats = fgraph.stats
    return two_layer_net(
        framework,
        "gcn",
        in_features=stats.num_features,
        hidden=hidden,
        out_features=stats.num_classes,
        style="subgraph",
        dropout=dropout,
        seed=seed,
    )


def graphsaint_sampler(framework: Framework, fgraph: FrameworkGraph,
                       num_roots: int = NUM_ROOTS, walk_length: int = WALK_LENGTH,
                       seed: Optional[int] = 0):
    """The paper's random-walk sampler configuration (3000 roots x 2 steps).

    ``seed`` defaults to 0 (deterministic); pass ``None`` for a
    nondeterministic RNG.
    """
    return framework.saint_sampler(
        fgraph, num_roots=num_roots, walk_length=walk_length, seed=seed
    )
