"""Figure 20: GPS-UP metrics of DGL-GPU and DGL-UVAGPU vs DGL-CPUGPU.

The paper: up to 5.5x Speedup, Greenup always > 1, Powerup not always > 1
(Reddit's huge neighbor lists make GPU sampling power-hungry).
"""

from conftest import DATASETS, EPOCHS, REPRESENTATIVE_BATCHES, emit

from repro.bench import format_series, run_training_experiment
from repro.metrics import gps_up


def test_fig20_gpsup(once):
    def run():
        out = {}
        for placement in ("cpugpu", "gpu", "uvagpu"):
            row = {}
            for ds in DATASETS:
                row[ds] = run_training_experiment(
                    "dglite", ds, "graphsage", placement=placement,
                    epochs=EPOCHS,
                    representative_batches=REPRESENTATIVE_BATCHES,
                )
            out[placement] = row
        return out

    grid = once(run)

    metrics = {}
    for placement, nick in (("gpu", "DGL-GPU"), ("uvagpu", "DGL-UVAGPU")):
        for ds in DATASETS:
            base = grid["cpugpu"][ds]
            opt = grid[placement][ds]
            metrics[(nick, ds)] = gps_up(base.total_time, base.total_energy,
                                         opt.total_time, opt.total_energy)

    for field in ("speedup", "powerup", "greenup"):
        series = {
            nick: {ds: getattr(metrics[(nick, ds)], field) for ds in DATASETS}
            for nick in ("DGL-GPU", "DGL-UVAGPU")
        }
        emit(f"fig20_{field}",
             format_series(f"Figure 20: {field} vs DGL-CPUGPU", series,
                           unit="x", precision=2))

    # Observation 8a: GPU sampling is always faster and always greener.
    for key, m in metrics.items():
        assert m.speedup > 1.0, key
        assert m.greenup > 1.0, key

    # Up to ~5x speedup somewhere.
    best = max(m.speedup for (nick, _), m in metrics.items() if nick == "DGL-GPU")
    assert best > 3.0, f"best DGL-GPU speedup only {best:.1f}x"

    # Observation 8b: DGL-UVAGPU is slightly slower than DGL-GPU
    # (zero-copy host reads vs onboard memory).
    for ds in DATASETS:
        assert (metrics[("DGL-UVAGPU", ds)].speedup
                <= metrics[("DGL-GPU", ds)].speedup * 1.05), ds

    # Observation 8c: GPU sampling can draw MORE average power than CPU
    # sampling (Powerup > 1), especially on graphs with huge per-node
    # neighbor lists — Reddit is among the most power-hungry cases.
    gpu_powerups = {ds: metrics[("DGL-GPU", ds)].powerup for ds in DATASETS}
    assert any(p > 1.0 for p in gpu_powerups.values())
    top2 = sorted(gpu_powerups, key=gpu_powerups.get, reverse=True)[:3]
    assert "reddit" in top2, gpu_powerups
