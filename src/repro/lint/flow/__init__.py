"""Whole-program dataflow analysis behind ``repro lint --deep``.

The flat rules in :mod:`repro.lint.rules` see one function at a time;
this package sees the program: a call graph with class/method resolution
(:mod:`callgraph`), per-function CFGs (:mod:`cfg`), syntactic facts
(:mod:`facts`) folded into interprocedural effect summaries
(:mod:`effects`) by a worklist fixpoint solver (:mod:`solver`), and five
rules over the result (:mod:`rules`): UNCHARGED-COST, RNG-FLOW,
STALE-CACHE, SPAN-FLOW, FAULT-SWALLOW, LANE-FLOW.

:func:`analyze` is the engine's entry point: it takes the FileContexts
the engine already parsed (satellite: one parse, shared everywhere) and
returns plain Findings, so suppressions/baselines/reports need no new
machinery.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.lint.engine import FileContext, Finding
from repro.lint.flow.callgraph import Program, build_program
from repro.lint.flow.effects import charged_context, compute_summaries
from repro.lint.flow.facts import build_facts
from repro.lint.flow.rules import (
    DEEP_RULES, AnalysisState, DeepRule, resolve_deep_rules,
)

__all__ = ["analyze", "build_state", "AnalysisState", "DeepRule",
           "DEEP_RULES", "resolve_deep_rules", "Program", "build_program"]


def build_state(contexts: Sequence[FileContext]) -> AnalysisState:
    """Parse-free whole-program model from already-parsed contexts."""
    program = build_program(contexts)
    facts = build_facts(program)
    summaries, rng_attrs = compute_summaries(program, facts)
    charged = charged_context(facts, summaries)
    return AnalysisState(program=program, facts=facts, summaries=summaries,
                         rng_attrs=rng_attrs, charged=charged)


def analyze(contexts: Sequence[FileContext],
            rules: Optional[Sequence[DeepRule]] = None) -> List[Finding]:
    """Run the deep rules over every context; raw (unsuppressed) findings."""
    if not contexts:
        return []
    state = build_state(contexts)
    active = list(rules) if rules is not None else list(DEEP_RULES.values())
    findings: List[Finding] = []
    for rule in active:
        findings.extend(rule.check(state))
    findings.sort(key=Finding.sort_key)
    return findings
