"""The ``pipeline=off|depth-N`` knob shared by trainer, CLI, and bench."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class PipelineConfig:
    """Parsed pipeline knob: ``depth == 0`` means the serial schedule."""

    depth: int = 0

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise BenchmarkError("pipeline depth must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.depth > 0

    def describe(self) -> str:
        return f"depth-{self.depth}" if self.enabled else "off"


def parse_pipeline(spec: str) -> PipelineConfig:
    """Parse ``"off"`` or ``"depth-N"`` (N >= 1) into a config."""
    if spec == "off":
        return PipelineConfig(0)
    if spec.startswith("depth-"):
        try:
            depth = int(spec[len("depth-"):])
        except ValueError:
            depth = 0
        if depth >= 1:
            return PipelineConfig(depth)
    raise BenchmarkError(
        f"unknown pipeline spec {spec!r}; expected 'off' or 'depth-N' (N >= 1)"
    )
