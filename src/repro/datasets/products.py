"""ogbn-products: Amazon product co-purchasing network (largest node count).

Table 1: 2,449,029 nodes / 61,859,140 edges / 100 features / 47 classes,
split 0.08 / 0.02 / 0.90.  The node count dominates every one-time cost
(loader, METIS partitioning); the 62M edges put it past the 48 GB VRAM
limit for PyG's unfused attention layers.
"""

from repro.datasets.base import DatasetSpec
from repro.graph.graph import Split

SPEC = DatasetSpec(
    name="ogbn-products",
    description="Amazon Product Co-purchasing Network",
    logical_num_nodes=2_449_029,
    logical_num_edges=61_859_140,
    num_features=100,
    num_classes=47,
    multilabel=False,
    split=Split(0.08, 0.02, 0.90),
    actual_num_nodes=5_000,
    actual_num_edges=62_000,
    num_communities=47,
    intra_prob=0.82,
    degree_exponent=2.05,
    in_dgl=False,
    in_pyg=False,
    seed=66,
)
