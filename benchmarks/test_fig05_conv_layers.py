"""Figure 5: one-forward-pass runtime of eight conv layers, CPU and GPU.

Output dimension fixed at 256 (paper setting).  'OOM' entries reproduce
PyG's out-of-memory failures for its unfused ChebConv/GATConv/GATv2Conv on
the largest graphs (48 GB VRAM / 64 GB host at paper scale).
"""

from conftest import DATASETS, FRAMEWORKS, emit

from repro.bench import format_series, measure_conv_forward

KINDS = ("gcn", "gcn2", "cheb", "sage", "gat", "gatv2", "tag", "sg")
PYG_UNFUSED = ("cheb", "gat", "gatv2")
BIG_GRAPHS = ("reddit", "ogbn-products")


def _cell(result):
    return "OOM" if result.oom else result.phases["forward"]


def test_fig05_conv_layers(once):
    def run():
        out = {}
        for device in ("cpu", "gpu"):
            for kind in KINDS:
                for fw in FRAMEWORKS:
                    row = {}
                    for ds in DATASETS:
                        row[ds] = _cell(measure_conv_forward(fw, ds, kind,
                                                             device=device))
                    out[f"{device}/{kind}/{fw}"] = row
        return out

    results = once(run)
    text = format_series("Figure 5: conv layer forward runtime (out_dim=256)",
                         results, unit="s", precision=5)
    emit("fig05_conv_layers", text)

    def val(device, kind, fw, ds):
        return results[f"{device}/{kind}/{fw}"][ds]

    # Observation 3a: all eight DGL layers beat PyG on CPU (where both run).
    for kind in KINDS:
        for ds in DATASETS:
            dgl, pyg = val("cpu", kind, "dglite", ds), val("cpu", kind, "pyglite", ds)
            if isinstance(pyg, str) or isinstance(dgl, str):
                continue
            assert dgl < pyg, ("cpu", kind, ds)

    # Observation 3b: on GPU, PyG wins only on small graphs; DGL wins on
    # the large ones.
    assert val("gpu", "gcn", "pyglite", "ppi") < val("gpu", "gcn", "dglite", "ppi")
    assert val("gpu", "gcn", "dglite", "reddit") < val("gpu", "gcn", "pyglite", "reddit")

    # Observation 3c: GPU gives order-of-magnitude speedups (up to ~70x).
    speedups = []
    for kind in KINDS:
        for ds in DATASETS:
            cpu, gpu = val("cpu", kind, "dglite", ds), val("gpu", kind, "dglite", ds)
            if not isinstance(cpu, str) and not isinstance(gpu, str):
                speedups.append(cpu / gpu)
    assert max(speedups) > 30, f"max GPU speedup only {max(speedups):.1f}x"

    # Observation 3d: PyG's unfused layers OOM on the largest graphs (GPU);
    # its fused layers never OOM; DGL never OOMs.
    for kind in PYG_UNFUSED:
        for ds in BIG_GRAPHS:
            assert val("gpu", kind, "pyglite", ds) == "OOM", (kind, ds)
    for kind in set(KINDS) - set(PYG_UNFUSED):
        for ds in DATASETS:
            assert val("gpu", kind, "pyglite", ds) != "OOM", (kind, ds)
    for kind in KINDS:
        for ds in DATASETS:
            assert val("gpu", kind, "dglite", ds) != "OOM", (kind, ds)

    # SAGEConv is relatively cheap (simple mean aggregation): cheaper than
    # the multi-hop and attention-MLP layers on the densest graph.
    sage = val("cpu", "sage", "dglite", "reddit")
    for kind in ("cheb", "gatv2", "tag"):
        assert sage < val("cpu", kind, "dglite", "reddit"), kind
