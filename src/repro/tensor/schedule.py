"""Training utilities: gradient clipping and learning-rate schedules.

Not part of the paper's measured pipelines (its models train at a fixed
Adam rate for 10 epochs) but standard equipment for a usable GNN library;
they compose with the trainer's optimizer without touching the cost model
(their arithmetic is O(parameters), charged like an optimizer step).
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.tensor.context import charge
from repro.tensor.optim import Optimizer
from repro.tensor.tensor import Tensor, no_grad


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (torch semantics).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total_sq = 0.0
    for p in params:
        # f64 accumulation keeps the global norm stable over many params.
        grad64 = p.grad.astype(np.float64)  # repro-lint: disable=DTYPE-DRIFT
        total_sq += float((grad64 ** 2).sum())
    total = math.sqrt(total_sq)
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        with no_grad():
            for p in params:
                p.grad = (p.grad * scale).astype(p.grad.dtype)
    device = next((p.device for p in params if p.device is not None), None)
    n = sum(p.grad.size for p in params)
    charge(device, "clip_grad_norm", "elementwise", flops=3 * n, bytes_moved=8 * n)
    return total


class LRScheduler:
    """Base class: mutates ``optimizer.lr`` on each ``step()``."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.compute_lr(self.epoch)
        return self.optimizer.lr

    def compute_lr(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10,
                 gamma: float = 0.5) -> None:
        if step_size < 1 or not (0 < gamma <= 1):
            raise ValueError("need step_size >= 1 and 0 < gamma <= 1")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRScheduler):
    """Cosine annealing from the base rate to ``min_lr`` over ``t_max``."""

    def __init__(self, optimizer: Optimizer, t_max: int = 50,
                 min_lr: float = 0.0) -> None:
        if t_max < 1 or min_lr < 0:
            raise ValueError("need t_max >= 1 and min_lr >= 0")
        super().__init__(optimizer)
        self.t_max = t_max
        self.min_lr = min_lr

    def compute_lr(self, epoch: int) -> float:
        progress = min(1.0, epoch / self.t_max)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLR(LRScheduler):
    """Linear warmup to the base rate over the first ``warmup`` epochs."""

    def __init__(self, optimizer: Optimizer, warmup: int = 5) -> None:
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        super().__init__(optimizer)
        self.warmup = warmup
        optimizer.lr = self.compute_lr(0)

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * min(1.0, (epoch + 1) / (self.warmup + 1))
