"""Tests for full-batch GraphSAGE training (Figures 22-24 workload)."""

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.fullbatch import FullBatchTrainer, build_fullbatch_sage


def make(framework="dglite", device="cpu", dataset="ppi"):
    fw = get_framework(framework)
    machine = paper_testbed()
    fgraph = fw.load(dataset, machine, scale=0.3)
    net = build_fullbatch_sage(fw, fgraph, hidden=16, seed=0)
    return FullBatchTrainer(fw, fgraph, net, device=device), machine


class TestSetup:
    def test_invalid_device_rejected(self):
        trainer, _ = make()
        with pytest.raises(BenchmarkError):
            FullBatchTrainer(trainer.framework, trainer.fgraph, trainer.model,
                             device="npu")

    def test_gpu_setup_charges_movement(self):
        trainer, machine = make(device="gpu")
        trainer.setup()
        assert trainer.profiler.seconds("data_movement") > 0
        assert machine.pcie.counters.bytes_h2d > 0

    def test_cpu_setup_moves_nothing(self):
        trainer, machine = make(device="cpu")
        trainer.setup()
        assert machine.pcie.counters.bytes_h2d == 0


class TestTraining:
    def test_losses_finite_and_decreasing(self):
        trainer, _ = make()
        losses = trainer.train_epochs(8)
        assert len(losses) == 8
        assert all(np.isfinite(losses))
        assert losses[-1] < losses[0]

    def test_training_phase_accumulates(self):
        trainer, _ = make()
        trainer.train_epochs(2)
        assert trainer.epoch_time() > 0

    def test_setup_is_implicit(self):
        trainer, _ = make()
        losses = trainer.train_epochs(1)  # no explicit setup()
        assert len(losses) == 1

    def test_multilabel_dataset_uses_bce(self):
        trainer, _ = make(dataset="ppi")
        from repro.tensor import functional as F
        assert trainer.loss_fn is F.binary_cross_entropy_with_logits


class TestPaperShapes:
    def test_gpu_epoch_faster_than_cpu(self):
        cpu, m_cpu = make(device="cpu")
        gpu, m_gpu = make(device="gpu")
        cpu.train_epochs(1)
        gpu.train_epochs(1)
        assert gpu.profiler.seconds("training") < cpu.profiler.seconds("training")

    def test_dgl_cpu_faster_than_pyg_cpu(self):
        """Observation from Figure 22 on the aggregation-heavy datasets."""
        dgl, _ = make(framework="dglite", device="cpu", dataset="reddit")
        pyg, _ = make(framework="pyglite", device="cpu", dataset="reddit")
        dgl.train_epochs(1)
        pyg.train_epochs(1)
        assert dgl.profiler.seconds("training") < pyg.profiler.seconds("training")
