"""Ablation: do the paper's conclusions survive on consumer hardware?

Repeats the key comparisons on a laptop-class testbed (8-core mobile CPU,
6 GB mobile GPU).  Framework orderings are hardware-independent (they come
from implementation quality), but memory-driven effects shift: with 6 GB
of VRAM, PyG's unfused layers OOM on *medium* graphs too, and even some
fused workloads stop fitting.
"""

import gc

from conftest import emit

from repro.bench import format_series
from repro.errors import OutOfMemoryError
from repro.frameworks import get_framework
from repro.hardware.machine import laptop_testbed, paper_testbed
from repro.kernels.transfer import adj_to_device, to_device
from repro.tensor.tensor import no_grad

DATASETS = ("ppi", "flickr", "yelp", "reddit")


def _conv(machine_factory, fw_name, dataset, kind, device):
    machine = machine_factory()
    fw = get_framework(fw_name)
    fgraph = fw.load(dataset, machine)
    try:
        with fw.activate(), no_grad():
            target = machine.device(device)
            adj = adj_to_device(fgraph.adj, target, machine.pcie)
            x = to_device(fgraph.features, target, machine.pcie)
            conv = fw.conv(kind, fgraph.stats.num_features, 256, seed=0)
            conv.to(target)
            start = machine.clock.now
            conv(adj, x)
            return machine.clock.now - start
    except OutOfMemoryError:
        return "OOM"
    finally:
        gc.collect()


def test_ablation_hardware_portability(once):
    def run():
        out = {}
        for hw_name, factory in (("server", paper_testbed),
                                 ("laptop", laptop_testbed)):
            for fw in ("dglite", "pyglite"):
                out[f"{hw_name}/gcn-cpu/{fw}"] = {
                    ds: _conv(factory, fw, ds, "gcn", "cpu") for ds in DATASETS
                }
                out[f"{hw_name}/gat-gpu/{fw}"] = {
                    ds: _conv(factory, fw, ds, "gat", "gpu") for ds in DATASETS
                }
        return out

    results = once(run)
    emit("ablation_hardware_portability",
         format_series("Ablation: server vs laptop testbed (conv forward)",
                       results, unit="s", precision=4))

    # Framework ordering is hardware-independent: DGL wins GCN on CPU on
    # both testbeds, on every dataset.
    for hw in ("server", "laptop"):
        for ds in DATASETS:
            dgl = results[f"{hw}/gcn-cpu/dglite"][ds]
            pyg = results[f"{hw}/gcn-cpu/pyglite"][ds]
            assert dgl < pyg, (hw, ds)

    # The laptop is slower in absolute terms.
    for ds in DATASETS:
        assert (results["laptop/gcn-cpu/dglite"][ds]
                > results["server/gcn-cpu/dglite"][ds]), ds

    # Memory effects shift with VRAM: on the server PyG's GAT fits yelp
    # (14 GiB < 48 GiB); on the 6 GiB laptop it OOMs.
    assert results["server/gat-gpu/pyglite"]["yelp"] != "OOM"
    assert results["laptop/gat-gpu/pyglite"]["yelp"] == "OOM"
    # Reddit's E x heads scores OOM even DGL's fused GAT at 6 GiB? No —
    # scores are small; DGL still fits everywhere on the laptop.
    for ds in DATASETS:
        value = results["laptop/gat-gpu/dglite"][ds]
        assert value != "OOM", ds
