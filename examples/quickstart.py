"""Quickstart: load a dataset, train GraphSAGE, read the paper-style report.

This walks the same path as the paper's core experiment (Figures 6-9):
build the simulated testbed, load a dataset into a framework, train a
2-layer GraphSAGE with neighborhood sampling, and print the four-phase
runtime breakdown plus power/energy — all on the virtual clock.

Run:  python examples/quickstart.py
"""

from repro.bench import run_training_experiment
from repro.profiling.profiler import PHASES


def main() -> None:
    print("Training GraphSAGE on PPI with both frameworks (10 epochs)...\n")

    results = []
    for framework in ("dglite", "pyglite"):
        for placement in ("cpu", "cpugpu"):
            result = run_training_experiment(
                framework=framework,
                dataset="ppi",
                model="graphsage",
                placement=placement,
                epochs=10,
                representative_batches=3,
            )
            results.append(result)

    header = (f"{'config':<14}{'total':>9}" +
              "".join(f"{p:>15}" for p in PHASES) +
              f"{'power':>9}{'energy':>10}")
    print(header)
    print("-" * len(header))
    for r in results:
        phases = "".join(
            f"{r.phases.get(p, 0.0):>9.2f}s {100 * r.phase_fraction(p):>3.0f}%"
            for p in PHASES
        )
        print(f"{r.label:<14}{r.total_time:>8.2f}s{phases}"
              f"{r.avg_power:>8.1f}W{r.total_energy:>9.1f}J")

    print("\nTraining losses (first -> last executed batch):")
    for r in results:
        print(f"  {r.label:<14}{r.losses[0]:.4f} -> {r.losses[-1]:.4f}")

    print("\nNotes:")
    print("  * All times/energies are simulated for the paper's testbed")
    print("    (dual Xeon 4114 + Quadro RTX 8000), not this machine.")
    print("  * 'sampling' dominating the breakdown is the paper's")
    print("    Observation 4; DGL beating PyG is Observation 5.")


if __name__ == "__main__":
    main()
