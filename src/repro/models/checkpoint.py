"""Model / optimizer checkpointing.

Saves and restores training state (model parameters, Adam moments, step
counter, RNG-free metadata) to a single ``.npz`` + JSON sidecar, so long
simulated runs can resume and trained models can ship to the evaluation
or inference stages in a separate process.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import ReproError
from repro.tensor.module import Module
from repro.tensor.optim import Adam, Optimizer
from repro.tensor.tensor import no_grad

_FORMAT_VERSION = 1


class CheckpointError(ReproError):
    """A checkpoint could not be written or restored."""


def _normalize_path(path: Union[str, Path]) -> Path:
    """The path ``np.savez`` actually writes: ``.npz`` appended if absent."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_checkpoint(path: Union[str, Path], model: Module,
                    optimizer: Optional[Optimizer] = None,
                    metadata: Optional[Dict] = None) -> Path:
    """Write model (and optionally optimizer) state to ``path``.

    ``path`` should end in ``.npz`` (the suffix is appended otherwise,
    matching what ``np.savez`` writes, and the *normalized* path is
    returned); a ``.json`` sidecar with metadata and the parameter
    manifest is written next to it.
    """
    path = _normalize_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {}
    manifest = {"params": [], "optimizer": None,
                "_format_version": _FORMAT_VERSION,
                "metadata": metadata or {}}
    for name, param in model.named_parameters():
        arrays[f"param::{name}"] = param.data
        manifest["params"].append(name)

    if optimizer is not None:
        if isinstance(optimizer, Adam):
            manifest["optimizer"] = {"type": "adam", "lr": optimizer.lr,
                                     "step": optimizer._step_count}
            for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
                if m is not None:
                    arrays[f"adam_m::{i}"] = m
                    arrays[f"adam_v::{i}"] = v
        else:
            manifest["optimizer"] = {"type": type(optimizer).__name__.lower(),
                                     "lr": optimizer.lr}

    np.savez(path, **arrays)
    sidecar = path.with_suffix(".json")
    sidecar.write_text(json.dumps(manifest, indent=2))
    return path


def load_checkpoint(path: Union[str, Path], model: Module,
                    optimizer: Optional[Optimizer] = None) -> Dict:
    """Restore state saved by :func:`save_checkpoint`; returns metadata."""
    path = _normalize_path(path)
    sidecar = path.with_suffix(".json")
    if not path.exists() or not sidecar.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    manifest = json.loads(sidecar.read_text())
    if manifest.get("_format_version") != _FORMAT_VERSION:
        raise CheckpointError("unsupported checkpoint format version")

    own = dict(model.named_parameters())
    saved = set(manifest["params"])
    if set(own) != saved:
        missing = sorted(set(own) - saved)
        unexpected = sorted(saved - set(own))
        raise CheckpointError(
            f"parameter mismatch: missing={missing}, unexpected={unexpected}"
        )
    with np.load(path) as arrays:
        with no_grad():
            for name, param in own.items():
                stored = arrays[f"param::{name}"]
                if stored.shape != param.data.shape:
                    raise CheckpointError(f"shape mismatch for {name}")
                param.data = stored.astype(param.data.dtype)

        if optimizer is not None and manifest.get("optimizer"):
            info = manifest["optimizer"]
            optimizer.lr = info["lr"]
            if isinstance(optimizer, Adam) and info["type"] == "adam":
                optimizer._step_count = info["step"]
                for i in range(len(optimizer.params)):
                    key = f"adam_m::{i}"
                    if key in arrays:
                        optimizer._m[i] = arrays[key].copy()
                        optimizer._v[i] = arrays[f"adam_v::{i}"].copy()
                    else:
                        # Saved before this parameter ever received a
                        # gradient: the moments were never allocated.
                        # Reset rather than keep whatever the target
                        # optimizer accumulated before the restore.
                        optimizer._m[i] = None
                        optimizer._v[i] = None
    return manifest.get("metadata", {})
