"""Ambient telemetry session: one tracer + one registry per activation.

Hot paths (kernels, transfers, samplers, the trainer) never hold a
reference to a session; they ask this module for the active registry or
tracer and skip instrumentation when telemetry is off.  The disabled
path is a single function call returning ``None``, which is what keeps
the documented <5% overhead budget trivially satisfiable when telemetry
is not requested.

Sessions stack (LIFO) so a nested activation — e.g. a unit test inside
an instrumented harness — shadows rather than clobbers the outer one.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import Callable, Iterator, List, Optional

from repro.simtime import VirtualClock
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer


class TelemetrySession:
    """One observed run: a span tracer and a metrics registry."""

    def __init__(self, clock: Optional[VirtualClock] = None,
                 wall_clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.tracer = SpanTracer(clock, wall_clock)
        self.metrics = MetricsRegistry()


_STACK: List[TelemetrySession] = []


def active() -> Optional[TelemetrySession]:
    """The innermost active session, or None when telemetry is off."""
    return _STACK[-1] if _STACK else None


def tracer() -> Optional[SpanTracer]:
    return _STACK[-1].tracer if _STACK else None


def metrics() -> Optional[MetricsRegistry]:
    return _STACK[-1].metrics if _STACK else None


def push_session(session: TelemetrySession) -> TelemetrySession:
    """Activate ``session`` (prefer the :func:`session` context manager)."""
    _STACK.append(session)
    return session


def pop_session(session: TelemetrySession) -> None:
    """Deactivate ``session`` (and anything stacked above it)."""
    while _STACK:
        if _STACK.pop() is session:
            return
    raise RuntimeError("pop_session: session was not active")


@contextmanager
def session(clock: Optional[VirtualClock] = None,
            wall_clock: Callable[[], float] = time.perf_counter,
            ) -> Iterator[TelemetrySession]:
    """Activate a fresh session for the duration of the block."""
    sess = TelemetrySession(clock, wall_clock)
    push_session(sess)
    try:
        yield sess
    finally:
        pop_session(sess)


def maybe_span(name: str, category: str = "", **attrs):
    """A span on the active tracer, or a no-op context when disabled."""
    if not _STACK:
        return nullcontext(None)
    return _STACK[-1].tracer.span(name, category, **attrs)
