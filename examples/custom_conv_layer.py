"""Extending the library: write a custom conv layer against the kernel API.

Implements a simple GIN-style layer (Xu et al., "How Powerful are GNNs")
twice — once in DGLite's fused style and once in PyGLite's gather/scatter
style — verifies they agree numerically, trains both on a dataset, and
shows how the framework profiles price the *same math* differently.

Run:  python examples/custom_conv_layer.py
"""

import numpy as np

from repro.frameworks import get_framework
from repro.frameworks.base import Framework
from repro.hardware import paper_testbed
from repro.kernels import SparseAdj, gather, scatter_add, spmm
from repro.tensor import Linear, Module, Parameter, Tensor, functional as F
from repro.tensor.tensor import no_grad


class FusedGINConv(Module):
    """GIN layer via one fused SpMM: h' = MLP((1 + eps) * h + sum_neigh h)."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        super().__init__()
        self.eps = Parameter(np.zeros(1, dtype=np.float32))
        self.lin1 = Linear(in_features, out_features, seed=seed)
        self.lin2 = Linear(out_features, out_features, seed=seed + 1)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        aggregated = spmm(adj, x)  # fused neighbor sum
        combined = x * (self.eps + 1.0) + aggregated
        return self.lin2(F.relu(self.lin1(combined)))


class ScatterGINConv(Module):
    """The same GIN layer via the unfused gather -> scatter pipeline."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        super().__init__()
        self.eps = Parameter(np.zeros(1, dtype=np.float32))
        self.lin1 = Linear(in_features, out_features, seed=seed)
        self.lin2 = Linear(out_features, out_features, seed=seed + 1)

    def forward(self, adj: SparseAdj, x: Tensor) -> Tensor:
        messages = gather(adj, x, side="src")  # materializes E x F
        aggregated = scatter_add(adj, messages)
        combined = x * (self.eps + 1.0) + aggregated
        return self.lin2(F.relu(self.lin1(combined)))


def time_forward(framework: Framework, layer_cls, dataset: str = "flickr") -> float:
    machine = paper_testbed()
    fgraph = framework.load(dataset, machine)
    layer = layer_cls(fgraph.stats.num_features, 64, seed=7)
    with framework.activate(), no_grad():
        start = machine.clock.now
        layer(fgraph.adj, fgraph.features)
        return machine.clock.now - start


def main() -> None:
    # 1. the two implementations are numerically identical
    rng = np.random.default_rng(0)
    adj = SparseAdj(rng.integers(0, 50, 400), rng.integers(0, 50, 400), 50, 50)
    x = Tensor(rng.random((50, 16)).astype(np.float32))
    fused_out = FusedGINConv(16, 8, seed=1)(adj, x)
    scatter_out = ScatterGINConv(16, 8, seed=1)(adj, x)
    max_diff = float(np.abs(fused_out.data - scatter_out.data).max())
    print(f"fused vs scatter GIN max |diff| = {max_diff:.2e}  (same math)\n")

    # 2. ...but the simulated machine prices the paths differently
    print(f"{'implementation':<22}{'DGLite profile':>16}{'PyGLite profile':>17}")
    print("-" * 55)
    for name, layer_cls in (("FusedGINConv", FusedGINConv),
                            ("ScatterGINConv", ScatterGINConv)):
        dgl_t = time_forward(get_framework("dglite"), layer_cls)
        pyg_t = time_forward(get_framework("pyglite"), layer_cls)
        print(f"{name:<22}{dgl_t * 1000:>14.2f}ms{pyg_t * 1000:>15.2f}ms")

    print("\nTakeaways:")
    print("  * The fused layer avoids the E x F message buffer entirely;")
    print("    the scatter layer pays for it in memory AND in the weak")
    print("    CPU scatter kernel (much worse under the PyGLite profile).")
    print("  * New layers compose from the kernel API (spmm / gather /")
    print("    scatter_add / sddmm / segment_softmax) and inherit the")
    print("    cost model automatically — no profiling code needed.")


if __name__ == "__main__":
    main()
