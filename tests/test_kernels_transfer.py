"""Tests for host <-> device movement charging."""

import numpy as np
import pytest

from repro.kernels.adj import SparseAdj
from repro.kernels.transfer import adj_to_device, graph_bytes, to_device
from repro.tensor.tensor import Tensor


class TestTensorTransfer:
    def test_h2d_charges_logical_bytes(self, machine):
        x = Tensor(np.ones((100, 10), dtype=np.float32), device=machine.cpu,
                   work_scale=8.0)
        before = machine.pcie.counters.bytes_h2d
        moved = to_device(x, machine.gpu, machine.pcie)
        assert moved.device is machine.gpu
        assert machine.pcie.counters.bytes_h2d - before == pytest.approx(
            x.nbytes * 8.0
        )

    def test_d2h_direction(self, machine):
        x = Tensor(np.ones((10, 10), dtype=np.float32), device=machine.gpu)
        to_device(x, machine.cpu, machine.pcie)
        assert machine.pcie.counters.bytes_d2h > 0
        assert machine.pcie.counters.bytes_h2d == 0

    def test_same_device_is_noop(self, machine):
        x = Tensor(np.ones(4, dtype=np.float32), device=machine.cpu)
        assert to_device(x, machine.cpu, machine.pcie) is x
        assert machine.clock.now == 0.0

    def test_without_link_no_charge(self, machine):
        x = Tensor(np.ones(4, dtype=np.float32), device=machine.cpu)
        moved = to_device(x, machine.gpu)
        assert moved.device is machine.gpu
        assert machine.pcie.counters.bytes_h2d == 0

    def test_moved_tensor_registers_target_memory(self, machine):
        x = Tensor(np.ones((50, 50), dtype=np.float32), device=machine.cpu,
                   work_scale=2.0)
        before = machine.gpu.memory.in_use
        moved = to_device(x, machine.gpu, machine.pcie)  # hold the reference
        assert machine.gpu.memory.in_use - before >= x.nbytes * 2
        del moved  # finalizer releases the GPU allocation
        assert machine.gpu.memory.in_use == before

    def test_work_scale_preserved(self, machine):
        x = Tensor(np.ones(4, dtype=np.float32), device=machine.cpu, work_scale=5.0)
        assert to_device(x, machine.gpu).work_scale == 5.0


class TestAdjTransfer:
    def test_structure_bytes_charged(self, machine):
        adj = SparseAdj(np.array([0, 1]), np.array([1, 0]), 2, 2,
                        device=machine.cpu, edge_scale=100.0, node_scale=50.0)
        before = machine.pcie.counters.bytes_h2d
        placed = adj_to_device(adj, machine.gpu, machine.pcie)
        assert placed.device is machine.gpu
        assert machine.pcie.counters.bytes_h2d - before == pytest.approx(
            graph_bytes(adj)
        )

    def test_noop_when_already_there(self, machine):
        adj = SparseAdj(np.array([0]), np.array([0]), 1, 1, device=machine.gpu)
        assert adj_to_device(adj, machine.gpu, machine.pcie) is adj
