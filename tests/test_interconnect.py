"""Tests for the PCIe interconnect model."""

import pytest

from repro.errors import DeviceError
from repro.hardware.interconnect import Interconnect
from repro.hardware.specs import LinkSpec, PAPER_PCIE
from repro.simtime import VirtualClock


@pytest.fixture
def link():
    return Interconnect(PAPER_PCIE, VirtualClock())


class TestTransfers:
    def test_transfer_time_is_latency_plus_bandwidth(self, link):
        nbytes = PAPER_PCIE.bandwidth  # one second of payload
        assert link.transfer_time(nbytes) == pytest.approx(1.0 + PAPER_PCIE.latency)

    def test_h2d_advances_clock_and_counts(self, link):
        seconds = link.h2d(1e9, tag="features")
        assert link.clock.now == pytest.approx(seconds)
        assert link.counters.bytes_h2d == pytest.approx(1e9)
        assert link.counters.transfers == 1
        assert link.counters.by_tag["features"] == pytest.approx(seconds)

    def test_d2h_counts_separately(self, link):
        link.d2h(5e8)
        assert link.counters.bytes_d2h == pytest.approx(5e8)
        assert link.counters.bytes_h2d == 0.0

    def test_negative_size_rejected(self, link):
        with pytest.raises(ValueError):
            link.transfer_time(-1.0)

    def test_busy_interval_attributed_to_pcie(self, link):
        link.h2d(1e9)
        assert link.clock.busy_time(Interconnect.BUSY_KEY) > 0


class TestUva:
    def test_uva_read_slower_than_dma(self, link):
        nbytes = 1e9
        assert link.uva_read_time(nbytes) > link.transfer_time(nbytes)

    def test_uva_traffic_recorded_without_time(self, link):
        link.record_uva(1e6)
        assert link.counters.bytes_uva == pytest.approx(1e6)
        assert link.clock.now == 0.0

    def test_uva_unsupported_link_raises_device_error(self):
        spec = LinkSpec("nouva", bandwidth=1e9, latency=1e-6, uva_bandwidth=0.0)
        link = Interconnect(spec, VirtualClock())
        with pytest.raises(DeviceError):
            link.uva_read_time(100)
        # Configuration misuse, even for a free (zero-byte) read.
        with pytest.raises(DeviceError):
            link.uva_read_time(0)

    def test_uva_zero_byte_read_is_free(self, link):
        assert link.uva_read_time(0) == 0.0
        assert link.uva_read_time(1) > 0.0

    def test_uva_negative_read_raises(self, link):
        with pytest.raises(ValueError):
            link.uva_read_time(-1)
