"""Full-batch GraphSAGE training (Figures 22-24).

A two-layer mean-aggregator GraphSAGE trained on the *entire* graph, no
sampling.  The paper reports one-epoch runtime, power, and energy on CPU
and GPU for both frameworks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import BenchmarkError
from repro.frameworks.base import Framework, FrameworkGraph
from repro.kernels.adj import SparseAdj
from repro.kernels.transfer import adj_to_device, to_device
from repro.models.base import make_loss, two_layer_net
from repro.profiling.profiler import PhaseProfiler
from repro.tensor.module import Module
from repro.tensor.optim import Adam
from repro.tensor.tensor import Tensor


def build_fullbatch_sage(framework: Framework, fgraph: FrameworkGraph,
                         hidden: int = 256, dropout: float = 0.5,
                         seed: int = 0) -> Module:
    """Two-layer mean-aggregator GraphSAGE over the full graph."""
    stats = fgraph.stats
    return two_layer_net(
        framework,
        "sage",
        in_features=stats.num_features,
        hidden=hidden,
        out_features=stats.num_classes,
        style="subgraph",  # one square adjacency reused by both layers
        dropout=dropout,
        seed=seed,
    )


class FullBatchTrainer:
    """Full-graph gradient descent on CPU or GPU."""

    def __init__(
        self,
        framework: Framework,
        fgraph: FrameworkGraph,
        model: Module,
        device: str = "cpu",
        lr: float = 1e-3,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        if device not in ("cpu", "gpu"):
            raise BenchmarkError("full-batch device must be 'cpu' or 'gpu'")
        self.framework = framework
        self.fgraph = fgraph
        self.model = model
        self.device_key = device
        self.machine = fgraph.machine
        self.profiler = profiler or PhaseProfiler(self.machine.clock)
        self.loss_fn = make_loss(fgraph.stats.multilabel)
        self.lr = lr
        self._prepared = False
        self._adj: Optional[SparseAdj] = None
        self._x: Optional[Tensor] = None

    def setup(self) -> None:
        """Place the graph, features, and model on the training device."""
        machine = self.machine
        device = machine.device(self.device_key)
        with self.profiler.phase("data_movement"), self.framework.activate():
            self._adj = adj_to_device(self.fgraph.adj, device, machine.pcie,
                                      tag="fullbatch-graph")
            self._x = to_device(self.fgraph.features, device, machine.pcie,
                                tag="fullbatch-features")
            self.model.to(device, link=machine.pcie if device.kind == "gpu" else None)
        self.optimizer = Adam(self.model.parameters(), lr=self.lr)
        self._prepared = True

    def train_epochs(self, epochs: int = 1) -> List[float]:
        """Run full-batch epochs; returns the per-epoch training loss."""
        if not self._prepared:
            self.setup()
        graph = self.fgraph.graph
        train_rows = graph.train_nodes()
        losses: List[float] = []
        for _ in range(epochs):
            self.model.train()
            self.optimizer.zero_grad()
            with self.profiler.phase("training"), self.framework.activate():
                logits = self.model(self._adj, self._x)
                loss = self.loss_fn(logits[train_rows], graph.labels[train_rows])
                loss.backward()
                self.optimizer.step()
            losses.append(loss.item())
        return losses

    def epoch_time(self) -> float:
        """Average training seconds per epoch so far."""
        return self.profiler.seconds("training")
