"""Tests for the ``repro lint --deep`` interprocedural dataflow pass.

Mirrors ``tests/test_lint.py``: each deep rule gets true-positive and
true-negative fixtures written into a synthetic ``repro.*`` tree, plus
unit coverage for the whole-program plumbing (call graph, method
resolution, CFG, worklist solver) and round-trips through the shared
suppression/baseline/report machinery.  The meta-test at the bottom pins
the acceptance criterion: the real tree is deep-clean with an empty
baseline, within the wall-clock budget.
"""

from __future__ import annotations

import ast
import textwrap
import time
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import lint_paths, load_baseline, save_baseline
from repro.lint.engine import load_context, split_selection
from repro.lint.flow import DEEP_RULES, analyze, build_state, resolve_deep_rules
from repro.lint.flow.callgraph import build_program
from repro.lint.flow.cfg import ENTRY, EXIT, build_cfg, reach_forward
from repro.lint.flow.solver import MAX_VISITS_PER_NODE, fixpoint
from repro.lint.reporting import to_json_payload

REPO_ROOT = Path(__file__).resolve().parents[1]

DEEP_RULE_NAMES = {"UNCHARGED-COST", "RNG-FLOW", "STALE-CACHE",
                   "SPAN-FLOW", "FAULT-SWALLOW", "LANE-FLOW"}


def write_module(tmp_path: Path, rel: str, source: str) -> Path:
    """Write ``source`` at ``tmp_path/rel`` with an ``__init__.py`` chain."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    walk = target.parent
    while walk != tmp_path.parent and walk != walk.parent:
        if walk == tmp_path:
            break
        (walk / "__init__.py").touch()
        walk = walk.parent
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


def deep_findings(tmp_path: Path, files, select=None):
    """Write a fixture tree, run the deep pass, return deep findings only."""
    for rel, source in files.items():
        write_module(tmp_path, rel, source)
    result = lint_paths([str(tmp_path)], select=select, deep=True)
    return [f for f in result.findings if f.rule in DEEP_RULE_NAMES]


def contexts_for(tmp_path: Path, files):
    ctxs = []
    for rel, source in files.items():
        path = write_module(tmp_path, rel, source)
        ctx, error = load_context(path)
        assert error is None, error
        ctxs.append(ctx)
    return ctxs


# ---------------------------------------------------------------------------
# registry / selection


def test_deep_registry():
    assert set(DEEP_RULES) == DEEP_RULE_NAMES
    for rule in DEEP_RULES.values():
        assert rule.severity in ("error", "warning")
        assert rule.description


def test_resolve_deep_rules_select_and_unknown():
    assert [r.name for r in resolve_deep_rules(["rng-flow"])] == ["RNG-FLOW"]
    with pytest.raises(KeyError):
        resolve_deep_rules(["NOPE"])


def test_split_selection_deep_rules_require_deep_flag():
    flat, deep = split_selection(["HOTLOOP", "SPAN-FLOW"], deep=True)
    assert [r.name for r in flat] == ["HOTLOOP"]
    assert [r.name for r in deep] == ["SPAN-FLOW"]
    with pytest.raises(KeyError, match="interprocedural"):
        split_selection(["SPAN-FLOW"], deep=False)
    with pytest.raises(KeyError, match="unknown rule"):
        split_selection(["NO-SUCH-RULE"], deep=True)


# ---------------------------------------------------------------------------
# worklist solver


def test_fixpoint_chain_propagates():
    # c depends on b depends on a; a is seeded True.
    deps = {"b": ["a"], "c": ["b"]}

    def transfer(node, state):
        if node == "a":
            return True
        return any(state.get(d, False) for d in deps.get(node, ()))

    state = fixpoint(["a", "b", "c"], deps, transfer, lambda n: False)
    assert state == {"a": True, "b": True, "c": True}


def test_fixpoint_cycle_converges():
    # a <-> b mutual recursion, c feeds the cycle.
    deps = {"a": ["b", "c"], "b": ["a"]}

    def transfer(node, state):
        if node == "c":
            return 1
        return max([state.get(d, 0) for d in deps.get(node, ())] + [0])

    state = fixpoint(["a", "b", "c"], deps, transfer, lambda n: 0)
    assert state == {"a": 1, "b": 1, "c": 1}


def test_fixpoint_nonmonotone_transfer_terminates():
    # An oscillating (buggy) transfer must hit the visit cap, not hang.
    calls = {"n": 0}

    def transfer(node, state):
        calls["n"] += 1
        return calls["n"] % 2  # flips every visit

    state = fixpoint(["a"], {"a": ["a"]}, transfer, lambda n: 0)
    assert "a" in state
    assert calls["n"] <= MAX_VISITS_PER_NODE + 1


def test_fixpoint_unknown_dependency_ignored():
    state = fixpoint(["a"], {"a": ["ghost"]},
                     lambda n, s: s.get("ghost", "bottom"), lambda n: "bottom")
    assert state == {"a": "bottom"}


# ---------------------------------------------------------------------------
# CFG + forward may-analysis


def _fn(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    return tree.body[0]


def test_cfg_if_branches_rejoin():
    cfg = build_cfg(_fn("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
    """))
    # both assignment nodes reach the return node
    ret = next(n for n, s in cfg.stmt_of.items() if isinstance(s, ast.Return))
    assert len(cfg.pred[ret]) == 2
    assert EXIT in cfg.succ[ret]


def test_cfg_empty_body_links_entry_to_exit():
    cfg = build_cfg(_fn("def f():\n    ..."))
    # Ellipsis statement: ENTRY -> stmt -> EXIT
    assert any(EXIT in cfg.succ[n] for n in cfg.succ)


def test_reach_forward_kill_on_one_branch():
    cfg = build_cfg(_fn("""
        def f(x):
            dirty = 1
            if x:
                dirty = 0
            return dirty
    """))
    nodes = {type(s).__name__: n for n, s in cfg.stmt_of.items()}
    gen, kill = {}, {}
    for n, stmt in cfg.stmt_of.items():
        if isinstance(stmt, ast.Assign):
            if stmt.value.value == 1:
                gen[n] = frozenset({"d"})
            else:
                kill[n] = frozenset({"d"})
    in_sets = reach_forward(cfg, gen, kill)
    # the fact may reach EXIT via the branch that skipped the kill
    assert "d" in in_sets[EXIT]
    # but it is gone just after the killing assignment
    killing = next(n for n in kill)
    out_of_killing = in_sets[EXIT]  # may-union, so check the return instead
    ret = next(n for n, s in cfg.stmt_of.items() if isinstance(s, ast.Return))
    assert "d" in in_sets[ret]


def test_reach_forward_loop_back_edge():
    cfg = build_cfg(_fn("""
        def f(xs):
            for x in xs:
                dirty = 1
            return 0
    """))
    gen = {n: frozenset({"d"}) for n, s in cfg.stmt_of.items()
           if isinstance(s, ast.Assign)}
    in_sets = reach_forward(cfg, gen, {})
    assert "d" in in_sets[EXIT]


# ---------------------------------------------------------------------------
# call graph / method resolution


CALLGRAPH_FILES = {
    "repro/pkg/base.py": """
        class Base:
            def greet(self):
                return self.name()

            def name(self):
                return "base"
    """,
    "repro/pkg/sub.py": """
        from repro.pkg.base import Base

        class Sub(Base):
            def name(self):
                return "sub"

        def run(obj: Sub):
            return obj.greet()

        def make():
            return Sub()

        def outer():
            def inner():
                return 1
            return inner()
    """,
}


def test_program_qualnames_and_nesting(tmp_path):
    program = build_program(contexts_for(tmp_path, CALLGRAPH_FILES))
    names = set(program.functions)
    assert "repro.pkg.base:Base.greet" in names
    assert "repro.pkg.sub:Sub.name" in names
    assert "repro.pkg.sub:run" in names
    assert "repro.pkg.sub:outer.<locals>.inner" in names


def test_method_resolution_through_inheritance(tmp_path):
    program = build_program(contexts_for(tmp_path, CALLGRAPH_FILES))
    # Sub inherits greet from Base; name resolves to the override first.
    assert program.lookup_method("repro.pkg.sub:Sub", "greet") \
        == "repro.pkg.base:Base.greet"
    assert program.lookup_method("repro.pkg.sub:Sub", "name") \
        == "repro.pkg.sub:Sub.name"


def test_typed_receiver_call_resolution(tmp_path):
    program = build_program(contexts_for(tmp_path, CALLGRAPH_FILES))
    run = program.functions["repro.pkg.sub:run"]
    call = next(n for n in ast.walk(run.node) if isinstance(n, ast.Call))
    callees = program.resolve_call(run, {"obj": "repro.pkg.sub:Sub"}, call)
    assert "repro.pkg.base:Base.greet" in callees


def test_constructor_call_resolves_to_init_or_class(tmp_path):
    files = dict(CALLGRAPH_FILES)
    files["repro/pkg/ctor.py"] = """
        class Thing:
            def __init__(self, n):
                self.n = n

        def build():
            return Thing(3)
    """
    program = build_program(contexts_for(tmp_path, files))
    build = program.functions["repro.pkg.ctor:build"]
    call = next(n for n in ast.walk(build.node) if isinstance(n, ast.Call))
    callees = program.resolve_call(build, {}, call)
    assert "repro.pkg.ctor:Thing.__init__" in callees


def test_imported_name_resolution(tmp_path):
    files = {
        "repro/pkg/util.py": """
            def helper():
                return 1
        """,
        "repro/pkg/use.py": """
            from repro.pkg.util import helper

            def caller():
                return helper()
        """,
    }
    program = build_program(contexts_for(tmp_path, files))
    caller = program.functions["repro.pkg.use:caller"]
    call = next(n for n in ast.walk(caller.node) if isinstance(n, ast.Call))
    assert "repro.pkg.util:helper" in program.resolve_call(caller, {}, call)


# ---------------------------------------------------------------------------
# UNCHARGED-COST


def test_uncharged_cost_tp(tmp_path):
    findings = deep_findings(tmp_path, {"repro/kernels/mm.py": """
        def spmm(a, b):
            return a @ b
    """}, select=["UNCHARGED-COST"])
    assert [f.rule for f in findings] == ["UNCHARGED-COST"]
    assert "spmm" in findings[0].message


def test_uncharged_cost_tn_direct_charge(tmp_path):
    findings = deep_findings(tmp_path, {"repro/kernels/mm.py": """
        def spmm(a, b, clock):
            out = a @ b
            clock.occupy(out.size)
            return out
    """}, select=["UNCHARGED-COST"])
    assert findings == []


def test_uncharged_cost_tn_charge_via_callee(tmp_path):
    findings = deep_findings(tmp_path, {"repro/kernels/mm.py": """
        def charge(clock, n):
            clock.occupy(n)

        def spmm(a, b, clock):
            out = a @ b
            charge(clock, out.size)
            return out
    """}, select=["UNCHARGED-COST"])
    assert findings == []


def test_uncharged_cost_tn_charged_caller_context(tmp_path):
    # helper does the raw work; its only caller charges -> clean.
    findings = deep_findings(tmp_path, {"repro/kernels/mm.py": """
        def _inner(a, b):
            return a @ b

        def spmm(a, b, clock):
            out = _inner(a, b)
            clock.occupy(out.size)
            return out
    """}, select=["UNCHARGED-COST"])
    assert findings == []


def test_uncharged_cost_tn_outside_costed_packages(tmp_path):
    findings = deep_findings(tmp_path, {"repro/viz/plot.py": """
        def project(a, b):
            return a @ b
    """}, select=["UNCHARGED-COST"])
    assert findings == []


def test_uncharged_cost_einsum_and_scatter(tmp_path):
    findings = deep_findings(tmp_path, {"repro/hardware/ein.py": """
        import numpy as np

        def contract(a, b):
            return np.einsum("ij,jk->ik", a, b)

        def scatter(out, idx, vals):
            np.add.at(out, idx, vals)
    """}, select=["UNCHARGED-COST"])
    assert sorted(f.line for f in findings) == [5, 8]


# ---------------------------------------------------------------------------
# RNG-FLOW


def test_rng_flow_tp_returned_generator(tmp_path):
    findings = deep_findings(tmp_path, {"repro/sampling/rng.py": """
        import numpy as np

        def fresh():
            return np.random.default_rng()

        def sample(xs):
            rng = fresh()
            return rng.choice(xs)
    """}, select=["RNG-FLOW"])
    assert [f.rule for f in findings] == ["RNG-FLOW"]
    assert "fresh" in findings[0].message


def test_rng_flow_tn_seeded(tmp_path):
    findings = deep_findings(tmp_path, {"repro/sampling/rng.py": """
        import numpy as np

        def fresh(seed):
            return np.random.default_rng(seed)

        def sample(xs, seed):
            rng = fresh(seed)
            return rng.choice(xs)
    """}, select=["RNG-FLOW"])
    assert findings == []


def test_rng_flow_tp_attribute_taint_across_methods(tmp_path):
    findings = deep_findings(tmp_path, {"repro/sampling/s.py": """
        import numpy as np

        class Sampler:
            def __init__(self):
                self.rng = np.random.default_rng()

            def draw(self, xs):
                return self.rng.choice(xs)
    """}, select=["RNG-FLOW"])
    assert len(findings) == 1
    assert findings[0].rule == "RNG-FLOW"
    assert "self.rng" in findings[0].message


def test_rng_flow_tn_seeded_attribute(tmp_path):
    findings = deep_findings(tmp_path, {"repro/sampling/s.py": """
        import numpy as np

        class Sampler:
            def __init__(self, seed):
                self.rng = np.random.default_rng(seed)

            def draw(self, xs):
                return self.rng.choice(xs)
    """}, select=["RNG-FLOW"])
    assert findings == []


# ---------------------------------------------------------------------------
# STALE-CACHE


ADJ_PREAMBLE = """
    class Adj:
        def __init__(self, mat):
            self._mat = mat
            self._mat_t = None
            self._default_data = mat.data

        def _transpose(self):
            if self._mat_t is None:
                self._mat_t = self._mat.T
            return self._mat_t
"""


def test_stale_cache_tp_read_after_mutate(tmp_path):
    findings = deep_findings(tmp_path, {"repro/kernels/a.py": ADJ_PREAMBLE + """
        def bad(self, data):
            self._mat.data = data
            t = self._transpose()
            self._mat.data = self._default_data
            return t
    """}, select=["STALE-CACHE"])
    assert len(findings) == 1
    assert "derived cache" in findings[0].message


def test_stale_cache_tp_exit_dirty(tmp_path):
    findings = deep_findings(tmp_path, {"repro/kernels/a.py": ADJ_PREAMBLE + """
        def bad(self, data):
            self._mat.data = data
            return self._mat.sum()
    """}, select=["STALE-CACHE"])
    assert len(findings) == 1
    assert "exit without restoring" in findings[0].message


def test_stale_cache_tn_restore_in_finally(tmp_path):
    findings = deep_findings(tmp_path, {"repro/kernels/a.py": ADJ_PREAMBLE + """
        def good(self, data):
            self._mat.data = data
            try:
                return self._mat.sum()
            finally:
                self._mat.data = self._default_data
    """}, select=["STALE-CACHE"])
    assert findings == []


def test_stale_cache_tn_invalidate_before_read(tmp_path):
    findings = deep_findings(tmp_path, {"repro/kernels/a.py": ADJ_PREAMBLE + """
        def good(self, data):
            self._mat.data = data
            self._mat_t = None
            t = self._transpose()
            self._mat.data = self._default_data
            return t
    """}, select=["STALE-CACHE"])
    assert findings == []


def test_stale_cache_tn_tensor_data_is_not_a_csr_buffer(tmp_path):
    # Optimizer-style `p.data = ...` rebinds a Tensor buffer, not the
    # adjacency's CSR arrays — must not fire.
    findings = deep_findings(tmp_path, {"repro/tensor/opt.py": """
        def step(params, lr):
            for p in params:
                p.data = p.data - lr * p.grad
    """}, select=["STALE-CACHE"])
    assert findings == []


def test_stale_cache_alias_of_transpose(tmp_path):
    findings = deep_findings(tmp_path, {"repro/kernels/a.py": ADJ_PREAMBLE + """
        def bad(self, data_t):
            mat_t = self._transpose()
            mat_t.data = data_t
            return self._mat
    """}, select=["STALE-CACHE"])
    assert len(findings) == 1
    assert "'self'" in findings[0].message


# ---------------------------------------------------------------------------
# SPAN-FLOW


SPAN_PREAMBLE = """
    def start_span(name):
        return object()

    def open_wrapper(name):
        return start_span(name)
"""


def test_span_flow_tp_leak_on_one_path(tmp_path):
    findings = deep_findings(
        tmp_path, {"repro/telemetry/w.py": SPAN_PREAMBLE + """
        def leaky(name, flag):
            span = open_wrapper(name)
            if flag:
                return None
            span.end()
    """}, select=["SPAN-FLOW"])
    assert len(findings) == 1
    assert "open_wrapper" in findings[0].message


def test_span_flow_tp_discarded_result(tmp_path):
    findings = deep_findings(
        tmp_path, {"repro/telemetry/w.py": SPAN_PREAMBLE + """
        def fire_and_forget(name):
            open_wrapper(name)
    """}, select=["SPAN-FLOW"])
    assert len(findings) == 1
    assert "discards" in findings[0].message


def test_span_flow_tn_ended_on_all_paths(tmp_path):
    findings = deep_findings(
        tmp_path, {"repro/telemetry/w.py": SPAN_PREAMBLE + """
        def clean(name, flag):
            span = open_wrapper(name)
            try:
                if flag:
                    return 1
                return 2
            finally:
                span.end()
    """}, select=["SPAN-FLOW"])
    assert findings == []


def test_span_flow_tn_handed_off(tmp_path):
    findings = deep_findings(
        tmp_path, {"repro/telemetry/w.py": SPAN_PREAMBLE + """
        def handoff(name):
            span = open_wrapper(name)
            return span
    """}, select=["SPAN-FLOW"])
    assert findings == []


def test_span_flow_interprocedural_wrapper_outside_telemetry(tmp_path):
    # the wrapper lives in telemetry; the leaky caller does not — the
    # open-span summary must cross the module boundary.
    findings = deep_findings(tmp_path, {
        "repro/telemetry/w.py": SPAN_PREAMBLE,
        "repro/train/loop.py": """
            from repro.telemetry.w import open_wrapper

            def leaky(name, flag):
                span = open_wrapper(name)
                if flag:
                    return None
                span.end()
        """,
    }, select=["SPAN-FLOW"])
    assert len(findings) == 1
    assert findings[0].path.endswith("loop.py")


# ---------------------------------------------------------------------------
# LANE-FLOW


LANE_PREAMBLE = """
    from repro.datapipe.pipeline import Stage

    def quiet_stage(index, payload):
        return payload
"""


def test_lane_flow_tp_named_fn_direct_escape(tmp_path):
    findings = deep_findings(tmp_path, {"repro/train/t.py": LANE_PREAMBLE + """
        def rogue_stage(index, payload):
            clock = payload.clock
            clock.occupy_parallel({"cpu": 1.0}, backfill=True)
            return payload

        def build(clock):
            return [Stage("fetch", "sampling", fn=rogue_stage,
                          lanes=("fetch",))]
    """}, select=["LANE-FLOW"])
    assert len(findings) == 1
    assert "rogue_stage" in findings[0].message
    assert "occupy_parallel" in findings[0].message


def test_lane_flow_tp_transitive_callee(tmp_path):
    findings = deep_findings(tmp_path, {"repro/train/t.py": LANE_PREAMBLE + """
        def charge_directly(clock):
            with clock.overlap("cpu"):
                clock.advance(1.0)

        def sneaky_stage(index, payload):
            charge_directly(payload.clock)
            return payload

        def build(clock):
            return [Stage("sample", "sampling", fn=sneaky_stage,
                          lanes=("worker/0",))]
    """}, select=["LANE-FLOW"])
    assert len(findings) == 1
    assert "sneaky_stage" in findings[0].message
    assert "overlap" in findings[0].message


def test_lane_flow_tp_lambda_commit_interval(tmp_path):
    findings = deep_findings(tmp_path, {"repro/train/t.py": LANE_PREAMBLE + """
        def build(clock):
            return [Stage("copy", "data_movement",
                          fn=lambda i, p: clock.commit_interval(
                              "pcie", 0.0, 1.0),
                          lanes=("copy",))]
    """}, select=["LANE-FLOW"])
    assert len(findings) == 1
    assert "commit_interval" in findings[0].message


def test_lane_flow_tn_deferred_capturable_work(tmp_path):
    findings = deep_findings(tmp_path, {"repro/train/t.py": LANE_PREAMBLE + """
        def honest_stage(index, payload):
            payload.clock.occupy("cpu", 0.5, tag="sample")
            payload.clock.advance(0.1)
            return payload

        def build(clock):
            return [Stage("sample", "sampling", fn=honest_stage,
                          lanes=("worker/0",)),
                    Stage("train", "training", fn=quiet_stage,
                          lanes=("train",))]
    """}, select=["LANE-FLOW"])
    assert findings == []


def test_lane_flow_tn_escape_outside_stage_fn(tmp_path):
    # occupy_parallel is fine outside the datapipe: only Stage fns run
    # under the scheduler's deferred capture.
    findings = deep_findings(tmp_path, {"repro/train/t.py": LANE_PREAMBLE + """
        def allreduce(clock):
            clock.occupy_parallel({"gpu0": 1.0, "gpu1": 1.0})

        def build(clock):
            allreduce(clock)
            return [Stage("train", "training", fn=quiet_stage,
                          lanes=("train",))]
    """}, select=["LANE-FLOW"])
    assert findings == []


# ---------------------------------------------------------------------------
# FAULT-SWALLOW


FAULT_PREAMBLE = """
    from repro.errors import RecoveryExhausted

    def may_blow():
        raise RecoveryExhausted("done")
"""


def test_fault_swallow_tp_broad_except(tmp_path):
    findings = deep_findings(tmp_path, {"repro/train/t.py": FAULT_PREAMBLE + """
        def swallow():
            try:
                return may_blow()
            except Exception:
                return None
    """}, select=["FAULT-SWALLOW"])
    assert len(findings) == 1
    assert "RecoveryExhausted" in findings[0].message
    assert "may_blow" in findings[0].message


def test_fault_swallow_tp_bare_except_direct_raise(tmp_path):
    findings = deep_findings(tmp_path, {"repro/train/t.py": """
        from repro.errors import FaultPlanError

        def swallow(flag):
            try:
                if flag:
                    raise FaultPlanError("bad plan")
            except:
                pass
    """}, select=["FAULT-SWALLOW"])
    assert len(findings) == 1
    assert "bare except" in findings[0].message


def test_fault_swallow_tn_reraise(tmp_path):
    findings = deep_findings(tmp_path, {"repro/train/t.py": FAULT_PREAMBLE + """
        def logged():
            try:
                return may_blow()
            except Exception:
                raise
    """}, select=["FAULT-SWALLOW"])
    assert findings == []


def test_fault_swallow_tn_narrow_handler(tmp_path):
    findings = deep_findings(tmp_path, {"repro/train/t.py": FAULT_PREAMBLE + """
        def narrow():
            try:
                return may_blow()
            except RecoveryExhausted:
                return None
    """}, select=["FAULT-SWALLOW"])
    assert findings == []


def test_fault_swallow_tn_resilience_package_exempt(tmp_path):
    findings = deep_findings(
        tmp_path, {"repro/resilience/t.py": FAULT_PREAMBLE + """
        def policy():
            try:
                return may_blow()
            except Exception:
                return None
    """}, select=["FAULT-SWALLOW"])
    assert findings == []


def test_fault_swallow_tn_inner_handler_absorbs_first(tmp_path):
    findings = deep_findings(tmp_path, {"repro/train/t.py": FAULT_PREAMBLE + """
        def guarded():
            try:
                try:
                    return may_blow()
                except RecoveryExhausted:
                    return None
            except Exception:
                return -1
    """}, select=["FAULT-SWALLOW"])
    assert findings == []


# ---------------------------------------------------------------------------
# recursion / convergence on real summaries


def test_recursive_functions_converge(tmp_path):
    findings = deep_findings(tmp_path, {"repro/kernels/rec.py": """
        def even(n, clock):
            clock.occupy(1)
            if n == 0:
                return True
            return odd(n - 1, clock)

        def odd(n, clock):
            if n == 0:
                return False
            return even(n - 1, clock)
    """})
    assert findings == []


def test_recursive_uncharged_cycle_still_fires(tmp_path):
    # a recursive cycle with raw work and no charge anywhere must not
    # talk itself into being "charged by a caller" through the cycle.
    findings = deep_findings(tmp_path, {"repro/kernels/rec.py": """
        def ping(a, b, n):
            out = a @ b
            if n:
                return pong(a, b, n - 1)
            return out

        def pong(a, b, n):
            return ping(a, b, n)
    """}, select=["UNCHARGED-COST"])
    assert len(findings) == 1


# ---------------------------------------------------------------------------
# suppression / baseline / reporting round-trips


UNCHARGED_SRC = """
    def spmm(a, b):
        return a @ b
"""

SUPPRESSED_SRC = """
    def spmm(a, b):
        return a @ b  # repro-lint: disable=UNCHARGED-COST host-side test helper
"""


def test_deep_finding_inline_suppression(tmp_path):
    assert deep_findings(tmp_path, {"repro/kernels/mm.py": UNCHARGED_SRC})
    assert deep_findings(
        tmp_path / "s", {"repro/kernels/mm.py": SUPPRESSED_SRC}) == []


def test_deep_baseline_round_trip(tmp_path):
    write_module(tmp_path, "repro/kernels/mm.py", UNCHARGED_SRC)
    dirty = lint_paths([str(tmp_path)], deep=True)
    assert not dirty.ok
    baseline_path = tmp_path / "baseline.json"
    save_baseline(dirty.findings, baseline_path)
    clean = lint_paths([str(tmp_path)], deep=True,
                       baseline=load_baseline(baseline_path))
    assert clean.ok and clean.findings == []
    assert any(f.rule == "UNCHARGED-COST" for f in clean.baselined)


def test_json_payload_deep_flag(tmp_path):
    write_module(tmp_path, "repro/kernels/mm.py", UNCHARGED_SRC)
    deep = to_json_payload(lint_paths([str(tmp_path)], deep=True))
    shallow = to_json_payload(lint_paths([str(tmp_path)]))
    assert deep["version"] == 2 and deep["deep"] is True
    assert shallow["deep"] is False
    assert deep["summary"]["by_rule"].get("UNCHARGED-COST") == 1
    assert "UNCHARGED-COST" not in shallow["summary"]["by_rule"]


def test_cli_deep_flag(tmp_path, capsys):
    write_module(tmp_path, "repro/kernels/mm.py", UNCHARGED_SRC)
    assert cli_main(["lint", str(tmp_path)]) == 0
    capsys.readouterr()
    assert cli_main(["lint", str(tmp_path), "--deep"]) == 1
    out = capsys.readouterr().out
    assert "UNCHARGED-COST" in out
    # deep rule names without --deep are a usage error, not silence
    assert cli_main(["lint", str(tmp_path), "--select", "UNCHARGED-COST"]) == 2
    capsys.readouterr()
    assert cli_main(["lint", str(tmp_path), "--select", "UNCHARGED-COST",
                     "--deep"]) == 1


def test_cli_list_rules_shows_deep(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in DEEP_RULE_NAMES:
        assert name in out
    assert "[deep]" in out


# ---------------------------------------------------------------------------
# determinism


def test_findings_deterministic_and_sorted(tmp_path):
    files = {
        "repro/kernels/zz.py": UNCHARGED_SRC,
        "repro/kernels/aa.py": UNCHARGED_SRC,
        "repro/train/t.py": FAULT_PREAMBLE + """
            def swallow():
                try:
                    return may_blow()
                except Exception:
                    return None
        """,
    }
    first = deep_findings(tmp_path, files)
    second = [f for f in lint_paths([str(tmp_path)], deep=True).findings
              if f.rule in DEEP_RULE_NAMES]
    assert [(f.path, f.line, f.col, f.rule) for f in first] \
        == [(f.path, f.line, f.col, f.rule) for f in second]
    keys = [(f.path, f.line, f.col, f.rule) for f in first]
    assert keys == sorted(keys)


def test_analyze_empty_contexts():
    assert analyze([]) == []


# ---------------------------------------------------------------------------
# acceptance: the real tree is deep-clean, fast, with an empty baseline


def test_planted_fixture_fails_deep_only():
    planted = REPO_ROOT / "examples" / "lint" / "planted"
    shallow = lint_paths([str(planted)])
    assert shallow.ok, [f.message for f in shallow.findings]
    deep = lint_paths([str(planted)], deep=True)
    assert [f.rule for f in deep.findings] == ["UNCHARGED-COST"]


def test_repo_tree_is_deep_clean():
    start = time.monotonic()
    result = lint_paths([str(REPO_ROOT / "src")], deep=True)
    elapsed = time.monotonic() - start
    assert result.deep
    assert result.findings == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings]
    assert elapsed < 30.0
