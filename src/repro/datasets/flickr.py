"""Flickr: images sharing common properties (7 classes, 500 features).

Table 1: 89,250 nodes / 899,756 edges / 500 features / 7 classes,
split 0.50 / 0.25 / 0.25.  Bundled by both frameworks.
"""

from repro.datasets.base import DatasetSpec
from repro.graph.graph import Split

SPEC = DatasetSpec(
    name="flickr",
    description="Images Sharing Common Properties",
    logical_num_nodes=89_250,
    logical_num_edges=899_756,
    num_features=500,
    num_classes=7,
    multilabel=False,
    split=Split(0.50, 0.25, 0.25),
    actual_num_nodes=3_000,
    actual_num_edges=30_000,
    num_communities=14,
    intra_prob=0.75,
    degree_exponent=2.0,
    in_dgl=True,
    in_pyg=True,
    seed=22,
)
