"""Tests for model evaluation (full-graph inference + metrics)."""

import math

import numpy as np
import pytest

from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.base import two_layer_net
from repro.models.evaluate import EvalReport, evaluate, full_graph_logits
from repro.models.fullbatch import FullBatchTrainer, build_fullbatch_sage


@pytest.fixture
def setup(machine):
    fw = get_framework("dglite")
    fgraph = fw.load("flickr", machine, scale=0.3)
    net = two_layer_net(fw, "gcn", fgraph.stats.num_features, 16,
                        fgraph.stats.num_classes, style="subgraph",
                        dropout=0.0, seed=0)
    return fw, fgraph, net


class TestFullGraphLogits:
    def test_shape(self, setup):
        fw, fgraph, net = setup
        logits = full_graph_logits(fw, fgraph, net)
        assert logits.shape == (fgraph.num_nodes, fgraph.stats.num_classes)

    def test_charges_inference_time(self, setup):
        fw, fgraph, net = setup
        before = fgraph.machine.clock.now
        full_graph_logits(fw, fgraph, net)
        assert fgraph.machine.clock.now > before

    def test_eval_mode_is_deterministic(self, setup):
        fw, fgraph, net = setup
        a = full_graph_logits(fw, fgraph, net)
        b = full_graph_logits(fw, fgraph, net)
        assert np.allclose(a.data, b.data)

    def test_blocknet_evaluates_on_square_adjacency(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        from repro.models.graphsage import build_graphsage
        net = build_graphsage(fw, fgraph, hidden=16, seed=0)
        logits = full_graph_logits(fw, fgraph, net)
        assert logits.shape == (fgraph.num_nodes, fgraph.stats.num_classes)


class TestEvaluate:
    def test_report_fields(self, setup):
        fw, fgraph, net = setup
        report = evaluate(fw, fgraph, net)
        assert report.metric == "accuracy"
        assert 0.0 <= report.train <= 1.0
        assert 0.0 <= report.test <= 1.0
        assert set(report.as_dict()) == {"train", "val", "test"}

    def test_multilabel_uses_micro_f1(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        net = two_layer_net(fw, "gcn", fgraph.stats.num_features, 16,
                            fgraph.stats.num_classes, style="subgraph",
                            dropout=0.0, seed=0)
        report = evaluate(fw, fgraph, net)
        assert report.metric == "micro_f1"

    def test_training_improves_metric(self, machine):
        """End-to-end: full-batch training raises eval accuracy well above
        the untrained model (features correlate with labels by design)."""
        fw = get_framework("dglite")
        fgraph = fw.load("flickr", machine, scale=0.3)
        net = build_fullbatch_sage(fw, fgraph, hidden=32, dropout=0.0, seed=0)
        before = evaluate(fw, fgraph, net).val
        trainer = FullBatchTrainer(fw, fgraph, net, device="cpu", lr=5e-3)
        trainer.train_epochs(40)
        after = evaluate(fw, fgraph, net).val
        assert after > before + 0.1

    def test_nan_for_empty_split(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("flickr", machine, scale=0.3)
        saved = fgraph.graph.val_mask.copy()
        fgraph.graph.val_mask[:] = False  # graphs are cached: restore below
        try:
            net = two_layer_net(fw, "gcn", fgraph.stats.num_features, 8,
                                fgraph.stats.num_classes, style="subgraph", seed=0)
            report = evaluate(fw, fgraph, net)
            assert math.isnan(report.val)
        finally:
            fgraph.graph.val_mask[:] = saved
