"""Tests for the parallel sampling-worker path."""

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.graphsage import build_graphsage, graphsage_sampler
from repro.models.trainer import MiniBatchTrainer, TrainConfig
from repro.simtime import VirtualClock


def make_trainer(num_workers=0, placement="cpugpu", epochs=1, reps=3):
    machine = paper_testbed()
    fw = get_framework("dglite")
    fgraph = fw.load("ppi", machine, scale=0.3)
    sampler = graphsage_sampler(fw, fgraph, seed=0)
    net = build_graphsage(fw, fgraph, hidden=16, seed=0)
    config = TrainConfig(epochs=epochs, placement=placement,
                         num_workers=num_workers,
                         representative_batches=reps)
    return MiniBatchTrainer(fw, fgraph, sampler, net, config)


class TestDeferredClock:
    def test_measures_without_advancing(self):
        clock = VirtualClock()
        with clock.deferred() as record:
            clock.advance(1.0)
            clock.occupy("cpu", 2.0)
        assert clock.now == 0.0
        assert record.total == pytest.approx(3.0)
        assert record.busy["cpu"] == pytest.approx(2.0)

    def test_no_busy_intervals_recorded(self):
        clock = VirtualClock()
        with clock.deferred():
            clock.occupy("cpu", 2.0)
        assert clock.busy_time("cpu") == 0.0

    def test_nesting_rejected(self):
        clock = VirtualClock()
        with pytest.raises(RuntimeError):
            with clock.deferred():
                with clock.deferred():
                    pass

    def test_normal_operation_resumes_after(self):
        clock = VirtualClock()
        with clock.deferred():
            clock.advance(5.0)
        clock.advance(1.0)
        assert clock.now == pytest.approx(1.0)


class TestConfigValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(BenchmarkError):
            TrainConfig(num_workers=-1)

    def test_workers_with_gpu_sampling_rejected(self):
        with pytest.raises(BenchmarkError):
            TrainConfig(placement="gpu", num_workers=4)


class TestWorkerSpeedup:
    def test_zero_and_one_workers_are_serial(self):
        assert make_trainer(0).worker_speedup() == 1.0
        assert make_trainer(1).worker_speedup() == 1.0

    def test_sublinear(self):
        speedup = make_trainer(8).worker_speedup()
        assert 1.0 < speedup < 8.0

    def test_capped_at_cores(self):
        trainer = make_trainer(10_000)
        cores = (trainer.machine.cpu.spec.sockets
                 * trainer.machine.cpu.spec.cores_per_socket)
        assert trainer.worker_speedup() <= cores


class TestWorkerTraining:
    def test_workers_reduce_sampling_phase(self):
        base = make_trainer(0).run()
        pooled = make_trainer(8).run()
        assert pooled.phases["sampling"] < base.phases["sampling"]
        assert pooled.total_time < base.total_time

    def test_results_are_numerically_identical(self):
        """Workers change cost accounting, never the sampled batches."""
        base = make_trainer(0, epochs=2).run()
        pooled = make_trainer(8, epochs=2).run()
        assert base.losses == pytest.approx(pooled.losses, rel=1e-6)
        assert base.batches_per_epoch == pooled.batches_per_epoch

    def test_cpu_placement_gets_parallelism_but_no_pipelining(self):
        base = make_trainer(0, placement="cpu").run()
        pooled = make_trainer(8, placement="cpu").run()
        assert pooled.phases["sampling"] < base.phases["sampling"]

    def test_pipelining_hides_up_to_one_training_step(self):
        trainer = make_trainer(8)
        result = trainer.run()
        # visible sampling is at least residual-positive and finite
        assert result.phases["sampling"] >= 0
        assert np.isfinite(result.total_time)
