"""Telemetry exporters: JSON-lines events, Prometheus text, Chrome trace.

Three machine-readable views over one session:

* ``events.jsonl`` — every span (dual-clock timing, parent ids, attrs)
  and every metric's final state, one JSON object per line, led by a
  schema header line.  The stream is the ground truth the other views
  are derived from; ``repro report --telemetry`` and the tests re-derive
  the four-phase rollup from it.
* ``metrics.prom`` — a Prometheus exposition-format snapshot of the
  registry (scrape-shaped, diffable between runs).
* ``trace.json`` — the existing device-lane Chrome trace *merged* with
  span events, so kernels (pid 0, one lane per device) and hierarchical
  spans (pid 1, one lane per nesting depth) land on a single Perfetto
  timeline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.simtime import VirtualClock
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import TelemetrySession
from repro.telemetry.spans import SpanTracer

EVENTS_SCHEMA = "repro.telemetry.events/1"
TRACE_SOURCE = "repro telemetry (devices + spans)"

#: Chrome-trace process ids for the two merged lanes.
DEVICE_PID = 0
SPAN_PID = 1


# ----------------------------------------------------------------------
# events.jsonl
# ----------------------------------------------------------------------
def event_records(tracer: SpanTracer,
                  registry: Optional[MetricsRegistry] = None) -> List[dict]:
    """Header + span + metric records, in deterministic order."""
    records: List[dict] = [{"type": "header", "schema": EVENTS_SCHEMA}]
    records.extend(span.to_event() for span in tracer.spans())
    if registry is not None:
        records.extend(registry.snapshot())
    return records


def write_events_jsonl(path: Union[str, Path], tracer: SpanTracer,
                       registry: Optional[MetricsRegistry] = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(rec, sort_keys=True) for rec in event_records(tracer, registry)]
    path.write_text("\n".join(lines) + "\n")
    return path


def read_events_jsonl(path: Union[str, Path]) -> List[dict]:
    """Parse an events stream back into records (round-trip testing)."""
    records = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# metrics.prom
# ----------------------------------------------------------------------
def write_prometheus(path: Union[str, Path], registry: MetricsRegistry) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry.prometheus_text())
    return path


# ----------------------------------------------------------------------
# merged Chrome trace
# ----------------------------------------------------------------------
#: Stable thread ids for the well-known device lanes in the trace viewer.
DEVICE_LANES = ("storage", "pcie")


def device_trace_events(clock: VirtualClock, time_unit: float = 1e6) -> List[dict]:
    """Device busy intervals as Chrome 'complete' (ph=X) events (pid 0).

    ``time_unit`` scales seconds into the trace's microsecond timestamps.
    Lane (tid) assignment is deterministic: the well-known
    :data:`DEVICE_LANES` get fixed ids, remaining devices are numbered by
    sorted name rather than first-seen order, so traces from two runs of
    the same config diff cleanly.  This is the single device-lane trace
    implementation; the legacy :mod:`repro.profiling.trace` module
    delegates here.
    """
    lanes = {device: tid for tid, device in enumerate(DEVICE_LANES)}
    seen = {interval.device for interval in clock.busy_intervals()}
    for device in sorted(seen - set(DEVICE_LANES)):
        lanes[device] = len(lanes)

    def lane_id(device: str) -> int:
        if device not in lanes:  # devices appearing mid-iteration
            lanes[device] = len(lanes)
        return lanes[device]

    events = []
    for interval in clock.busy_intervals():
        events.append({
            "name": interval.tag or "busy",
            "cat": interval.device,
            "ph": "X",
            "ts": interval.start * time_unit,
            "dur": interval.duration * time_unit,
            "pid": DEVICE_PID,
            "tid": lane_id(interval.device),
        })
    # lane naming metadata
    for device, tid in lanes.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": DEVICE_PID,
            "tid": tid,
            "args": {"name": device},
        })
    return events


def span_trace_events(tracer: SpanTracer, time_unit: float = 1e6) -> List[dict]:
    """Spans as Chrome 'complete' events, one thread lane per depth."""
    events: List[dict] = []
    depths = set()
    for span in tracer.iter_closed():
        depths.add(span.depth)
        args: Dict[str, object] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.category:
            args["category"] = span.category
        if span.credited:
            args["credited_seconds"] = span.credited
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": span.start_virtual * time_unit,
            "dur": span.virtual_seconds * time_unit,
            "pid": SPAN_PID,
            "tid": span.depth,
            "args": args,
        })
    for depth in sorted(depths):
        events.append({
            "name": "thread_name", "ph": "M", "pid": SPAN_PID, "tid": depth,
            "args": {"name": f"spans depth {depth}"},
        })
    return events


def merged_trace_events(clock: VirtualClock, tracer: Optional[SpanTracer],
                        time_unit: float = 1e6) -> List[dict]:
    """Device busy intervals (pid 0) merged with spans (pid 1)."""
    events = device_trace_events(clock, time_unit)
    events.append({
        "name": "process_name", "ph": "M", "pid": DEVICE_PID,
        "args": {"name": "simulated devices"},
    })
    if tracer is not None:
        events.extend(span_trace_events(tracer, time_unit))
        events.append({
            "name": "process_name", "ph": "M", "pid": SPAN_PID,
            "args": {"name": "telemetry spans"},
        })
    return events


def write_merged_trace(path: Union[str, Path], clock: VirtualClock,
                       tracer: Optional[SpanTracer]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": merged_trace_events(clock, tracer),
        "displayTimeUnit": "ms",
        "metadata": {"source": TRACE_SOURCE},
    }
    path.write_text(json.dumps(payload, sort_keys=True))
    return path


# ----------------------------------------------------------------------
# the full artifact bundle
# ----------------------------------------------------------------------
def write_run_artifacts(out_dir: Union[str, Path], session: TelemetrySession,
                        clock: VirtualClock, manifest: dict) -> Dict[str, str]:
    """Write all four run artifacts; returns name -> path written."""
    from repro.telemetry.manifest import write_run_manifest

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        "events": write_events_jsonl(out / "events.jsonl", session.tracer,
                                     session.metrics),
        "metrics": write_prometheus(out / "metrics.prom", session.metrics),
        "trace": write_merged_trace(out / "trace.json", clock, session.tracer),
        "manifest": write_run_manifest(out / "run.json", manifest),
    }
    return {name: str(path) for name, path in paths.items()}
