"""Ablation: robustness of the paper's observations to calibration error.

The reproduction's only tuned numbers are the per-framework kernel
efficiencies and sampler unit costs.  This bench perturbs the most
influential constants by 2x in the direction *unfavourable* to each
conclusion and checks the qualitative observations survive — i.e. the
reproduced orderings are not knife-edge artifacts of the chosen values.
"""

from conftest import emit

from repro.bench import format_series
from repro.frameworks.dglite import DGLite
from repro.frameworks.pyglite import PyGLite
from repro.hardware.machine import paper_testbed
from repro.tensor.tensor import no_grad


def _conv_forward(framework, dataset: str, kind: str, device: str) -> float:
    machine = paper_testbed()
    fgraph = framework.load(dataset, machine)
    from repro.kernels.transfer import adj_to_device, to_device
    with framework.activate(), no_grad():
        target = machine.device(device)
        adj = adj_to_device(fgraph.adj, target, machine.pcie)
        x = to_device(fgraph.features, target, machine.pcie)
        conv = framework.conv(kind, fgraph.stats.num_features, 256, seed=0)
        conv.to(target)
        start = machine.clock.now
        conv(adj, x)
        return machine.clock.now - start


def _sampler_epoch(framework, dataset: str) -> float:
    machine = paper_testbed()
    fgraph = framework.load(dataset, machine)
    sampler = framework.neighbor_sampler(fgraph, seed=0)
    batches = sampler.num_batches()
    start = machine.clock.now
    iterator = iter(sampler.epoch())
    ran = 0
    for _ in range(min(4, batches)):
        if next(iterator, None) is None:
            break
        ran += 1
    return (machine.clock.now - start) * batches / max(1, ran)


def test_ablation_calibration_sensitivity(once):
    def run():
        out = {}

        # Observation 3 (DGL wins conv on CPU) under a 2x *better* PyG
        # CPU SpMM than calibrated.
        pyg_fast_spmm = PyGLite(
            profile=PyGLite.profile.with_efficiency_scaled("spmm", "cpu", 2.0))
        out["conv_cpu"] = {
            "dgl_baseline": _conv_forward(DGLite(), "reddit", "gcn", "cpu"),
            "pyg_baseline": _conv_forward(PyGLite(), "reddit", "gcn", "cpu"),
            "pyg_2x_spmm": _conv_forward(pyg_fast_spmm, "reddit", "gcn", "cpu"),
        }

        # Observation 2 (DGL sampler wins) under a 2x *faster* PyG
        # neighbor sampler.
        pyg_fast_sampler = PyGLite(
            profile=PyGLite.profile.with_sampler_scaled("neighbor", 0.5))
        out["sampler"] = {
            "dgl_baseline": _sampler_epoch(DGLite(), "flickr"),
            "pyg_baseline": _sampler_epoch(PyGLite(), "flickr"),
            "pyg_half_cost": _sampler_epoch(pyg_fast_sampler, "flickr"),
        }

        # The GPU small-graph crossover (PyG wins PPI) under a 2x *worse*
        # PyG GPU SpMM.
        pyg_slow_gpu = PyGLite(
            profile=PyGLite.profile.with_efficiency_scaled("spmm", "gpu", 0.5))
        out["conv_gpu_ppi"] = {
            "dgl_baseline": _conv_forward(DGLite(), "ppi", "gcn", "gpu"),
            "pyg_baseline": _conv_forward(PyGLite(), "ppi", "gcn", "gpu"),
            "pyg_half_spmm": _conv_forward(pyg_slow_gpu, "ppi", "gcn", "gpu"),
        }
        return out

    results = once(run)
    emit("ablation_calibration_sensitivity",
         format_series("Ablation: 2x calibration perturbations "
                       "(adversarial direction)", results, unit="s",
                       precision=5))

    # Obs 3 survives a 2x PyG CPU SpMM improvement.
    assert results["conv_cpu"]["dgl_baseline"] < results["conv_cpu"]["pyg_2x_spmm"]
    # Obs 2 survives a 2x PyG sampler improvement.
    assert results["sampler"]["dgl_baseline"] < results["sampler"]["pyg_half_cost"]
    # Perturbations acted in the expected direction.
    assert results["conv_cpu"]["pyg_2x_spmm"] < results["conv_cpu"]["pyg_baseline"]
    assert results["sampler"]["pyg_half_cost"] < results["sampler"]["pyg_baseline"]
    # The GPU crossover is the *known* sensitive result: with a 2x worse
    # PyG GPU SpMM it flips, which is why EXPERIMENTS.md calls it a
    # crossover rather than a robust ordering.
    assert (results["conv_gpu_ppi"]["pyg_baseline"]
            < results["conv_gpu_ppi"]["dgl_baseline"])
    assert (results["conv_gpu_ppi"]["pyg_half_spmm"]
            > results["conv_gpu_ppi"]["pyg_baseline"])
