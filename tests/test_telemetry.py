"""Tests for the unified telemetry layer.

Covers the span tracer (nesting, ids, dual clocks, exception safety),
the metrics registry (counter/gauge/histogram semantics), every exporter
(JSONL events, Prometheus text, merged Chrome trace) against its schema
validator, manifest byte-determinism under a fixed seed, the legacy
``PhaseProfiler`` equivalence bar (span-tree rollup == flat profiler
within 1e-9), power percentile stats, the device-lane determinism fix in
``repro.profiling.trace``, and the CLI ``--telemetry`` paths.
"""

import json

import pytest

from repro.bench.harness import run_training_experiment
from repro.cli import main as cli_main
from repro.power.meter import PowerSample
from repro.power.monitor import EnergyReport
from repro.profiling.profiler import PHASES, PhaseProfiler
from repro.profiling.trace import summarize_trace, trace_events, write_trace
from repro.simtime import VirtualClock
from repro.telemetry import (
    PHASE_CATEGORY,
    MetricsRegistry,
    SpanTracer,
    TelemetrySession,
    maybe_span,
    session,
)
from repro.telemetry import runtime as telemetry_runtime
from repro.telemetry.exporters import (
    DEVICE_PID,
    SPAN_PID,
    event_records,
    merged_trace_events,
    read_events_jsonl,
    write_events_jsonl,
)
from repro.telemetry.manifest import (
    load_run_manifest,
    validate_chrome_trace,
    validate_events_records,
    validate_prometheus_text,
    validate_run_dir,
    validate_run_manifest,
)


class FakeWall:
    """Deterministic wall clock for tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.125
        return self.t


# ---------------------------------------------------------------------------
# spans


class TestSpanTracer:
    def test_nesting_ids_and_depth(self):
        clock = VirtualClock()
        tracer = SpanTracer(clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(2.0)
        assert outer.span_id != inner.span_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert (outer.depth, inner.depth) == (0, 1)
        assert tracer.max_depth() == 2
        assert inner.virtual_seconds == pytest.approx(2.0)
        assert outer.virtual_seconds == pytest.approx(3.0)

    def test_dual_clock_timing(self):
        clock = VirtualClock()
        tracer = SpanTracer(clock, wall_clock=FakeWall())
        with tracer.span("work"):
            clock.advance(5.0)
        span = tracer.spans()[0]
        assert span.virtual_seconds == pytest.approx(5.0)
        assert span.wall_seconds == pytest.approx(0.125)

    def test_attrs_and_error_annotation(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("risky", category="io", size=7):
                raise RuntimeError("nope")
        span = tracer.spans()[0]
        assert span.closed
        assert span.attrs["size"] == 7
        assert span.attrs["error"] == "RuntimeError"
        assert tracer.current() is None

    def test_abandoned_children_are_unwound(self):
        tracer = SpanTracer()
        with tracer.span("parent"):
            tracer.start_span("orphan")  # never explicitly ended
        orphan = next(s for s in tracer.spans() if s.name == "orphan")
        assert orphan.closed
        assert orphan.attrs.get("abandoned") is True
        assert tracer.current() is None

    def test_phase_rollup_is_exclusive(self):
        clock = VirtualClock()
        tracer = SpanTracer(clock)
        with tracer.span("sampling", category=PHASE_CATEGORY):
            clock.advance(4.0)
            with tracer.span("training", category=PHASE_CATEGORY):
                clock.advance(1.0)
        rollup = tracer.phase_rollup()
        assert rollup["sampling"] == pytest.approx(4.0)
        assert rollup["training"] == pytest.approx(1.0)

    def test_credit_is_zero_length_and_rejects_negative(self):
        clock = VirtualClock()
        tracer = SpanTracer(clock)
        span = tracer.credit("training", 7.5)
        assert span.closed
        assert span.virtual_seconds == 0.0
        assert tracer.phase_rollup()["training"] == pytest.approx(7.5)
        assert clock.now == 0.0
        with pytest.raises(ValueError):
            tracer.credit("training", -1.0)


class TestProfilerEquivalence:
    def test_flat_usage_matches_legacy_numbers_to_1e9(self):
        """The acceptance bar: without nesting, the span-tree rollup is
        the legacy flat accumulation, down to 1e-9."""
        clock = VirtualClock()
        prof = PhaseProfiler(clock)
        expected = {}
        durations = [("data_loading", 0.73), ("sampling", 2.19),
                     ("data_movement", 0.41), ("training", 1.87),
                     ("sampling", 1.03), ("training", 0.59)]
        for name, dt in durations:
            with prof.phase(name):
                clock.advance(dt)
            expected[name] = expected.get(name, 0.0) + dt
        prof.add("training", 3.1415)
        expected["training"] += 3.1415
        for name, secs in expected.items():
            assert abs(prof.seconds(name) - secs) < 1e-9
        assert abs(prof.total - sum(expected.values())) < 1e-9

    def test_profiler_adopts_ambient_tracer(self):
        clock = VirtualClock()
        with session(clock) as sess:
            prof = PhaseProfiler(clock)
            assert prof.tracer is sess.tracer
        # Different clock: the profiler stays private.
        with session(VirtualClock()) as sess:
            prof = PhaseProfiler(clock)
            assert prof.tracer is not sess.tracer


# ---------------------------------------------------------------------------
# runtime


class TestRuntime:
    def test_disabled_accessors_return_none(self):
        assert telemetry_runtime.active() is None
        assert telemetry_runtime.tracer() is None
        assert telemetry_runtime.metrics() is None
        with maybe_span("anything") as span:
            assert span is None

    def test_sessions_stack_lifo(self):
        with session() as outer:
            assert telemetry_runtime.active() is outer
            with session() as inner:
                assert telemetry_runtime.active() is inner
            assert telemetry_runtime.active() is outer
        assert telemetry_runtime.active() is None

    def test_maybe_span_records_on_active_tracer(self):
        with session() as sess:
            with maybe_span("train.epoch", epoch=3) as span:
                assert span is not None
        assert sess.tracer.spans()[0].attrs["epoch"] == 3


# ---------------------------------------------------------------------------
# metrics


class TestMetrics:
    def test_counter_get_or_create_and_monotonicity(self):
        reg = MetricsRegistry()
        c1 = reg.counter("pcie.bytes", direction="h2d")
        c2 = reg.counter("pcie.bytes", direction="h2d")
        c3 = reg.counter("pcie.bytes", direction="d2h")
        assert c1 is c2 and c1 is not c3
        c1.inc(10)
        c1.inc(2.5)
        assert c1.value == pytest.approx(12.5)
        with pytest.raises(ValueError):
            c1.inc(-1)

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(ValueError):
            reg.gauge("x.y")

    def test_invalid_names_and_labels_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("Bad-Name")
        with pytest.raises(ValueError):
            reg.counter("ok.name", **{"bad-key": 1})

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("memory.peak_bytes", device="gpu0")
        g.set_max(100)
        g.set_max(50)
        assert g.value == 100
        g.set(25)
        assert g.value == 25

    def test_histogram_buckets_and_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.v", buckets=(1, 10, 100))
        for v in (0.5, 5, 5, 50, 500):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(560.5)
        assert h.min == 0.5 and h.max == 500
        assert h.bucket_counts == [1, 2, 1, 1]  # <=1, <=10, <=100, +Inf
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        assert h.quantile(1.0) == 500
        record = h.to_record()
        assert record["buckets"][-1]["le"] == "+Inf"

    def test_snapshot_order_is_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("b.metric")
        reg.counter("a.metric", z="1")
        reg.counter("a.metric", a="1")
        names = [(r["name"], tuple(sorted(r["labels"].items())))
                 for r in reg.snapshot()]
        assert names == sorted(names)

    def test_prometheus_text_validates_and_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("sampler.items", kind="neighbor").inc(42)
        reg.gauge("memory.in_use_bytes", device="gpu0").set(1024)
        reg.histogram("pcie.transfer_bytes", buckets=(10, 1000)).observe(50)
        text = reg.prometheus_text()
        assert validate_prometheus_text(text) == []
        assert "# TYPE repro_sampler_items counter" in text
        assert 'repro_sampler_items{kind="neighbor"} 42.0' in text
        assert 'le="+Inf"' in text


# ---------------------------------------------------------------------------
# power stats


class TestPowerStats:
    def _report(self):
        cpu = tuple(PowerSample(0.1 * i, float(w))
                    for i, w in enumerate([100, 120, 140, 160, 180, 200,
                                           190, 170, 150, 130], 1))
        gpu = tuple(PowerSample(0.1 * i, float(w))
                    for i, w in enumerate([50, 55, 60, 65, 70, 75,
                                           80, 85, 90, 300], 1))
        return EnergyReport(duration=1.0, cpu_energy=155.0, gpu_energy=93.0,
                            samples=10, cpu_power_trace=cpu,
                            gpu_power_trace=gpu)

    def test_percentiles_and_peak(self):
        report = self._report()
        cpu = report.cpu_power_stats()
        assert cpu["peak"] == 200.0
        assert cpu["p50"] == 150.0  # nearest-rank: 5th of 10 sorted samples
        assert cpu["p95"] == 200.0
        assert cpu["avg"] == pytest.approx(154.0)
        gpu = report.gpu_power_stats()
        assert gpu["peak"] == 300.0
        assert gpu["p50"] == 70.0
        # Combined peak aligns rails on sample timestamps.
        assert report.peak_power == pytest.approx(130.0 + 300.0)

    def test_empty_trace_stats_are_zero(self):
        report = EnergyReport(duration=0.0, cpu_energy=0.0, gpu_energy=0.0,
                              samples=0)
        assert report.cpu_power_stats() == {"avg": 0.0, "p50": 0.0,
                                            "p95": 0.0, "peak": 0.0}
        assert report.peak_power == 0.0


# ---------------------------------------------------------------------------
# device-lane trace (profiling/trace.py)


class TestDeviceTrace:
    def _clock(self, order):
        clock = VirtualClock()
        for device in order:
            clock.occupy(device, 0.5, tag=f"work-{device}")
        return clock

    def test_lane_ids_deterministic_regardless_of_first_seen_order(self):
        a = {e["cat"]: e["tid"] for e in trace_events(self._clock(
            ["xeon-cpu", "pcie", "storage", "a100-gpu"])) if e["ph"] == "X"}
        b = {e["cat"]: e["tid"] for e in trace_events(self._clock(
            ["storage", "a100-gpu", "pcie", "xeon-cpu"])) if e["ph"] == "X"}
        assert a == b
        assert a["storage"] == 0
        assert a["pcie"] == 1

    def test_thread_name_metadata_for_every_lane(self):
        events = trace_events(self._clock(["storage", "gpu0"]))
        lanes = {e["tid"] for e in events if e["ph"] == "X"}
        named = {e["tid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert lanes <= set(named)
        assert named[0] == "storage"

    def test_write_trace_and_summarize(self, tmp_path):
        clock = self._clock(["storage", "pcie"])
        path = write_trace(clock, tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        summary = summarize_trace(clock)
        assert summary["device_busy"]["storage"] == pytest.approx(0.5)
        assert summary["top_tags"][0]["seconds"] == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# exporters


def _sample_session():
    clock = VirtualClock()
    sess = TelemetrySession(clock, wall_clock=FakeWall())
    with sess.tracer.span("sampling", category=PHASE_CATEGORY):
        clock.occupy("storage", 1.0, tag="read")
        with sess.tracer.span("train.batch", index=0):
            clock.advance(0.5)
    sess.metrics.counter("sampler.items", kind="neighbor").inc(12)
    sess.metrics.histogram("pcie.transfer_bytes").observe(4096)
    return clock, sess


class TestExporters:
    def test_events_jsonl_round_trip_and_schema(self, tmp_path):
        clock, sess = _sample_session()
        path = write_events_jsonl(tmp_path / "events.jsonl", sess.tracer,
                                  sess.metrics)
        records = read_events_jsonl(path)
        assert validate_events_records(records) == []
        assert records == event_records(sess.tracer, sess.metrics)
        kinds = [r["type"] for r in records]
        assert kinds[0] == "header"
        assert kinds.count("span") == 2
        assert kinds.count("metric") == 2

    def test_merged_trace_has_device_and_span_pids(self):
        clock, sess = _sample_session()
        events = merged_trace_events(clock, sess.tracer)
        assert validate_chrome_trace({"traceEvents": events}) == []
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {DEVICE_PID, SPAN_PID}
        span_events = [e for e in events
                       if e["ph"] == "X" and e["pid"] == SPAN_PID]
        assert {e["tid"] for e in span_events} == {0, 1}  # one lane per depth
        batch = next(e for e in span_events if e["name"] == "train.batch")
        assert batch["args"]["parent_id"] is not None


# ---------------------------------------------------------------------------
# end-to-end: train with telemetry
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("telemetry")
    result = run_training_experiment(
        "dglite", "ppi", "graphsage", epochs=2,
        representative_batches=2, seed=0, telemetry_dir=str(out),
    )
    return out, result


class TestEndToEnd:
    def test_all_artifacts_written_and_valid(self, telemetry_run):
        out, result = telemetry_run
        assert set(result.artifacts) == {"events", "metrics", "trace",
                                         "manifest"}
        assert validate_run_dir(out) == []

    def test_manifest_content(self, telemetry_run):
        out, result = telemetry_run
        manifest = load_run_manifest(out / "run.json")
        assert validate_run_manifest(manifest) == []
        assert manifest["label"] == result.label
        assert manifest["dataset"] == "ppi"
        assert manifest["seed"] == 0
        assert manifest["config"]["framework"] == "dglite"
        assert set(manifest["phases"]) <= set(PHASES)
        for phase, secs in result.phases.items():
            assert manifest["phases"][phase] == pytest.approx(secs, abs=1e-12)
        names = {m["name"] for m in manifest["metrics"]}
        assert "kernel.invocations" in names
        assert "sampler.items" in names
        assert "trainer.epochs" in names
        assert manifest["energy"]["cpu_power_w"]["p95"] > 0

    def test_span_tree_rollup_matches_manifest_to_1e9(self, telemetry_run):
        """Re-derive the 4-phase breakdown from events.jsonl alone and
        match the manifest (and hence the legacy profiler) within 1e-9."""
        out, _ = telemetry_run
        records = read_events_jsonl(out / "events.jsonl")
        spans = {r["id"]: r for r in records if r.get("type") == "span"}
        rollup = {}
        for span in spans.values():
            if span["category"] != PHASE_CATEGORY:
                continue
            exclusive = span["dur"] + span.get("credited", 0.0)
            parent = span["parent"]
            while parent is not None:
                if spans[parent]["category"] == PHASE_CATEGORY:
                    break
                parent = spans[parent]["parent"]
            rollup[span["name"]] = rollup.get(span["name"], 0.0) + exclusive
            if parent is not None:
                ancestor = spans[parent]["name"]
                rollup[ancestor] = rollup.get(ancestor, 0.0) - span["dur"]
        manifest = load_run_manifest(out / "run.json")
        assert set(rollup) == set(manifest["phases"])
        for name, secs in manifest["phases"].items():
            assert abs(rollup[name] - secs) < 1e-9

    def test_manifest_is_byte_deterministic(self, tmp_path, telemetry_run):
        out, _ = telemetry_run
        rerun = tmp_path / "rerun"
        run_training_experiment(
            "dglite", "ppi", "graphsage", epochs=2,
            representative_batches=2, seed=0, telemetry_dir=str(rerun),
        )
        assert (rerun / "run.json").read_bytes() == \
            (out / "run.json").read_bytes()
        assert (rerun / "metrics.prom").read_bytes() == \
            (out / "metrics.prom").read_bytes()
        assert (rerun / "trace.json").read_bytes() == \
            (out / "trace.json").read_bytes()

    def test_session_does_not_leak_after_run(self, telemetry_run):
        assert telemetry_runtime.active() is None

    def test_untelemetered_run_matches_phases(self, telemetry_run):
        """Instrumentation must not change the simulated numbers."""
        _, result = telemetry_run
        plain = run_training_experiment(
            "dglite", "ppi", "graphsage", epochs=2,
            representative_batches=2, seed=0,
        )
        assert plain.artifacts == {}
        for phase in PHASES:
            assert plain.phases.get(phase, 0.0) == pytest.approx(
                result.phases.get(phase, 0.0), abs=1e-9)


class TestCli:
    def test_train_with_telemetry_flag(self, tmp_path, capsys):
        out = tmp_path / "t"
        assert cli_main(["train", "--dataset", "ppi", "--epochs", "1",
                         "--telemetry", str(out)]) == 0
        assert (out / "run.json").exists()
        assert "telemetry:" in capsys.readouterr().out
        assert validate_run_dir(out) == []

    def test_report_telemetry_summary(self, tmp_path, capsys):
        out = tmp_path / "t"
        cli_main(["train", "--dataset", "ppi", "--epochs", "1",
                  "--telemetry", str(out)])
        capsys.readouterr()
        assert cli_main(["report", "--telemetry", str(out)]) == 0
        text = capsys.readouterr().out
        assert "telemetry bundle OK" in text
        assert "p95" in text

    def test_report_telemetry_rejects_invalid_dir(self, tmp_path, capsys):
        (tmp_path / "run.json").write_text("{}")
        assert cli_main(["report", "--telemetry", str(tmp_path)]) == 1
        assert "schema problem" in capsys.readouterr().out
