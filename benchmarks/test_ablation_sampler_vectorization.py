"""Ablation: vectorized sampling engine vs. the per-seed reference loop.

The reproduction charges framework-level sampler cost through
:mod:`repro.frameworks.profiles` (DGL native vs PyG Python rates,
Observation 2), so our own sampling implementation must be fast enough
not to contaminate wall-clock measurements.  This bench times the original
per-seed Python loop (kept below as the reference) against the shared
vectorized engine on a synthetic power-law graph, and checks that the two
draw from identical distributions under a pinned seed.
"""

import time

import numpy as np

from conftest import emit

from repro.graph.formats import INDEX_DTYPE
from repro.sampling.neighbor import sample_block_neighbors
from repro.sampling.relabel import block_locals

NUM_NODES = 100_000
BATCH_SIZE = 512
NUM_BATCHES = 20
FANOUT = 10
MIN_SPEEDUP = 5.0


def reference_sample_block_neighbors(indptr, indices, seeds, fanout, rng):
    """The pre-vectorization implementation, verbatim: one Python iteration
    and one ``rng.choice`` per seed."""
    srcs, dsts, examined = [], [], 0
    for seed in seeds:
        lo, hi = indptr[seed], indptr[seed + 1]
        degree = int(hi - lo)
        if degree == 0:
            continue
        examined += degree
        neighborhood = indices[lo:hi]
        if degree <= fanout:
            chosen = neighborhood
        else:
            chosen = neighborhood[rng.choice(degree, size=fanout, replace=False)]
        srcs.append(chosen)
        dsts.append(np.full(chosen.size, seed, dtype=INDEX_DTYPE))
    if srcs:
        return np.concatenate(srcs), np.concatenate(dsts), examined
    empty = np.empty(0, dtype=INDEX_DTYPE)
    return empty, empty, examined


def reference_block_locals(src_g, dst_g, dst_nodes):
    """The pre-vectorization relabel: a Python dict + ``np.fromiter``."""
    extra = np.setdiff1d(np.unique(src_g), dst_nodes, assume_unique=False)
    src_nodes = np.concatenate([dst_nodes, extra])
    lookup = {int(n): i for i, n in enumerate(src_nodes)}
    src_local = np.fromiter((lookup[int(s)] for s in src_g),
                            count=src_g.size, dtype=INDEX_DTYPE)
    dst_local = np.fromiter((lookup[int(d)] for d in dst_g),
                            count=dst_g.size, dtype=INDEX_DTYPE)
    return src_nodes, src_local, dst_local


def powerlaw_csr(num_nodes, seed):
    """CSR with shifted zipf out-degrees and duplicate-free neighbor lists
    (each row is a contiguous id range starting at a random base).  The
    degree shift keeps every degree above the fanout — as in the paper's
    datasets (e.g. Reddit's average degree 492 vs fanouts 25/10), it is the
    subsampling path that dominates sampler runtime."""
    rng = np.random.default_rng(seed)
    degrees = np.minimum(rng.zipf(1.5, size=num_nodes) + 15, 512).astype(INDEX_DTYPE)
    indptr = np.zeros(num_nodes + 1, dtype=INDEX_DTYPE)
    indptr[1:] = np.cumsum(degrees)
    bases = rng.integers(0, num_nodes, size=num_nodes)
    offsets = (np.arange(int(degrees.sum()), dtype=INDEX_DTYPE)
               - np.repeat(indptr[:-1], degrees))
    indices = (np.repeat(bases, degrees) + offsets) % num_nodes
    return indptr, indices


def _run():
    indptr, indices = powerlaw_csr(NUM_NODES, seed=0)
    batch_rng = np.random.default_rng(1)
    batches = [batch_rng.choice(NUM_NODES, size=BATCH_SIZE, replace=False)
               for _ in range(NUM_BATCHES)]

    # --- wall clock: full per-batch pipeline (sample + relabel) ---
    def run_old():
        rng = np.random.default_rng(2)
        for seeds in batches:
            src, dst, _ = reference_sample_block_neighbors(
                indptr, indices, seeds, FANOUT, rng)
            reference_block_locals(src, dst, seeds)

    def run_new():
        rng = np.random.default_rng(2)
        for seeds in batches:
            src, dst, _ = sample_block_neighbors(
                indptr, indices, seeds, FANOUT, rng)
            block_locals(src, dst, seeds)

    def best_of(fn, repeats=7):
        # Best-of-N wall clock: scheduler noise on shared runners only
        # ever inflates a measurement, so the minimum is the estimate.
        fn()  # warm-up
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    old_s = best_of(run_old)
    new_s = best_of(run_new)

    # --- distribution equivalence under a pinned seed ---
    seeds = batches[0]
    new = sample_block_neighbors(indptr, indices, seeds, FANOUT,
                                 np.random.default_rng(3))
    ref = reference_sample_block_neighbors(indptr, indices, seeds, FANOUT,
                                           np.random.default_rng(3))
    assert np.array_equal(new[1], ref[1]), "dst arrays must be identical"
    assert new[2] == ref[2], "examined counts must be identical"
    for seed in seeds:
        mine = new[0][new[1] == seed]
        hood = indices[indptr[seed]:indptr[seed + 1]]
        assert mine.size == min(hood.size, FANOUT)
        assert mine.size == np.unique(mine).size
        assert np.isin(mine, hood).all()

    # Marginal keep-frequency on the highest-degree node: each neighbor
    # should appear with probability FANOUT / degree.
    hub = int(np.argmax(np.diff(indptr)))
    degree = int(indptr[hub + 1] - indptr[hub])
    trials = 4000
    src, _, _ = sample_block_neighbors(
        indptr, indices, np.full(trials, hub), FANOUT,
        np.random.default_rng(4))
    hood = indices[indptr[hub]:indptr[hub + 1]]
    freq = np.bincount(src, minlength=NUM_NODES)[hood] / trials
    expected = FANOUT / degree
    max_err = float(np.abs(freq - expected).max())

    return {
        "old_ms_per_batch": 1000.0 * old_s / NUM_BATCHES,
        "new_ms_per_batch": 1000.0 * new_s / NUM_BATCHES,
        "speedup": old_s / new_s,
        "hub_degree": degree,
        "freq_max_abs_err": max_err,
    }


def test_ablation_sampler_vectorization(once):
    row = once(_run)

    lines = [
        f"Ablation: vectorized sampler vs per-seed loop "
        f"({NUM_NODES:,} nodes, batch {BATCH_SIZE}, fanout {FANOUT}, "
        f"{NUM_BATCHES} batches)",
        f"  per-seed loop   {row['old_ms_per_batch']:>9.2f} ms/batch",
        f"  vectorized      {row['new_ms_per_batch']:>9.2f} ms/batch",
        f"  speedup         {row['speedup']:>9.1f}x",
        f"  hub marginal |freq - fanout/degree| <= "
        f"{row['freq_max_abs_err']:.4f} (degree {row['hub_degree']})",
    ]
    emit("ablation_sampler_vectorization", "\n".join(lines))

    assert row["speedup"] >= MIN_SPEEDUP
    # Uniform without-replacement marginals: every neighbor of the hub is
    # kept with probability fanout/degree (binomial noise at 4000 trials).
    assert row["freq_max_abs_err"] < 0.05
