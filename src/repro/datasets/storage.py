"""On-disk dataset storage (.npz + JSON stats sidecar).

The paper's "data loading" phase reads the raw dataset from storage and
builds a framework graph object.  To make that a real, measurable step we
serialize graphs to disk and read them back; the *charged* read cost uses
the logical byte sizes so loading Reddit costs like loading 115 M edges.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import DatasetError
from repro.graph.formats import AdjacencyCSR
from repro.graph.graph import Graph, GraphStats, Split

_FORMAT_VERSION = 1


def save_graph(graph: Graph, directory: Union[str, Path]) -> Path:
    """Serialize ``graph`` into ``directory`` (arrays + stats sidecar)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    np.savez(
        directory / "arrays.npz",
        indptr=graph.adj.indptr,
        indices=graph.adj.indices,
        features=graph.features,
        labels=graph.labels,
        train_mask=graph.train_mask,
        val_mask=graph.val_mask,
        test_mask=graph.test_mask,
    )
    stats = asdict(graph.stats)
    stats["_format_version"] = _FORMAT_VERSION
    (directory / "stats.json").write_text(json.dumps(stats, indent=2))
    return directory


#: Failure modes of reading a damaged/truncated ``arrays.npz``: a torn
#: zip container, a corrupted deflate stream, a short read, or numpy
#: refusing the payload.
_NPZ_READ_ERRORS = (zipfile.BadZipFile, zlib.error, OSError, EOFError,
                    ValueError)


def load_graph(directory: Union[str, Path]) -> Graph:
    """Load a graph previously written by :func:`save_graph`.

    Damaged files — a torn write truncating ``arrays.npz``, corrupted
    or incomplete ``stats.json`` — surface as :class:`DatasetError`
    naming the offending path, never as raw ``zipfile``/``json``/
    ``KeyError`` internals.
    """
    directory = Path(directory)
    stats_path = directory / "stats.json"
    arrays_path = directory / "arrays.npz"
    if not stats_path.exists() or not arrays_path.exists():
        raise DatasetError(f"no stored dataset at {directory}")
    try:
        raw = json.loads(stats_path.read_text())
    except json.JSONDecodeError as exc:
        raise DatasetError(f"corrupted dataset stats {stats_path}: {exc}") from exc
    if not isinstance(raw, dict):
        raise DatasetError(f"corrupted dataset stats {stats_path}: not an object")
    version = raw.pop("_format_version", None)
    if version != _FORMAT_VERSION:
        raise DatasetError(f"unsupported dataset format version {version}")
    try:
        split = Split(**raw.pop("split"))
        stats = GraphStats(split=split, **raw)
    except (KeyError, TypeError) as exc:
        raise DatasetError(f"malformed dataset stats {stats_path}: {exc}") from exc
    try:
        arrays_file = np.load(arrays_path)
    except _NPZ_READ_ERRORS as exc:
        raise DatasetError(f"corrupted dataset arrays {arrays_path}: {exc}") from exc
    with arrays_file as arrays:
        try:
            adj = AdjacencyCSR(
                num_nodes=int(arrays["features"].shape[0]),
                indptr=arrays["indptr"],
                indices=arrays["indices"],
            )
            return Graph(
                adj,
                arrays["features"],
                arrays["labels"],
                arrays["train_mask"],
                arrays["val_mask"],
                arrays["test_mask"],
                stats,
            )
        except KeyError as exc:
            raise DatasetError(
                f"{arrays_path} is missing array {exc} "
                "(incomplete or foreign dataset archive)"
            ) from exc
        except _NPZ_READ_ERRORS as exc:
            raise DatasetError(
                f"corrupted dataset arrays {arrays_path}: {exc}") from exc


def stored_nbytes(stats: GraphStats) -> int:
    """Logical on-disk footprint charged when loading this dataset."""
    return stats.feature_nbytes() + stats.structure_nbytes() + stats.label_nbytes()
