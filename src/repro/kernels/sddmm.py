"""Per-edge kernels: g-SDDMM variants and segment softmax.

Attention layers compute a score per edge from the endpoint embeddings
(g-SDDMM in DGL's terminology) and normalize scores over each node's
incoming edges (segment softmax).  Outputs here are ``E x H`` with small
``H`` (heads), so even the fused attention path stores per-edge *scores* —
but never per-edge *feature vectors*.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.adj import SparseAdj
from repro.tensor.context import charge
from repro.tensor.tensor import FLOAT_DTYPE, Tensor


def sddmm_u_add_v(adj: SparseAdj, u_feat: Tensor, v_feat: Tensor,
                  family: str = "sddmm") -> Tensor:
    """``out[e] = u_feat[src[e]] + v_feat[dst[e]]`` (GAT's score assembly)."""
    if u_feat.shape[0] != adj.num_src or v_feat.shape[0] != adj.num_dst:
        raise ValueError("endpoint feature rows must match adjacency sides")
    out_data = (u_feat.data[adj.src] + v_feat.data[adj.dst]).astype(FLOAT_DTYPE)
    requires = u_feat.requires_grad or v_feat.requires_grad
    out = Tensor(
        out_data,
        device=adj.device,
        requires_grad=requires,
        work_scale=adj.edge_scale,
        _prev=tuple(t for t in (u_feat, v_feat) if t.requires_grad),
        _op="sddmm_u_add_v",
    )
    width = int(np.prod(out_data.shape[1:])) if out_data.ndim > 1 else 1
    e_log = adj.logical_num_edges
    charge(adj.device, "sddmm_u_add_v", family, flops=e_log * width,
           bytes_moved=4.0 * 3.0 * e_log * width)

    if out.requires_grad:
        def _backward() -> None:
            if u_feat.requires_grad:
                u_feat._accumulate(adj.sum_edges(out.grad, side="src"))
            if v_feat.requires_grad:
                v_feat._accumulate(adj.sum_edges(out.grad, side="dst"))
            charge(adj.device, "sddmm_u_add_v.bwd", family, flops=e_log * width,
                   bytes_moved=4.0 * 3.0 * e_log * width)
        out._backward = _backward
    return out


def sddmm_u_dot_v(adj: SparseAdj, u_feat: Tensor, v_feat: Tensor,
                  family: str = "sddmm") -> Tensor:
    """``out[e, h] = <u_feat[src[e], h], v_feat[dst[e], h]>`` (dot attention)."""
    if u_feat.ndim != 3 or v_feat.ndim != 3:
        raise ValueError("u_dot_v expects (N, H, D) endpoint features")
    out_data = np.einsum(
        "ehd,ehd->eh", u_feat.data[adj.src], v_feat.data[adj.dst]
    ).astype(FLOAT_DTYPE)
    requires = u_feat.requires_grad or v_feat.requires_grad
    out = Tensor(
        out_data,
        device=adj.device,
        requires_grad=requires,
        work_scale=adj.edge_scale,
        _prev=tuple(t for t in (u_feat, v_feat) if t.requires_grad),
        _op="sddmm_u_dot_v",
    )
    heads, dim = u_feat.shape[1], u_feat.shape[2]
    e_log = adj.logical_num_edges
    charge(adj.device, "sddmm_u_dot_v", family, flops=2.0 * e_log * heads * dim,
           bytes_moved=4.0 * 2.0 * e_log * heads * dim)

    if out.requires_grad:
        def _backward() -> None:
            if u_feat.requires_grad:
                u_feat._accumulate(
                    adj.sum_edges(out.grad[:, :, None] * v_feat.data[adj.dst], side="src")
                )
            if v_feat.requires_grad:
                v_feat._accumulate(
                    adj.sum_edges(out.grad[:, :, None] * u_feat.data[adj.src], side="dst")
                )
            charge(adj.device, "sddmm_u_dot_v.bwd", family,
                   flops=4.0 * e_log * heads * dim,
                   bytes_moved=4.0 * 4.0 * e_log * heads * dim)
        out._backward = _backward
    return out


def fused_gatv2_scores(adj: SparseAdj, u_feat: Tensor, v_feat: Tensor,
                       att: Tensor, negative_slope: float = 0.2,
                       family: str = "sddmm") -> Tensor:
    """GATv2 attention logits as one fused g-SDDMM kernel.

    ``out[e, h] = <att[h], leaky_relu(u_feat[src[e], h] + v_feat[dst[e], h])>``

    The per-edge ``E x H x D`` intermediate stays inside the kernel (never
    allocated on the device ledger) — this is DGLite's fused path.  The
    unfused PyGLite path builds the same computation from ``gather`` +
    elementwise ops and pays the materialization.
    """
    if u_feat.ndim != 3 or v_feat.ndim != 3 or att.ndim != 2:
        raise ValueError("fused_gatv2_scores expects (N,H,D) features, (H,D) att")
    summed = u_feat.data[adj.src] + v_feat.data[adj.dst]  # internal temp
    activated = np.where(summed > 0, summed, negative_slope * summed)
    out_data = np.einsum("ehd,hd->eh", activated, att.data).astype(FLOAT_DTYPE)
    requires = u_feat.requires_grad or v_feat.requires_grad or att.requires_grad
    out = Tensor(
        out_data,
        device=adj.device,
        requires_grad=requires,
        work_scale=adj.edge_scale,
        _prev=tuple(t for t in (u_feat, v_feat, att) if t.requires_grad),
        _op="fused_gatv2",
    )
    heads, dim = u_feat.shape[1], u_feat.shape[2]
    e_log = adj.logical_num_edges
    charge(adj.device, "fused_gatv2", family, flops=4.0 * e_log * heads * dim,
           bytes_moved=4.0 * 3.0 * e_log * heads * dim)

    if out.requires_grad:
        def _backward() -> None:
            slope = np.where(summed > 0, 1.0, negative_slope).astype(FLOAT_DTYPE)
            # d activated[e,h,d] = out.grad[e,h] * att[h,d] * slope[e,h,d]
            grad_act = out.grad[:, :, None] * att.data[None, :, :] * slope
            if u_feat.requires_grad:
                u_feat._accumulate(adj.sum_edges(grad_act, side="src"))
            if v_feat.requires_grad:
                v_feat._accumulate(adj.sum_edges(grad_act, side="dst"))
            if att.requires_grad:
                att._accumulate(
                    np.einsum("ehd,eh->hd", activated, out.grad).astype(FLOAT_DTYPE)
                )
            charge(adj.device, "fused_gatv2.bwd", family,
                   flops=8.0 * e_log * heads * dim,
                   bytes_moved=4.0 * 6.0 * e_log * heads * dim)
        out._backward = _backward
    return out


def segment_softmax(adj: SparseAdj, scores: Tensor, family: str = "sddmm") -> Tensor:
    """Softmax of per-edge scores over each destination's incoming edges."""
    if scores.shape[0] != adj.num_edges:
        raise ValueError("scores must have one row per edge")
    dst = adj.dst
    width_shape = scores.shape[1:]
    # Per-destination max for numerical stability (reduceat fast path).
    max_buf = adj.max_edges(scores.data)
    shifted = scores.data - max_buf[dst]
    exp = np.exp(shifted).astype(FLOAT_DTYPE)
    sum_buf = adj.sum_edges(exp, side="dst")
    out_data = exp / np.maximum(sum_buf[dst], np.finfo(FLOAT_DTYPE).tiny)
    out = Tensor(
        out_data,
        device=adj.device,
        requires_grad=scores.requires_grad,
        work_scale=adj.edge_scale,
        _prev=(scores,) if scores.requires_grad else (),
        _op="segment_softmax",
    )
    width = int(np.prod(width_shape)) if width_shape else 1
    e_log = adj.logical_num_edges
    charge(adj.device, "segment_softmax", family, flops=6.0 * e_log * width,
           bytes_moved=4.0 * 4.0 * e_log * width)

    if out.requires_grad:
        def _backward() -> None:
            weighted = out.grad * out.data
            dot_buf = adj.sum_edges(weighted, side="dst")
            scores._accumulate(weighted - out.data * dot_buf[dst])
            charge(adj.device, "segment_softmax.bwd", family, flops=4.0 * e_log * width,
                   bytes_moved=4.0 * 4.0 * e_log * width)
        out._backward = _backward
    return out
