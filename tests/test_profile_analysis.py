"""Tests for the offline profiler (``repro profile``).

Covers byte-determinism of the ``repro.profile/1`` artifacts across
same-seed runs, critical-path extraction (coverage, slack, tie-breaks),
roofline attribution and its zero-peak guards, folded-flamegraph
exclusive-time accounting, diff alignment edge cases (missing spans,
renamed phases), the fastpath-on/off acceptance diff, the bench-gate
attribution hints, schema round-trips, and the CLI surfaces.
"""

import json

import pytest

from repro.bench.gate import attribution_hints, compare_artifacts, inject_slowdown
from repro.bench.harness import run_training_experiment
from repro.bench.sweep import SweepCell, run_cell
from repro.cli import main as cli_main
from repro.errors import BenchmarkError
from repro.profiling.analysis import (
    analyze_run_dir,
    diff_run_dirs,
    format_diff_report,
    format_profile_report,
    load_run_bundle,
    validate_profile_payload,
    write_profile_json,
)
from repro.profiling.analysis.bundle import LaneInterval, RunBundle
from repro.profiling.analysis.critical_path import extract_critical_path
from repro.profiling.analysis.diff import classify_deltas, span_path_totals
from repro.profiling.analysis.flame import folded_stacks, render_folded
from repro.profiling.analysis.roofline import pct_of_peak, roofline_attribution
from repro.profiling.analysis.schema import load_profile_json
from repro.profiling.kernel_report import (
    format_metric_kernel_table,
    kernel_rows_from_metrics,
)
from repro.profiling.profiler import PhaseProfiler
from repro.simtime import VirtualClock


def _train_run(out_dir, seed=0, fastpath=True):
    return run_training_experiment(
        "dglite", "ppi", "graphsage", epochs=2,
        representative_batches=2, seed=seed, telemetry_dir=str(out_dir),
        fastpath=fastpath,
    )


@pytest.fixture(scope="module")
def analyzed_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("profiled")
    _train_run(out)
    payload = analyze_run_dir(out)
    return out, payload


# ----------------------------------------------------------------------
# unit: critical path
# ----------------------------------------------------------------------
def _bundle(intervals, manifest=None):
    return RunBundle(manifest=manifest or {"total_seconds": 1.0},
                     intervals=intervals)


class TestCriticalPath:
    def test_empty_run(self):
        result = extract_critical_path(_bundle([]))
        assert result["makespan"] == 0.0
        assert result["coverage"] == 0.0
        assert result["segments"] == []

    def test_sequential_intervals_fully_cover(self):
        intervals = [
            LaneInterval("cpu", "a", 0.0, 1.0),
            LaneInterval("cpu", "b", 1.0, 3.0),
        ]
        result = extract_critical_path(_bundle(intervals))
        assert result["makespan"] == pytest.approx(3.0)
        assert result["critical_seconds"] == pytest.approx(3.0)
        assert result["coverage"] == pytest.approx(1.0)
        assert result["idle_seconds"] == pytest.approx(0.0)
        assert [s["name"] for s in result["segments"]] == ["a", "b"]

    def test_overlapped_lane_gets_slack_not_path(self):
        # GPU busy the whole time; PCIe overlapped inside it.
        intervals = [
            LaneInterval("gpu", "kernel", 0.0, 4.0),
            LaneInterval("pcie", "h2d", 1.0, 2.0),
        ]
        result = extract_critical_path(_bundle(intervals))
        assert [s["lane"] for s in result["segments"]] == ["gpu"]
        assert result["by_lane"]["pcie"]["critical_seconds"] == 0.0
        assert result["by_lane"]["pcie"]["slack_seconds"] == pytest.approx(3.0)
        assert result["by_lane"]["gpu"]["slack_seconds"] == pytest.approx(0.0)

    def test_gap_counts_as_idle(self):
        intervals = [
            LaneInterval("cpu", "a", 0.0, 1.0),
            LaneInterval("cpu", "b", 2.0, 3.0),
        ]
        result = extract_critical_path(_bundle(intervals))
        assert result["idle_seconds"] == pytest.approx(1.0)
        assert result["critical_seconds"] == pytest.approx(2.0)

    def test_tie_break_prefers_longest_then_lexical(self):
        # Both end at t=2; the longer one bounds the path.
        intervals = [
            LaneInterval("cpu", "short", 1.5, 2.0),
            LaneInterval("gpu", "long", 0.0, 2.0),
        ]
        result = extract_critical_path(_bundle(intervals))
        assert [s["name"] for s in result["segments"]] == ["long"]

    def test_consecutive_same_kernel_segments_merge(self):
        intervals = [LaneInterval("cpu", "k", float(i), float(i) + 1.0)
                     for i in range(5)]
        result = extract_critical_path(_bundle(intervals))
        assert len(result["segments"]) == 1
        assert result["segments"][0]["count"] == 5
        assert result["segments"][0]["seconds"] == pytest.approx(5.0)


# ----------------------------------------------------------------------
# unit: roofline + guards (satellite: zero-peak / zero-total safety)
# ----------------------------------------------------------------------
class TestRooflineGuards:
    def test_pct_of_peak_zero_peak(self):
        assert pct_of_peak(10.0, 0.0) == 0.0
        assert pct_of_peak(10.0, -1.0) == 0.0
        assert pct_of_peak(10.0, None) == 0.0
        assert pct_of_peak(0.0, 100.0) == 0.0

    def test_pct_of_peak_normal(self):
        assert pct_of_peak(50.0, 100.0) == pytest.approx(0.5)

    def test_fractions_zero_total_returns_zeros(self):
        profiler = PhaseProfiler(VirtualClock())
        fractions = profiler.fractions()
        assert all(v == 0.0 for v in fractions.values())

    def test_roofline_without_hardware_section_never_raises(self):
        manifest = {
            "total_seconds": 1.0,
            "hardware": {},
            "metrics": [
                {"name": "kernel.flops", "kind": "counter",
                 "labels": {"device": "cpu0", "kernel": "matmul"},
                 "value": 1e9},
                {"name": "kernel.busy_seconds", "kind": "counter",
                 "labels": {"device": "cpu0", "kernel": "matmul"},
                 "value": 0.0},
            ],
        }
        result = roofline_attribution(RunBundle(manifest=manifest))
        entry = result["kernels"][0]
        assert entry["bound"] == "unknown"  # no peaks recorded
        assert entry["pct_peak_compute"] == 0.0
        assert entry["pct_peak_memory"] == 0.0

    def test_zero_work_kernel_is_overhead(self):
        manifest = {
            "total_seconds": 1.0,
            "hardware": {"devices": {"cpu0": {"peak_flops": 1e12,
                                              "mem_bandwidth": 1e11}}},
            "metrics": [
                {"name": "kernel.busy_seconds", "kind": "counter",
                 "labels": {"device": "cpu0", "kernel": "sample"},
                 "value": 0.5},
            ],
        }
        result = roofline_attribution(RunBundle(manifest=manifest))
        assert result["kernels"][0]["bound"] == "overhead"
        assert result["kernels"][0]["intensity_flops_per_byte"] is None


# ----------------------------------------------------------------------
# unit: flamegraph folding
# ----------------------------------------------------------------------
class TestFlame:
    SPANS = [
        {"id": 1, "parent": None, "name": "train", "dur": 1.0, "credited": 0.0},
        {"id": 2, "parent": 1, "name": "forward", "dur": 0.6, "credited": 0.0},
        {"id": 3, "parent": 1, "name": "backward", "dur": 0.3, "credited": 0.0},
    ]

    def test_exclusive_time_subtracts_children(self):
        stacks = folded_stacks(self.SPANS)
        assert stacks["train"] == pytest.approx(100000)  # 1.0 - 0.9 in us
        assert stacks["train;forward"] == 600000
        assert stacks["train;backward"] == 300000

    def test_render_sorted_with_trailing_newline(self):
        text = render_folded(folded_stacks(self.SPANS))
        lines = text.splitlines()
        assert lines == sorted(lines)
        assert text.endswith("\n")
        assert render_folded({}) == ""

    def test_negative_exclusive_clamped(self):
        spans = [
            {"id": 1, "parent": None, "name": "p", "dur": 0.1, "credited": 0.0},
            {"id": 2, "parent": 1, "name": "c", "dur": 0.5, "credited": 0.0},
        ]
        stacks = folded_stacks(spans)
        assert "p" not in stacks  # clamped to zero, dropped
        assert stacks["p;c"] == 500000


# ----------------------------------------------------------------------
# unit: diff alignment
# ----------------------------------------------------------------------
class TestDiffAlignment:
    def test_classify_grown_and_shrunk(self):
        result = classify_deltas({"a": 1.0, "b": 2.0}, {"a": 1.5, "b": 1.0})
        assert result["grown"][0]["key"] == "a"
        assert result["shrunk"][0]["key"] == "b"
        assert result["appeared"] == [] and result["vanished"] == []

    def test_missing_span_lands_in_vanished(self):
        result = classify_deltas({"train;old": 1.0}, {})
        assert result["vanished"][0]["key"] == "train;old"
        assert result["vanished"][0]["delta"] == pytest.approx(-1.0)

    def test_renamed_phase_is_vanished_plus_appeared(self):
        result = classify_deltas({"train;fwd": 1.0}, {"train;forward": 1.0})
        assert result["vanished"][0]["key"] == "train;fwd"
        assert result["appeared"][0]["key"] == "train;forward"
        assert result["grown"] == [] and result["shrunk"] == []

    def test_sub_epsilon_delta_ignored(self):
        result = classify_deltas({"a": 1.0}, {"a": 1.0 + 1e-12})
        assert all(not bucket for bucket in result.values())

    def test_span_path_totals_aggregates_duplicates(self):
        spans = [
            {"id": 1, "parent": None, "name": "epoch", "dur": 1.0},
            {"id": 2, "parent": None, "name": "epoch", "dur": 2.0},
        ]
        assert span_path_totals(spans) == {"epoch": pytest.approx(3.0)}


# ----------------------------------------------------------------------
# end-to-end: analyze + determinism
# ----------------------------------------------------------------------
class TestAnalyzeEndToEnd:
    def test_artifacts_written_and_schema_valid(self, analyzed_run):
        out, payload = analyzed_run
        assert (out / "profile.json").exists()
        assert (out / "flame.folded").exists()
        on_disk = load_profile_json(out / "profile.json")
        assert validate_profile_payload(on_disk) == []
        assert on_disk["kind"] == "analysis"

    def test_critical_path_covers_run(self, analyzed_run):
        _, payload = analyzed_run
        critical = payload["critical_path"]
        assert critical["makespan"] > 0
        assert 0.9 <= critical["coverage"] <= 1.0 + 1e-9
        assert critical["by_lane"]  # per-lane slack present
        for stats in critical["by_lane"].values():
            assert stats["slack_seconds"] >= 0.0

    def test_roofline_classifies_known_kernels(self, analyzed_run):
        _, payload = analyzed_run
        bounds = {e["kernel"]: e["bound"]
                  for e in payload["roofline"]["kernels"]}
        assert bounds["matmul"] == "compute"
        assert bounds["spmm.fwd"] == "memory"
        assert bounds["neighbor.sample"] == "overhead"
        for entry in payload["roofline"]["kernels"]:
            assert 0.0 <= entry["pct_peak_compute"] <= 1.0

    def test_flame_totals_match_file(self, analyzed_run):
        out, payload = analyzed_run
        text = (out / "flame.folded").read_text()
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in text.splitlines())
        assert total == payload["flame"]["total_micros"]
        assert len(text.splitlines()) == payload["flame"]["stacks"]

    def test_byte_identical_across_same_seed_runs(self, analyzed_run, tmp_path):
        out, _ = analyzed_run
        rerun = tmp_path / "rerun"
        _train_run(rerun)
        analyze_run_dir(rerun)
        assert (rerun / "profile.json").read_bytes() \
            == (out / "profile.json").read_bytes()
        assert (rerun / "flame.folded").read_bytes() \
            == (out / "flame.folded").read_bytes()

    def test_report_renders(self, analyzed_run):
        _, payload = analyzed_run
        text = format_profile_report(payload)
        assert "critical path:" in text
        assert "roofline:" in text
        assert "flamegraph:" in text

    def test_missing_dir_raises_benchmark_error(self, tmp_path):
        with pytest.raises(BenchmarkError, match="not a telemetry directory"):
            analyze_run_dir(tmp_path / "nope")


class TestDiffEndToEnd:
    def test_self_diff_is_identical(self, analyzed_run):
        out, _ = analyzed_run
        payload = diff_run_dirs(out, out)
        assert validate_profile_payload(payload) == []
        assert payload["identical"] is True
        assert payload["delta_total_seconds"] == 0.0
        text = format_diff_report(payload)
        assert "identical on the virtual clock" in text

    def test_fastpath_diff_attributes_accelerated_kernels(self, analyzed_run,
                                                          tmp_path):
        out, _ = analyzed_run
        ref = tmp_path / "ref"
        _train_run(ref, fastpath=False)
        payload = diff_run_dirs(out, ref)
        # Charged-cost invariance: virtual axes all empty...
        assert payload["delta_total_seconds"] == pytest.approx(0.0, abs=1e-9)
        for axis in ("spans", "phases", "kernel_families", "kernels"):
            assert all(not bucket for bucket in payload[axis].values())
        # ...but the schedule delta names the accelerated kernel paths.
        assert payload["identical"] is False
        vanished = {e["key"] for e in payload["fastpath"]["vanished"]}
        appeared = {e["key"] for e in payload["fastpath"]["appeared"]}
        assert "csr_reuse/hit" in vanished
        assert "sorted_block/hit" in vanished
        assert "csr_reuse/miss" in appeared
        text = format_diff_report(payload)
        assert "kernel schedule: fast -> reference" in text
        assert "csr_reuse" in text

    def test_different_seed_diff_has_nonzero_axes(self, analyzed_run, tmp_path):
        out, _ = analyzed_run
        other = tmp_path / "seed1"
        _train_run(other, seed=1)
        payload = diff_run_dirs(out, other)
        assert payload["identical"] is False
        moved = sum(len(bucket) for axis in ("spans", "phases")
                    for bucket in payload[axis].values())
        assert moved > 0


# ----------------------------------------------------------------------
# schema round-trip
# ----------------------------------------------------------------------
class TestSchema:
    def test_round_trip(self, analyzed_run, tmp_path):
        _, payload = analyzed_run
        clean = {k: v for k, v in payload.items() if k != "artifacts"}
        path = write_profile_json(tmp_path / "p.json", clean)
        assert load_profile_json(path) == json.loads(json.dumps(clean))

    def test_rejects_wrong_schema(self):
        assert validate_profile_payload({"schema": "nope", "kind": "analysis"})
        assert validate_profile_payload([]) == \
            ["profile payload is not a JSON object"]

    def test_rejects_malformed_diff(self):
        payload = {"schema": "repro.profile/1", "kind": "diff"}
        problems = validate_profile_payload(payload)
        assert any("delta_total_seconds" in p for p in problems)
        assert any("fastpath" in p for p in problems)

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError, match="invalid profile artifact"):
            write_profile_json(tmp_path / "bad.json",
                               {"schema": "repro.profile/1", "kind": "bogus"})
        assert not (tmp_path / "bad.json").exists()


# ----------------------------------------------------------------------
# kernel report (satellite: --top / --sort)
# ----------------------------------------------------------------------
class TestKernelRows:
    def _metrics(self, analyzed_run):
        out, _ = analyzed_run
        return load_run_bundle(out).metric_records

    def test_sort_virtual_descending(self, analyzed_run):
        rows = kernel_rows_from_metrics(self._metrics(analyzed_run))
        seconds = [row["seconds"] for row in rows]
        assert seconds == sorted(seconds, reverse=True)

    def test_sort_flops_and_top(self, analyzed_run):
        rows = kernel_rows_from_metrics(self._metrics(analyzed_run),
                                        sort="flops", top=3)
        assert len(rows) == 3
        assert rows[0]["kernel"] == "matmul.bwd"
        flops = [row["flops"] for row in rows]
        assert flops == sorted(flops, reverse=True)

    def test_unknown_sort_raises(self):
        with pytest.raises(ValueError, match="unknown sort axis"):
            kernel_rows_from_metrics([], sort="wall")

    def test_table_renders(self, analyzed_run):
        rows = kernel_rows_from_metrics(self._metrics(analyzed_run), top=2)
        table = format_metric_kernel_table(rows, sort="virtual")
        assert "sorted by virtual" in table
        assert len(table.splitlines()) == 5  # title + header + rule + 2 rows


# ----------------------------------------------------------------------
# bench-gate attribution hints
# ----------------------------------------------------------------------
class TestGateHints:
    @pytest.fixture(scope="class")
    def swept_cell(self):
        cell = SweepCell("conv", "dglite", "gcn", "ppi", 0.5, True)
        return run_cell(cell, seeds=(0,))

    def test_cells_record_attribution(self, swept_cell):
        attribution = swept_cell["attribution"]
        assert attribution["seed"] == 0
        assert attribution["phases"]
        assert attribution["kernel_families"]

    def test_injected_slowdown_surfaces_in_hints(self, swept_cell):
        artifact = {"schema": "repro.bench.sweep/1", "area": "kernels",
                    "seeds": [0], "provenance": {}, "cells": [swept_cell]}
        doctored = inject_slowdown(artifact, swept_cell["id"], 2.0)
        result = compare_artifacts(artifact, doctored)
        assert not result.passed
        hints = result.regressions[0].hints
        assert hints
        assert any("grown" in hint for hint in hints)

    def test_hints_empty_without_attribution(self):
        assert attribution_hints({}, {}) == ()

    def test_unchanged_attribution_notes_it(self, swept_cell):
        hints = attribution_hints(swept_cell, swept_cell)
        assert hints == ("attribution unchanged — regression is outside the "
                         "recorded phase/kernel breakdown (wall-only?)",)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_profile_analyze_and_diff(self, analyzed_run, capsys):
        out, _ = analyzed_run
        assert cli_main(["profile", "analyze", str(out)]) == 0
        assert "critical path:" in capsys.readouterr().out
        assert cli_main(["profile", "diff", str(out), str(out)]) == 0
        assert "identical on the virtual clock" in capsys.readouterr().out

    def test_profile_analyze_missing_dir_fails(self, tmp_path, capsys):
        assert cli_main(["profile", "analyze", str(tmp_path / "nope")]) == 1
        assert "not a telemetry directory" in capsys.readouterr().out

    def test_profile_diff_writes_artifact(self, analyzed_run, tmp_path,
                                          capsys):
        out, _ = analyzed_run
        dest = tmp_path / "diff.json"
        assert cli_main(["profile", "diff", str(out), str(out),
                         "--out", str(dest)]) == 0
        assert validate_profile_payload(load_profile_json(dest)) == []

    def test_report_top_sort_flags(self, analyzed_run, capsys):
        out, _ = analyzed_run
        assert cli_main(["report", "--telemetry", str(out),
                         "--top", "2", "--sort", "bytes"]) == 0
        text = capsys.readouterr().out
        assert "sorted by bytes" in text
        assert "matmul.bwd" in text
