"""Tests for the declarative experiment suite runner."""

import json

import pytest

from repro.bench.suite import (
    compare_results,
    load_results,
    run_suite,
    run_suite_file,
    save_results,
)
from repro.errors import BenchmarkError

SMALL_SUITE = [
    {"kind": "loader", "framework": "dglite", "dataset": "ppi"},
    {"kind": "sampler", "framework": "dglite", "dataset": "ppi",
     "sampler": "saint_rw"},
    {"kind": "conv", "framework": "pyglite", "dataset": "ppi", "conv": "sage"},
    {"kind": "train", "framework": "dglite", "dataset": "ppi",
     "model": "graphsage", "epochs": 1, "representative_batches": 1},
    {"kind": "fullbatch", "framework": "pyglite", "dataset": "ppi",
     "epochs": 1},
]


class TestRunSuite:
    def test_runs_every_spec(self):
        records = run_suite(SMALL_SUITE)
        assert len(records) == len(SMALL_SUITE)
        for record, spec in zip(records, SMALL_SUITE):
            assert record["spec"] == spec
            assert "label" in record

    def test_train_record_fields(self):
        record = run_suite(SMALL_SUITE[3:4])[0]
        assert record["total_time"] > 0
        assert record["energy"] > 0
        assert not record["oom"]

    def test_conv_oom_surfaces_in_record(self):
        record = run_suite([{"kind": "conv", "framework": "pyglite",
                             "dataset": "reddit", "conv": "gat",
                             "device": "gpu"}])[0]
        assert record["oom"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(BenchmarkError):
            run_suite([{"kind": "quantum"}])

    def test_non_dict_spec_rejected(self):
        with pytest.raises(BenchmarkError):
            run_suite(["train"])

    def test_deterministic_across_runs(self):
        a = run_suite(SMALL_SUITE[:2])
        b = run_suite(SMALL_SUITE[:2])
        assert compare_results(a, b, tolerance=1e-9) == []


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        records = run_suite(SMALL_SUITE[:2])
        path = save_results(records, tmp_path / "out" / "results.json")
        assert load_results(path) == json.loads(json.dumps(records))

    def test_run_suite_file(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(SMALL_SUITE[:1]))
        records = run_suite_file(path)
        assert len(records) == 1

    def test_suite_file_must_be_list(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps({"kind": "loader"}))
        with pytest.raises(BenchmarkError):
            run_suite_file(path)


class TestCompare:
    def test_detects_drift(self):
        old = [{"label": "x", "seconds": 1.0}]
        new = [{"label": "x", "seconds": 1.2}]
        problems = compare_results(old, new, tolerance=0.1)
        assert len(problems) == 1
        assert "seconds" in problems[0]

    def test_within_tolerance_is_clean(self):
        old = [{"label": "x", "seconds": 1.0}]
        new = [{"label": "x", "seconds": 1.04}]
        assert compare_results(old, new, tolerance=0.05) == []

    def test_count_mismatch(self):
        assert compare_results([], [{"label": "x"}])

    def test_missing_field_reported(self):
        old = [{"label": "x", "seconds": 1.0}]
        new = [{"label": "x"}]
        assert "missing" in compare_results(old, new)[0]
