"""The bounded-prefetch pipeline executor.

``run_epoch`` pulls items from a source iterator and pushes each through
a chain of :class:`Stage`\\ s.  Real work executes item-sequentially
inside ``clock.deferred()`` (numerics and RNG order identical to the
serial schedule); the measured cost of every stage execution is then
placed on the stage's resource lane by a :class:`~repro.simtime.LaneScheduler`.
Bounded-queue backpressure is the scheduling constraint that item ``i``'s
first stage cannot start before item ``i - depth``'s last stage finished
— so ``depth-1`` reproduces the serial schedule exactly, and deeper
queues hide sampling and H2D behind GPU compute.

The ``sampler.worker`` fault seam is honoured mid-pipeline: a crashed
worker wastes ``severity`` of the stage's cost and pays the respawn
backoff inside the affected job; past the policy's retry budget the
pipeline degrades to depth-1 on a single worker lane (the pipelined
analogue of falling back to inline sampling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import RecoveryExhausted
from repro.hardware.machine import Machine
from repro.resilience import runtime as resilience
from repro.simtime import DeferredRecord, LaneJob, LaneScheduler
from repro.telemetry import runtime as telemetry
from repro.telemetry.runtime import maybe_span

#: Exclusive phase attribution priority: when jobs overlap on the
#: timeline, the visible phase is the paper's foreground activity.
_PHASE_PRIORITY = ("training", "data_movement", "sampling", "data_loading")


@dataclass
class Stage:
    """One datapipe stage: a callable plus its lane/phase declaration.

    ``fn(index, payload) -> payload`` runs the real work; its clock cost
    is measured, scaled by ``scale`` (sublinear worker efficiency), and
    scheduled on ``lanes[index % len(lanes)]``.  ``phase`` names the
    four-phase bucket the stage's timeline share reports under;
    ``fault_site`` arms a resilience seam per execution.
    """

    name: str
    phase: str
    fn: Callable[[int, Any], Any]
    lanes: Tuple[str, ...]
    scale: float = 1.0
    fault_site: str = ""

    def lane_for(self, index: int) -> str:
        return self.lanes[index % len(self.lanes)]


@dataclass
class EpochReport:
    """Outcome of one pipelined epoch."""

    outputs: List[Any]
    phases: Dict[str, float]
    elapsed: float
    executed: int
    extrapolated: int
    max_in_flight: int = 1
    degraded: bool = False
    jobs: List[LaneJob] = field(default_factory=list)
    lane_busy: Dict[str, float] = field(default_factory=dict)

    @property
    def overlap_seconds(self) -> float:
        """Scheduled lane busy time in excess of elapsed wall time."""
        return max(0.0, sum(self.lane_busy.values()) - self.elapsed)


def run_epoch(
    machine: Machine,
    stages: Sequence[Stage],
    source: Iterable[Any],
    depth: int,
    *,
    limit: Optional[int] = None,
    extrapolate_to: int = 0,
    label: str = "",
) -> EpochReport:
    """Stream ``source`` through ``stages`` with ``depth`` items in flight.

    At most ``limit`` items execute for real (the representative batches);
    when ``extrapolate_to`` exceeds the executed count, the remaining
    items are replayed symbolically through the same scheduler at the
    measured mean per-stage cost, so extrapolated epochs respect the
    same lane contention and backpressure as executed ones.
    """
    if depth < 1:
        raise ValueError("pipeline depth must be >= 1")
    clock = machine.clock
    sched = LaneScheduler(clock)
    state = _EpochState(machine=machine, sched=sched, depth=depth)
    outputs: List[Any] = []

    for index, payload in enumerate(source):
        if limit is not None and index >= limit:
            break
        prev: Optional[LaneJob] = None
        first: Optional[LaneJob] = None
        for stage in stages:
            with clock.deferred() as rec:
                payload = stage.fn(index, payload)
            prev = state.schedule(stage, index, rec, prev)
            first = first or prev
        state.finish_item(first, prev)
        outputs.append(payload)

    executed = len(outputs)
    extrapolated = max(0, extrapolate_to - executed)
    if extrapolated and executed:
        state.extrapolate(stages, executed, extrapolate_to)

    lane_busy = sched.lane_busy()
    elapsed = sched.drain()
    phases = _attribute_phases(state.phase_jobs, sched.origin, sched.finish)
    state.record_metrics(label)
    return EpochReport(
        outputs=outputs,
        phases=phases,
        elapsed=elapsed,
        executed=executed,
        extrapolated=extrapolated,
        max_in_flight=state.max_in_flight,
        degraded=state.degraded,
        jobs=list(sched.jobs),
        lane_busy=lane_busy,
    )


class _EpochState:
    """Scheduling state threaded through one ``run_epoch`` call."""

    def __init__(self, machine: Machine, sched: LaneScheduler, depth: int) -> None:
        self.machine = machine
        self.sched = sched
        self.depth = depth
        self.degraded = False
        self.max_in_flight = 1
        self.terminal: List[LaneJob] = []
        self.phase_jobs: List[Tuple[float, float, str]] = []
        #: Clean (pre-fault, post-scale) per-stage sums for extrapolation.
        self.stage_totals: Dict[str, float] = {}
        self.stage_busy: Dict[str, Dict[str, float]] = {}
        self.stage_waits: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    def schedule(self, stage: Stage, index: int, rec: DeferredRecord,
                 prev: Optional[LaneJob], symbolic: bool = False) -> LaneJob:
        scale = 1.0 if self.degraded else stage.scale
        clean = DeferredRecord(
            total=rec.total * scale,
            busy={d: s * scale for d, s in rec.busy.items() if s > 0},
        )
        if not symbolic:
            totals = self.stage_totals
            totals[stage.name] = totals.get(stage.name, 0.0) + clean.total
            busy_bucket = self.stage_busy.setdefault(stage.name, {})
            for device, seconds in clean.busy.items():
                busy_bucket[device] = busy_bucket.get(device, 0.0) + seconds
        record = clean
        # A degraded pipe no longer has a worker pool to crash: the site
        # is never armed again (mirrors the serial teardown semantics).
        if stage.fault_site and not symbolic and not self.degraded:
            record = self._survive_faults(stage, clean)
        deps = (prev,) if prev is not None else ()
        not_before = 0.0
        eff_depth = 1 if self.degraded else self.depth
        if prev is None and index >= eff_depth and self.terminal:
            gate = min(index - eff_depth, len(self.terminal) - 1)
            not_before = self.terminal[gate].end
        lane = stage.lanes[0] if self.degraded else stage.lane_for(index)
        job = self.sched.submit(lane, record, deps=deps, not_before=not_before,
                                tag=f"datapipe:{stage.name}")
        self.phase_jobs.append((job.start, job.end, stage.phase))
        self.stage_waits.setdefault(stage.name, []).append(job.wait)
        if not symbolic:
            with maybe_span(f"datapipe.{stage.name}", category="datapipe",
                            index=index, lane=lane,
                            scheduled_start=job.start, scheduled_end=job.end,
                            queue_wait=job.wait):
                pass
        return job

    def finish_item(self, first: Optional[LaneJob],
                    last: Optional[LaneJob]) -> None:
        if last is None:
            return
        # Queue depth when this item entered the pipe: itself plus every
        # earlier item still in flight at its first job's start time.
        in_flight = 1 + sum(1 for job in self.terminal
                            if job.end > first.start + 1e-12)
        self.terminal.append(last)
        self.max_in_flight = max(self.max_in_flight,
                                 min(in_flight, self.depth))

    # ------------------------------------------------------------------
    def _survive_faults(self, stage: Stage,
                        clean: DeferredRecord) -> DeferredRecord:
        """Apply the stage's fault seam to one execution's charged cost."""
        injector = resilience.active()
        if injector is None:
            return clean
        site = stage.fault_site
        policy = injector.policy(site)
        cpu_name = self.machine.cpu.name
        wasted = 0.0
        delay = 0.0
        crashes = 0
        while True:
            fault = injector.arm(site)
            if fault is None or fault.kind != "crash":
                break
            crashes += 1
            injector.record_injected(site, "crash")
            wasted += clean.total * fault.severity
            delay += injector.backoff_delay(site, crashes)
            if crashes > policy.max_retries:
                if policy.degrade:
                    self.degraded = True
                    injector.record_degraded(site)
                    injector.record_recovered(site, action="degrade")
                    break
                raise RecoveryExhausted(site, crashes)
            injector.record_retry(site)
            injector.record_recovered(site, action="respawn")
        if wasted <= 0 and delay <= 0:
            return clean
        busy = dict(clean.busy)
        if wasted > 0:
            busy[cpu_name] = busy.get(cpu_name, 0.0) + wasted
        return DeferredRecord(total=clean.total + wasted + delay, busy=busy)

    # ------------------------------------------------------------------
    def extrapolate(self, stages: Sequence[Stage], executed: int,
                    target: int) -> None:
        """Replay the remaining items symbolically at measured mean cost."""
        means: Dict[str, DeferredRecord] = {}
        for stage in stages:
            total = self.stage_totals.get(stage.name, 0.0) / executed
            busy = {d: s / executed
                    for d, s in self.stage_busy.get(stage.name, {}).items()}
            # schedule() re-applies the stage scale; the sums above are
            # post-scale, so feed it pre-scale means.
            scale = 1.0 if self.degraded else stage.scale
            if scale > 0:
                means[stage.name] = DeferredRecord(
                    total=total / scale,
                    busy={d: s / scale for d, s in busy.items()},
                )
            else:
                means[stage.name] = DeferredRecord(total=0.0, busy={})
        for index in range(executed, target):
            prev: Optional[LaneJob] = None
            for stage in stages:
                prev = self.schedule(stage, index, means[stage.name], prev,
                                     symbolic=True)
            self.terminal.append(prev)

    # ------------------------------------------------------------------
    def record_metrics(self, label: str) -> None:
        registry = telemetry.metrics()
        if registry is None:
            return
        labels = {"label": label} if label else {}
        registry.gauge("datapipe.queue_depth", **labels).set(self.max_in_flight)
        registry.gauge("datapipe.depth_limit", **labels).set(self.depth)
        for name, waits in self.stage_waits.items():
            hist = registry.histogram("datapipe.stage_wait_seconds",
                                      stage=name, **labels)
            for wait in waits:
                hist.observe(wait)


def _attribute_phases(jobs: List[Tuple[float, float, str]], origin: float,
                      finish: float) -> Dict[str, float]:
    """Exclusive four-phase split of the epoch window.

    Sweeps the job intervals chronologically; each elementary segment is
    attributed to the highest-priority phase active over it (training >
    movement > sampling), matching the paper's foreground accounting.
    Window time no job covers (only the backpressure seams between
    items) falls to "sampling", so the phases always sum to the elapsed
    epoch time.
    """
    phases: Dict[str, float] = {}
    if finish <= origin:
        return phases
    events: List[Tuple[float, int, str]] = []
    for start, end, phase in jobs:
        if end > start:
            events.append((start, 1, phase))
            events.append((end, -1, phase))
    events.sort(key=lambda e: (e[0], e[1]))
    rank = {phase: i for i, phase in enumerate(_PHASE_PRIORITY)}
    active: Dict[str, int] = {}
    prev_t = origin
    covered = 0.0
    for t, delta, phase in events:
        t = min(max(t, origin), finish)
        if t > prev_t and active:
            current = min((p for p, n in active.items() if n > 0),
                          key=lambda p: rank.get(p, len(rank)), default=None)
            if current is not None:
                phases[current] = phases.get(current, 0.0) + (t - prev_t)
                covered += t - prev_t
        if t > prev_t:
            prev_t = t
        active[phase] = active.get(phase, 0) + delta
        if active[phase] <= 0:
            del active[phase]
    residual = (finish - origin) - covered
    if residual > 1e-12:
        phases["sampling"] = phases.get("sampling", 0.0) + residual
    return phases
