"""Dataset registry: name -> spec -> built graph."""

from __future__ import annotations

from typing import Dict, List

from repro.datasets import arxiv, flickr, ppi, products, reddit, yelp
from repro.datasets.base import DatasetSpec, build_dataset
from repro.errors import DatasetError
from repro.graph.graph import Graph

_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        ppi.SPEC,
        flickr.SPEC,
        arxiv.SPEC,
        reddit.SPEC,
        yelp.SPEC,
        products.SPEC,
    )
}

#: Table 1 order: small -> large.
DATASET_NAMES = tuple(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by its Table 1 name (case-insensitive)."""
    key = name.lower()
    if key not in _SPECS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        )
    return _SPECS[key]


def get_dataset(name: str, scale: float = 1.0) -> Graph:
    """Build (or fetch cached) the named dataset at the given actual scale."""
    return build_dataset(dataset_spec(name), scale=scale)


def list_datasets() -> List[DatasetSpec]:
    """All specs in Table 1 order."""
    return [_SPECS[name] for name in DATASET_NAMES]
