"""Ablation: peak device memory per conv layer at paper scale.

Explains Figure 5's OOM entries quantitatively: the peak logical bytes a
single forward pass allocates on the GPU, per layer, per framework.  The
unfused PyG layers' E x F message buffers dwarf everything else.
"""

import gc

from conftest import emit

from repro.bench import format_series
from repro.errors import OutOfMemoryError
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.kernels.transfer import adj_to_device, to_device
from repro.tensor.tensor import no_grad

DATASETS = ("flickr", "yelp", "reddit")
KINDS = ("gcn", "sage", "cheb", "gat", "gatv2")

GIB = 2**30


def _peak_gib(fw_name: str, dataset: str, kind: str):
    machine = paper_testbed()
    fw = get_framework(fw_name)
    fgraph = fw.load(dataset, machine)
    try:
        with fw.activate(), no_grad():
            adj = adj_to_device(fgraph.adj, machine.gpu, machine.pcie)
            x = to_device(fgraph.features, machine.gpu, machine.pcie)
            machine.gpu.memory.reset_peak()
            conv = fw.conv(kind, fgraph.stats.num_features, 256, seed=0)
            conv.to(machine.gpu)
            conv(adj, x)
            return machine.gpu.memory.peak / GIB
    except OutOfMemoryError as exc:
        return f">{exc.capacity / GIB:.0f} (OOM)"
    finally:
        gc.collect()


def test_ablation_memory_footprint(once):
    def run():
        return {
            f"{kind}/{fw}": {ds: _peak_gib(fw, ds, kind) for ds in DATASETS}
            for kind in KINDS
            for fw in ("dglite", "pyglite")
        }

    results = once(run)
    emit("ablation_memory_footprint",
         format_series("Ablation: peak GPU memory of one forward pass "
                       "(paper scale, out_dim=256)", results, unit="GiB",
                       precision=2))

    def val(kind, fw, ds):
        return results[f"{kind}/{fw}"][ds]

    # Fused layers have similar modest footprints in both frameworks.
    for kind in ("gcn", "sage"):
        for ds in DATASETS:
            dgl, pyg = val(kind, "dglite", ds), val(kind, "pyglite", ds)
            assert isinstance(dgl, float) and isinstance(pyg, float)
            assert abs(dgl - pyg) / max(dgl, pyg) < 0.2, (kind, ds)

    # PyG's unfused layers need multiples of DGL's memory where they fit...
    for kind in ("cheb", "gat", "gatv2"):
        dgl, pyg = val(kind, "dglite", "flickr"), val(kind, "pyglite", "flickr")
        assert pyg > 2 * dgl, kind

    # ...and blow past 48 GiB on Reddit.
    for kind in ("cheb", "gat", "gatv2"):
        assert isinstance(val(kind, "pyglite", "reddit"), str), kind
        assert isinstance(val(kind, "dglite", "reddit"), float), kind

    # DGL's attention layers stay small even on Reddit: per-edge scores
    # (E x heads) only, never E x F.
    assert val("gat", "dglite", "reddit") < 8.0
