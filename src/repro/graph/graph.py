"""The Graph container shared by both framework implementations.

A :class:`Graph` holds the *actual* (possibly scaled-down) arrays plus a
:class:`GraphStats` record with the *logical* (paper-scale) statistics.
Cost and memory models consume logical quantities via the ``node_scale`` /
``edge_scale`` properties, so a 1/64-scale Reddit still behaves like a
115 M-edge graph to the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.formats import AdjacencyCSR, INDEX_DTYPE, induced_subgraph


@dataclass(frozen=True)
class Split:
    """Train/val/test node fractions (the paper's fixed partitions)."""

    train: float
    val: float
    test: float

    def __post_init__(self) -> None:
        total = self.train + self.val + self.test
        if not (0.99 <= total <= 1.01):
            raise ValueError(f"split fractions must sum to ~1, got {total}")


@dataclass(frozen=True)
class GraphStats:
    """Logical (paper-scale) statistics of a dataset graph."""

    name: str
    description: str
    logical_num_nodes: int
    logical_num_edges: int
    num_features: int
    num_classes: int
    multilabel: bool
    split: Split

    @property
    def avg_degree(self) -> float:
        if self.logical_num_nodes == 0:
            return 0.0
        return self.logical_num_edges / self.logical_num_nodes

    def feature_nbytes(self) -> int:
        """Logical bytes of the node-feature matrix (float32)."""
        return 4 * self.logical_num_nodes * self.num_features

    def structure_nbytes(self) -> int:
        """Logical bytes of a CSR adjacency (int64 indptr + indices)."""
        return 8 * (self.logical_num_nodes + 1) + 8 * self.logical_num_edges

    def label_nbytes(self) -> int:
        per_node = 4 * self.num_classes if self.multilabel else 8
        return per_node * self.logical_num_nodes


class Graph:
    """An attributed graph with masks and logical-scale bookkeeping."""

    def __init__(
        self,
        adj: AdjacencyCSR,
        features: np.ndarray,
        labels: np.ndarray,
        train_mask: np.ndarray,
        val_mask: np.ndarray,
        test_mask: np.ndarray,
        stats: GraphStats,
    ) -> None:
        if features.shape[0] != adj.num_nodes:
            raise GraphFormatError("feature rows must match num_nodes")
        if labels.shape[0] != adj.num_nodes:
            raise GraphFormatError("label rows must match num_nodes")
        for mask in (train_mask, val_mask, test_mask):
            if mask.shape != (adj.num_nodes,):
                raise GraphFormatError("masks must be 1-D over nodes")
        if stats.multilabel and labels.ndim != 2:
            raise GraphFormatError("multilabel graphs need 2-D labels")
        self.adj = adj
        self.features = np.ascontiguousarray(features, dtype=np.float32)
        self.labels = labels
        self.train_mask = train_mask.astype(bool)
        self.val_mask = val_mask.astype(bool)
        self.test_mask = test_mask.astype(bool)
        self.stats = stats

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.adj.num_nodes

    @property
    def num_edges(self) -> int:
        return self.adj.num_edges

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def node_scale(self) -> float:
        """Logical nodes per actual node (>= 1 for scaled-down datasets)."""
        return self.stats.logical_num_nodes / max(1, self.num_nodes)

    @property
    def edge_scale(self) -> float:
        """Logical edges per actual edge (>= 1 for scaled-down datasets)."""
        return self.stats.logical_num_edges / max(1, self.num_edges)

    def train_nodes(self) -> np.ndarray:
        return np.nonzero(self.train_mask)[0].astype(INDEX_DTYPE)

    def val_nodes(self) -> np.ndarray:
        return np.nonzero(self.val_mask)[0].astype(INDEX_DTYPE)

    def test_nodes(self) -> np.ndarray:
        return np.nonzero(self.test_mask)[0].astype(INDEX_DTYPE)

    # ------------------------------------------------------------------
    def subgraph(self, nodes: np.ndarray) -> "Graph":
        """Node-induced subgraph; logical stats scale with the parent."""
        nodes = np.asarray(nodes, dtype=INDEX_DTYPE)
        sub_coo, _ = induced_subgraph(self.adj, nodes)
        sub_adj = sub_coo.to_csr()
        sub_stats = replace(
            self.stats,
            name=f"{self.stats.name}-sub",
            logical_num_nodes=int(round(nodes.size * self.node_scale)),
            logical_num_edges=int(round(sub_adj.num_edges * self.edge_scale)),
        )
        return Graph(
            sub_adj,
            self.features[nodes],
            self.labels[nodes],
            self.train_mask[nodes],
            self.val_mask[nodes],
            self.test_mask[nodes],
            sub_stats,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph({self.stats.name}: {self.num_nodes} nodes / {self.num_edges} edges "
            f"actual, {self.stats.logical_num_nodes} / {self.stats.logical_num_edges} logical)"
        )
