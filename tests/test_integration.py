"""End-to-end integration tests: whole pipelines, accounting consistency.

These tests exercise the full stack in one pass each and assert the
invariants that hold *across* components: phase totals match the clock,
the energy monitor's window matches the experiment, ledgers drain after
teardown, traces cover the busy time, and checkpoints hand models across
pipeline stages without drift.
"""

import gc
import json

import numpy as np
import pytest

from repro.bench.harness import run_training_experiment
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.checkpoint import load_checkpoint, save_checkpoint
from repro.models.evaluate import evaluate
from repro.models.fullbatch import FullBatchTrainer, build_fullbatch_sage
from repro.models.graphsage import build_graphsage, graphsage_sampler
from repro.models.trainer import MiniBatchTrainer, TrainConfig
from repro.power.carbon import carbon_from_energy
from repro.power.monitor import EnergyMonitor
from repro.profiling.kernel_report import group_by_family, kernel_breakdown
from repro.profiling.profiler import PhaseProfiler
from repro.profiling.trace import summarize_trace, write_trace


class TestAccountingConsistency:
    @pytest.mark.parametrize("model", ["graphsage", "clustergcn", "graphsaint"])
    def test_phases_fill_the_clock(self, model):
        """Phase seconds must equal elapsed virtual time (nothing leaks)."""
        machine = paper_testbed()
        monitor = EnergyMonitor(machine, interval=0.1)
        profiler = PhaseProfiler(machine.clock)
        fw = get_framework("dglite")
        monitor.start()
        with profiler.phase("data_loading"):
            fgraph = fw.load("ppi", machine, scale=0.3)
        if model == "graphsage":
            sampler = fw.neighbor_sampler(fgraph, fanouts=(4, 4),
                                          batch_size=64, seed=0)
            from repro.models.base import two_layer_net
            net = two_layer_net(fw, "sage", fgraph.stats.num_features, 16,
                                fgraph.stats.num_classes, style="blocks", seed=0)
        elif model == "clustergcn":
            sampler = fw.cluster_sampler(fgraph, seed=0)
            from repro.models.base import two_layer_net
            net = two_layer_net(fw, "gcn", fgraph.stats.num_features, 16,
                                fgraph.stats.num_classes, style="subgraph", seed=0)
        else:
            sampler = fw.saint_sampler(fgraph, seed=0)
            from repro.models.base import two_layer_net
            net = two_layer_net(fw, "gcn", fgraph.stats.num_features, 16,
                                fgraph.stats.num_classes, style="subgraph", seed=0)
        config = TrainConfig(epochs=2, representative_batches=2)
        result = MiniBatchTrainer(fw, fgraph, sampler, net, config,
                                  profiler=profiler).run()
        report = monitor.stop()

        total_phases = sum(profiler.snapshot().values())
        assert total_phases == pytest.approx(machine.clock.now, rel=0.02)
        assert report.duration == pytest.approx(machine.clock.now, rel=1e-6)
        assert result.total_time == pytest.approx(total_phases, rel=1e-6)

    def test_busy_never_exceeds_wall(self):
        machine = paper_testbed()
        fw = get_framework("pyglite")
        fgraph = fw.load("flickr", machine, scale=0.5)
        sampler = graphsage_sampler(fw, fgraph, seed=0)
        net = build_graphsage(fw, fgraph, hidden=32, seed=0)
        MiniBatchTrainer(fw, fgraph, sampler, net,
                         TrainConfig(epochs=1, placement="cpugpu",
                                     representative_batches=2)).run()
        for device in (machine.cpu.name, machine.gpu.name, "pcie"):
            assert machine.clock.busy_time(device) <= machine.clock.now + 1e-9

    def test_kernel_families_sum_to_device_busy(self):
        machine = paper_testbed()
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        net = build_fullbatch_sage(fw, fgraph, hidden=16, seed=0)
        FullBatchTrainer(fw, fgraph, net, device="cpu").train_epochs(2)
        grouped = group_by_family(machine)
        total_by_family = sum(grouped.values())
        counters_total = machine.cpu.counters.busy_seconds
        assert total_by_family == pytest.approx(counters_total, rel=1e-6)
        entries = kernel_breakdown(machine)
        assert sum(e.seconds for e in entries) == pytest.approx(
            counters_total, rel=1e-6)

    def test_memory_returns_to_baseline_after_teardown(self):
        machine = paper_testbed()
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        baseline = machine.cpu.memory.in_use  # features + adj pinned
        sampler = fw.neighbor_sampler(fgraph, fanouts=(4, 4), batch_size=64,
                                      seed=0)
        net = build_graphsage(fw, fgraph, hidden=16, seed=0)
        MiniBatchTrainer(fw, fgraph, sampler, net,
                         TrainConfig(epochs=1, representative_batches=2)).run()
        del net, sampler
        gc.collect()
        # Batch tensors and autograd intermediates must all be released.
        assert machine.cpu.memory.in_use <= baseline * 1.05


class TestFullPipeline:
    def test_train_checkpoint_evaluate_trace_carbon(self, tmp_path):
        """The whole artifact lifecycle in one pass."""
        machine = paper_testbed()
        monitor = EnergyMonitor(machine, interval=0.1)
        fw = get_framework("dglite")
        monitor.start()
        fgraph = fw.load("flickr", machine, scale=0.5)
        net = build_fullbatch_sage(fw, fgraph, hidden=32, dropout=0.0, seed=0)
        trainer = FullBatchTrainer(fw, fgraph, net, device="gpu", lr=5e-3)
        trainer.train_epochs(20)
        report = monitor.stop()

        # 1. the model learned (evaluate on the device it trained on)
        metric = evaluate(fw, fgraph, net, device="gpu")
        assert metric.val > 0.5

        # 2. checkpoint -> fresh model -> same metric
        save_checkpoint(tmp_path / "model.npz", net, trainer.optimizer,
                        metadata={"dataset": "flickr"})
        clone = build_fullbatch_sage(fw, fgraph, hidden=32, dropout=0.0,
                                     seed=123)
        meta = load_checkpoint(tmp_path / "model.npz", clone)
        assert meta["dataset"] == "flickr"
        assert evaluate(fw, fgraph, clone).val == pytest.approx(metric.val)

        # 3. energy -> carbon, consistent units
        carbon = carbon_from_energy(report, grid="texas")
        assert carbon.grams_co2eq > 0
        assert carbon.energy_kwh == pytest.approx(
            report.total_energy / 3.6e6)

        # 4. trace covers the timeline
        path = write_trace(machine.clock, tmp_path / "trace.json")
        events = json.loads(path.read_text())["traceEvents"]
        assert len(events) > 20
        summary = summarize_trace(machine.clock)
        assert summary["wall"] == pytest.approx(machine.clock.now)

    def test_harness_and_manual_pipeline_agree(self):
        """run_training_experiment == hand-assembled pipeline, exactly."""
        auto = run_training_experiment("dglite", "ppi", "graphsage",
                                       placement="cpu", epochs=2,
                                       representative_batches=2, seed=0,
                                       dataset_scale=0.3)
        machine = paper_testbed()
        profiler = PhaseProfiler(machine.clock)
        fw = get_framework("dglite")
        with profiler.phase("data_loading"):
            fgraph = fw.load("ppi", machine, scale=0.3)
        sampler = graphsage_sampler(fw, fgraph, mode="cpu", seed=0)
        net = build_graphsage(fw, fgraph, seed=0)
        manual = MiniBatchTrainer(
            fw, fgraph, sampler, net,
            TrainConfig(epochs=2, representative_batches=2, seed=0),
            profiler=profiler,
        ).run()
        assert manual.total_time + profiler.seconds("data_loading") * 0 == \
            pytest.approx(manual.total_time)
        assert sum(manual.phases.values()) == pytest.approx(
            auto.total_time, rel=1e-6)
        assert manual.losses == pytest.approx(auto.losses, rel=1e-6)

    def test_multilabel_pipeline(self):
        """Yelp (multi-label, BCE) end-to-end with PyGLite."""
        machine = paper_testbed()
        fw = get_framework("pyglite")
        fgraph = fw.load("yelp", machine, scale=0.3)
        sampler = fw.saint_sampler(fgraph, seed=0)
        from repro.models.base import two_layer_net
        net = two_layer_net(fw, "gcn", fgraph.stats.num_features, 32,
                            fgraph.stats.num_classes, style="subgraph",
                            dropout=0.0, seed=0)
        result = MiniBatchTrainer(
            fw, fgraph, sampler, net,
            TrainConfig(epochs=4, representative_batches=4, lr=5e-3),
        ).run()
        assert result.losses[-1] < result.losses[0]
        report = evaluate(fw, fgraph, net)
        assert report.metric == "micro_f1"
        assert 0.0 <= report.test <= 1.0
