"""Whole-program model: modules, classes, functions, and call resolution.

:class:`Program` is built once per ``repro lint --deep`` run from every
parsed :class:`~repro.lint.engine.FileContext`.  It indexes

* every function and method under a stable *qualname*
  (``module:Class.method`` / ``module:func`` /
  ``module:outer.<locals>.inner``),
* every class with its raw base names, method table, and the types of
  ``self.*`` attributes assigned from known constructors, and
* each module's import bindings (``import a.b as c`` → ``c`` ↦ ``a.b``).

On top of that it offers best-effort *call resolution*: given a call
expression and a local type environment, return the qualnames of the
in-program functions it may invoke.  Resolution is deliberately
conservative — an unresolvable call simply produces no edge, which makes
bottom-up effect summaries under-approximate (a rule may miss, never
crash) and keeps the false-positive rate of the deep rules near zero.

Resolution order for ``f(...)`` / ``recv.m(...)``:

1. typed receiver — ``recv``'s inferred class (parameter annotations,
   ``self``, constructor assignments, class ``attr_types``) and an MRO
   walk for ``m``;
2. direct name — local or imported module-level function / class
   constructor (``Class(...)`` resolves to ``Class.__init__``);
3. unique-name fallback — a dotted leaf that names *exactly one*
   function in the whole program resolves to it; ambiguous names
   resolve to nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.lint.engine import FileContext

__all__ = [
    "FunctionInfo", "ClassInfo", "Program", "build_program",
    "dotted", "infer_env",
]


def dotted(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains (``""`` for anything else)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass
class FunctionInfo:
    """One function or method definition in the program."""

    qualname: str
    module: str
    name: str
    node: ast.AST                  # FunctionDef | AsyncFunctionDef
    path: str
    cls: Optional[str] = None      # owning class qualname for methods
    parent: Optional[str] = None   # enclosing function qualname if nested

    def __lt__(self, other: "FunctionInfo") -> bool:
        return self.qualname < other.qualname

    def is_classmethod(self) -> bool:
        return any(
            isinstance(d, ast.Name) and d.id in ("classmethod", "staticmethod")
            for d in getattr(self.node, "decorator_list", [])
        )


@dataclass
class ClassInfo:
    """One class definition: bases, methods, and attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    bases: List[str] = field(default_factory=list)      # raw dotted names
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


class Program:
    """Index over every analyzed file, plus call/type resolution."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.modules: Dict[str, FileContext] = {}
        self.imports: Dict[str, Dict[str, str]] = {}
        self._fn_by_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_function(self, info: FunctionInfo) -> None:
        if info.qualname in self.functions:
            return  # duplicate module path; keep the first, deterministic
        self.functions[info.qualname] = info
        self._fn_by_name.setdefault(info.name, []).append(info.qualname)

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve_name(self, module: str, name: str) -> str:
        """Absolute dotted target of ``name`` as seen from ``module``."""
        head, _, rest = name.partition(".")
        bindings = self.imports.get(module, {})
        if head in bindings:
            base = bindings[head]
            return f"{base}.{rest}" if rest else base
        return name

    def resolve_class(self, module: str, name: str) -> Optional[str]:
        """Class qualname for a (possibly dotted/imported) class name."""
        if not name:
            return None
        local = f"{module}:{name}"
        if local in self.classes:
            return local
        absolute = self.resolve_name(module, name)
        mod, _, attr = absolute.rpartition(".")
        if mod in self.modules and f"{mod}:{attr}" in self.classes:
            return f"{mod}:{attr}"
        # unique-name fallback
        candidates = [q for q in self.classes
                      if q.rsplit(":", 1)[1] == absolute.rpartition(".")[2]]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_function_name(self, module: str, name: str) -> Optional[str]:
        """Function qualname for a module-level (imported) function name."""
        if not name:
            return None
        local = f"{module}:{name}"
        if local in self.functions:
            return local
        absolute = self.resolve_name(module, name)
        mod, _, attr = absolute.rpartition(".")
        if mod in self.modules and f"{mod}:{attr}" in self.functions:
            return f"{mod}:{attr}"
        return None

    def lookup_method(self, class_qualname: Optional[str],
                      method: str) -> Optional[str]:
        """MRO-ish lookup: ``method`` on the class or any (known) base."""
        seen = set()
        queue = [class_qualname] if class_qualname else []
        while queue:
            cq = queue.pop(0)
            if cq is None or cq in seen:
                continue
            seen.add(cq)
            cls = self.classes.get(cq)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.bases:
                queue.append(self.resolve_class(cls.module, base))
        return None

    def attr_type(self, class_qualname: Optional[str],
                  attr: str) -> Optional[str]:
        """Inferred class of ``self.<attr>`` on instances of the class."""
        seen = set()
        queue = [class_qualname] if class_qualname else []
        while queue:
            cq = queue.pop(0)
            if cq is None or cq in seen:
                continue
            seen.add(cq)
            cls = self.classes.get(cq)
            if cls is None:
                continue
            if attr in cls.attr_types:
                return cls.attr_types[attr]
            for base in cls.bases:
                queue.append(self.resolve_class(cls.module, base))
        return None

    def unique_function_named(self, name: str) -> Optional[str]:
        """The single program function with this simple name, if unique."""
        candidates = self._fn_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    # ------------------------------------------------------------------
    # expression typing
    # ------------------------------------------------------------------
    def annotation_class(self, module: str,
                         annotation: Optional[ast.AST]) -> Optional[str]:
        """Class named by an annotation; unwraps Optional[...] and strings."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            return self.resolve_class(module, annotation.value)
        if isinstance(annotation, ast.Subscript):
            base = dotted(annotation.value)
            if base.rpartition(".")[2] in ("Optional", "Union"):
                inner = annotation.slice
                if isinstance(inner, ast.Tuple):
                    inner = inner.elts[0] if inner.elts else None
                return self.annotation_class(module, inner)
            return None
        name = dotted(annotation)
        return self.resolve_class(module, name) if name else None

    def expr_type(self, fn: FunctionInfo, env: Mapping[str, str],
                  expr: ast.AST) -> Optional[str]:
        """Best-effort class qualname of an expression's value."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self.expr_type(fn, env, expr.value)
            return self.attr_type(owner, expr.attr)
        if isinstance(expr, ast.Call):
            callees = self.resolve_call(fn, env, expr)
            for callee in callees:
                target = self.functions.get(callee)
                if target is None:
                    continue
                if target.name == "__init__" and target.cls:
                    return target.cls
                if target.cls and target.is_classmethod():
                    return target.cls
                returns = self.annotation_class(
                    target.module, getattr(target.node, "returns", None))
                if returns:
                    return returns
            # `Class(...)` where the class has no __init__ of its own
            if isinstance(expr.func, (ast.Name, ast.Attribute)):
                cls = self.resolve_class(fn.module, dotted(expr.func))
                if cls is not None:
                    return cls
        return None

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def resolve_call(self, fn: FunctionInfo, env: Mapping[str, str],
                     call: ast.Call) -> Tuple[str, ...]:
        """Qualnames of in-program functions this call may invoke."""
        func = call.func
        if isinstance(func, ast.Name):
            target = self.resolve_function_name(fn.module, func.id)
            if target:
                return (target,)
            cls = self.resolve_class(fn.module, func.id)
            if cls:
                ctor = self.lookup_method(cls, "__init__")
                return (ctor,) if ctor else ()
            fallback = self.unique_function_named(func.id)
            return (fallback,) if fallback else ()

        if isinstance(func, ast.Attribute):
            receiver_type = self.expr_type(fn, env, func.value)
            if receiver_type:
                target = self.lookup_method(receiver_type, func.attr)
                if target:
                    return (target,)
            name = dotted(func)
            if name:
                target = self.resolve_function_name(fn.module, name)
                if target:
                    return (target,)
                # Class.method / module.Class(...)
                owner, _, attr = name.rpartition(".")
                cls = self.resolve_class(fn.module, owner)
                if cls:
                    target = self.lookup_method(cls, attr)
                    if target:
                        return (target,)
                cls = self.resolve_class(fn.module, name)
                if cls:
                    ctor = self.lookup_method(cls, "__init__")
                    return (ctor,) if ctor else ()
            fallback = self.unique_function_named(func.attr)
            return (fallback,) if fallback else ()
        return ()


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
_FN_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _collect_imports(ctx: FileContext) -> Dict[str, str]:
    bindings: Dict[str, str] = {}
    is_package = ctx.path.endswith("__init__.py")
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    bindings[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = ctx.module.split(".") if ctx.module else []
                if not is_package and parts:
                    parts = parts[:-1]
                parts = parts[:len(parts) - (node.level - 1)] \
                    if node.level > 1 else parts
                prefix = ".".join(parts)
                base = f"{prefix}.{node.module}" if node.module else prefix
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                bindings[bound] = f"{base}.{alias.name}" if base else alias.name
    return bindings


def _register_tree(program: Program, ctx: FileContext) -> None:
    module = ctx.module or ctx.path.rsplit("/", 1)[-1].removesuffix(".py")

    def visit(node: ast.AST, qual_prefix: str, cls: Optional[ClassInfo],
              parent_fn: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FN_NODES):
                qualname = f"{module}:{qual_prefix}{child.name}"
                info = FunctionInfo(
                    qualname=qualname, module=module, name=child.name,
                    node=child, path=ctx.path,
                    cls=cls.qualname if cls is not None else None,
                    parent=parent_fn)
                program.add_function(info)
                if cls is not None and parent_fn is None:
                    cls.methods.setdefault(child.name, qualname)
                visit(child, f"{qual_prefix}{child.name}.<locals>.",
                      None, qualname)
            elif isinstance(child, ast.ClassDef):
                cq = f"{module}:{qual_prefix}{child.name}"
                cinfo = ClassInfo(
                    qualname=cq, module=module, name=child.name,
                    node=child, path=ctx.path,
                    bases=[dotted(b) for b in child.bases if dotted(b)])
                program.classes.setdefault(cq, cinfo)
                visit(child, f"{qual_prefix}{child.name}.", cinfo, None)
            else:
                visit(child, qual_prefix, cls, parent_fn)

    visit(ctx.tree, "", None, None)


def _infer_attr_types(program: Program) -> None:
    """Populate ``ClassInfo.attr_types`` from ``self.x = <ctor>()`` stores."""
    for cls in program.classes.values():
        for method_qual in cls.methods.values():
            fn = program.functions.get(method_qual)
            if fn is None:
                continue
            env = infer_env(program, fn)
            for stmt in ast.walk(fn.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                inferred = program.expr_type(fn, env, stmt.value)
                if inferred is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        cls.attr_types.setdefault(target.attr, inferred)


def infer_env(program: Program, fn: FunctionInfo,
              outer: Optional[Mapping[str, str]] = None) -> Dict[str, str]:
    """Local type environment: parameter annotations, ``self``, and
    single-assignment constructor calls.  ``outer`` seeds the environment
    for nested functions, which close over the enclosing scope."""
    env: Dict[str, str] = dict(outer or {})
    args = fn.node.args
    all_args = list(getattr(args, "posonlyargs", [])) + args.args \
        + list(args.kwonlyargs)
    for arg in all_args:
        cls = program.annotation_class(fn.module, arg.annotation)
        if cls:
            env[arg.arg] = cls
    if fn.cls and all_args and all_args[0].arg in ("self", "cls"):
        env[all_args[0].arg] = fn.cls
    # one forward pass over simple assignments (skip nested functions)
    for node in ast.walk(fn.node):
        if isinstance(node, _FN_NODES) and node is not fn.node:
            continue
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            inferred = program.expr_type(fn, env, node.value)
            if inferred:
                env[node.targets[0].id] = inferred
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            cls = program.annotation_class(fn.module, node.annotation)
            if cls:
                env[node.target.id] = cls
    return env


def build_program(contexts: Sequence[FileContext]) -> Program:
    """Index every context and run attribute-type inference."""
    program = Program()
    for ctx in sorted(contexts, key=lambda c: c.path):
        module = ctx.module or ctx.path.rsplit("/", 1)[-1].removesuffix(".py")
        program.modules.setdefault(module, ctx)
        program.imports[module] = _collect_imports(ctx)
        _register_tree(program, ctx)
    _infer_attr_types(program)
    return program
