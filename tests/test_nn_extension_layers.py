"""Tests for the extension conv layers (APPNP, GIN, GraphConv)."""

import numpy as np
import pytest

from repro.frameworks import get_framework
from repro.frameworks.dglite import nn as dnn
from repro.frameworks.pyglite import nn as pnn
from repro.kernels.adj import SparseAdj
from repro.tensor.tensor import Tensor

RNG = np.random.default_rng(91)
EXT_KINDS = ("appnp", "gin", "graph")


@pytest.fixture
def adj():
    src = RNG.integers(0, 25, 180)
    dst = RNG.integers(0, 25, 180)
    return SparseAdj(src, dst, 25, 25)


@pytest.fixture
def x():
    return Tensor(RNG.random((25, 10)).astype(np.float32), requires_grad=True)


@pytest.mark.parametrize("fw_name", ["dglite", "pyglite"])
@pytest.mark.parametrize("kind", EXT_KINDS)
class TestExtensionLayers:
    def test_shape_and_gradients(self, fw_name, kind, adj, x):
        conv = get_framework(fw_name).conv(kind, 10, 6, seed=4)
        out = conv(adj, x)
        assert out.shape == (25, 6)
        out.sum().backward()
        assert x.grad is not None
        for name, param in conv.named_parameters():
            assert param.grad is not None, name

    def test_deterministic(self, fw_name, kind, adj, x):
        a = get_framework(fw_name).conv(kind, 10, 6, seed=4)(adj, x)
        b = get_framework(fw_name).conv(kind, 10, 6, seed=4)(adj, x)
        assert np.allclose(a.data, b.data)


class TestFrameworkEquivalence:
    @pytest.mark.parametrize("kind", EXT_KINDS)
    def test_outputs_match(self, kind, adj, x):
        a = get_framework("dglite").conv(kind, 10, 6, seed=4)(adj, x)
        b = get_framework("pyglite").conv(kind, 10, 6, seed=4)(adj, x)
        assert np.allclose(a.data, b.data, atol=1e-4), kind


class TestAppnpMath:
    def test_alpha_one_limit_is_mlp(self, adj, x):
        """As alpha -> 1 the propagation collapses to the MLP output."""
        near_one = dnn.APPNPConv(10, 6, k=5, alpha=0.999, seed=0)
        out = near_one(adj, x)
        mlp = near_one.linear(x)
        assert np.allclose(out.data, mlp.data, atol=1e-2)

    def test_k_steps_progressively_smooth(self, adj, x):
        """More propagation steps shrink the variance across nodes."""
        shallow = dnn.APPNPConv(10, 6, k=1, alpha=0.1, seed=0)(adj, x)
        deep = dnn.APPNPConv(10, 6, k=20, alpha=0.1, seed=0)(adj, x)
        assert deep.data.std(axis=0).mean() < shallow.data.std(axis=0).mean()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            dnn.APPNPConv(4, 4, k=0)
        with pytest.raises(ValueError):
            pnn.APPNPConv(4, 4, alpha=1.0)


class TestGinMath:
    def test_eps_shifts_self_weight(self, adj):
        x = Tensor(RNG.random((25, 4)).astype(np.float32))
        conv = dnn.GINConv(4, 4, seed=0)
        base = conv(adj, x)
        conv.eps.data = np.array([5.0], dtype=np.float32)
        boosted = conv(adj, x)
        assert not np.allclose(base.data, boosted.data)

    def test_pyg_gin_materializes_edges(self, machine):
        """PyG's GIN takes the unfused path: logical E x F memory appears."""
        adj = SparseAdj(np.array([0, 1]), np.array([1, 0]), 2, 2,
                        device=machine.cpu, edge_scale=1000.0)
        x = Tensor(RNG.random((2, 16)).astype(np.float32), device=machine.cpu)
        conv = pnn.GINConv(16, 8, seed=0)
        before_peak = machine.cpu.memory.peak
        conv(adj, x)
        assert machine.cpu.memory.peak - before_peak >= 2 * 16 * 4 * 1000


class TestGraphConvMath:
    def test_sum_aggregation_with_self_loop(self):
        adj = SparseAdj(np.array([0]), np.array([1]), 2, 2)
        x = Tensor(np.array([[1.0], [2.0]], dtype=np.float32))
        conv = dnn.GraphConv(1, 1, bias=False, seed=0)
        out = conv(adj, x)
        w = conv.linear.weight.data[0, 0]
        assert out.data[1, 0] == pytest.approx((1.0 + 2.0) * w, rel=1e-5)
        assert out.data[0, 0] == pytest.approx(1.0 * w, rel=1e-5)
