"""The adjacency wrapper sparse kernels operate on.

A :class:`SparseAdj` describes a (possibly bipartite) directed edge set in
"aggregate src -> dst" orientation, with

* real scipy CSR math storage (rows = dst) for fast SpMM,
* aligned COO arrays for per-edge kernels (edge order == CSR data order),
* the device the structure lives on, and
* logical scale factors so charged work is paper-scale.

Fast-path layer (see :mod:`repro.kernels.config`): the CSR structure is
built once and *reused* — weighted :meth:`matmul_data` / :meth:`rmatmul`
swap the ``.data`` array in place instead of reconstructing a scipy
matrix, the transpose structure / degrees / inverse degrees / src-order
permutation are lazily cached, and :meth:`from_sorted_block` skips the
canonicalizing argsort for sampler-emitted blocks that are already
dst-sorted.  Segment reductions (:meth:`sum_edges`, :meth:`max_edges`)
exploit the dst-sorted invariant — one SpMM against a cached
edge-incidence selector (or ``ufunc.reduceat`` for non-float dtypes)
rather than the 20-30x slower ``np.add.at``.  None of this changes what
``charge(...)`` records — cost depends only on logical edge/node counts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphFormatError
from repro.graph.formats import INDEX_DTYPE
from repro.kernels.config import fastpath_enabled
from repro.telemetry import runtime as telemetry


def _count_fastpath(path: str, hit: bool) -> None:
    """Guarded probe: kernel.fastpath.{hit,miss} counters per path label."""
    registry = telemetry.metrics()
    if registry is not None:
        name = "kernel.fastpath.hit" if hit else "kernel.fastpath.miss"
        registry.counter(name, path=path).inc()


def _segment_reduceat(ufunc, ordered, indptr: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[i] = ufunc.reduce(ordered[indptr[i]:indptr[i+1]])`` for nonempty rows.

    ``ordered`` must hold edge rows grouped contiguously per segment (the
    dst-sorted canonical order, or src order after permutation).  Empty
    segments keep whatever ``out`` was initialized with.
    """
    if ordered.shape[0] == 0:
        return out
    counts = np.diff(indptr)
    nonempty = counts > 0
    starts = indptr[:-1][nonempty]
    out[nonempty] = ufunc.reduceat(ordered, starts, axis=0)
    return out


class SparseAdj:
    """Edge set src->dst with CSR-by-destination math storage."""

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_src: int,
        num_dst: int,
        device=None,
        node_scale: float = 1.0,
        edge_scale: float = 1.0,
        edge_weight: Optional[np.ndarray] = None,
    ) -> None:
        src = np.asarray(src, dtype=INDEX_DTYPE)
        dst = np.asarray(dst, dtype=INDEX_DTYPE)
        if src.shape != dst.shape:
            raise GraphFormatError("src and dst must have equal length")
        if src.size and (src.max() >= num_src or src.min() < 0):
            raise GraphFormatError("src index out of range")
        if dst.size and (dst.max() >= num_dst or dst.min() < 0):
            raise GraphFormatError("dst index out of range")
        # Canonical edge order: sorted by (dst, then original position) so
        # CSR data positions line up with the stored COO arrays.
        order = np.argsort(dst, kind="stable")
        if edge_weight is not None:
            edge_weight = np.asarray(edge_weight, dtype=np.float32)[order]
        self._finalize(src[order], dst[order], num_src, num_dst, device,
                       node_scale, edge_scale, edge_weight)

    @classmethod
    def from_sorted_block(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_src: int,
        num_dst: int,
        device=None,
        node_scale: float = 1.0,
        edge_scale: float = 1.0,
        edge_weight: Optional[np.ndarray] = None,
    ) -> "SparseAdj":
        """Adjacency from edges already in canonical (dst-sorted) order.

        The samplers and block builders emit relabeled, range-checked,
        dst-grouped edges (see :func:`repro.sampling.relabel.block_locals`),
        so re-sorting and full bounds validation here would be pure waste.
        This constructor verifies only the load-bearing invariant — ``dst``
        non-decreasing and within range, O(E) compare instead of an O(E
        log E) argsort — and trusts ``src`` to be pre-validated.  Falls
        back to the canonicalizing constructor when the fast path is
        disabled.
        """
        src = np.asarray(src, dtype=INDEX_DTYPE)
        dst = np.asarray(dst, dtype=INDEX_DTYPE)
        if not fastpath_enabled():
            _count_fastpath("sorted_block", hit=False)
            return cls(src, dst, num_src=num_src, num_dst=num_dst,
                       device=device, node_scale=node_scale,
                       edge_scale=edge_scale, edge_weight=edge_weight)
        if src.shape != dst.shape:
            raise GraphFormatError("src and dst must have equal length")
        if dst.size:
            if dst[0] < 0 or dst[-1] >= num_dst:
                raise GraphFormatError("dst index out of range")
            if np.any(np.diff(dst) < 0):
                raise GraphFormatError(
                    "from_sorted_block requires dst-sorted edges; "
                    "use SparseAdj(...) for unsorted input"
                )
        _count_fastpath("sorted_block", hit=True)
        self = object.__new__(cls)
        if edge_weight is not None:
            edge_weight = np.asarray(edge_weight, dtype=np.float32)
        self._finalize(src, dst, num_src, num_dst, device,
                       node_scale, edge_scale, edge_weight)
        return self

    def _finalize(self, src, dst, num_src, num_dst, device,
                  node_scale, edge_scale, edge_weight) -> None:
        """Shared tail of both constructors; edges are canonically sorted."""
        self.src = src
        self.dst = dst
        self.num_src = int(num_src)
        self.num_dst = int(num_dst)
        self.device = device
        self.node_scale = float(node_scale)
        self.edge_scale = float(edge_scale)
        self.edge_weight = edge_weight

        indptr = np.zeros(self.num_dst + 1, dtype=INDEX_DTYPE)
        if self.dst.size:
            indptr[1:] = np.cumsum(np.bincount(self.dst, minlength=self.num_dst))
        data = edge_weight if edge_weight is not None else np.ones(self.src.size, dtype=np.float32)
        self._mat = sp.csr_matrix(
            (data, self.src, indptr), shape=(self.num_dst, self.num_src)
        )
        # scipy may copy/retype the arrays it was handed; keep references
        # to the matrices' *actual* buffers so in-place data swaps restore
        # the exact default storage.
        self._default_data = self._mat.data
        self._mat_t: Optional[sp.csr_matrix] = None
        self._default_data_t: Optional[np.ndarray] = None
        self._perm_src: Optional[np.ndarray] = None
        self._indptr_src: Optional[np.ndarray] = None
        self._in_degrees: Optional[np.ndarray] = None
        self._out_degrees: Optional[np.ndarray] = None
        self._inv_in_degrees: Optional[np.ndarray] = None
        self._inc_dst: Optional[sp.csr_matrix] = None
        self._inc_src: Optional[sp.csr_matrix] = None

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    @property
    def logical_num_edges(self) -> float:
        return self.num_edges * self.edge_scale

    @property
    def logical_num_src(self) -> float:
        return self.num_src * self.node_scale

    @property
    def logical_num_dst(self) -> float:
        return self.num_dst * self.node_scale

    @property
    def indptr(self) -> np.ndarray:
        return self._mat.indptr

    @property
    def src_indptr(self) -> np.ndarray:
        """CSC-style pointer: edges grouped by src after :meth:`src_order`."""
        if self._indptr_src is None:
            indptr = np.zeros(self.num_src + 1, dtype=INDEX_DTYPE)
            if self.src.size:
                indptr[1:] = np.cumsum(np.bincount(self.src, minlength=self.num_src))
            self._indptr_src = indptr
        return self._indptr_src

    def src_order(self) -> np.ndarray:
        """Cached stable permutation sorting canonical edges by src.

        ``values[self.src_order()]`` groups per-edge rows contiguously by
        source node, aligned with :attr:`src_indptr` — the gather-backward
        direction of the segment-reduce fast path.  Treat as read-only.
        """
        if self._perm_src is None:
            self._perm_src = np.argsort(self.src, kind="stable")
        return self._perm_src

    # -- segment reductions over per-edge rows -------------------------
    def _incidence(self, side: str) -> sp.csr_matrix:
        """Lazily built ``(num_side, E)`` edge-selector CSR.

        Row ``n`` holds a one at every edge id incident to node ``n``, so
        ``inc @ values`` is a segment sum over that side's buckets — a
        single C-level SpMM instead of a buffered ``np.add.at`` scatter.
        Both selectors share this adjacency's cached index structure
        (``indptr`` / ``src_order``) and are built at most once.
        """
        if side == "dst":
            if self._inc_dst is None:
                self._inc_dst = sp.csr_matrix(
                    (np.ones(self.num_edges, dtype=np.float32),
                     np.arange(self.num_edges, dtype=INDEX_DTYPE),
                     self.indptr),
                    shape=(self.num_dst, self.num_edges),
                )
            return self._inc_dst
        if self._inc_src is None:
            self._inc_src = sp.csr_matrix(
                (np.ones(self.num_edges, dtype=np.float32),
                 self.src_order(), self.src_indptr),
                shape=(self.num_src, self.num_edges),
            )
        return self._inc_src

    def sum_edges(self, values: np.ndarray, side: str = "dst") -> np.ndarray:
        """Sum per-edge rows into per-node buckets on ``side``.

        Fast path: one SpMM against the cached edge-incidence selector
        (edges are dst-sorted; the src side reuses the cached src-order
        permutation).  Non-float inputs fall back to ``np.add.reduceat``
        over the same contiguous segments.  Reference path: ``np.add.at``
        scatter, kept for runtime A/B equivalence checks.  Charged cost is
        the caller's concern — this is raw numpy either way.
        """
        if side not in ("src", "dst"):
            raise ValueError("side must be 'src' or 'dst'")
        values = np.asarray(values)
        num = self.num_dst if side == "dst" else self.num_src
        if not fastpath_enabled():
            out = np.zeros((num,) + values.shape[1:], dtype=values.dtype)
            index = self.dst if side == "dst" else self.src
            # Deliberate reference fallback for A/B testing of the
            # segment-reduce fast path.
            np.add.at(out, index, values)  # repro-lint: disable=ADD-AT reference path behind use_reference_kernels()
            return out
        if values.size and values.dtype in (np.float32, np.float64):
            flat = values.reshape(values.shape[0], -1)
            summed = self._incidence(side) @ flat
            return np.ascontiguousarray(summed).reshape(
                (num,) + values.shape[1:]).astype(values.dtype, copy=False)
        out = np.zeros((num,) + values.shape[1:], dtype=values.dtype)
        if side == "dst":
            return _segment_reduceat(np.add, values, self.indptr, out)
        return _segment_reduceat(np.add, values[self.src_order()],
                                 self.src_indptr, out)

    def max_edges(self, values: np.ndarray, fill: float = -np.inf) -> np.ndarray:
        """Max-reduce per-edge rows by destination; empty rows get ``fill``."""
        values = np.asarray(values)
        out = np.full((self.num_dst,) + values.shape[1:], fill, dtype=values.dtype)
        if not fastpath_enabled():
            np.maximum.at(out, self.dst, values)
            return out
        return _segment_reduceat(np.maximum, values, self.indptr, out)

    # -- CSR matmul with structure reuse -------------------------------
    def matmul_data(self, data: Optional[np.ndarray], x: np.ndarray) -> np.ndarray:
        """``out[d] = sum_e data[e] * x[src[e]]`` using the CSR structure.

        ``data`` must follow this adjacency's canonical edge order; ``None``
        means unweighted (stored weights if any, else ones).  Weighted
        calls swap ``data`` into the prebuilt structure in place instead of
        constructing a fresh ``sp.csr_matrix`` (the default data buffer is
        restored before returning).
        """
        if data is None:
            return np.asarray(self._mat @ x, dtype=np.float32)
        data = np.asarray(data, dtype=np.float32)
        if not fastpath_enabled():
            _count_fastpath("csr_reuse", hit=False)
            mat = sp.csr_matrix(
                (data, self._mat.indices, self._mat.indptr), shape=self._mat.shape
            )
            return np.asarray(mat @ x, dtype=np.float32)
        _count_fastpath("csr_reuse", hit=True)
        try:
            self._mat.data = data  # repro-lint: disable=INPLACE-GRAD scipy csr buffer, not a Tensor
            out = self._mat @ x
        finally:
            self._mat.data = self._default_data  # repro-lint: disable=INPLACE-GRAD scipy csr buffer, not a Tensor
        return np.asarray(out, dtype=np.float32)

    def _transpose(self) -> sp.csr_matrix:
        """Lazily built-and-cached CSR of the transposed structure.

        Built directly from the cached src-order permutation (no scipy
        ``.T.tocsr()`` conversion): rows = src, indices = dst in src
        order, data = default data in src order.
        """
        if self._mat_t is None:
            _count_fastpath("transpose_cache", hit=False)
            perm = self.src_order()
            self._mat_t = sp.csr_matrix(
                (self._default_data[perm], self.dst[perm], self.src_indptr),
                shape=(self.num_src, self.num_dst),
            )
            self._default_data_t = self._mat_t.data
        else:
            _count_fastpath("transpose_cache", hit=True)
        return self._mat_t

    def rmatmul(self, grad: np.ndarray, data: Optional[np.ndarray] = None) -> np.ndarray:
        """``out[s] = sum_e data[e] * grad[dst[e]]`` (the SpMM backward).

        Reuses the cached transpose structure for both the unweighted and
        the weighted case; weighted calls permute ``data`` into src order
        and swap it in place.
        """
        if not fastpath_enabled():
            if data is None:
                if self._mat_t is None:
                    self._mat_t = self._mat.T.tocsr()
                    self._default_data_t = self._mat_t.data
                    _count_fastpath("transpose_cache", hit=False)
                else:
                    _count_fastpath("transpose_cache", hit=True)
                return np.asarray(self._mat_t @ grad, dtype=np.float32)
            _count_fastpath("csr_reuse", hit=False)
            mat = sp.csr_matrix(
                (np.asarray(data, dtype=np.float32), self._mat.indices, self._mat.indptr),
                shape=self._mat.shape,
            )
            return np.asarray(mat.T @ grad, dtype=np.float32)
        mat_t = self._transpose()
        if data is None:
            return np.asarray(mat_t @ grad, dtype=np.float32)
        _count_fastpath("csr_reuse", hit=True)
        data_t = np.asarray(data, dtype=np.float32)[self.src_order()]
        try:
            mat_t.data = data_t  # repro-lint: disable=INPLACE-GRAD scipy csr buffer, not a Tensor
            out = mat_t @ grad
        finally:
            mat_t.data = self._default_data_t  # repro-lint: disable=INPLACE-GRAD scipy csr buffer, not a Tensor
        return np.asarray(out, dtype=np.float32)

    # -- cached degree vectors (treat results as read-only) ------------
    def in_degrees(self) -> np.ndarray:
        if self._in_degrees is None:
            self._in_degrees = np.diff(self._mat.indptr).astype(INDEX_DTYPE)
        return self._in_degrees

    def out_degrees(self) -> np.ndarray:
        if self._out_degrees is None:
            self._out_degrees = np.bincount(self.src, minlength=self.num_src).astype(INDEX_DTYPE)
        return self._out_degrees

    def inv_in_degrees(self) -> np.ndarray:
        """``1 / max(in_degree, 1)`` as float32, cached on the structure."""
        if self._inv_in_degrees is None:
            degrees = np.maximum(self.in_degrees(), 1).astype(np.float32)
            self._inv_in_degrees = (1.0 / degrees).astype(np.float32)
        return self._inv_in_degrees

    def with_device(self, device) -> "SparseAdj":
        """Shallow re-placement onto another device (structure is shared)."""
        clone = object.__new__(SparseAdj)
        clone.__dict__ = dict(self.__dict__)
        clone.device = device
        return clone

    @classmethod
    def from_graph(cls, graph, device=None, reverse: bool = False) -> "SparseAdj":
        """Full-graph adjacency in aggregate-orientation from a Graph.

        ``reverse=False`` aggregates along stored edge direction
        (src -> dst); datasets here are symmetrized so direction is moot.
        """
        coo = graph.adj.to_coo()
        src, dst = (coo.dst, coo.src) if reverse else (coo.src, coo.dst)
        return cls(
            src,
            dst,
            num_src=graph.num_nodes,
            num_dst=graph.num_nodes,
            device=device,
            node_scale=graph.node_scale,
            edge_scale=graph.edge_scale,
        )

    def structure_nbytes(self) -> float:
        """Logical bytes of this structure (for transfer charging)."""
        return 8.0 * (self.logical_num_dst + 1) + 8.0 * self.logical_num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseAdj({self.num_src}->{self.num_dst}, E={self.num_edges}, "
            f"device={getattr(self.device, 'name', None)})"
        )
