"""Tests for the composable datapipe: config, staging, scheduler, trainer.

The load-bearing invariants: ``pipeline=off`` *is* the serial schedule,
``depth-1`` charges identically to it, deeper queues only ever help,
numerics are bit-identical at every depth, staging buffers live in the
memory ledger, and the ``sampler.worker`` fault seam degrades the pipe
the same way it tears down the serial worker pool.
"""

import numpy as np
import pytest

from repro.datapipe import PipelineConfig, parse_pipeline, run_epoch
from repro.datapipe.pipeline import Stage
from repro.datapipe.staging import StagingPool
from repro.errors import BenchmarkError, OutOfMemoryError, RecoveryExhausted
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.graphsage import build_graphsage
from repro.models.trainer import MiniBatchTrainer, TrainConfig
from repro.profiling.profiler import PhaseProfiler
from repro.resilience import runtime as resilience
from repro.resilience.plan import FaultPlan, FaultSpec, RecoveryPolicy
from repro.simtime import LaneScheduler, VirtualClock


def make_trainer(pipeline="off", placement="cpugpu", scale=0.3, reps=4,
                 epochs=1, num_workers=0, seed=0):
    fw = get_framework("dglite")
    machine = paper_testbed()
    fgraph = fw.load("ppi", machine, scale=scale)
    sampler = fw.neighbor_sampler(fgraph, fanouts=(4, 4), batch_size=64,
                                  mode="cpu", seed=seed)
    net = build_graphsage(fw, fgraph, hidden=16, seed=seed)
    config = TrainConfig(epochs=epochs, placement=placement,
                         representative_batches=reps, seed=seed,
                         pipeline=pipeline, num_workers=num_workers)
    profiler = PhaseProfiler(machine.clock)
    trainer = MiniBatchTrainer(fw, fgraph, sampler, net, config,
                               profiler=profiler)
    return trainer, machine, net


def run_one(pipeline, **kwargs):
    trainer, machine, net = make_trainer(pipeline, **kwargs)
    result = trainer.run()
    params = np.concatenate([p.data.ravel() for p in net.parameters()])
    return result, machine.clock.now, params


# ---------------------------------------------------------------------------
# the pipeline knob
# ---------------------------------------------------------------------------
class TestPipelineConfig:
    def test_parse_off_and_depths(self):
        assert parse_pipeline("off") == PipelineConfig(0)
        assert not parse_pipeline("off").enabled
        assert parse_pipeline("depth-1") == PipelineConfig(1)
        assert parse_pipeline("depth-8").depth == 8
        assert parse_pipeline("depth-8").describe() == "depth-8"
        assert PipelineConfig(0).describe() == "off"

    @pytest.mark.parametrize("spec", ["", "on", "depth-0", "depth--1",
                                      "depth-", "depth-x", "2"])
    def test_parse_rejects_garbage(self, spec):
        with pytest.raises(BenchmarkError):
            parse_pipeline(spec)

    def test_negative_depth_rejected(self):
        with pytest.raises(BenchmarkError):
            PipelineConfig(-1)

    def test_pipeline_excludes_prefetch(self):
        with pytest.raises(BenchmarkError, match="prefetch"):
            TrainConfig(placement="cpugpu", pipeline="depth-2", prefetch=True)

    def test_pipeline_excludes_gpu_sampling(self):
        with pytest.raises(BenchmarkError, match="sample on-device"):
            TrainConfig(placement="gpu", pipeline="depth-2")

    def test_trainconfig_depth_property(self):
        assert TrainConfig(pipeline="off").pipeline_depth == 0
        assert TrainConfig(pipeline="depth-3").pipeline_depth == 3


# ---------------------------------------------------------------------------
# charged-time invariants
# ---------------------------------------------------------------------------
class TestChargedTime:
    def test_depth1_equals_serial(self):
        r_off, t_off, p_off = run_one("off")
        r_d1, t_d1, p_d1 = run_one("depth-1")
        assert t_d1 == pytest.approx(t_off, abs=1e-9)
        assert r_d1.losses == r_off.losses
        np.testing.assert_array_equal(p_d1, p_off)

    def test_depth_monotonic(self):
        times = {d: run_one(f"depth-{d}")[1] for d in (1, 2, 4)}
        assert times[2] < times[1]
        assert times[4] < times[1]
        # Deeper queues are monotone up to the pipeline-fill transient:
        # the first batch's sample job is on the critical path before any
        # overlap exists, and wider worker pools inflate per-job cost
        # (sublinear scaling), so allow that warmup sliver.
        assert times[4] <= times[2] * 1.005

    def test_numerics_bit_identical_at_depth(self):
        r_off, _, p_off = run_one("off", epochs=2)
        r_d4, t_d4, p_d4 = run_one("depth-4", epochs=2)
        assert r_d4.losses == r_off.losses
        np.testing.assert_array_equal(p_d4, p_off)

    def test_seeded_determinism(self):
        r_a, t_a, p_a = run_one("depth-4")
        r_b, t_b, p_b = run_one("depth-4")
        assert t_a == t_b
        assert r_a.losses == r_b.losses
        np.testing.assert_array_equal(p_a, p_b)
        assert r_a.phases == r_b.phases

    def test_pipelined_cpugpu_faster_than_serial(self):
        _, t_off, _ = run_one("off", scale=0.6)
        _, t_d4, _ = run_one("depth-4", scale=0.6)
        assert t_off / t_d4 >= 1.3

    def test_phases_cover_epoch(self):
        # Setup (graph load, model H2D) is charged outside the profiler
        # in this harness; that unattributed sliver must be identical in
        # both modes, i.e. the pipeline's phase split covers its epochs
        # exactly as the serial schedule covers its own.
        r_off, t_off, _ = run_one("off")
        r_d4, t_d4, _ = run_one("depth-4")
        setup_off = t_off - sum(r_off.phases.values())
        setup_d4 = t_d4 - sum(r_d4.phases.values())
        assert setup_d4 == pytest.approx(setup_off, rel=1e-9)

    def test_extrapolation_scales_epoch(self):
        # Fewer representative batches must still bill the full epoch:
        # extrapolated items replay through the same lane schedule.
        _, t_full, _ = run_one("depth-4", reps=10)
        _, t_reps, _ = run_one("depth-4", reps=3)
        assert t_reps == pytest.approx(t_full, rel=0.35)


# ---------------------------------------------------------------------------
# the executor: backpressure, reports
# ---------------------------------------------------------------------------
def _two_stage(machine, sample_s=0.02, train_s=0.01, workers=1):
    clock = machine.clock

    def sample(i, x):
        clock.occupy(machine.cpu.name, sample_s, tag="sample")
        return x

    def train(i, x):
        clock.occupy("gpu", train_s, tag="train")
        return x * 10

    return [
        Stage("sample", "sampling", fn=sample,
              lanes=tuple(f"worker/{w}" for w in range(workers))),
        Stage("train", "training", fn=train, lanes=("train",)),
    ]


class TestRunEpoch:
    def test_depth_bounds_in_flight(self):
        machine = paper_testbed()
        report = run_epoch(machine, _two_stage(machine, workers=4),
                           range(8), depth=2)
        assert report.max_in_flight <= 2
        assert report.outputs == [i * 10 for i in range(8)]

    def test_backpressure_gates_first_stage(self):
        machine = paper_testbed()
        report = run_epoch(machine, _two_stage(machine, workers=8),
                           range(6), depth=2)
        jobs = [j for j in report.jobs if j.tag == "datapipe:sample"]
        done = [j for j in report.jobs if j.tag == "datapipe:train"]
        for i in range(2, 6):
            # Item i's first stage cannot start before item i-2 drained.
            assert jobs[i].start >= done[i - 2].end - 1e-12

    def test_overlap_reported(self):
        machine = paper_testbed()
        report = run_epoch(machine, _two_stage(machine, workers=1),
                           range(6), depth=3)
        assert report.overlap_seconds > 0
        serial = 6 * 0.03
        assert report.elapsed < serial - 1e-9

    def test_depth1_is_serial_sum(self):
        machine = paper_testbed()
        report = run_epoch(machine, _two_stage(machine, workers=4),
                           range(5), depth=1)
        assert report.elapsed == pytest.approx(5 * 0.03, abs=1e-12)
        assert report.overlap_seconds == pytest.approx(0.0, abs=1e-12)
        assert report.max_in_flight == 1

    def test_bad_depth_rejected(self):
        machine = paper_testbed()
        with pytest.raises(ValueError):
            run_epoch(machine, _two_stage(machine), range(2), depth=0)

    def test_lane_busy_and_phase_split(self):
        machine = paper_testbed()
        report = run_epoch(machine, _two_stage(machine, workers=2),
                           range(4), depth=2)
        assert set(report.lane_busy) == {"worker/0", "worker/1", "train"}
        assert report.phases["training"] > 0
        assert report.phases["sampling"] > 0
        assert sum(report.phases.values()) == pytest.approx(report.elapsed)


# ---------------------------------------------------------------------------
# staging buffers in the memory ledger
# ---------------------------------------------------------------------------
class TestStagingPool:
    def test_depth_bounds_live_buffers(self):
        machine = paper_testbed()
        pool = StagingPool(machine, depth=2)
        for i in range(6):
            pool.stage_host(i, 1024)
        assert pool.live_items <= 2 + 1  # current + (depth - 1) in flight
        assert pool.live_host_bytes <= 3 * 1024
        pool.close()
        assert pool.live_items == 0
        assert pool.live_host_bytes == 0

    def test_ledger_accounts_staging(self):
        machine = paper_testbed()
        before = machine.cpu.memory.in_use
        pool = StagingPool(machine, depth=2)
        pool.stage_host(0, 4096)
        assert machine.cpu.memory.in_use == before + 4096
        pool.close()
        assert machine.cpu.memory.in_use == before

    def test_gpu_landing_accounted(self):
        machine = paper_testbed()
        before = machine.gpu.memory.in_use
        pool = StagingPool(machine, depth=2)
        pool.stage_gpu(0, 2048)
        assert machine.gpu.memory.in_use == before + 2048
        pool.close()
        assert machine.gpu.memory.in_use == before

    def test_oom_is_the_peak_assertion(self):
        machine = paper_testbed()
        pool = StagingPool(machine, depth=4)
        huge = machine.gpu.memory.capacity  # bytes; depth x huge must blow
        with pytest.raises(OutOfMemoryError):
            for i in range(4):
                pool.stage_gpu(i, huge * 0.6)
        pool.close()

    def test_bad_depth_rejected(self):
        machine = paper_testbed()
        with pytest.raises(ValueError):
            StagingPool(machine, depth=0)


# ---------------------------------------------------------------------------
# fault-seam interplay
# ---------------------------------------------------------------------------
def _plan(*faults, policies=None):
    return FaultPlan(seed=0, faults=tuple(faults), policies=policies or {})


class TestFaultSeam:
    def test_crash_respawns_inside_pipeline(self):
        trainer, machine, _ = make_trainer("depth-4")
        plan = _plan(
            FaultSpec(site="sampler.worker", kind="crash", at=1,
                      severity=0.5),
            policies={"sampler.worker": RecoveryPolicy(backoff=0.01)},
        )
        with resilience.session(plan) as injector:
            result = trainer.run()
        summary = injector.summary()
        assert summary["injected"] == 1
        assert summary["recovered"] == 1
        assert summary["degraded"] == 0
        assert not trainer._workers_degraded
        assert result.losses

    def test_crash_costs_time(self):
        _, t_clean, _ = run_one("depth-4")
        trainer, machine, _ = make_trainer("depth-4")
        plan = _plan(
            FaultSpec(site="sampler.worker", kind="crash", at=1,
                      severity=1.0),
            policies={"sampler.worker": RecoveryPolicy(backoff=0.02)},
        )
        with resilience.session(plan):
            trainer.run()
        assert machine.clock.now > t_clean

    def test_repeated_crashes_drain_queue_then_degrade(self):
        # The pool dies while later items are already queued behind the
        # crashed worker: the pipeline must finish every item (drained on
        # a single lane at depth-1) and numerics must not change.
        r_clean, _, p_clean = run_one("depth-4", reps=6)
        trainer, machine, net = make_trainer("depth-4", reps=6)
        plan = _plan(
            FaultSpec(site="sampler.worker", kind="crash", count=99),
            policies={"sampler.worker": RecoveryPolicy(max_retries=1,
                                                       backoff=0.0,
                                                       degrade=True)},
        )
        with resilience.session(plan) as injector:
            result = trainer.run()
        summary = injector.summary()
        assert trainer._workers_degraded
        assert summary["degraded"] == 1
        # Every queued batch still trained, in order, bit-identically.
        assert result.losses == r_clean.losses
        params = np.concatenate([p.data.ravel() for p in net.parameters()])
        np.testing.assert_array_equal(params, p_clean)

    def test_exhausted_retries_raise_without_degrade(self):
        trainer, machine, _ = make_trainer("depth-2")
        plan = _plan(
            FaultSpec(site="sampler.worker", kind="crash", count=99),
            policies={"sampler.worker": RecoveryPolicy(max_retries=1,
                                                       backoff=0.0,
                                                       degrade=False)},
        )
        with resilience.session(plan):
            with pytest.raises(RecoveryExhausted):
                trainer.run()


# ---------------------------------------------------------------------------
# the overlap() compatibility shim
# ---------------------------------------------------------------------------
class TestOverlapShim:
    def test_shim_charges_scheduler_makespan(self):
        clock = VirtualClock()
        with clock.overlap("gpu"):
            clock.advance(0.3)
            clock.advance(0.5)
            clock.advance(0.2)
        assert clock.now == pytest.approx(0.5)
        assert clock.busy_time("gpu") == pytest.approx(0.5)

    def test_shim_matches_explicit_lane_scheduler(self):
        """The old prefetching case study charged max(copy, compute);
        the shim must agree with an explicit two-lane schedule."""
        durations = (0.004, 0.0115)  # H2D copy vs training step
        shim = VirtualClock()
        with shim.overlap():
            for dt in durations:
                shim.advance(dt)
        explicit = VirtualClock()
        sched = LaneScheduler(explicit)
        sched.submit("copy", durations[0])
        sched.submit("train", durations[1])
        sched.drain()
        assert shim.now == pytest.approx(explicit.now, abs=1e-15)
        assert shim.now == pytest.approx(max(durations))


# ---------------------------------------------------------------------------
# layerwise inference on the pipe
# ---------------------------------------------------------------------------
class TestPipelinedInference:
    def _run(self, pipeline, device="gpu"):
        from repro.models.inference import layerwise_inference

        fw = get_framework("dglite")
        machine = paper_testbed()
        fgraph = fw.load("ppi", machine, scale=0.3)
        net = build_graphsage(fw, fgraph, hidden=16, seed=0)
        res = layerwise_inference(fw, fgraph, net, device=device,
                                  batch_nodes=4096, pipeline=pipeline)
        return res, machine.clock.now

    def test_logits_bit_identical(self):
        r_off, _ = self._run("off")
        r_d3, _ = self._run("depth-3")
        np.testing.assert_array_equal(r_off.logits, r_d3.logits)

    def test_depth1_equals_serial(self):
        _, t_off = self._run("off")
        _, t_d1 = self._run("depth-1")
        assert t_d1 == pytest.approx(t_off, abs=1e-9)

    def test_depth_no_slower(self):
        _, t_off = self._run("off")
        _, t_d3 = self._run("depth-3")
        assert t_d3 <= t_off + 1e-9
