"""Loading one telemetry output directory into analyzable form.

A :class:`RunBundle` is the parsed, virtual-clock view of the four run
artifacts (``run.json``, ``events.jsonl``, ``trace.json``,
``metrics.prom``).  Wall-clock fields are deliberately dropped: every
analysis downstream is a deterministic function of the simulation, and
keeping wall time out is what makes the emitted ``repro.profile/1``
artifacts byte-identical across same-seed runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class LaneInterval:
    """One device busy interval [start, end) on the virtual clock."""

    lane: str  # device / link / storage lane name
    name: str  # kernel or transfer tag
    start: float  # virtual seconds
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RunBundle:
    """Everything the analyses need from one telemetry directory."""

    manifest: dict
    span_records: List[dict] = field(default_factory=list)
    intervals: List[LaneInterval] = field(default_factory=list)

    @property
    def label(self) -> str:
        return str(self.manifest.get("label", "?"))

    @property
    def total_seconds(self) -> float:
        return float(self.manifest.get("total_seconds", 0.0))

    @property
    def metric_records(self) -> List[dict]:
        return list(self.manifest.get("metrics", []))

    @property
    def hardware(self) -> dict:
        return dict(self.manifest.get("hardware", {}))

    def lanes(self) -> List[str]:
        return sorted({iv.lane for iv in self.intervals})

    def counter_series(self, name: str) -> Dict[tuple, float]:
        """All series of one counter, keyed by sorted label items."""
        series: Dict[tuple, float] = {}
        for record in self.metric_records:
            if record.get("name") != name or record.get("kind") != "counter":
                continue
            key = tuple(sorted(record.get("labels", {}).items()))
            series[key] = series.get(key, 0.0) + float(record.get("value", 0.0))
        return series


def _trace_intervals(payload: dict, time_unit: float = 1e6) -> List[LaneInterval]:
    """Device lanes (pid 0) of a merged Chrome trace, back in seconds."""
    from repro.telemetry.exporters import DEVICE_PID

    events = payload.get("traceEvents", [])
    intervals = []
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        if event.get("pid") != DEVICE_PID:
            continue
        start = float(event["ts"]) / time_unit
        duration = float(event["dur"]) / time_unit
        intervals.append(LaneInterval(
            lane=str(event.get("cat", "?")),
            name=str(event.get("name", "busy")),
            start=start,
            end=start + duration,
        ))
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.lane, iv.name))
    return intervals


def load_run_bundle(out_dir: Union[str, Path]) -> RunBundle:
    """Parse one telemetry directory; raises on missing/invalid artifacts."""
    from repro.telemetry.exporters import read_events_jsonl
    from repro.telemetry.manifest import load_run_manifest, validate_run_manifest

    out = Path(out_dir)
    manifest_path = out / "run.json"
    trace_path = out / "trace.json"
    events_path = out / "events.jsonl"
    for path in (manifest_path, trace_path, events_path):
        if not path.exists():
            raise BenchmarkError(
                f"not a telemetry directory: {out} is missing {path.name} "
                "(produce one with `repro train --telemetry DIR`)")
    manifest = load_run_manifest(manifest_path)
    problems = validate_run_manifest(manifest)
    if problems:
        raise BenchmarkError(
            f"{manifest_path}: invalid run manifest ({problems[0]}"
            + (f" +{len(problems) - 1} more)" if len(problems) > 1 else ")"))
    spans = [r for r in read_events_jsonl(events_path)
             if r.get("type") == "span"]
    trace = json.loads(trace_path.read_text())
    return RunBundle(manifest=manifest,
                     span_records=spans,
                     intervals=_trace_intervals(trace))


def device_peaks(bundle: RunBundle) -> Dict[str, dict]:
    """Device name -> spec dict from the manifest's hardware section."""
    devices = bundle.hardware.get("devices")
    return dict(devices) if isinstance(devices, dict) else {}


def link_spec(bundle: RunBundle) -> Optional[dict]:
    link = bundle.hardware.get("link")
    return dict(link) if isinstance(link, dict) else None
