"""Logical memory accounting for simulated devices.

Dataset arrays in this reproduction are scaled down to fit the container,
but the *memory ledger* tracks allocations at their **logical (paper-scale)
size**, so out-of-memory behaviour matches the paper's 48 GB GPU / 64 GB
host: PyG's unfused ChebConv/GATConv/GATv2Conv layers materialize
``E x F`` per-edge message buffers and blow past 48 GB on Reddit and
ogbn-products (Observation 3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.errors import OutOfMemoryError
from repro.telemetry import runtime as telemetry


@dataclass
class Allocation:
    """A live allocation on a device."""

    handle: int
    nbytes: int
    label: str


class MemoryLedger:
    """Tracks logical bytes in use on one device and raises on exhaustion."""

    def __init__(self, device_name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.device_name = device_name
        self.capacity = int(capacity)
        self._in_use = 0
        self._peak = 0
        self._live: Dict[int, Allocation] = {}
        self._handles = itertools.count(1)

    @property
    def in_use(self) -> int:
        """Logical bytes currently allocated."""
        return self._in_use

    @property
    def peak(self) -> int:
        """High-water mark of logical bytes allocated."""
        return self._peak

    @property
    def free(self) -> int:
        return self.capacity - self._in_use

    def alloc(self, nbytes: int, label: str = "") -> Allocation:
        """Allocate ``nbytes`` logical bytes; raise OutOfMemoryError if full."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        if self._in_use + nbytes > self.capacity:
            raise OutOfMemoryError(self.device_name, nbytes, self._in_use, self.capacity)
        alloc = Allocation(next(self._handles), nbytes, label)
        self._live[alloc.handle] = alloc
        self._in_use += nbytes
        self._peak = max(self._peak, self._in_use)
        self._record_metrics()
        return alloc

    def release(self, alloc: Allocation) -> None:
        """Free an allocation.

        Idempotent: releasing an allocation twice (or after
        :meth:`release_all`) is a no-op, because tensor finalizers may fire
        after an experiment tears the ledger down.
        """
        stored = self._live.pop(alloc.handle, None)
        if stored is not None:
            self._in_use -= stored.nbytes
            self._record_metrics()

    def _record_metrics(self) -> None:
        registry = telemetry.metrics()
        if registry is not None:
            registry.gauge("memory.in_use_bytes",
                           device=self.device_name).set(self._in_use)
            registry.gauge("memory.peak_bytes",
                           device=self.device_name).set_max(self._peak)

    def release_all(self) -> None:
        """Free everything (used when an experiment tears down)."""
        self._live.clear()
        self._in_use = 0

    def live_allocations(self) -> Iterator[Allocation]:
        return iter(self._live.values())

    def would_fit(self, nbytes: int) -> bool:
        return self._in_use + int(nbytes) <= self.capacity

    def reset_peak(self) -> None:
        self._peak = self._in_use

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryLedger({self.device_name}, in_use={self._in_use / 2**30:.2f} GiB,"
            f" capacity={self.capacity / 2**30:.2f} GiB)"
        )


@dataclass
class ScopedAllocation:
    """Context manager that frees a temporary allocation on exit."""

    ledger: MemoryLedger
    nbytes: int
    label: str = ""
    _alloc: Optional[Allocation] = field(default=None, init=False)

    def __enter__(self) -> Allocation:
        self._alloc = self.ledger.alloc(self.nbytes, self.label)
        return self._alloc

    def __exit__(self, *exc_info) -> None:
        if self._alloc is not None:
            self.ledger.release(self._alloc)
            self._alloc = None
