"""Tests for gradient clipping and LR schedules."""

import math

import numpy as np
import pytest

from repro.tensor.module import Linear
from repro.tensor.optim import SGD
from repro.tensor.schedule import CosineLR, StepLR, WarmupLR, clip_grad_norm
from repro.tensor.tensor import Tensor


def _params_with_grads(scale=1.0):
    lin = Linear(4, 4, seed=0)
    for p in lin.parameters():
        p.grad = np.full_like(p.data, scale)
    return lin.parameters()


class TestClipGradNorm:
    def test_returns_preclip_norm(self):
        params = _params_with_grads(1.0)
        n = sum(p.data.size for p in params)
        norm = clip_grad_norm(params, max_norm=1e9)
        assert norm == pytest.approx(math.sqrt(n), rel=1e-5)

    def test_clips_to_max_norm(self):
        params = _params_with_grads(100.0)
        clip_grad_norm(params, max_norm=1.0)
        post = math.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
        assert post == pytest.approx(1.0, rel=1e-4)

    def test_leaves_small_grads_alone(self):
        params = _params_with_grads(1e-4)
        before = [p.grad.copy() for p in params]
        clip_grad_norm(params, max_norm=10.0)
        for b, p in zip(before, params):
            assert np.array_equal(b, p.grad)

    def test_skips_gradless_params(self):
        lin = Linear(3, 3)
        assert clip_grad_norm(lin.parameters(), 1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestSchedulers:
    def _opt(self, lr=1.0):
        return SGD(Linear(2, 2).parameters(), lr=lr)

    def test_step_lr_halves_on_schedule(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.5)
        rates = [sched.step() for _ in range(4)]
        assert rates == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_lr_anneals_to_min(self):
        opt = self._opt()
        sched = CosineLR(opt, t_max=10, min_lr=0.1)
        rates = [sched.step() for _ in range(10)]
        assert rates[0] < 1.0
        assert rates[-1] == pytest.approx(0.1, abs=1e-6)
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_warmup_starts_low(self):
        opt = self._opt()
        sched = WarmupLR(opt, warmup=4)
        assert opt.lr == pytest.approx(0.2)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(1.0)

    def test_validation(self):
        opt = self._opt()
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineLR(opt, t_max=0)
        with pytest.raises(ValueError):
            WarmupLR(opt, warmup=0)

    def test_scheduler_affects_updates(self):
        opt = self._opt(lr=1.0)
        sched = StepLR(opt, step_size=1, gamma=0.1)
        for p in opt.params:
            p.grad = np.ones_like(p.data)
        before = opt.params[0].data.copy()
        sched.step()  # lr -> 0.1
        opt.step()
        delta = np.abs(opt.params[0].data - before).max()
        assert delta == pytest.approx(0.1, rel=1e-5)
