"""Optimizers: SGD and Adam.

Both the DGL and PyG official examples train with Adam; the update itself
is part of the paper's "model training" phase, so the step charges
elementwise work per parameter.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.tensor.context import charge
from repro.tensor.tensor import FLOAT_DTYPE, Tensor


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _charge_update(self, flops_per_elem: int) -> None:
        device = next((p.device for p in self.params if p.device is not None), None)
        n = sum(p.data.size for p in self.params)
        charge(device, type(self).__name__.lower() + ".step", "elementwise",
               flops=flops_per_elem * n, bytes_moved=12 * n)


class SGD(Optimizer):
    """Vanilla SGD with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data, dtype=FLOAT_DTYPE)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = (p.data - self.lr * grad).astype(FLOAT_DTYPE)
        self._charge_update(flops_per_elem=4)


class Adam(Optimizer):
    """Adam with bias correction (torch defaults)."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        self._step_count += 1
        bc1 = 1.0 - self.beta1 ** self._step_count
        bc2 = 1.0 - self.beta2 ** self._step_count
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data, dtype=FLOAT_DTYPE)
                self._v[i] = np.zeros_like(p.data, dtype=FLOAT_DTYPE)
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / bc1
            v_hat = self._v[i] / bc2
            p.data = (p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(FLOAT_DTYPE)
        self._charge_update(flops_per_elem=12)
