"""Calibrated performance profiles for the two framework implementations.

These constants are the *only* tuned numbers in the reproduction; every
benchmark result is computed work (FLOPs / bytes / items from the real
algorithm execution) priced through them.  Each constant is annotated with
the paper observation it encodes.

Magnitudes are anchored to the testbed specs in
:mod:`repro.hardware.specs`; efficiency factors are fractions of peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Tuple

from repro.tensor.context import CostProfile


@dataclass(frozen=True)
class SamplerCosts:
    """Per-sampler unit costs on the CPU sampling path."""

    per_item: float  # seconds per logical sampled/examined element
    per_batch: float  # fixed seconds per mini-batch (dispatch, Python loop)


@dataclass(frozen=True)
class FrameworkProfile:
    """Everything that differentiates one framework's implementation."""

    name: str
    cost: CostProfile

    # --- data loader (Figure 3) -------------------------------------
    # Building the framework graph object costs per node/edge; DGL's
    # graph-centric DGLGraph carries rich per-node state and is heavier
    # than PyG's thin Data(edge_index) wrapper (Observation 1).
    loader_per_node: float
    loader_per_edge: float
    # Datasets not bundled in the framework's dataset module must be
    # processed from raw files (multiplier on the per-element cost).
    raw_process_penalty: float
    bundled_flag: str  # DatasetSpec attribute: "in_dgl" / "in_pyg"

    # --- samplers (Figure 4) -----------------------------------------
    # DGL implements samplers in C++ with OpenMP; PyG's are Python
    # (Observation 2).  Keys: "neighbor", "cluster", "saint_rw".
    sampler: Dict[str, SamplerCosts]
    metis_per_edge: float  # one-time partitioning cost (both use METIS)
    # PyG requires CSC and converts on first sampler use — "quite slow on
    # large datasets" (Observation 2).
    requires_csc: bool
    csc_convert_per_edge: float

    # --- GPU sampling (Figures 20-21; DGL-only, GraphSAGE-only) -------
    supports_gpu_sampling: bool
    supports_uva_sampling: bool
    gpu_sampler_per_item: float
    gpu_sampler_per_hop_launch: float

    # --- fused kernels (Figure 5) -------------------------------------
    # Conv layers with a fused message-aggregation path.  PyG lacks fused
    # support for ChebConv/GATConv/GATv2Conv, which therefore materialize
    # E x F messages and OOM on large graphs (Observation 3).
    fused_convs: FrozenSet[str]

    # DGL's asynchronous pre-fetching (case study 1, briefly mentioned).
    supports_prefetch: bool = False

    def sampler_costs(self, kind: str) -> SamplerCosts:
        if kind not in self.sampler:
            raise KeyError(f"{self.name} has no cost entry for sampler {kind!r}")
        return self.sampler[kind]

    def with_efficiency_scaled(self, family: str, device_kind: str,
                               factor: float) -> "FrameworkProfile":
        """A copy with one kernel family's efficiencies scaled by ``factor``.

        Used by the sensitivity bench to perturb calibration constants;
        efficiencies are clamped to (0, 1].
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        efficiencies = dict(self.cost.efficiencies)
        compute, memory = self.cost.eff(family, device_kind)
        efficiencies[(family, device_kind)] = (
            min(1.0, compute * factor),
            min(1.0, memory * factor),
        )
        cost = replace(self.cost, efficiencies=efficiencies)
        return replace(self, cost=cost)

    def with_sampler_scaled(self, kind: str, factor: float) -> "FrameworkProfile":
        """A copy with one sampler's per-item/per-batch costs scaled."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        costs = self.sampler_costs(kind)
        sampler = dict(self.sampler)
        sampler[kind] = SamplerCosts(per_item=costs.per_item * factor,
                                     per_batch=costs.per_batch * factor)
        return replace(self, sampler=sampler)


# ----------------------------------------------------------------------
# DGLite: models DGL v0.8.2 with the PyTorch backend.
# ----------------------------------------------------------------------
DGLITE_COST = CostProfile(
    name="dglite",
    default_eff=(0.5, 0.5),
    efficiencies={
        # Both frameworks hit vendor BLAS for dense layers.
        ("gemm", "cpu"): (0.65, 0.60),
        ("gemm", "gpu"): (0.80, 0.75),
        # DGL ships the DistGNN-optimized CPU message-passing kernel [29]
        # and highly tuned CUDA g-SpMM kernels (Observation 3).
        ("spmm", "cpu"): (0.15, 0.25),
        ("spmm", "gpu"): (0.75, 0.80),
        ("sddmm", "cpu"): (0.12, 0.20),
        ("sddmm", "gpu"): (0.65, 0.70),
        ("gather", "cpu"): (0.30, 0.40),
        ("gather", "gpu"): (0.60, 0.65),
        ("scatter", "cpu"): (0.15, 0.25),
        ("scatter", "gpu"): (0.50, 0.60),
        ("elementwise", "cpu"): (0.50, 0.50),
        ("elementwise", "gpu"): (0.70, 0.70),
        ("reduce", "cpu"): (0.50, 0.50),
        ("reduce", "gpu"): (0.70, 0.70),
        ("index", "cpu"): (0.40, 0.45),
        ("index", "gpu"): (0.60, 0.65),
    },
    # DGLGraph dispatch (graph-centric abstraction) is heavier than PyG's
    # — why PyG wins on small graphs on GPU (Observation 3).
    dispatch_overhead=12e-6,
)

DGLITE_PROFILE = FrameworkProfile(
    name="dglite",
    cost=DGLITE_COST,
    # DGLGraph construction: per-node/edge frame setup, COO+CSR+CSC views.
    loader_per_node=8.0e-7,
    loader_per_edge=2.0e-8,
    raw_process_penalty=2.5,
    bundled_flag="in_dgl",
    sampler={
        # C++/OpenMP rates (~25 ns per examined/sampled element over 20
        # cores); per-batch cost is one native call.
        "neighbor": SamplerCosts(per_item=2.5e-8, per_batch=6.0e-5),
        # Cluster aggregation relabels nodes and copies retained edges —
        # heavier per element than a walk step or a sampled neighbor.
        "cluster": SamplerCosts(per_item=3.0e-8, per_batch=5.0e-5),
        "saint_rw": SamplerCosts(per_item=3.0e-8, per_batch=6.0e-5),
        # Extension samplers (not benchmarked in the paper).
        "saint_node": SamplerCosts(per_item=3.0e-8, per_batch=6.0e-5),
        "saint_edge": SamplerCosts(per_item=3.0e-8, per_batch=6.0e-5),
        "fastgcn": SamplerCosts(per_item=2.5e-8, per_batch=6.0e-5),
        # LADIES recomputes a frontier distribution per layer per batch.
        "ladies": SamplerCosts(per_item=2.5e-8, per_batch=1.0e-4),
    },
    metis_per_edge=1.2e-7,
    requires_csc=False,
    csc_convert_per_edge=0.0,
    supports_gpu_sampling=True,
    supports_uva_sampling=True,
    gpu_sampler_per_item=2.5e-9,
    gpu_sampler_per_hop_launch=3.0e-5,
    fused_convs=frozenset(
        {"gcn", "gcn2", "cheb", "sage", "gat", "gatv2", "tag", "sg",
         "appnp", "gin", "graph"}
    ),
    supports_prefetch=True,
)

# ----------------------------------------------------------------------
# PyGLite: models PyG v2.0.4 (torch-scatter / torch-sparse kernels).
# ----------------------------------------------------------------------
PYGLITE_COST = CostProfile(
    name="pyglite",
    default_eff=(0.4, 0.45),
    efficiencies={
        ("gemm", "cpu"): (0.65, 0.60),
        ("gemm", "gpu"): (0.80, 0.75),
        # torch-sparse matmul: decent CUDA kernels, weak CPU path (DGL's
        # DistGNN-optimized CPU kernel is ~5x more efficient).
        ("spmm", "cpu"): (0.03, 0.06),
        ("spmm", "gpu"): (0.45, 0.65),
        ("sddmm", "cpu"): (0.02, 0.04),
        ("sddmm", "gpu"): (0.35, 0.55),
        ("gather", "cpu"): (0.25, 0.35),
        ("gather", "gpu"): (0.55, 0.60),
        # "some 'scatter' operations are not well optimized on CPU"
        # (Observation 3) — the dominant term in PyG's CPU training gap.
        ("scatter", "cpu"): (0.04, 0.08),
        ("scatter", "gpu"): (0.40, 0.50),
        ("elementwise", "cpu"): (0.50, 0.50),
        ("elementwise", "gpu"): (0.70, 0.70),
        ("reduce", "cpu"): (0.50, 0.50),
        ("reduce", "gpu"): (0.70, 0.70),
        ("index", "cpu"): (0.40, 0.45),
        ("index", "gpu"): (0.60, 0.65),
    },
    # Thin tensor-first dispatch.
    dispatch_overhead=8e-6,
)

PYGLITE_PROFILE = FrameworkProfile(
    name="pyglite",
    cost=PYGLITE_COST,
    # Data(edge_index) construction is a couple of tensor wraps.
    loader_per_node=2.0e-7,
    loader_per_edge=8.0e-9,
    raw_process_penalty=2.5,
    bundled_flag="in_pyg",
    sampler={
        # Python-level sampling loops (~8-10x the native rates); SAINT's
        # walk is vectorized through torch ops so its gap is smaller
        # (Observation 2: "the performance gap is relatively small for
        # GraphSAINT sampler").
        "neighbor": SamplerCosts(per_item=2.2e-7, per_batch=1.2e-3),
        "cluster": SamplerCosts(per_item=2.4e-7, per_batch=1.0e-3),
        "saint_rw": SamplerCosts(per_item=7.0e-8, per_batch=4.0e-4),
        # Extension samplers (not benchmarked in the paper).
        "saint_node": SamplerCosts(per_item=7.0e-8, per_batch=4.0e-4),
        "saint_edge": SamplerCosts(per_item=7.0e-8, per_batch=4.0e-4),
        "fastgcn": SamplerCosts(per_item=2.2e-7, per_batch=1.2e-3),
        "ladies": SamplerCosts(per_item=2.2e-7, per_batch=1.8e-3),
    },
    metis_per_edge=1.2e-7,
    requires_csc=True,
    csc_convert_per_edge=6.0e-8,
    supports_gpu_sampling=False,
    supports_uva_sampling=False,
    gpu_sampler_per_item=0.0,
    gpu_sampler_per_hop_launch=0.0,
    fused_convs=frozenset({"gcn", "gcn2", "sage", "tag", "sg",
                           "appnp", "graph"}),
    supports_prefetch=False,
)

PROFILES: Dict[str, FrameworkProfile] = {
    "dglite": DGLITE_PROFILE,
    "pyglite": PYGLITE_PROFILE,
}
