"""Tests for per-edge kernels: SDDMM variants, segment ops, fused GATv2."""

import numpy as np
import pytest

from repro.kernels.adj import SparseAdj
from repro.kernels.scatter import gather
from repro.kernels.sddmm import (
    fused_gatv2_scores,
    sddmm_u_add_v,
    sddmm_u_dot_v,
    segment_softmax,
)
from repro.kernels.segment import segment_max, segment_mean, segment_sum
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

RNG = np.random.default_rng(23)


class TestSddmmUAddV:
    def test_values(self, small_adj):
        u = Tensor(RNG.random((small_adj.num_src, 3)).astype(np.float32))
        v = Tensor(RNG.random((small_adj.num_dst, 3)).astype(np.float32))
        out = sddmm_u_add_v(small_adj, u, v)
        expected = u.data[small_adj.src] + v.data[small_adj.dst]
        assert np.allclose(out.data, expected)

    def test_gradients(self, small_adj):
        u = Tensor(RNG.random((small_adj.num_src, 2)).astype(np.float32),
                   requires_grad=True)
        v = Tensor(RNG.random((small_adj.num_dst, 2)).astype(np.float32),
                   requires_grad=True)
        sddmm_u_add_v(small_adj, u, v).sum().backward()
        assert np.allclose(u.grad[:, 0],
                           np.bincount(small_adj.src, minlength=small_adj.num_src))
        assert np.allclose(v.grad[:, 0],
                           np.bincount(small_adj.dst, minlength=small_adj.num_dst))

    def test_shape_validation(self, small_adj):
        with pytest.raises(ValueError):
            sddmm_u_add_v(small_adj,
                          Tensor(np.zeros((1, 2), dtype=np.float32)),
                          Tensor(np.zeros((small_adj.num_dst, 2), dtype=np.float32)))


class TestSddmmUDotV:
    def test_values(self, small_adj):
        u = Tensor(RNG.random((small_adj.num_src, 2, 4)).astype(np.float32))
        v = Tensor(RNG.random((small_adj.num_dst, 2, 4)).astype(np.float32))
        out = sddmm_u_dot_v(small_adj, u, v)
        expected = np.einsum("ehd,ehd->eh", u.data[small_adj.src], v.data[small_adj.dst])
        assert np.allclose(out.data, expected, atol=1e-5)

    def test_requires_3d(self, small_adj):
        u = Tensor(np.zeros((small_adj.num_src, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            sddmm_u_dot_v(small_adj, u, u)

    def test_gradcheck_single_element(self, small_adj):
        u_arr = RNG.random((small_adj.num_src, 1, 3)).astype(np.float32)
        v_arr = RNG.random((small_adj.num_dst, 1, 3)).astype(np.float32)
        u = Tensor(u_arr.copy(), requires_grad=True)
        v = Tensor(v_arr.copy(), requires_grad=True)
        sddmm_u_dot_v(small_adj, u, v).sum().backward()
        eps = 1e-2

        def f(ua):
            return float(np.einsum("ehd,ehd->eh", ua[small_adj.src],
                                   v_arr[small_adj.dst]).sum())

        ua = u_arr.copy()
        ua[0, 0, 0] += eps
        up = f(ua)
        ua[0, 0, 0] -= 2 * eps
        down = f(ua)
        assert u.grad[0, 0, 0] == pytest.approx((up - down) / (2 * eps), abs=1e-2)


class TestSegmentSoftmax:
    def test_sums_to_one_per_nonempty_dst(self, small_adj):
        scores = Tensor(RNG.random((small_adj.num_edges, 3)).astype(np.float32))
        alpha = segment_softmax(small_adj, scores)
        sums = np.zeros((small_adj.num_dst, 3), dtype=np.float32)
        np.add.at(sums, small_adj.dst, alpha.data)
        nonempty = np.bincount(small_adj.dst, minlength=small_adj.num_dst) > 0
        assert np.allclose(sums[nonempty], 1.0, atol=1e-5)

    def test_invariant_to_shift(self, small_adj):
        scores = RNG.random((small_adj.num_edges, 2)).astype(np.float32)
        a = segment_softmax(small_adj, Tensor(scores))
        b = segment_softmax(small_adj, Tensor(scores + 100.0))
        assert np.allclose(a.data, b.data, atol=1e-5)

    def test_single_edge_segment_is_one(self):
        adj = SparseAdj(np.array([0]), np.array([1]), 2, 2)
        alpha = segment_softmax(adj, Tensor(np.array([[3.0]], dtype=np.float32)))
        assert alpha.data[0, 0] == pytest.approx(1.0)

    def test_gradient_matches_dense_softmax(self):
        # all edges share one destination -> equivalent to a dense softmax
        adj = SparseAdj(np.array([0, 1, 2]), np.array([0, 0, 0]), 3, 1)
        scores_arr = RNG.random((3, 1)).astype(np.float32)
        sparse_in = Tensor(scores_arr.copy(), requires_grad=True)
        (segment_softmax(adj, sparse_in) ** 2).sum().backward()
        dense_in = Tensor(scores_arr.reshape(1, 3).copy(), requires_grad=True)
        (F.softmax(dense_in, axis=1) ** 2).sum().backward()
        assert np.allclose(sparse_in.grad.ravel(), dense_in.grad.ravel(), atol=1e-5)

    def test_shape_validation(self, small_adj):
        with pytest.raises(ValueError):
            segment_softmax(small_adj, Tensor(np.zeros((2, 1), dtype=np.float32)))


class TestSegmentReductions:
    def test_segment_sum_matches_bincount(self, small_adj):
        values = Tensor(RNG.random((small_adj.num_edges, 2)).astype(np.float32))
        out = segment_sum(small_adj, values)
        expected = np.zeros((small_adj.num_dst, 2), dtype=np.float32)
        np.add.at(expected, small_adj.dst, values.data)
        assert np.allclose(out.data, expected, atol=1e-5)

    def test_segment_mean(self):
        adj = SparseAdj(np.array([0, 1]), np.array([0, 0]), 2, 1)
        out = segment_mean(adj, Tensor(np.array([[1.0], [3.0]], dtype=np.float32)))
        assert out.data[0, 0] == pytest.approx(2.0)

    def test_segment_max_values_and_empty(self):
        adj = SparseAdj(np.array([0, 1]), np.array([0, 0]), 2, 2)
        out = segment_max(adj, Tensor(np.array([[5.0], [2.0]], dtype=np.float32)))
        assert out.data[0, 0] == pytest.approx(5.0)
        assert out.data[1, 0] == 0.0  # empty segment

    def test_segment_max_gradient_goes_to_argmax(self):
        adj = SparseAdj(np.array([0, 1]), np.array([0, 0]), 2, 1)
        values = Tensor(np.array([[5.0], [2.0]], dtype=np.float32), requires_grad=True)
        segment_max(adj, values).sum().backward()
        assert values.grad[0, 0] == pytest.approx(1.0)
        assert values.grad[1, 0] == pytest.approx(0.0)


class TestFusedGatv2:
    def test_matches_unfused_computation(self, small_adj):
        heads, dim = 2, 3
        u = Tensor(RNG.random((small_adj.num_src, heads, dim)).astype(np.float32))
        v = Tensor(RNG.random((small_adj.num_dst, heads, dim)).astype(np.float32))
        att = Tensor(RNG.random((heads, dim)).astype(np.float32))
        fused = fused_gatv2_scores(small_adj, u, v, att, negative_slope=0.2)
        # unfused reference: gather + elementwise + reduce
        g_u = gather(small_adj, u, side="src")
        g_v = gather(small_adj, v, side="dst")
        combined = F.leaky_relu(g_u + g_v, 0.2)
        unfused = (combined * att).sum(axis=2)
        assert np.allclose(fused.data, unfused.data, atol=1e-5)

    def test_gradients_match_unfused(self, small_adj):
        heads, dim = 1, 2
        u_arr = RNG.random((small_adj.num_src, heads, dim)).astype(np.float32)
        att_arr = RNG.random((heads, dim)).astype(np.float32)
        v_arr = RNG.random((small_adj.num_dst, heads, dim)).astype(np.float32)

        u1 = Tensor(u_arr.copy(), requires_grad=True)
        a1 = Tensor(att_arr.copy(), requires_grad=True)
        v1 = Tensor(v_arr.copy(), requires_grad=True)
        fused_gatv2_scores(small_adj, u1, v1, a1).sum().backward()

        u2 = Tensor(u_arr.copy(), requires_grad=True)
        a2 = Tensor(att_arr.copy(), requires_grad=True)
        v2 = Tensor(v_arr.copy(), requires_grad=True)
        g_u = gather(small_adj, u2, side="src")
        g_v = gather(small_adj, v2, side="dst")
        ((F.leaky_relu(g_u + g_v, 0.2) * a2).sum(axis=2)).sum().backward()

        assert np.allclose(u1.grad, u2.grad, atol=1e-4)
        assert np.allclose(v1.grad, v2.grad, atol=1e-4)
        assert np.allclose(a1.grad, a2.grad, atol=1e-3)

    def test_no_edge_feature_allocation(self, machine):
        """The fused kernel must NOT allocate the E x H x D buffer."""
        adj = SparseAdj(np.array([0, 1]), np.array([0, 1]), 2, 2,
                        device=machine.gpu, edge_scale=1e9)
        u = Tensor(np.ones((2, 1, 64), dtype=np.float32), device=machine.gpu)
        v = Tensor(np.ones((2, 1, 64), dtype=np.float32), device=machine.gpu)
        att = Tensor(np.ones((1, 64), dtype=np.float32), device=machine.gpu)
        before = machine.gpu.memory.in_use
        out = fused_gatv2_scores(adj, u, v, att)  # must not OOM
        # only the E x H score tensor is allocated (64-dim buffer stays inside)
        grown = machine.gpu.memory.in_use - before
        assert grown <= out.logical_nbytes * 1.01

    def test_shape_validation(self, small_adj):
        bad = Tensor(np.zeros((small_adj.num_src, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            fused_gatv2_scores(small_adj, bad, bad, bad)
