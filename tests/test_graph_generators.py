"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    correlated_features,
    dcsbm_graph,
    erdos_renyi_graph,
    power_law_degrees,
    ring_graph,
    split_masks,
)


class TestPowerLawDegrees:
    def test_sums_near_target(self):
        rng = np.random.default_rng(0)
        degrees = power_law_degrees(1000, 10_000, rng=rng)
        assert degrees.sum() == pytest.approx(10_000, rel=0.15)

    def test_min_degree_one(self):
        degrees = power_law_degrees(100, 200, rng=np.random.default_rng(0))
        assert degrees.min() >= 1

    def test_heavy_tail(self):
        degrees = power_law_degrees(5000, 100_000, rng=np.random.default_rng(0))
        assert degrees.max() > 10 * np.median(degrees)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            power_law_degrees(0, 10)


class TestDcsbm:
    def test_deterministic_given_seed(self):
        a, _ = dcsbm_graph(200, 1000, seed=3)
        b, _ = dcsbm_graph(200, 1000, seed=3)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)

    def test_different_seeds_differ(self):
        a, _ = dcsbm_graph(200, 1000, seed=3)
        b, _ = dcsbm_graph(200, 1000, seed=4)
        assert not (np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst))

    def test_symmetric_and_loop_free(self):
        coo, _ = dcsbm_graph(300, 2000, seed=1)
        assert not np.any(coo.src == coo.dst)
        pairs = set(zip(coo.src.tolist(), coo.dst.tolist()))
        assert all((d, s) in pairs for s, d in pairs)

    def test_edge_count_near_target(self):
        coo, _ = dcsbm_graph(500, 4000, seed=2)
        assert coo.num_edges == pytest.approx(4000, rel=0.5)

    def test_community_assortativity(self):
        """Intra-community edges should dominate with high intra_prob."""
        coo, comm = dcsbm_graph(400, 4000, num_communities=4, intra_prob=0.9, seed=5)
        intra_frac = float((comm[coo.src] == comm[coo.dst]).mean())
        assert intra_frac > 0.5

    def test_invalid_communities_rejected(self):
        with pytest.raises(ValueError):
            dcsbm_graph(10, 20, num_communities=0)


class TestOtherGenerators:
    def test_erdos_renyi_dedup_and_no_loops(self):
        coo = erdos_renyi_graph(50, 400, seed=1)
        assert not np.any(coo.src == coo.dst)
        pairs = list(zip(coo.src.tolist(), coo.dst.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_ring_is_2_regular(self):
        coo = ring_graph(10)
        assert coo.num_edges == 20
        assert np.all(coo.out_degrees() == 2)


class TestFeaturesAndLabels:
    def test_shapes_single_label(self):
        comm = np.random.default_rng(0).integers(0, 4, 100)
        x, y = correlated_features(comm, 8, 5, seed=0)
        assert x.shape == (100, 8)
        assert y.shape == (100,)
        assert y.min() >= 0 and y.max() < 5

    def test_shapes_multilabel(self):
        comm = np.random.default_rng(0).integers(0, 4, 100)
        x, y = correlated_features(comm, 8, 6, multilabel=True, seed=0)
        assert y.shape == (100, 6)
        assert set(np.unique(y)) <= {0.0, 1.0}
        # every node carries at least its community's primary label
        assert np.all(y.sum(axis=1) >= 1)

    def test_features_correlate_with_community(self):
        comm = np.repeat(np.arange(4), 50)
        x, _ = correlated_features(comm, 16, 4, noise=0.1, seed=0)
        centroid0 = x[comm == 0].mean(axis=0)
        centroid1 = x[comm == 1].mean(axis=0)
        within = np.linalg.norm(x[comm == 0] - centroid0, axis=1).mean()
        between = np.linalg.norm(centroid0 - centroid1)
        assert between > within

    def test_deterministic(self):
        comm = np.zeros(10, dtype=np.int64)
        x1, y1 = correlated_features(comm, 4, 3, seed=9)
        x2, y2 = correlated_features(comm, 4, 3, seed=9)
        assert np.allclose(x1, x2)
        assert np.array_equal(y1, y2)


class TestSplitMasks:
    def test_partition_is_exclusive_and_exhaustive(self):
        train, val, test = split_masks(100, 0.6, 0.2, 0.2, seed=0)
        assert (train.astype(int) + val.astype(int) + test.astype(int)).max() == 1
        assert train.sum() + val.sum() + test.sum() == 100

    def test_fractions_respected(self):
        train, val, test = split_masks(1000, 0.66, 0.12, 0.22, seed=0)
        assert train.sum() == pytest.approx(660, abs=2)
        assert val.sum() == pytest.approx(120, abs=2)

    def test_deterministic(self):
        a = split_masks(50, 0.5, 0.25, 0.25, seed=3)
        b = split_masks(50, 0.5, 0.25, 0.25, seed=3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
