"""Ablation: energy-monitor sampling interval.

The paper replaces CodeCarbon's 15 s default with 0.1 s (Section 3.3).
This bench shows why: coarse sampling misses short runs entirely and
distorts GPU energy for bursty workloads.
"""

from conftest import emit

from repro.bench import format_series, run_training_experiment

INTERVALS = (0.1, 1.0, 15.0)


def test_ablation_monitor_interval(once):
    def run():
        out = {}
        for interval in INTERVALS:
            out[f"interval-{interval}s"] = run_training_experiment(
                "dglite", "flickr", "graphsage", placement="cpugpu",
                epochs=3, representative_batches=2,
                monitor_interval=interval,
            )
        return out

    results = once(run)
    series = {
        name: {
            "total_s": r.total_time,
            "samples": float(r.energy.samples),
            "cpu_J": r.energy.cpu_energy,
            "gpu_J": r.energy.gpu_energy,
        }
        for name, r in results.items()
    }
    emit("ablation_monitor_interval",
         format_series("Ablation: CodeCarbon-style sampling interval",
                       series, unit="mixed", precision=1))

    fine = results["interval-0.1s"]
    coarse = results["interval-15.0s"]

    # Identical workload: total simulated runtime is interval-independent.
    assert coarse.total_time > 0
    assert abs(fine.total_time - coarse.total_time) / fine.total_time < 0.01

    # The whole run fits inside ONE 15 s interval: the default-config
    # monitor sees a single flush sample, the paper-config one sees dozens.
    assert coarse.energy.samples <= 2
    assert fine.energy.samples > 10 * coarse.energy.samples

    # CPU energy (RAPL counters are cumulative) agrees across intervals...
    assert abs(fine.energy.cpu_energy - coarse.energy.cpu_energy) \
        / fine.energy.cpu_energy < 0.02
    # ...but GPU energy (instant-power integration) drifts at 15 s for a
    # bursty GPU timeline — the reason the paper switched to 0.1 s.
    gpu_drift = abs(fine.energy.gpu_energy - coarse.energy.gpu_energy) \
        / max(1e-9, fine.energy.gpu_energy)
    assert gpu_drift >= 0.0  # report-only; see emitted table
