"""Yelp: businesses and reviews (multi-label, 100 classes).

Table 1: 716,847 nodes / 13,954,819 edges / 300 features / 100 classes,
split 0.75 / 0.10 / 0.15.  Bundled by PyG but not by DGL.
"""

from repro.datasets.base import DatasetSpec
from repro.graph.graph import Split

SPEC = DatasetSpec(
    name="yelp",
    description="Businesses and Reviews",
    logical_num_nodes=716_847,
    logical_num_edges=13_954_819,
    num_features=300,
    num_classes=100,
    multilabel=True,
    split=Split(0.75, 0.10, 0.15),
    actual_num_nodes=4_200,
    actual_num_edges=46_000,
    num_communities=50,
    intra_prob=0.78,
    degree_exponent=2.0,
    in_dgl=False,
    in_pyg=True,
    seed=55,
)
