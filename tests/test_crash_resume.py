"""Crash–resume equivalence: kill at epoch k, resume, match the straight run.

The checkpoint carries model + optimizer state, the loss history, the
phase totals, and every RNG the loop consumes, so a resumed run must be
*numerically indistinguishable* from one that never crashed: identical
parameters, identical losses, phase totals within 1e-9.
"""

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.checkpoint import CheckpointError, save_checkpoint
from repro.models.graphsage import build_graphsage, graphsage_sampler
from repro.models.trainer import MiniBatchTrainer, TrainConfig
from repro.profiling.profiler import PhaseProfiler

EPOCHS = 3
KILL_AFTER = 2


def _fresh_trainer(framework, placement="cpu", **config_kwargs):
    """A brand-new stack: machine, graph, sampler, model, trainer."""
    fw = get_framework(framework)
    machine = paper_testbed()
    fgraph = fw.load("ppi", machine, scale=0.3)
    sampler = graphsage_sampler(fw, fgraph, seed=0)
    net = build_graphsage(fw, fgraph, hidden=16, seed=0)
    config = TrainConfig(epochs=EPOCHS, placement=placement,
                         representative_batches=2, seed=0, **config_kwargs)
    profiler = PhaseProfiler(machine.clock)
    trainer = MiniBatchTrainer(fw, fgraph, sampler, net, config,
                               profiler=profiler)
    return trainer, net


def _straight_and_resumed(framework, tmp_path, placement="cpu"):
    ckpt = tmp_path / "train.npz"

    straight_trainer, straight_net = _fresh_trainer(framework, placement)
    straight = straight_trainer.run()

    killed_trainer, _ = _fresh_trainer(
        framework, placement, checkpoint_every=1, checkpoint_path=str(ckpt),
        halt_after_epochs=KILL_AFTER,
    )
    killed = killed_trainer.run()

    resumed_trainer, resumed_net = _fresh_trainer(
        framework, placement, resume_from=str(ckpt),
    )
    resumed = resumed_trainer.run()
    return straight, straight_net, killed, resumed, resumed_net


@pytest.mark.parametrize("framework", ["dglite", "pyglite"])
class TestCrashResumeEquivalence:
    def test_killed_run_reports_the_crash(self, framework, tmp_path):
        straight, _, killed, _, _ = _straight_and_resumed(framework, tmp_path)
        assert not killed.completed
        # Only KILL_AFTER of the EPOCHS epochs ran before the "crash".
        assert len(killed.losses) == \
            len(straight.losses) * KILL_AFTER // EPOCHS

    def test_resumed_parameters_are_bit_identical(self, framework, tmp_path):
        _, straight_net, _, resumed, resumed_net = \
            _straight_and_resumed(framework, tmp_path)
        assert resumed.completed
        assert resumed.start_epoch == KILL_AFTER
        straight_state = straight_net.state_dict()
        resumed_state = resumed_net.state_dict()
        assert set(straight_state) == set(resumed_state)
        for name, value in straight_state.items():
            assert np.array_equal(value, resumed_state[name]), name

    def test_loss_history_matches_exactly(self, framework, tmp_path):
        straight, _, killed, resumed, _ = \
            _straight_and_resumed(framework, tmp_path)
        # The resumed run carries the killed run's loss prefix forward.
        assert resumed.losses[:len(killed.losses)] == killed.losses
        assert len(resumed.losses) == len(straight.losses)
        for a, b in zip(straight.losses, resumed.losses):
            assert abs(a - b) < 1e-9

    def test_phase_totals_match_to_1e9(self, framework, tmp_path):
        straight, _, _, resumed, _ = \
            _straight_and_resumed(framework, tmp_path)
        assert set(resumed.phases) == set(straight.phases)
        for phase, seconds in straight.phases.items():
            assert abs(resumed.phases[phase] - seconds) < 1e-9, phase


class TestCrashResumeCpuGpu:
    def test_equivalence_holds_with_data_movement(self, tmp_path):
        straight, straight_net, _, resumed, resumed_net = \
            _straight_and_resumed("dglite", tmp_path, placement="cpugpu")
        for name, value in straight_net.state_dict().items():
            assert np.array_equal(value, resumed_net.state_dict()[name])
        assert set(resumed.phases) == set(straight.phases)
        assert "data_movement" in straight.phases
        for phase, seconds in straight.phases.items():
            assert abs(resumed.phases[phase] - seconds) < 1e-9, phase


class TestCheckpointingMechanics:
    def test_checkpoint_every_requires_a_path(self):
        with pytest.raises(BenchmarkError, match="checkpoint_path"):
            TrainConfig(checkpoint_every=1)

    def test_checkpointing_never_perturbs_the_clock(self, tmp_path):
        plain_trainer, _ = _fresh_trainer("dglite")
        checked_trainer, _ = _fresh_trainer(
            "dglite", checkpoint_every=1,
            checkpoint_path=str(tmp_path / "every.npz"),
        )
        plain = plain_trainer.run()
        checked = checked_trainer.run()
        # Checkpoint I/O is off the virtual clock (async writes): the
        # reported breakdown is identical with and without it.
        assert checked.phases == plain.phases
        assert checked.losses == plain.losses

    def test_resume_rejects_foreign_checkpoints(self, tmp_path):
        trainer, net = _fresh_trainer("dglite")
        path = tmp_path / "foreign.npz"
        save_checkpoint(path, net, metadata={"kind": "something-else"})
        resumed_trainer, _ = _fresh_trainer("dglite",
                                            resume_from=str(path))
        with pytest.raises(CheckpointError, match="not a training"):
            resumed_trainer.run()

    def test_resume_from_missing_file_fails_clearly(self, tmp_path):
        trainer, _ = _fresh_trainer(
            "dglite", resume_from=str(tmp_path / "nope.npz"))
        with pytest.raises(CheckpointError):
            trainer.run()
