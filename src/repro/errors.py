"""Exception hierarchy for the repro package.

Every error raised by the simulated stack derives from :class:`ReproError`
so callers can catch simulation failures without masking programming bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DeviceError(ReproError):
    """A device-level failure (bad placement, unknown device, ...)."""


class OutOfMemoryError(DeviceError):
    """Simulated device memory exhausted.

    Mirrors a CUDA out-of-memory failure: raised when an allocation would
    push a device's *logical* memory ledger past its capacity.  The paper
    relies on this behaviour — PyG's unfused ChebConv/GATConv/GATv2Conv
    layers OOM on large graphs (Observation 3).
    """

    def __init__(self, device_name: str, requested: int, in_use: int, capacity: int):
        self.device_name = device_name
        self.requested = int(requested)
        self.in_use = int(in_use)
        self.capacity = int(capacity)
        super().__init__(
            f"{device_name}: out of memory "
            f"(requested {requested / 2**30:.2f} GiB, "
            f"in use {in_use / 2**30:.2f} GiB, "
            f"capacity {capacity / 2**30:.2f} GiB)"
        )


class PlacementError(DeviceError):
    """An operation mixed tensors that live on different devices."""


class GraphFormatError(ReproError):
    """An adjacency structure is malformed or in the wrong format."""


class DatasetError(ReproError):
    """A dataset could not be built, stored, or loaded."""


class AutogradError(ReproError):
    """Backward pass invoked in an invalid state."""


class SamplerError(ReproError):
    """A sampler was configured or driven incorrectly."""


class BenchmarkError(ReproError):
    """An experiment harness failure."""


class ResilienceError(ReproError):
    """Base class for the fault-injection / recovery subsystem."""


class FaultPlanError(ResilienceError):
    """A fault plan is malformed (unknown site/kind, bad parameters)."""


class InjectedFault(ResilienceError):
    """A fault armed by the active :class:`FaultInjector` fired.

    Transient by construction: recovery policies retry the failed
    operation, so this error only escapes when retries are exhausted
    (see :class:`RecoveryExhausted`).
    """

    def __init__(self, site: str, kind: str, occurrence: int = 0):
        self.site = site
        self.kind = kind
        self.occurrence = int(occurrence)
        super().__init__(f"injected {kind} fault at {site} "
                         f"(occurrence {occurrence})")


class RecoveryExhausted(ResilienceError):
    """An operation kept faulting past its policy's retry budget."""

    def __init__(self, site: str, failures: int):
        self.site = site
        self.failures = int(failures)
        super().__init__(
            f"{site}: still failing after {failures} attempt(s); "
            "retry budget exhausted"
        )
