"""Figures 22-24: full-batch GraphSAGE — one-epoch time, power, energy.

The paper: DGL-CPU is much faster than PyG-CPU; on GPU, PyG wins only on
the smallest graph (PPI); power shows no clear framework winner, so energy
differences come from runtime differences.
"""

from conftest import DATASETS, FRAMEWORKS, emit

from repro.bench import format_series, run_fullbatch_experiment

EPOCHS = 5  # averaged per-epoch (the paper averages 100 runs)


def test_fig22_24_fullbatch(once):
    def run():
        out = {}
        for fw in FRAMEWORKS:
            for device in ("cpu", "gpu"):
                out[(fw, device)] = {
                    ds: run_fullbatch_experiment(fw, ds, device=device,
                                                 epochs=EPOCHS)
                    for ds in DATASETS
                }
        return out

    grid = once(run)

    nick = {"dglite": "DGL", "pyglite": "PyG"}
    time_series = {
        f"{nick[fw]}-{dev.upper()}": {
            ds: r.phases["training"] for ds, r in row.items()
        }
        for (fw, dev), row in grid.items()
    }
    power_series = {
        f"{nick[fw]}-{dev.upper()}": {ds: r.avg_power for ds, r in row.items()}
        for (fw, dev), row in grid.items()
    }
    energy_series = {
        f"{nick[fw]}-{dev.upper()}": {
            ds: r.total_energy / EPOCHS for ds, r in row.items()
        }
        for (fw, dev), row in grid.items()
    }
    emit("fig22_fullbatch_time",
         format_series("Figure 22: full-batch GraphSAGE one-epoch time",
                       time_series, unit="s", precision=4))
    emit("fig23_fullbatch_power",
         format_series("Figure 23: full-batch average power",
                       power_series, unit="W", precision=1))
    emit("fig24_fullbatch_energy",
         format_series("Figure 24: full-batch one-epoch energy",
                       energy_series, unit="J", precision=1))

    # DGL-CPU is faster than PyG-CPU everywhere, by a wide margin on the
    # aggregation-heavy graphs.
    for ds in DATASETS:
        assert time_series["DGL-CPU"][ds] < time_series["PyG-CPU"][ds], ds
    assert (time_series["PyG-CPU"]["reddit"]
            > 2 * time_series["DGL-CPU"]["reddit"])

    # On GPU, PyG wins only on PPI (the smallest graph).
    assert time_series["PyG-GPU"]["ppi"] < time_series["DGL-GPU"]["ppi"]
    for ds in DATASETS[1:]:
        assert time_series["DGL-GPU"][ds] < time_series["PyG-GPU"][ds], ds

    # Energy differences track runtime: on CPU the energy ratio follows
    # the time ratio (no clear average-power winner).
    for ds in ("reddit", "yelp"):
        t_ratio = time_series["PyG-CPU"][ds] / time_series["DGL-CPU"][ds]
        e_ratio = (energy_series["PyG-CPU"][ds] / energy_series["DGL-CPU"][ds])
        # energy ratios are diluted by the shared loading/idle time
        assert e_ratio > 1.0, ds
        assert t_ratio > 1.0, ds
