"""Layer-wise importance samplers: FastGCN and LADIES.

The paper's background (Section 2.1) motivates the sampler landscape with
FastGCN (Chen et al. 2018) — independent per-layer node draws from a
precomputed importance distribution, which can produce isolated nodes —
and LADIES (Zou et al. 2019) — layer-*dependent* draws restricted to the
current frontier's neighborhood, which fixes sparsity "while it introduces
additional computational cost and non-negligible overhead in the sampling
process".  Both are implemented here so the ablation bench can quantify
that trade-off against GraphSAGE's node-wise sampler.

Both produce :class:`~repro.sampling.base.BlockSample` mini-batches
(bipartite blocks, output-side roots), directly consumable by
:class:`~repro.models.base.BlockNet`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SamplerError
from repro.graph.formats import INDEX_DTYPE
from repro.graph.graph import Graph
from repro.sampling.base import Block, BlockSample, SampleWork


def _block_from_edges(src_global, dst_global, dst_nodes):
    """Assemble a Block with dst-prefix node layout from global edges."""
    extra = np.setdiff1d(np.unique(src_global), dst_nodes)
    src_nodes = np.concatenate([dst_nodes, extra])
    lookup = {int(n): i for i, n in enumerate(src_nodes)}
    src_local = np.fromiter((lookup[int(s)] for s in src_global),
                            count=src_global.size, dtype=INDEX_DTYPE)
    dst_lookup = {int(n): i for i, n in enumerate(dst_nodes)}
    dst_local = np.fromiter((dst_lookup[int(d)] for d in dst_global),
                            count=dst_global.size, dtype=INDEX_DTYPE)
    return src_nodes, Block(src_nodes=src_nodes, dst_nodes=dst_nodes,
                            src=src_local, dst=dst_local)


class FastGCNSampler:
    """FastGCN: per-layer independent draws from a global distribution.

    The importance distribution q(v) ~ deg(v)^2 is precomputed once.  For
    each layer, ``layer_size`` nodes are drawn independently of the
    frontier; edges into the frontier are kept.  Isolated frontier nodes
    (no sampled in-neighbors) are the method's known failure mode — the
    sampler exposes ``last_isolated_fraction`` so tests and benches can
    observe it.
    """

    def __init__(self, graph: Graph, layer_sizes=(400, 400),
                 batch_size: int = 512, seed: Optional[int] = None) -> None:
        if not layer_sizes:
            raise SamplerError("layer_sizes must be non-empty")
        self.graph = graph
        self.paper_layer_sizes = tuple(int(s) for s in layer_sizes)
        self.layer_sizes = tuple(
            max(2, int(round(s / graph.node_scale))) for s in layer_sizes
        )
        self.actual_batch_size = max(2, int(round(batch_size / graph.node_scale)))
        self.rng = np.random.default_rng(seed)
        degrees = np.maximum(graph.adj.degrees(), 1).astype(np.float64)
        weights = degrees ** 2
        self._probs = weights / weights.sum()
        self._indptr = graph.adj.indptr
        self._indices = graph.adj.indices
        self.last_isolated_fraction = 0.0

    def sample(self, roots: np.ndarray) -> BlockSample:
        roots = np.asarray(roots, dtype=INDEX_DTYPE)
        if roots.size == 0:
            raise SamplerError("cannot sample an empty root batch")
        node_scale = self.graph.node_scale
        work = SampleWork()
        blocks: List[Block] = []
        frontier = roots
        isolated = 0
        total_frontier = 0
        for size in reversed(self.layer_sizes):
            size = min(size, self.graph.num_nodes)
            candidates = np.unique(
                self.rng.choice(self.graph.num_nodes, size=size, p=self._probs)
            )
            srcs, dsts = [], []
            for node in frontier:
                neigh = self._indices[self._indptr[node]:self._indptr[node + 1]]
                kept = neigh[np.isin(neigh, candidates)]
                work.items += neigh.size * node_scale  # membership tests
                if kept.size == 0:
                    isolated += 1
                    continue
                srcs.append(kept)
                dsts.append(np.full(kept.size, node, dtype=INDEX_DTYPE))
            total_frontier += frontier.size
            src_g = np.concatenate(srcs) if srcs else np.empty(0, dtype=INDEX_DTYPE)
            dst_g = np.concatenate(dsts) if dsts else np.empty(0, dtype=INDEX_DTYPE)
            src_nodes, block = _block_from_edges(src_g, dst_g, frontier)
            block.edge_scale = node_scale
            block.node_scale = node_scale
            blocks.append(block)
            frontier = src_nodes
            work.items += size * node_scale  # the independent draws
        blocks.reverse()
        self.last_isolated_fraction = isolated / max(1, total_frontier)
        input_nodes = blocks[0].src_nodes
        work.fetch_bytes = 4.0 * input_nodes.size * node_scale * self.graph.num_features
        return BlockSample(blocks=blocks, input_nodes=input_nodes,
                           output_nodes=roots, work=work)

    def num_batches(self, train_nodes: int) -> int:
        return max(1, int(np.ceil(train_nodes / self.actual_batch_size)))

    def epoch_batches(self, shuffle: bool = True):
        train = self.graph.train_nodes()
        if shuffle:
            train = self.rng.permutation(train)
        for start in range(0, train.size, self.actual_batch_size):
            roots = train[start:start + self.actual_batch_size]
            if roots.size:
                yield self.sample(roots)


class LadiesSampler:
    """LADIES: layer-dependent importance sampling.

    Like FastGCN, a fixed number of nodes is drawn per layer — but the
    distribution is recomputed *per batch, per layer* over the current
    frontier's in-neighborhood (q(v) ~ sum of squared normalized adjacency
    entries into the frontier).  That removes FastGCN's isolated nodes but
    costs an extra pass over the frontier's edges every layer — the
    "additional computational cost and non-negligible overhead" the paper
    cites, which the ablation bench quantifies.
    """

    def __init__(self, graph: Graph, layer_sizes=(400, 400),
                 batch_size: int = 512, seed: Optional[int] = None) -> None:
        if not layer_sizes:
            raise SamplerError("layer_sizes must be non-empty")
        self.graph = graph
        self.paper_layer_sizes = tuple(int(s) for s in layer_sizes)
        self.layer_sizes = tuple(
            max(2, int(round(s / graph.node_scale))) for s in layer_sizes
        )
        self.actual_batch_size = max(2, int(round(batch_size / graph.node_scale)))
        self.rng = np.random.default_rng(seed)
        self._indptr = graph.adj.indptr
        self._indices = graph.adj.indices

    def _frontier_distribution(self, frontier: np.ndarray):
        """Importance over the union of the frontier's in-neighborhoods."""
        neigh_lists = [
            self._indices[self._indptr[n]:self._indptr[n + 1]] for n in frontier
        ]
        all_neigh = (np.concatenate(neigh_lists) if neigh_lists
                     else np.empty(0, dtype=INDEX_DTYPE))
        if all_neigh.size == 0:
            return frontier, np.ones(frontier.size) / frontier.size, 0
        candidates, counts = np.unique(all_neigh, return_counts=True)
        probs = counts.astype(np.float64)
        probs /= probs.sum()
        return candidates, probs, all_neigh.size

    def sample(self, roots: np.ndarray) -> BlockSample:
        roots = np.asarray(roots, dtype=INDEX_DTYPE)
        if roots.size == 0:
            raise SamplerError("cannot sample an empty root batch")
        node_scale = self.graph.node_scale
        work = SampleWork()
        blocks: List[Block] = []
        frontier = roots
        for size in reversed(self.layer_sizes):
            candidates, probs, edges_scanned = self._frontier_distribution(frontier)
            # The per-layer distribution pass is LADIES' extra overhead:
            # one full scan of the frontier's edges plus the draw itself.
            work.items += 2.0 * edges_scanned * node_scale + candidates.size * node_scale
            draw = min(size, candidates.size)
            chosen = np.unique(
                self.rng.choice(candidates, size=draw, p=probs, replace=True)
            )
            srcs, dsts = [], []
            for node in frontier:
                neigh = self._indices[self._indptr[node]:self._indptr[node + 1]]
                kept = neigh[np.isin(neigh, chosen)]
                work.items += neigh.size * node_scale
                if kept.size:
                    srcs.append(kept)
                    dsts.append(np.full(kept.size, node, dtype=INDEX_DTYPE))
            src_g = np.concatenate(srcs) if srcs else np.empty(0, dtype=INDEX_DTYPE)
            dst_g = np.concatenate(dsts) if dsts else np.empty(0, dtype=INDEX_DTYPE)
            src_nodes, block = _block_from_edges(src_g, dst_g, frontier)
            block.edge_scale = node_scale
            block.node_scale = node_scale
            blocks.append(block)
            frontier = src_nodes
        blocks.reverse()
        input_nodes = blocks[0].src_nodes
        work.fetch_bytes = 4.0 * input_nodes.size * node_scale * self.graph.num_features
        return BlockSample(blocks=blocks, input_nodes=input_nodes,
                           output_nodes=roots, work=work)

    def num_batches(self, train_nodes: int) -> int:
        return max(1, int(np.ceil(train_nodes / self.actual_batch_size)))

    def epoch_batches(self, shuffle: bool = True):
        train = self.graph.train_nodes()
        if shuffle:
            train = self.rng.permutation(train)
        for start in range(0, train.size, self.actual_batch_size):
            roots = train[start:start + self.actual_batch_size]
            if roots.size:
                yield self.sample(roots)
