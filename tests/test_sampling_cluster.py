"""Tests for the ClusterGCN sampler algorithm."""

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.sampling.cluster import ClusterSampler


class TestConfiguration:
    def test_keeps_paper_batch_count(self, tiny_graph):
        sampler = ClusterSampler(tiny_graph, num_parts=2000, parts_per_batch=50, seed=0)
        assert sampler.num_batches() == pytest.approx(40, abs=1)

    def test_actual_parts_bounded_by_graph(self, tiny_graph):
        sampler = ClusterSampler(tiny_graph, num_parts=2000, parts_per_batch=50, seed=0)
        assert sampler.actual_num_parts <= tiny_graph.num_nodes
        assert sampler.actual_parts_per_batch >= 1

    def test_invalid_config_rejected(self, tiny_graph):
        with pytest.raises(SamplerError):
            ClusterSampler(tiny_graph, num_parts=10, parts_per_batch=20)
        with pytest.raises(SamplerError):
            ClusterSampler(tiny_graph, num_parts=10, parts_per_batch=0)

    def test_partition_is_lazy_and_cached(self, tiny_graph):
        sampler = ClusterSampler(tiny_graph, seed=0)
        assert sampler._partition is None
        first = sampler.partition
        assert sampler.partition is first


class TestSampling:
    def test_batch_is_union_of_clusters(self, tiny_graph):
        sampler = ClusterSampler(tiny_graph, seed=0)
        part_ids = np.array([0, 1])
        batch = sampler.sample(part_ids)
        expected = np.nonzero(np.isin(sampler.partition.assignments, part_ids))[0]
        assert np.array_equal(np.sort(batch.nodes), np.sort(expected))

    def test_batch_edges_internal(self, tiny_graph):
        sampler = ClusterSampler(tiny_graph, seed=0)
        batch = sampler.sample()
        if batch.num_edges:
            assert batch.src.max() < batch.num_nodes
            assert batch.dst.max() < batch.num_nodes

    def test_scales_reflect_logical_batch(self, tiny_graph):
        sampler = ClusterSampler(tiny_graph, seed=0)
        batch = sampler.sample()
        assert batch.node_scale == pytest.approx(tiny_graph.node_scale)
        # Edge scale is the analytic retention model, never below 1.
        assert batch.edge_scale >= 1.0
        fraction = sampler.actual_parts_per_batch / sampler.actual_num_parts
        expected = (ClusterSampler.EDGE_RETENTION
                    * tiny_graph.stats.logical_num_edges * fraction)
        assert batch.edge_scale * batch.num_edges >= expected * 0.99

    def test_work_accounts_logical_items(self, tiny_graph):
        sampler = ClusterSampler(tiny_graph, seed=0)
        batch = sampler.sample()
        minimum = batch.num_nodes * tiny_graph.node_scale
        assert batch.work.items >= minimum

    def test_epoch_covers_every_node_once(self, tiny_graph):
        sampler = ClusterSampler(tiny_graph, seed=0)
        seen = []
        for batch in sampler.epoch_batches():
            seen.extend(batch.nodes.tolist())
        # each cluster appears exactly once per epoch -> each node once
        # (up to clusters dropped by integer division of parts into batches)
        assert len(seen) == len(set(seen))
        assert len(seen) >= 0.9 * tiny_graph.num_nodes

    def test_deterministic_given_seed(self, tiny_graph):
        a = ClusterSampler(tiny_graph, seed=3).sample(np.array([0, 1]))
        b = ClusterSampler(tiny_graph, seed=3).sample(np.array([0, 1]))
        assert np.array_equal(a.nodes, b.nodes)
