"""The perf-trajectory sweep matrix: kernel × framework × scale × fastpath.

Following the op-level benchmarking methodology of the Argonne study and
gSuite's framework-independent kernel matrix (PAPERS.md), the sweep
measures a fixed grid of cells through the existing harness drivers:

* ``kernels`` area — one conv-layer forward per cell
  (:func:`~repro.bench.harness.measure_conv_forward`): the op-level view,
  one cell per (framework, conv kind, dataset, logical scale, fastpath).
* ``training`` area — one short end-to-end training run per cell
  (:func:`~repro.bench.harness.run_training_experiment`): the system view
  the paper's figures report.
* ``serving`` area — one micro-batched online-inference window per cell
  (:func:`~repro.serving.run_serving_experiment`): the serving makespan
  and energy under a fixed seeded trace.

Every cell runs once per seed; per-metric spread is aggregated with
:class:`~repro.bench.repeats.RepeatedStats` so the regression gate can
build a noise envelope (mean + k·sample-std).  Virtual time and energy
are deterministic functions of (code, seed); wall time is the only
host-noisy metric and is recorded but not gated by default.

The fastpath axis runs the *identical* public API under
:func:`repro.kernels.config.use_reference_kernels`; by the kernel layer's
charged-cost invariance, fast/ref cell pairs must agree on virtual time
and energy bit-for-bit — the sweep asserts that invariant every run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.artifacts import build_sweep_artifact
from repro.bench.harness import measure_conv_forward, run_training_experiment
from repro.bench.repeats import RepeatedStats
from repro.errors import BenchmarkError

DEFAULT_SEEDS = (0, 1, 2)
_FRAMEWORKS = ("dglite", "pyglite")


@dataclass(frozen=True)
class SweepCell:
    """One point of the sweep matrix."""

    driver: str  # "conv" (kernels area) | "train" (training area)
    framework: str
    kernel: str  # conv kind for "conv", model name for "train"
    dataset: str
    scale: float
    fastpath: bool
    # Training-only axes; the defaults keep pre-existing cell ids stable.
    placement: str = "cpu"
    pipeline: str = "off"

    @property
    def cell_id(self) -> str:
        mode = "fast" if self.fastpath else "ref"
        cid = (f"{self.driver}/{self.framework}/{self.kernel}/"
               f"{self.dataset}/x{self.scale:g}")
        if self.placement != "cpu":
            cid += f"/{self.placement}"
        if self.pipeline != "off":
            cid += f"/{self.pipeline}"
        # Mode stays the last segment: the cost-invariance check pairs
        # cells by swapping a trailing "/fast" for "/ref".
        return f"{cid}/{mode}"

    @property
    def params(self) -> dict:
        return {
            "driver": self.driver,
            "framework": self.framework,
            "kernel": self.kernel,
            "dataset": self.dataset,
            "scale": self.scale,
            "fastpath": self.fastpath,
            "placement": self.placement,
            "pipeline": self.pipeline,
        }

    @classmethod
    def from_params(cls, params: Dict) -> "SweepCell":
        """Rebuild a cell from an artifact's recorded params.

        This is how the gate re-runs exactly the baseline's matrix even
        if the default grids below have since changed.
        """
        try:
            return cls(driver=params["driver"], framework=params["framework"],
                       kernel=params["kernel"], dataset=params["dataset"],
                       scale=float(params["scale"]),
                       fastpath=bool(params["fastpath"]),
                       placement=str(params.get("placement", "cpu")),
                       pipeline=str(params.get("pipeline", "off")))
        except KeyError as exc:
            raise BenchmarkError(f"cell params missing {exc.args[0]!r}")


def _grid(driver: str, kernels: Sequence[str], datasets: Sequence[str],
          scales: Sequence[float]) -> tuple:
    return tuple(
        SweepCell(driver, fw, kernel, dataset, scale, fastpath)
        for fw in _FRAMEWORKS
        for kernel in kernels
        for dataset in datasets
        for scale in scales
        for fastpath in (True, False)
    )


# The committed-baseline grids.  Sized so a full two-area sweep stays in
# CI-smoke territory (~seconds): small datasets, one epoch, two
# representative batches.  ``gcn`` exercises the fused SpMM path, ``sage``
# the dense-dominated path, ``gat`` the unfused gather/softmax/scatter
# segment reductions the fast-path layer targets.
KERNEL_MATRIX = _grid("conv", kernels=("gcn", "sage", "gat"),
                      datasets=("ppi",), scales=(0.5, 1.0))
TRAINING_MATRIX = _grid("train", kernels=("graphsage",),
                        datasets=("ppi",), scales=(0.3, 0.6))

# The datapipe ablation axis: serial vs depth-4 streaming on the
# CPU-sample/GPU-train placement, at both logical scales.  The gate
# tracks the pipelined cells' virtual time like any other metric, so a
# change that erodes the overlap win trips the regression envelope.
PIPELINE_MATRIX = tuple(
    SweepCell("train", "dglite", "graphsage", "ppi", scale, fastpath,
              placement="cpugpu", pipeline=pipeline)
    for scale in (0.3, 0.6)
    for pipeline in ("off", "depth-4")
    for fastpath in (True, False)
)
TRAINING_MATRIX = TRAINING_MATRIX + PIPELINE_MATRIX

# The serving area: one micro-batched serving window per framework ×
# fastpath on the warm-cache CPU-sample/GPU-serve placement.  Virtual
# makespan and energy are deterministic functions of the seed, so the
# gate tracks tail-latency-driving cost exactly like training cost.
SERVING_MATRIX = tuple(
    SweepCell("serve", fw, "graphsage", "ppi", 0.3, fastpath,
              placement="cpugpu", pipeline="depth-4")
    for fw in _FRAMEWORKS
    for fastpath in (True, False)
)

MATRICES = {"kernels": KERNEL_MATRIX, "training": TRAINING_MATRIX,
            "serving": SERVING_MATRIX}

# Training-cell hyperparameters (fixed: they are part of what a cell means).
_TRAIN_EPOCHS = 1
_TRAIN_BATCHES = 2

# Serving-cell workload knobs (fixed per the same rule: the offered
# trace is part of the cell's identity, the seed varies the draws).
_SERVE_RATE = 200.0
_SERVE_REQUESTS = 24
_SERVE_BUDGET_S = 0.020
_SERVE_MAX_BATCH = 8


def run_cell_once(cell: SweepCell, seed: int):
    """Run one cell for one seed.

    Returns ``(metrics, attribution)``: the three per-run metrics plus
    the phase / kernel-family virtual-second breakdown the gate uses to
    explain a regression (``repro profile`` attribution hints).
    """
    start = time.perf_counter()
    if cell.driver == "conv":
        result = measure_conv_forward(
            cell.framework, cell.dataset, cell.kernel, device="cpu",
            seed=seed, dataset_scale=cell.scale, fastpath=cell.fastpath)
        if result.oom:
            raise BenchmarkError(f"sweep cell {cell.cell_id} hit OOM: "
                                 f"{result.error}")
        virtual = result.phases["forward"]
    elif cell.driver == "train":
        result = run_training_experiment(
            cell.framework, cell.dataset, cell.kernel,
            placement=cell.placement, pipeline=cell.pipeline,
            epochs=_TRAIN_EPOCHS, representative_batches=_TRAIN_BATCHES,
            seed=seed, dataset_scale=cell.scale, fastpath=cell.fastpath)
        if result.oom:
            raise BenchmarkError(f"sweep cell {cell.cell_id} hit OOM: "
                                 f"{result.error}")
        virtual = result.total_time
    elif cell.driver == "serve":
        from repro.serving import ServeConfig, run_serving_experiment

        result = run_serving_experiment(
            ServeConfig(framework=cell.framework, dataset=cell.dataset,
                        model=cell.kernel, rate=_SERVE_RATE,
                        num_requests=_SERVE_REQUESTS,
                        budget_s=_SERVE_BUDGET_S,
                        max_batch=_SERVE_MAX_BATCH,
                        placement=cell.placement, pipeline=cell.pipeline,
                        seed=seed, dataset_scale=cell.scale),
            fastpath=cell.fastpath)
        virtual = result.makespan
    else:
        raise BenchmarkError(f"unknown sweep driver {cell.driver!r}")
    wall = time.perf_counter() - start
    metrics = {"virtual_s": virtual, "wall_s": wall,
               "energy_j": result.total_energy}
    attribution = {
        "phases": {k: float(v) for k, v in sorted(result.phases.items())},
        "kernel_families": {k: float(v) for k, v
                            in sorted(result.kernel_families.items())},
    }
    return metrics, attribution


def run_cell(cell: SweepCell, seeds: Sequence[int] = DEFAULT_SEEDS) -> dict:
    """Measure one cell across all seeds; returns the artifact cell payload."""
    from repro.bench.artifacts import stats_payload

    if not seeds:
        raise BenchmarkError("need at least one seed")
    series: Dict[str, List[float]] = {}
    attribution: Optional[dict] = None
    for seed in seeds:
        run, attr = run_cell_once(cell, seed)
        if attribution is None:
            # First seed's breakdown; virtual time is deterministic per
            # seed, so one representative is enough for the gate's hints.
            attribution = {"seed": int(seed), **attr}
        for metric, value in run.items():
            series.setdefault(metric, []).append(value)
    return {
        "id": cell.cell_id,
        "params": cell.params,
        "metrics": {metric: stats_payload(RepeatedStats(tuple(values)))
                    for metric, values in series.items()},
        "attribution": attribution,
    }


def run_sweep(area: str, seeds: Sequence[int] = DEFAULT_SEEDS,
              cells: Optional[Sequence[SweepCell]] = None,
              progress=None) -> dict:
    """Run one area's matrix and return the (validated-shape) artifact.

    ``cells`` overrides the default grid — the gate passes the baseline's
    recorded cells here.  ``progress`` is an optional ``callable(str)``
    for CLI feedback.
    """
    from repro.telemetry.manifest import build_provenance

    if cells is None:
        if area not in MATRICES:
            raise BenchmarkError(
                f"unknown sweep area {area!r}; expected one of "
                f"{tuple(MATRICES)}")
        cells = MATRICES[area]
    payloads = []
    for cell in cells:
        if progress is not None:
            progress(f"  {cell.cell_id}")
        payloads.append(run_cell(cell, seeds))
    artifact = build_sweep_artifact(area, payloads, seeds,
                                    provenance=build_provenance())
    problems = check_cost_invariance(artifact)
    if problems:
        raise BenchmarkError(
            "charged-cost invariance violated (fastpath changed virtual "
            f"time or energy): {problems[0]}")
    return artifact


def check_cost_invariance(artifact: dict) -> List[str]:
    """Fast/ref cell pairs must agree exactly on virtual time and energy.

    The kernel layer guarantees ``use_reference_kernels()`` only changes
    how the arithmetic is scheduled, never the charged logical cost
    (tests/test_kernels_fastpath.py); a mismatch here means that
    invariant broke and the artifact would record a phantom "regression".
    """
    problems: List[str] = []
    by_id = {cell["id"]: cell for cell in artifact.get("cells", [])}
    for cell_id, cell in by_id.items():
        if not cell_id.endswith("/fast"):
            continue
        ref = by_id.get(cell_id[: -len("fast")] + "ref")
        if ref is None:
            continue
        for metric in ("virtual_s", "energy_j"):
            fast_values = cell["metrics"][metric]["values"]
            ref_values = ref["metrics"][metric]["values"]
            if fast_values != ref_values:
                problems.append(f"{cell_id}: {metric} differs from reference "
                                f"schedule ({fast_values} vs {ref_values})")
    return problems
