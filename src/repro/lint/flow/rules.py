"""The interprocedural rule catalogue (``repro lint --deep``).

Each rule consumes the whole-program :class:`AnalysisState` — call
graph, per-function facts, effect summaries, charged-context bits, and
the RNG attribute taint map — and yields ordinary
:class:`~repro.lint.engine.Finding` objects, so inline suppressions,
baselines, and both report formats work unchanged.

* **UNCHARGED-COST** — a function in ``kernels/``/``hardware/``/
  ``tensor/`` does raw work (``@``, einsum, buffered scatter) but no
  path from it reaches a virtual-clock charge primitive, and no caller
  charges on its behalf (the `charged context` fixpoint).  This is the
  bug class that silently corrupts every ``BENCH_*.json`` baseline.
* **RNG-FLOW** — interprocedural RNG provenance: a call that *receives*
  an unseeded generator from its callee, or a method that reads an
  instance attribute some other method tainted with one.
* **STALE-CACHE** — a path mutates a CSR buffer (``X.data``/
  ``indices``/``indptr``) and later reads a SparseAdj derived cache
  (transpose/degrees/incidence/src-order) of the same object without an
  intervening restore or invalidation; also flags exiting a function
  with the buffers still dirty.
* **SPAN-FLOW** — telemetry spans that cross function boundaries: a
  wrapper whose summary says it returns an *open* span, whose result a
  caller discards or fails to end/hand off on some CFG path.
* **FAULT-SWALLOW** — a broad ``except`` (bare / ``Exception`` /
  ``BaseException``) outside ``resilience/`` that can absorb
  ``RecoveryExhausted`` or ``FaultPlanError`` flowing out of the try
  body, without re-raising.
* **LANE-FLOW** — a datapipe ``Stage`` fn (or a function it reaches)
  calls a clock primitive that records busy intervals directly
  (``commit_interval``/``occupy_parallel``/``overlap``), escaping the
  ``deferred()`` capture the lane scheduler replays — that work is
  charged outside the stage's declared lane.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Type

from repro.lint.engine import Finding
from repro.lint.flow.callgraph import FunctionInfo, Program, dotted
from repro.lint.flow.cfg import EXIT, build_cfg, reach_forward
from repro.lint.flow.effects import BOTTOM, RngAttrMap, Summary
from repro.lint.flow.facts import (
    CACHE_ACCESSORS, CACHE_SLOTS, CSR_BUFFERS, PROTECTED_EXCEPTIONS,
    RESTORE_LEAVES, SPAN_OPEN_LEAF,
    FunctionFacts, handler_absorbs, handler_is_broad, handler_reraises,
    handler_type_names,
)

_FN_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class AnalysisState:
    """Everything the deep rules see: the solved whole-program model."""

    program: Program
    facts: Dict[str, FunctionFacts]
    summaries: Dict[str, Summary]
    rng_attrs: RngAttrMap
    charged: Dict[str, bool]


DEEP_RULES: Dict[str, "DeepRule"] = {}


def register(cls: Type["DeepRule"]) -> Type["DeepRule"]:
    instance = cls()
    if instance.name in DEEP_RULES:
        raise ValueError(f"duplicate deep rule name {instance.name!r}")
    DEEP_RULES[instance.name] = instance
    return cls


def resolve_deep_rules(select=None) -> List["DeepRule"]:
    if not select:
        return list(DEEP_RULES.values())
    wanted = {name.strip().upper() for name in select if name.strip()}
    unknown = wanted - set(DEEP_RULES)
    if unknown:
        raise KeyError(f"unknown deep rule(s) {sorted(unknown)}; "
                       f"available: {sorted(DEEP_RULES)}")
    return [rule for name, rule in DEEP_RULES.items() if name in wanted]


class DeepRule:
    """Base class: one whole-program check."""

    name: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, state: AnalysisState) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, info: FunctionInfo, node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        span = (line, getattr(node, "end_lineno", line) or line)
        return Finding(rule=self.name, severity=self.severity, path=info.path,
                       line=line, col=getattr(node, "col_offset", 0),
                       message=message, span=span)


def _in_packages(module: str, packages: Tuple[str, ...]) -> bool:
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in packages)


def _display(qualname: str) -> str:
    """Human-facing spelling of a qualname: module.Class.method."""
    return qualname.replace(":", ".", 1)


def _iter_own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, _FN_NODES) or isinstance(node, ast.ClassDef):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# UNCHARGED-COST
# ---------------------------------------------------------------------------

#: Packages whose work must reach the virtual clock — this is where the
#: cost model the paper's methodology trusts actually lives.
COSTED_PACKAGES = ("repro.kernels", "repro.hardware", "repro.tensor")


@register
class UnchargedCostRule(DeepRule):
    name = "UNCHARGED-COST"
    severity = "error"
    description = ("function in kernels/hardware/tensor does raw work "
                   "(@, einsum, buffered scatter) but no path reaches a "
                   "virtual-clock charge primitive and no caller charges on "
                   "its behalf; the simulated cost model silently loses this "
                   "work — route it through charge()/device.execute()")

    def check(self, state: AnalysisState) -> Iterator[Finding]:
        for qualname in sorted(state.facts):
            facts = state.facts[qualname]
            if not facts.work:
                continue
            if not _in_packages(facts.info.module, COSTED_PACKAGES):
                continue
            summary = state.summaries.get(qualname, BOTTOM)
            if summary.charges or state.charged.get(qualname, False):
                continue
            for site in facts.work:
                yield self.finding(
                    facts.info, site.node,
                    f"'{_display(qualname)}' performs uncharged work: "
                    f"{site.kind} never reaches clock.occupy on any path, "
                    "and no caller charges on this function's behalf")


# ---------------------------------------------------------------------------
# RNG-FLOW
# ---------------------------------------------------------------------------
@register
class RngFlowRule(DeepRule):
    name = "RNG-FLOW"
    severity = "error"
    description = ("unseeded RNG provenance crossing a function boundary: a "
                   "call that returns an unseeded generator, or a read of an "
                   "instance attribute another method tainted with one; "
                   "thread seeded generators explicitly so paired framework "
                   "runs stay comparable")

    def check(self, state: AnalysisState) -> Iterator[Finding]:
        for qualname in sorted(state.facts):
            facts = state.facts[qualname]
            for site in facts.calls:
                for callee in site.callees:
                    if state.summaries.get(callee, BOTTOM).returns_rng:
                        yield self.finding(
                            facts.info, site.node,
                            f"'{_display(qualname)}' receives an unseeded "
                            f"RNG from '{_display(callee)}'; construct "
                            "generators from an explicit seed and thread "
                            "them through arguments")
                        break
            cls = facts.info.cls
            if not cls:
                continue
            for node in _iter_own_nodes(facts.info.node):
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.ctx, ast.Load) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == "self":
                    origin = state.rng_attrs.get((cls, node.attr))
                    if origin and origin != qualname:
                        yield self.finding(
                            facts.info, node,
                            f"'{_display(qualname)}' reads 'self."
                            f"{node.attr}', an RNG attribute with unseeded "
                            f"provenance (tainted in '{_display(origin)}')")


# ---------------------------------------------------------------------------
# STALE-CACHE
# ---------------------------------------------------------------------------
@register
class StaleCacheRule(DeepRule):
    name = "STALE-CACHE"
    severity = "error"
    description = ("CSR buffer (data/indices/indptr) mutated and a SparseAdj "
                   "derived cache (transpose/degrees/incidence/src-order) of "
                   "the same object read afterwards without restore or "
                   "invalidation — the cache serves values computed from the "
                   "pre-mutation buffers")

    def check(self, state: AnalysisState) -> Iterator[Finding]:
        for qualname in sorted(state.facts):
            yield from self._check_function(state, state.facts[qualname])

    def _mutates_buffers(self, fn_node: ast.AST,
                         aliases: Dict[str, str]) -> bool:
        for node in _iter_own_nodes(fn_node):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if self._buffer_write_owner(target, aliases) is not None:
                    return True
        return False

    @classmethod
    def _buffer_write_owner(cls, target: ast.AST,
                            aliases: Dict[str, str]) -> Optional[str]:
        """Owner root when ``target`` is a genuine adjacency CSR buffer
        write — ``X._mat.data`` / ``X._mat_t.indices``, or ``alias.data``
        where the alias came from the adjacency's matrix or a cache
        accessor.  ``None`` for unrelated attributes: Tensors also carry
        a ``.data`` and optimizers rebind it freely."""
        if not (isinstance(target, ast.Attribute)
                and target.attr in CSR_BUFFERS):
            return None
        chain = dotted(target.value).split(".")
        root = chain[0] if chain and chain[0] else ""
        if any(part in ("_mat", "_mat_t") for part in chain):
            return aliases.get(root, root)
        if root in aliases:
            return aliases[root]
        return None

    @staticmethod
    def _aliases(fn_node: ast.AST) -> Dict[str, str]:
        """Locals that alias an adjacency's internal matrix: assignment
        from a cache accessor call or a ``._mat``/``._mat_t`` read."""
        aliases: Dict[str, str] = {}
        for node in _iter_own_nodes(fn_node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            value = node.value
            owner = ""
            if isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Attribute) \
                    and value.func.attr in CACHE_ACCESSORS:
                owner = dotted(value.func.value)
            elif isinstance(value, ast.Attribute) \
                    and value.attr in ("_mat", "_mat_t"):
                owner = dotted(value.value)
            if owner:
                aliases[node.targets[0].id] = owner.split(".")[0]
        return aliases

    @staticmethod
    def _owner(name: str, aliases: Dict[str, str]) -> str:
        root = name.split(".")[0] if name else ""
        return aliases.get(root, root)

    def _node_events(self, stmt: ast.AST, site_by_node: Dict[int, object],
                     state: AnalysisState, aliases: Dict[str, str]):
        """(gens, kills, reads) for one CFG statement node."""
        gens: List[Tuple[str, ast.AST]] = []
        kills: Set[str] = set()
        reads: List[Tuple[str, ast.AST]] = []
        for node in self._stmt_subtree(stmt):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                owner = self._buffer_write_owner(target, aliases)
                if owner is not None:
                    rhs_leaf = dotted(value).rpartition(".")[2] \
                        if value is not None else ""
                    if rhs_leaf in RESTORE_LEAVES:
                        kills.add(owner)
                    else:
                        gens.append((owner, node))
                elif isinstance(target, ast.Attribute) \
                        and target.attr in CACHE_SLOTS \
                        and isinstance(value, ast.Constant) \
                        and value.value is None:
                    kills.add(self._owner(dotted(target.value), aliases))
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr in CACHE_ACCESSORS:
                    reads.append((self._owner(dotted(node.func.value),
                                              aliases), node))
                site = site_by_node.get(id(node))
                if site is not None:
                    for callee in site.callees:
                        summary = state.summaries.get(callee, BOTTOM)
                        if summary.invalidates_cache and site.arg_roots:
                            kills.add(self._owner(site.arg_roots[0], aliases))
                        if summary.reads_cache:
                            for root in site.arg_roots:
                                reads.append((self._owner(root, aliases),
                                              node))
            elif isinstance(node, ast.Attribute) \
                    and node.attr in CACHE_SLOTS \
                    and isinstance(node.ctx, ast.Load):
                reads.append((self._owner(dotted(node.value), aliases), node))
        return gens, kills, reads

    @staticmethod
    def _stmt_subtree(stmt: ast.AST) -> Iterator[ast.AST]:
        """The statement and its expression subtree, not nested blocks."""
        yield stmt
        stack = [child for child in ast.iter_child_nodes(stmt)
                 if not isinstance(child, (ast.stmt, ast.ExceptHandler))]
        while stack:
            node = stack.pop()
            if isinstance(node, _FN_NODES) or isinstance(node, ast.ClassDef):
                continue
            yield node
            stack.extend(child for child in ast.iter_child_nodes(node)
                         if not isinstance(child, (ast.stmt,
                                                   ast.ExceptHandler)))

    def _check_function(self, state: AnalysisState,
                        facts: FunctionFacts) -> Iterator[Finding]:
        fn_node = facts.info.node
        aliases = self._aliases(fn_node)
        if not self._mutates_buffers(fn_node, aliases):
            return
        cfg = build_cfg(fn_node)
        site_by_node = {id(s.node): s for s in facts.calls}
        events = {}
        fact_node: Dict[Tuple[str, int], ast.AST] = {}
        for nid, stmt in cfg.stmt_of.items():
            gens, kills, reads = self._node_events(stmt, site_by_node,
                                                   state, aliases)
            events[nid] = (gens, kills, reads)
            for owner, node in gens:
                fact_node.setdefault((owner, node.lineno), node)
        all_facts = set(fact_node)
        gen_sets = {
            nid: frozenset((owner, node.lineno) for owner, node in gens)
            for nid, (gens, _, _) in events.items()}
        kill_sets = {
            nid: frozenset(f for f in all_facts if f[0] in kills)
            for nid, (_, kills, _) in events.items()}
        in_sets = reach_forward(cfg, gen_sets, kill_sets)
        qualname = facts.info.qualname
        for nid in sorted(events):
            _, _, reads = events[nid]
            dirty = in_sets.get(nid, frozenset())
            reported: Set[str] = set()
            for owner, node in reads:
                if owner in reported:
                    continue
                hits = sorted(f for f in dirty if f[0] == owner)
                if hits:
                    reported.add(owner)
                    yield self.finding(
                        facts.info, node,
                        f"'{_display(qualname)}' reads a derived cache of "
                        f"'{owner}' whose CSR buffers were mutated at line "
                        f"{hits[0][1]} without restore or invalidation")
        for fact in sorted(in_sets.get(EXIT, frozenset())):
            yield self.finding(
                facts.info, fact_node[fact],
                f"'{_display(qualname)}' mutates the CSR buffers of "
                f"'{fact[0]}' and can exit without restoring the default "
                "buffer or invalidating the derived caches")


# ---------------------------------------------------------------------------
# SPAN-FLOW
# ---------------------------------------------------------------------------
@register
class SpanFlowRule(DeepRule):
    name = "SPAN-FLOW"
    severity = "error"
    description = ("open telemetry span crossing a function boundary is "
                   "dropped: a wrapper that returns a start_span() result "
                   "has its return value discarded, or a span held in a "
                   "local is neither ended nor handed off on some path — "
                   "the tracer stack wedges and every enclosing span "
                   "misattributes time")

    def check(self, state: AnalysisState) -> Iterator[Finding]:
        for qualname in sorted(state.facts):
            yield from self._check_function(state, state.facts[qualname])

    @staticmethod
    def _opens_span(state: AnalysisState, facts: FunctionFacts,
                    expr: ast.AST) -> Optional[str]:
        """Qualname-ish description of the opener when ``expr`` yields an
        open span.  Direct start_span() is only seeded inside the
        telemetry package — outside it the flat TELEMETRY-LEAK rule
        already owns that finding."""
        if not isinstance(expr, ast.Call):
            return None
        site = next((s for s in facts.calls if s.node is expr), None)
        if site is not None:
            for callee in site.callees:
                if state.summaries.get(callee, BOTTOM).returns_open_span:
                    return _display(callee)
        in_telemetry = facts.info.module.startswith("repro.telemetry")
        if in_telemetry \
                and dotted(expr.func).rpartition(".")[2] == SPAN_OPEN_LEAF:
            return dotted(expr.func)
        return None

    def _check_function(self, state: AnalysisState,
                        facts: FunctionFacts) -> Iterator[Finding]:
        fn_node = facts.info.node
        opens: List[Tuple[ast.stmt, str, str]] = []   # (stmt, var, opener)
        discards: List[Tuple[ast.AST, str]] = []
        for node in _iter_own_nodes(fn_node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                opener = self._opens_span(state, facts, node.value)
                if opener:
                    opens.append((node, node.targets[0].id, opener))
            elif isinstance(node, ast.Expr):
                opener = self._opens_span(state, facts, node.value)
                if opener:
                    discards.append((node, opener))
        qualname = facts.info.qualname
        for node, opener in discards:
            yield self.finding(
                facts.info, node,
                f"'{_display(qualname)}' discards an open span returned by "
                f"'{opener}'; end it or hand it off")
        if not opens:
            return
        cfg = build_cfg(fn_node)
        open_stmts = {id(stmt): (var, opener) for stmt, var, opener in opens}
        gen_sets: Dict[int, FrozenSet] = {}
        kill_sets: Dict[int, FrozenSet] = {}
        fact_info: Dict[Tuple[str, int], Tuple[ast.AST, str]] = {}
        all_vars = {var for _, var, _ in opens}
        facts_by_var: Dict[str, Set[Tuple[str, int]]] = {}
        for stmt, var, opener in opens:
            fact = (var, stmt.lineno)
            fact_info[fact] = (stmt, opener)
            facts_by_var.setdefault(var, set()).add(fact)
        for nid, stmt in cfg.stmt_of.items():
            if id(stmt) in open_stmts:
                var, opener = open_stmts[id(stmt)]
                gen_sets[nid] = frozenset({(var, stmt.lineno)})
                # re-opening kills the previous span fact for this var
                kill_sets[nid] = frozenset(
                    f for f in facts_by_var.get(var, ()) if f[1] != stmt.lineno)
                continue
            used = self._vars_mentioned(stmt, all_vars)
            if used:
                kill_sets[nid] = frozenset(
                    f for v in used for f in facts_by_var.get(v, ()))
        in_sets = reach_forward(cfg, gen_sets, kill_sets)
        for fact in sorted(in_sets.get(EXIT, frozenset())):
            stmt, opener = fact_info[fact]
            yield self.finding(
                facts.info, stmt,
                f"'{_display(qualname)}' opens a span via '{opener}' into "
                f"'{fact[0]}' but some path exits without ending or handing "
                "it off")

    @staticmethod
    def _vars_mentioned(stmt: ast.AST, names: Set[str]) -> Set[str]:
        found: Set[str] = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id in names:
                found.add(node.id)
        return found


# ---------------------------------------------------------------------------
# FAULT-SWALLOW
# ---------------------------------------------------------------------------
@register
class FaultSwallowRule(DeepRule):
    name = "FAULT-SWALLOW"
    severity = "error"
    description = ("broad except (bare/Exception/BaseException) outside "
                   "resilience/ can absorb RecoveryExhausted or "
                   "FaultPlanError flowing out of the try body without "
                   "re-raising; injected faults must surface, not vanish "
                   "into a catch-all")

    def check(self, state: AnalysisState) -> Iterator[Finding]:
        for qualname in sorted(state.facts):
            facts = state.facts[qualname]
            if facts.info.module.startswith("repro.resilience"):
                continue
            site_by_node = {id(s.node): s for s in facts.calls}
            for node in _iter_own_nodes(facts.info.node):
                if not isinstance(node, ast.Try):
                    continue
                yield from self._check_try(state, facts, site_by_node, node)

    def _check_try(self, state: AnalysisState, facts: FunctionFacts,
                   site_by_node, try_node: ast.Try) -> Iterator[Finding]:
        escaping = self._escaping(state, site_by_node, try_node.body,
                                  frozenset())
        if not escaping:
            return
        for handler in try_node.handlers:
            if not handler_is_broad(handler) or handler_reraises(handler):
                continue
            absorbed = handler_absorbs(handler)
            hits = sorted((exc, src) for exc, src in escaping
                          if exc in absorbed)
            if not hits:
                continue
            exc, src = hits[0]
            names = handler_type_names(handler)
            spelled = "bare except" if "*" in names \
                else f"except {'/'.join(sorted(names))}"
            yield self.finding(
                facts.info, handler,
                f"{spelled} in '{_display(facts.info.qualname)}' may swallow "
                f"{exc} (raised via {src}); catch specific exceptions or "
                "re-raise")

    def _escaping(self, state: AnalysisState, site_by_node,
                  stmts: List[ast.stmt],
                  absorbed: FrozenSet[str]) -> Set[Tuple[str, str]]:
        """Protected exceptions that can escape ``stmts``, as
        (exception, source description) pairs."""
        out: Set[Tuple[str, str]] = set()
        for stmt in stmts:
            if isinstance(stmt, _FN_NODES) or isinstance(stmt, ast.ClassDef):
                continue
            if isinstance(stmt, ast.Try):
                inner = frozenset(absorbed)
                for handler in stmt.handlers:
                    if not handler_reraises(handler):
                        inner |= handler_absorbs(handler)
                out |= self._escaping(state, site_by_node, stmt.body, inner)
                for handler in stmt.handlers:
                    out |= self._escaping(state, site_by_node, handler.body,
                                          absorbed)
                out |= self._escaping(state, site_by_node, stmt.orelse,
                                      absorbed)
                out |= self._escaping(state, site_by_node, stmt.finalbody,
                                      absorbed)
                continue
            for node in self._shallow_walk(stmt):
                if isinstance(node, ast.Raise):
                    exc = node.exc
                    if isinstance(exc, ast.Call):
                        exc = exc.func
                    name = dotted(exc).rpartition(".")[2] \
                        if exc is not None else ""
                    if name in PROTECTED_EXCEPTIONS and name not in absorbed:
                        out.add((name, f"raise at line {node.lineno}"))
                elif isinstance(node, ast.Call):
                    site = site_by_node.get(id(node))
                    if site is None:
                        continue
                    for callee in site.callees:
                        summary = state.summaries.get(callee, BOTTOM)
                        for exc in sorted(summary.may_raise - absorbed):
                            out.add((exc, f"'{_display(callee)}'"))
            nested = [stmt.body] if hasattr(stmt, "body") \
                and isinstance(getattr(stmt, "body"), list) else []
            if hasattr(stmt, "orelse") and isinstance(stmt.orelse, list):
                nested.append(stmt.orelse)
            for block in nested:
                out |= self._escaping(state, site_by_node, block, absorbed)
        return out

    @staticmethod
    def _shallow_walk(stmt: ast.AST) -> Iterator[ast.AST]:
        """The statement plus its expressions, not nested statements."""
        yield stmt
        stack = [child for child in ast.iter_child_nodes(stmt)
                 if not isinstance(child, (ast.stmt, ast.ExceptHandler))]
        while stack:
            node = stack.pop()
            if isinstance(node, _FN_NODES) or isinstance(node, ast.ClassDef):
                continue
            yield node
            stack.extend(child for child in ast.iter_child_nodes(node)
                         if not isinstance(child, (ast.stmt,
                                                   ast.ExceptHandler)))


# ---------------------------------------------------------------------------
# LANE-FLOW
# ---------------------------------------------------------------------------

#: Clock entry points that write busy intervals straight onto the machine
#: timeline, bypassing the ``deferred()`` capture a datapipe stage runs
#: under.  Work routed through them lands at pre-drain timestamps on the
#: base device instead of the stage's declared lane.
LANE_ESCAPES = ("commit_interval", "occupy_parallel", "overlap")


@register
class LaneFlowRule(DeepRule):
    name = "LANE-FLOW"
    severity = "error"
    description = ("datapipe stage work charged outside its declared lane: a "
                   "Stage fn (or a function it calls) reaches a clock "
                   "primitive that records busy intervals directly "
                   "(commit_interval/occupy_parallel/overlap), escaping the "
                   "deferred() capture the lane scheduler replays — that "
                   "time lands on the base device at pre-drain timestamps "
                   "instead of the stage's lane")

    def check(self, state: AnalysisState) -> Iterator[Finding]:
        escapes = self._escape_map(state)
        for qualname in sorted(state.facts):
            facts = state.facts[qualname]
            for node in _iter_own_nodes(facts.info.node):
                if not self._is_stage_call(node):
                    continue
                fn_expr = self._stage_fn(node)
                if fn_expr is None:
                    continue
                for target, primitive in self._fn_escapes(
                        state, facts, fn_expr, escapes):
                    yield self.finding(
                        facts.info, node,
                        f"Stage declared in '{_display(qualname)}' uses fn "
                        f"'{target}' which reaches '{primitive}'; interval-"
                        "recording clock primitives escape the deferred() "
                        "capture, so this work is charged outside the "
                        "stage's declared lane")

    # -- stage-construction syntax ------------------------------------
    @staticmethod
    def _is_stage_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and dotted(node.func).rpartition(".")[2] == "Stage")

    @staticmethod
    def _stage_fn(call: ast.Call) -> Optional[ast.AST]:
        for kw in call.keywords:
            if kw.arg == "fn":
                return kw.value
        if len(call.args) >= 3:
            return call.args[2]
        return None

    # -- whole-program escape reachability ----------------------------
    def _escape_map(self, state: AnalysisState) -> Dict[str, str]:
        """qualname -> escaping primitive (transitive over the call graph)."""
        direct: Dict[str, str] = {}
        for qualname, facts in state.facts.items():
            primitive = self._direct_escape(facts.info.node)
            if primitive:
                direct[qualname] = primitive
        reaches = dict(direct)
        changed = True
        while changed:
            changed = False
            for qualname, facts in state.facts.items():
                if qualname in reaches:
                    continue
                for site in facts.calls:
                    hit = next((reaches[c] for c in site.callees
                                if c in reaches), None)
                    if hit:
                        reaches[qualname] = hit
                        changed = True
                        break
        return reaches

    @staticmethod
    def _direct_escape(fn_node: ast.AST) -> str:
        for node in _iter_own_nodes(fn_node):
            if isinstance(node, ast.Call):
                leaf = dotted(node.func).rpartition(".")[2]
                if leaf in LANE_ESCAPES:
                    return leaf
        return ""

    def _fn_escapes(self, state: AnalysisState, facts: FunctionFacts,
                    fn_expr: ast.AST,
                    escapes: Dict[str, str]) -> Iterator[Tuple[str, str]]:
        """(display name, primitive) pairs for one Stage fn expression."""
        if isinstance(fn_expr, ast.Lambda):
            primitive = self._lambda_escape(state, facts, fn_expr, escapes)
            if primitive:
                yield "<lambda>", primitive
            return
        for qualname in self._resolve_ref(state, facts, fn_expr):
            if qualname in escapes:
                yield _display(qualname), escapes[qualname]

    def _lambda_escape(self, state: AnalysisState, facts: FunctionFacts,
                       lam: ast.Lambda, escapes: Dict[str, str]) -> str:
        for node in ast.walk(lam.body):
            if not isinstance(node, ast.Call):
                continue
            leaf = dotted(node.func).rpartition(".")[2]
            if leaf in LANE_ESCAPES:
                return leaf
            site = next((s for s in facts.calls if s.node is node), None)
            if site is not None:
                hit = next((escapes[c] for c in site.callees
                            if c in escapes), "")
                if hit:
                    return hit
            # Call sites inside lambdas may not be in facts.calls; fall
            # back to resolving the callee reference by name.
            for callee in self._resolve_ref(state, facts, node.func):
                if callee in escapes:
                    return escapes[callee]
        return ""

    @staticmethod
    def _resolve_ref(state: AnalysisState, facts: FunctionFacts,
                     ref: ast.AST) -> List[str]:
        """Program functions a bare/attribute function reference names.

        ``name`` resolves to a sibling in the same module (nested defs
        share the enclosing module); ``self.meth``/``obj.meth`` resolve
        by method name within the same class first, then any class."""
        module = facts.info.module
        if isinstance(ref, ast.Name):
            suffix = ref.id
            return sorted(q for q, f in state.facts.items()
                          if f.info.module == module
                          and q.rsplit(".", 1)[-1].rsplit(":", 1)[-1] == suffix)
        if isinstance(ref, ast.Attribute):
            meth = ref.attr
            same_cls = sorted(
                q for q, f in state.facts.items()
                if f.info.module == module and f.info.cls == facts.info.cls
                and q.endswith(f":{facts.info.cls}.{meth}" if facts.info.cls
                               else f".{meth}"))
            if same_cls:
                return same_cls
            return sorted(q for q, f in state.facts.items()
                          if f.info.cls and q.endswith(f".{meth}"))
        return []
