"""GraphSAINT's node- and edge-sampling variants.

The paper benchmarks only GraphSAINT's random-walk sampler because the
original work showed node and edge sampling inferior in accuracy; both
variants are implemented here for completeness and for the ablation bench
(`benchmarks/test_ablation_saint_variants.py`) that compares their cost.

* Node sampler: sample nodes with probability proportional to squared
  degree (the GraphSAINT paper's importance distribution), induce.
* Edge sampler: sample edges with probability ~ 1/deg(u) + 1/deg(v),
  take their endpoints, induce.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SamplerError
from repro.graph.formats import INDEX_DTYPE, induced_subgraph
from repro.graph.graph import Graph
from repro.sampling.base import SampleWork, SubgraphSample


class SaintNodeSampler:
    """GraphSAINT node sampler: degree-weighted node draws + induction."""

    def __init__(self, graph: Graph, budget: int = 6000,
                 seed: Optional[int] = None) -> None:
        if budget < 1:
            raise SamplerError("budget must be >= 1")
        self.graph = graph
        self.paper_budget = budget
        self.actual_budget = max(2, int(round(budget / graph.node_scale)))
        self.rng = np.random.default_rng(seed)
        # choice() needs f64 probabilities that sum to exactly 1.
        degrees = np.maximum(graph.adj.degrees(), 1).astype(np.float64)  # repro-lint: disable=DTYPE-DRIFT
        weights = degrees ** 2
        self._probs = weights / weights.sum()

    def sample(self) -> SubgraphSample:
        size = min(self.actual_budget, self.graph.num_nodes)
        nodes = np.unique(
            self.rng.choice(self.graph.num_nodes, size=size, p=self._probs)
        ).astype(INDEX_DTYPE)
        # order="dst" emits edges in SparseAdj's canonical order so block
        # assembly can use the argsort-free from_sorted_block constructor.
        sub_coo, _ = induced_subgraph(self.graph.adj, nodes, order="dst")
        node_scale = self.graph.node_scale
        edge_scale = self.graph.edge_scale
        work = SampleWork(
            items=size * node_scale + 0.5 * sub_coo.num_edges * edge_scale,
            fetch_bytes=4.0 * nodes.size * node_scale * self.graph.num_features,
        )
        return SubgraphSample(nodes=nodes, src=sub_coo.src, dst=sub_coo.dst,
                              node_scale=node_scale, edge_scale=edge_scale,
                              work=work)

    def num_batches(self) -> int:
        expected = min(self.graph.num_nodes, self.actual_budget)
        return max(1, int(np.ceil(self.graph.num_nodes / expected)))

    def epoch_batches(self):
        for _ in range(self.num_batches()):
            yield self.sample()


class SaintEdgeSampler:
    """GraphSAINT edge sampler: inverse-degree edge draws + induction."""

    def __init__(self, graph: Graph, budget: int = 4000,
                 seed: Optional[int] = None) -> None:
        if budget < 1:
            raise SamplerError("budget must be >= 1")
        self.graph = graph
        self.paper_budget = budget
        self.actual_budget = max(2, int(round(budget / graph.edge_scale)))
        self.rng = np.random.default_rng(seed)
        coo = graph.adj.to_coo()
        self._src, self._dst = coo.src, coo.dst
        # choice() needs f64 probabilities that sum to exactly 1.
        degrees = np.maximum(
            np.bincount(self._src, minlength=graph.num_nodes), 1
        ).astype(np.float64)  # repro-lint: disable=DTYPE-DRIFT
        weights = 1.0 / degrees[self._src] + 1.0 / degrees[self._dst]
        self._probs = weights / weights.sum()

    def sample(self) -> SubgraphSample:
        size = min(max(2, self.actual_budget), self._src.size)
        picked = self.rng.choice(self._src.size, size=size, p=self._probs)
        nodes = np.unique(
            np.concatenate([self._src[picked], self._dst[picked]])
        ).astype(INDEX_DTYPE)
        sub_coo, _ = induced_subgraph(self.graph.adj, nodes, order="dst")
        node_scale = self.graph.node_scale
        edge_scale = self.graph.edge_scale
        work = SampleWork(
            items=size * edge_scale + 0.5 * sub_coo.num_edges * edge_scale,
            fetch_bytes=4.0 * nodes.size * node_scale * self.graph.num_features,
        )
        return SubgraphSample(nodes=nodes, src=sub_coo.src, dst=sub_coo.dst,
                              node_scale=node_scale, edge_scale=edge_scale,
                              work=work)

    def num_batches(self) -> int:
        probe = self.sample()
        expected = max(1, probe.num_nodes)
        return max(1, int(np.ceil(self.graph.num_nodes / expected)))

    def epoch_batches(self):
        for _ in range(self.num_batches()):
            yield self.sample()
