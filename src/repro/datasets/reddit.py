"""Reddit: online communities (the densest graph in the study).

Table 1: 232,965 nodes / 114,615,892 edges / 602 features / 41 classes,
split 0.66 / 0.10 / 0.24.  Logical average degree ~492 — the per-node
neighbor lists are huge, which is why GPU-based sampling draws *more power*
than CPU sampling on Reddit (Powerup < 1 in Figure 20) and why PyG's
unfused attention layers OOM here.  The synthetic stand-in keeps the
highest actual density of the six.
"""

from repro.datasets.base import DatasetSpec
from repro.graph.graph import Split

SPEC = DatasetSpec(
    name="reddit",
    description="Online Communities",
    logical_num_nodes=232_965,
    logical_num_edges=114_615_892,
    num_features=602,
    num_classes=41,
    multilabel=False,
    split=Split(0.66, 0.10, 0.24),
    actual_num_nodes=3_200,
    actual_num_edges=96_000,
    num_communities=41,
    intra_prob=0.7,
    degree_exponent=1.9,
    in_dgl=True,
    in_pyg=True,
    seed=44,
)
