"""Orchestration: run every analysis over a telemetry directory.

``analyze_run_dir`` is what ``repro profile analyze DIR`` calls: it
loads the bundle, runs critical-path extraction, roofline attribution,
and the flamegraph fold, writes ``profile.json`` (validated,
``repro.profile/1``) plus ``flame.folded`` next to the run artifacts,
and returns the payload.  The formatters render the payloads for the
terminal.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.profiling.analysis.bundle import RunBundle, load_run_bundle
from repro.profiling.analysis.critical_path import extract_critical_path
from repro.profiling.analysis.flame import folded_stacks, render_folded
from repro.profiling.analysis.roofline import roofline_attribution
from repro.profiling.analysis.schema import (
    build_profile_payload,
    write_profile_json,
)

PROFILE_FILENAME = "profile.json"
FLAME_FILENAME = "flame.folded"
DIFF_FILENAME = "diff.json"


def analyze_bundle(bundle: RunBundle) -> dict:
    """All three analyses over an in-memory bundle (no file output)."""
    manifest = bundle.manifest
    stacks = folded_stacks(bundle.span_records)
    return build_profile_payload(
        run={
            "label": bundle.label,
            "command": manifest.get("command", "?"),
            "dataset": manifest.get("dataset", "?"),
            "seed": manifest.get("seed", 0),
            "total_seconds": bundle.total_seconds,
        },
        critical_path=extract_critical_path(bundle),
        roofline=roofline_attribution(bundle),
        flame={
            "stacks": len(stacks),
            "total_micros": sum(stacks.values()),
            "file": FLAME_FILENAME,
        },
    )


def analyze_run_dir(run_dir: Union[str, Path],
                    out_dir: Optional[Union[str, Path]] = None) -> dict:
    """Analyze one telemetry directory and write the profile artifacts.

    Writes ``profile.json`` and ``flame.folded`` into ``out_dir``
    (default: the run directory itself) and returns the validated
    payload with an ``artifacts`` map of written paths attached.
    """
    from repro.bench.artifacts import atomic_write_text

    bundle = load_run_bundle(run_dir)
    out = Path(out_dir) if out_dir is not None else Path(run_dir)
    payload = analyze_bundle(bundle)
    profile_path = write_profile_json(out / PROFILE_FILENAME, payload)
    flame_path = atomic_write_text(
        out / FLAME_FILENAME, render_folded(folded_stacks(bundle.span_records)))
    payload["artifacts"] = {"profile": str(profile_path),
                            "flame": str(flame_path)}
    return payload


# ----------------------------------------------------------------------
# terminal rendering
# ----------------------------------------------------------------------
def format_profile_report(payload: dict) -> str:
    run = payload.get("run", {})
    critical = payload.get("critical_path", {})
    roofline = payload.get("roofline", {})
    lines: List[str] = []
    lines.append(f"{run.get('label', '?')} / {run.get('dataset', '?')} "
                 f"(seed {run.get('seed', '?')}, "
                 f"total {run.get('total_seconds', 0.0):.4f}s)")
    lines.append("")
    lines.append(f"critical path: {critical.get('critical_seconds', 0.0):.4f}s "
                 f"over a {critical.get('makespan', 0.0):.4f}s makespan "
                 f"({100 * critical.get('coverage', 0.0):.1f}% covered, "
                 f"{critical.get('idle_seconds', 0.0):.4f}s idle, "
                 f"{critical.get('overlap_seconds', 0.0):.4f}s overlapped)")
    by_lane = critical.get("by_lane", {})
    if by_lane:
        header = f"  {'lane':<24}{'busy':>10}{'on-path':>10}{'slack':>10}"
        lines += [header, "  " + "-" * (len(header) - 2)]
        for lane in sorted(by_lane):
            stats = by_lane[lane]
            lines.append(f"  {lane:<24}{stats['busy_seconds']:>9.4f}s"
                         f"{stats['critical_seconds']:>9.4f}s"
                         f"{stats['slack_seconds']:>9.4f}s")
    top = critical.get("top", [])
    if top:
        lines.append("  bounding work:")
        for entry in top[:8]:
            lines.append(f"    {entry['lane']}/{entry['name']:<28}"
                         f"{entry['seconds']:>9.4f}s x{entry['count']}")
    lines.append("")
    by_bound = roofline.get("seconds_by_bound", {})
    if by_bound:
        total = sum(by_bound.values())
        summary = ", ".join(
            f"{bound} {100 * seconds / total:.1f}%" if total > 0
            else f"{bound} 0.0%"
            for bound, seconds in sorted(by_bound.items()))
        lines.append(f"roofline: {summary}")
    header = (f"  {'device':<24}{'kernel':<26}{'bound':<10}"
              f"{'seconds':>10}{'%peak':>8}")
    lines += [header, "  " + "-" * (len(header) - 2)]
    for entry in roofline.get("kernels", [])[:12]:
        pct = max(entry["pct_peak_compute"], entry["pct_peak_memory"])
        lines.append(f"  {entry['device']:<24}{entry['kernel']:<26}"
                     f"{entry['bound']:<10}{entry['seconds']:>9.4f}s"
                     f"{100 * pct:>7.1f}%")
    for transfer in roofline.get("transfers", []):
        lines.append(f"  {transfer['lane']:<24}{'(dma traffic)':<26}"
                     f"{'transfer':<10}{transfer['seconds']:>9.4f}s"
                     f"{100 * transfer['pct_peak_bandwidth']:>7.1f}%")
    flame = payload.get("flame", {})
    lines.append("")
    lines.append(f"flamegraph: {flame.get('stacks', 0)} stacks, "
                 f"{flame.get('total_micros', 0)} us folded "
                 f"-> {flame.get('file', FLAME_FILENAME)}")
    return "\n".join(lines)


def _flatten_axis(payload: dict, axis: str) -> List[tuple]:
    axes: Dict[str, List[dict]] = payload.get(axis, {})
    entries = []
    for bucket in ("grown", "shrunk", "appeared", "vanished"):
        for entry in axes.get(bucket, []):
            entries.append((bucket, entry))
    entries.sort(key=lambda item: (-abs(item[1]["delta"]), item[1]["key"]))
    return entries


def format_diff_report(payload: dict) -> str:
    base, current = payload.get("base", {}), payload.get("current", {})
    lines: List[str] = []
    lines.append(f"diff: {base.get('label', '?')} (base) vs "
                 f"{current.get('label', '?')} (current)")
    delta = payload.get("delta_total_seconds", 0.0)
    lines.append(f"total: {base.get('total_seconds', 0.0):.4f}s -> "
                 f"{current.get('total_seconds', 0.0):.4f}s "
                 f"({delta:+.4f}s)")
    if base.get("kernel_mode") != current.get("kernel_mode"):
        lines.append(f"kernel schedule: {base.get('kernel_mode', '?')} -> "
                     f"{current.get('kernel_mode', '?')}")
    if payload.get("identical"):
        lines.append("runs are identical on the virtual clock "
                     "(zero delta on every axis)")
        return "\n".join(lines)
    for axis, title in (("phases", "phases"),
                        ("kernel_families", "kernel families"),
                        ("kernels", "kernels"),
                        ("spans", "span paths")):
        entries = _flatten_axis(payload, axis)
        if not entries:
            continue
        lines.append(f"{title}:")
        for bucket, entry in entries[:10]:
            lines.append(f"  {bucket:<9}{entry['key']:<44}"
                         f"{entry['base']:>10.4f}s -> "
                         f"{entry['current']:>10.4f}s "
                         f"({entry['delta']:+.4f}s)")
    fastpath = _flatten_axis(payload, "fastpath")
    if fastpath:
        lines.append("kernel fast-path schedule (hit/miss counts, "
                     "virtual cost unchanged by design):")
        for bucket, entry in fastpath[:10]:
            lines.append(f"  {bucket:<9}{entry['key']:<44}"
                         f"{entry['base']:>10.0f} -> "
                         f"{entry['current']:>10.0f} "
                         f"({entry['delta']:+.0f})")
    return "\n".join(lines)
