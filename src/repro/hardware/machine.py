"""The simulated machine: CPU + GPU + PCIe + storage on one virtual clock."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import DeviceError, InjectedFault
from repro.hardware.device import Device
from repro.hardware.interconnect import Interconnect
from repro.hardware.specs import (
    CpuSpec,
    GpuSpec,
    LinkSpec,
    PAPER_CPU,
    PAPER_GPU,
    PAPER_PCIE,
)
from repro.resilience import runtime as resilience
from repro.simtime import VirtualClock
from repro.telemetry import runtime as telemetry


@dataclass(frozen=True)
class StorageSpec:
    """Local storage the data loader reads datasets from."""

    name: str = "nvme-ssd"
    read_bandwidth: float = 2.0e9  # bytes/s sequential read
    seek_latency: float = 100e-6  # seconds per file open


class Machine:
    """One experiment testbed: devices, link, storage, shared clock.

    Every benchmark builds a fresh ``Machine`` so that clocks, memory
    ledgers, and counters never leak between experiments.
    """

    def __init__(
        self,
        cpu_spec: CpuSpec = PAPER_CPU,
        gpu_spec: Optional[GpuSpec] = PAPER_GPU,
        link_spec: LinkSpec = PAPER_PCIE,
        storage_spec: StorageSpec = StorageSpec(),
    ) -> None:
        self.clock = VirtualClock()
        self.cpu = Device(cpu_spec, self.clock)
        self.gpu = Device(gpu_spec, self.clock) if gpu_spec is not None else None
        self.pcie = Interconnect(link_spec, self.clock)
        self.storage = storage_spec

    def device(self, name: str) -> Device:
        """Resolve ``"cpu"`` / ``"gpu"`` to the device object."""
        if name == "cpu":
            return self.cpu
        if name == "gpu":
            if self.gpu is None:
                raise DeviceError("this machine has no GPU")
            return self.gpu
        raise DeviceError(f"unknown device {name!r} (expected 'cpu' or 'gpu')")

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None

    def read_storage(self, nbytes: float, tag: str = "storage-read") -> float:
        """Read ``nbytes`` from local storage into host memory.

        This is the ``storage.read`` fault site: an armed ``error`` wastes
        ``severity`` of the read before failing, a ``torn_write`` pays the
        full read before the payload is found corrupted, and a ``stall``
        completes but takes ``stall_seconds`` longer.  Failures retry
        under the site's recovery policy (virtual-clock backoff).
        """
        if nbytes < 0:
            raise ValueError("negative read size")
        seconds = self.storage.seek_latency + nbytes / self.storage.read_bandwidth

        def attempt() -> float:
            extra = 0.0
            fault = resilience.arm("storage.read")
            if fault is not None:
                injector = resilience.active()
                if fault.kind == "stall":
                    injector.record_injected("storage.read", "stall")
                    self.clock.occupy("storage", fault.stall_seconds,
                                      tag=f"{tag}!stall")
                    injector.record_recovered("storage.read", action="stall")
                    extra = fault.stall_seconds
                else:
                    # A torn write is only detected after the full read.
                    wasted_frac = 1.0 if fault.kind == "torn_write" \
                        else fault.severity
                    wasted = seconds * wasted_frac
                    if wasted > 0:
                        self.clock.occupy("storage", wasted,
                                          tag=f"{tag}!{fault.kind}")
                    injector.record_injected("storage.read", fault.kind)
                    raise InjectedFault("storage.read", fault.kind,
                                        injector.occurrence("storage.read"))
            self.clock.occupy("storage", seconds, tag=tag)
            registry = telemetry.metrics()
            if registry is not None:
                registry.counter("storage.bytes_read", tag=tag).inc(nbytes)
                registry.counter("storage.reads", tag=tag).inc()
            return seconds + extra

        return resilience.with_retries("storage.read", self.clock, attempt)

    def power_draw(self, device_key: str, start: float, end: float) -> float:
        """Average power (watts) of a device over [start, end)."""
        dev = self.device(device_key)
        span = end - start
        if span <= 0:
            return dev.spec.idle_power
        busy = self.clock.busy_time(dev.name, start, end)
        frac = min(1.0, busy / span)
        return dev.spec.idle_power + frac * (dev.spec.busy_power - dev.spec.idle_power)

    def energy(self, device_key: str, start: float, end: float) -> float:
        """Energy (joules) consumed by a device over [start, end)."""
        return self.power_draw(device_key, start, end) * max(0.0, end - start)

    def describe(self) -> Dict[str, object]:
        """Static hardware description for run manifests (``run.json``).

        The offline profile analyses (:mod:`repro.profiling.analysis`)
        join per-kernel flop/byte counters against these peaks to place
        every kernel on the roofline, so the payload must name devices
        exactly as the clock's busy lanes do (``spec.name``).
        """
        devices: Dict[str, object] = {}
        for dev in (self.cpu, self.gpu):
            if dev is None:
                continue
            devices[dev.name] = {
                "kind": dev.kind,
                "peak_flops": dev.spec.peak_flops,
                "mem_bandwidth": dev.spec.mem_bandwidth,
                "mem_capacity": dev.spec.mem_capacity,
                "kernel_launch_overhead": dev.spec.kernel_launch_overhead,
                "idle_power": dev.spec.idle_power,
                "busy_power": dev.spec.busy_power,
            }
        return {
            "devices": devices,
            "link": {
                "name": self.pcie.spec.name,
                "lane": self.pcie.BUSY_KEY,
                "bandwidth": self.pcie.spec.bandwidth,
                "latency": self.pcie.spec.latency,
                "uva_bandwidth": self.pcie.spec.uva_bandwidth,
            },
            "storage": {
                "name": self.storage.name,
                "lane": "storage",
                "read_bandwidth": self.storage.read_bandwidth,
                "seek_latency": self.storage.seek_latency,
            },
        }

    def counters_snapshot(self) -> Dict[str, float]:
        """Aggregate activity counters, mainly for reports and tests."""
        snap = {
            "time": self.clock.now,
            "cpu_kernels": self.cpu.counters.kernels,
            "cpu_flops": self.cpu.counters.flops,
            "pcie_bytes_h2d": self.pcie.counters.bytes_h2d,
            "pcie_bytes_d2h": self.pcie.counters.bytes_d2h,
            "pcie_bytes_uva": self.pcie.counters.bytes_uva,
        }
        if self.gpu is not None:
            snap["gpu_kernels"] = self.gpu.counters.kernels
            snap["gpu_flops"] = self.gpu.counters.flops
        return snap


def paper_testbed() -> Machine:
    """A fresh machine matching the paper's hardware configuration."""
    return Machine(PAPER_CPU, PAPER_GPU, PAPER_PCIE)


def cpu_only_testbed() -> Machine:
    """A machine without a GPU (negative-path tests)."""
    return Machine(PAPER_CPU, None, PAPER_PCIE)


def laptop_testbed() -> Machine:
    """A consumer laptop (8-core mobile CPU, 6 GB mobile GPU).

    Used by the hardware-portability ablation: weaker compute, far less
    device memory, much lower power draw than the paper's server.
    """
    from repro.hardware.specs import LAPTOP_CPU, LAPTOP_GPU, LAPTOP_PCIE

    return Machine(LAPTOP_CPU, LAPTOP_GPU, LAPTOP_PCIE)
