"""Experiment drivers behind every table and figure.

Each function builds a *fresh* simulated machine (clocks, ledgers, and
counters never leak between experiments), runs the workload, and returns
plain numbers: virtual seconds, joules, watts, and phase breakdowns.
"""

from __future__ import annotations

import gc
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import BenchmarkError, OutOfMemoryError
from repro.frameworks import get_framework
from repro.frameworks.base import FrameworkGraph
from repro.hardware.machine import Machine, paper_testbed
from repro.models.base import two_layer_net
from repro.models.clustergcn import build_clustergcn, clustergcn_sampler
from repro.models.fullbatch import FullBatchTrainer, build_fullbatch_sage
from repro.models.graphsage import build_graphsage, graphsage_sampler
from repro.models.graphsaint import build_graphsaint, graphsaint_sampler
from repro.models.trainer import MiniBatchTrainer, TrainConfig
from repro.kernels.config import use_reference_kernels
from repro.kernels.transfer import adj_to_device, to_device
from repro.power.monitor import EnergyMonitor, EnergyReport
from repro.profiling.profiler import PhaseProfiler
from repro.resilience.plan import FaultPlan
from repro.resilience.runtime import session as resilience_session
from repro.telemetry.runtime import TelemetrySession
from repro.telemetry.runtime import session as telemetry_session
from repro.tensor.tensor import no_grad

MODEL_BUILDERS = {
    "graphsage": (build_graphsage, graphsage_sampler),
    "clustergcn": (build_clustergcn, clustergcn_sampler),
    "graphsaint": (build_graphsaint, graphsaint_sampler),
}


@dataclass
class ExperimentResult:
    """Everything the figures need from one experiment run."""

    label: str
    phases: Dict[str, float] = field(default_factory=dict)
    energy: Optional[EnergyReport] = None
    losses: List[float] = field(default_factory=list)
    batches_per_epoch: int = 0
    oom: bool = False
    error: str = ""
    # Kernel-level attribution (busy seconds by kernel family) — the
    # paper-title "magnifying glass" view of where time went.
    kernel_families: Dict[str, float] = field(default_factory=dict)
    # Telemetry artifact paths (run.json, events.jsonl, ...) when the
    # experiment ran with ``telemetry_dir`` set.
    artifacts: Dict[str, str] = field(default_factory=dict)
    # Fault-injection totals (injected/recovered/retries/degraded +
    # per-site breakdown) when the run executed under a fault plan.
    resilience: Dict[str, object] = field(default_factory=dict)
    # False when halt_after_epochs cut the run short (simulated crash).
    completed: bool = True

    @property
    def total_time(self) -> float:
        return sum(self.phases.values())

    @property
    def total_energy(self) -> float:
        return self.energy.total_energy if self.energy else 0.0

    @property
    def avg_power(self) -> float:
        return self.energy.avg_power if self.energy else 0.0

    def phase_fraction(self, name: str) -> float:
        total = self.total_time
        return self.phases.get(name, 0.0) / total if total > 0 else 0.0


# ----------------------------------------------------------------------
# end-to-end GNN training (Figures 6-21)
# ----------------------------------------------------------------------
def run_training_experiment(
    framework: str,
    dataset: str,
    model: str,
    placement: str = "cpu",
    preload: bool = False,
    prefetch: bool = False,
    epochs: int = 10,
    representative_batches: int = 3,
    seed: int = 0,
    monitor_interval: float = 0.1,
    dataset_scale: float = 1.0,
    feature_cache_fraction: float = 0.0,
    cache_policy: str = "degree",
    num_workers: int = 0,
    pipeline: str = "off",
    telemetry_dir: Optional[str] = None,
    fault_plan: Optional[Union[str, Dict, FaultPlan]] = None,
    checkpoint_every: int = 0,
    checkpoint_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    halt_after_epochs: Optional[int] = None,
    fastpath: bool = True,
) -> ExperimentResult:
    """Train one GNN end-to-end and return breakdown + power/energy.

    ``placement``: "cpu" (sample + train on CPU), "cpugpu" (sample CPU,
    train GPU), "gpu" (DGL GPU sampler + pre-load), "uvagpu" (DGL UVA
    sampler).  ``preload`` adds the case-study-1 feature pre-loading to a
    "cpugpu" run; ``feature_cache_fraction`` > 0 instead caches that
    fraction of node features on the GPU (partial pre-loading, ref [12]).

    ``telemetry_dir`` activates a telemetry session for the run and writes
    the artifact bundle (``run.json``, ``events.jsonl``, ``metrics.prom``,
    ``trace.json``) there; the paths land in ``ExperimentResult.artifacts``.

    ``fault_plan`` (a :class:`FaultPlan`, a plan dict, or a path to a plan
    JSON file) activates deterministic fault injection for the run;
    ``checkpoint_every``/``checkpoint_path``/``resume_from``/
    ``halt_after_epochs`` drive checkpoint-based crash–resume (see
    ``docs/resilience.md``).

    ``pipeline`` ("off" or "depth-N") streams mini-batches through the
    composable datapipe (``docs/datapipe.md``): sampler workers, feature
    fetch, H2D copy, and training each get their own resource lane and
    up to N batches are in flight.  "off" charges the serial schedule.

    ``fastpath=False`` runs the whole experiment on the naive reference
    kernels (:func:`repro.kernels.config.use_reference_kernels`); charged
    virtual cost is identical either way, only wall clock moves — this is
    the axis the perf-trajectory sweep (``repro bench sweep``) records.
    """
    if model not in MODEL_BUILDERS:
        raise BenchmarkError(f"unknown model {model!r}")
    build_model, build_sampler = MODEL_BUILDERS[model]
    plan = _coerce_fault_plan(fault_plan)
    fw = get_framework(framework)
    machine = paper_testbed()
    session_cm = (telemetry_session(machine.clock) if telemetry_dir is not None
                  else nullcontext(None))
    fault_cm = (resilience_session(plan) if plan is not None
                else nullcontext(None))
    kernel_cm = nullcontext() if fastpath else use_reference_kernels()
    with session_cm as tsession, fault_cm as injector, kernel_cm:
        monitor = EnergyMonitor(machine, interval=monitor_interval)
        profiler = PhaseProfiler(machine.clock)
        label = _label(framework, placement, preload, prefetch, pipeline)
        monitor.start()
        try:
            with profiler.phase("data_loading"):
                fgraph = fw.load(dataset, machine, scale=dataset_scale)
            config = TrainConfig(
                epochs=epochs,
                placement=placement,
                preload=preload,
                prefetch=prefetch,
                num_workers=num_workers,
                pipeline=pipeline,
                representative_batches=representative_batches,
                seed=seed,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                resume_from=resume_from,
                halt_after_epochs=halt_after_epochs,
            )
            if model == "graphsage":
                mode = {"gpu": "gpu", "uvagpu": "uva"}.get(placement, "cpu")
                if placement == "gpu":
                    # GPU-based sampling needs the graph resident on the GPU
                    # before the sampler is constructed.
                    with profiler.phase("data_movement"):
                        fgraph.preload_to_gpu()
                sampler = build_sampler(fw, fgraph, mode=mode, seed=seed)
            else:
                if placement in ("gpu", "uvagpu"):
                    raise BenchmarkError(
                        f"{model} has no GPU/UVA sampler (paper: GraphSAGE-only)"
                    )
                sampler = build_sampler(fw, fgraph, seed=seed)
            net = build_model(fw, fgraph, seed=seed)
            feature_cache = None
            if feature_cache_fraction > 0:
                if placement != "cpugpu" or preload:
                    raise BenchmarkError(
                        "feature caching applies to the plain 'cpugpu' placement"
                    )
                from repro.frameworks.feature_cache import GpuFeatureCache

                with profiler.phase("data_movement"):
                    feature_cache = GpuFeatureCache(
                        fgraph, fraction=feature_cache_fraction,
                        policy=cache_policy, seed=seed,
                    )
                label = f"{label}+cache{int(100 * feature_cache_fraction)}"
            trainer = MiniBatchTrainer(fw, fgraph, sampler, net, config,
                                       profiler=profiler, label=label,
                                       feature_cache=feature_cache)
            run = trainer.run()
            report = monitor.stop()
            from repro.profiling.kernel_report import group_by_family

            result = ExperimentResult(
                label=label,
                phases=run.phases,
                energy=report,
                losses=run.losses,
                batches_per_epoch=run.batches_per_epoch,
                kernel_families=group_by_family(machine),
                completed=run.completed,
            )
        except OutOfMemoryError as exc:
            report = monitor.stop()
            result = ExperimentResult(label=label, phases=profiler.snapshot(),
                                      energy=report, oom=True, error=str(exc))
        finally:
            gc.collect()
        if injector is not None:
            result.resilience = injector.summary()
        if tsession is not None:
            result.artifacts = _write_telemetry(
                telemetry_dir, tsession, machine, result,
                command="train", dataset=dataset, seed=seed,
                config={
                    "framework": framework,
                    "model": model,
                    "placement": placement,
                    "preload": preload,
                    "prefetch": prefetch,
                    "epochs": epochs,
                    "representative_batches": representative_batches,
                    "monitor_interval": monitor_interval,
                    "dataset_scale": dataset_scale,
                    "feature_cache_fraction": feature_cache_fraction,
                    "cache_policy": cache_policy,
                    "num_workers": num_workers,
                    "pipeline": pipeline,
                    "fastpath": fastpath,
                    "fault_plan": plan.describe() if plan is not None else "",
                    "checkpoint_every": checkpoint_every,
                    "resumed": bool(resume_from),
                },
            )
        return result


def _coerce_fault_plan(
    fault_plan: Optional[Union[str, Dict, FaultPlan]]
) -> Optional[FaultPlan]:
    if fault_plan is None or isinstance(fault_plan, FaultPlan):
        return fault_plan
    if isinstance(fault_plan, dict):
        return FaultPlan.from_dict(fault_plan)
    return FaultPlan.from_file(fault_plan)


def _write_telemetry(out_dir: str, session: TelemetrySession, machine: Machine,
                     result: ExperimentResult, *, command: str, dataset: str,
                     seed: int, config: Dict[str, object]) -> Dict[str, str]:
    """Build the run manifest and write the four-artifact bundle."""
    from repro.telemetry.exporters import write_run_artifacts
    from repro.telemetry.manifest import build_run_manifest

    extra: Optional[Dict[str, Union[bool, str]]] = None
    if result.oom:
        extra = {"oom": True, "error": result.error}
    manifest = build_run_manifest(
        command=command,
        label=result.label,
        dataset=dataset,
        seed=seed,
        config=config,
        phases=result.phases,
        kernel_families=result.kernel_families,
        session=session,
        energy=result.energy,
        hardware=machine.describe(),
        extra=extra,
    )
    return write_run_artifacts(out_dir, session, machine.clock, manifest)


def _label(framework: str, placement: str, preload: bool, prefetch: bool,
           pipeline: str = "off") -> str:
    nick = {"dglite": "DGL", "pyglite": "PyG"}.get(framework, framework)
    place = {
        "cpu": "CPU",
        "cpugpu": "CPUGPU",
        "gpu": "GPU",
        "uvagpu": "UVAGPU",
    }[placement]
    suffix = "+preload" if preload else ""
    suffix += "+prefetch" if prefetch else ""
    if pipeline not in ("", "off"):
        suffix += f"+pipe{pipeline.replace('depth-', '')}"
    return f"{nick}-{place}{suffix}"


# ----------------------------------------------------------------------
# full-batch training (Figures 22-24)
# ----------------------------------------------------------------------
def run_fullbatch_experiment(
    framework: str,
    dataset: str,
    device: str = "cpu",
    epochs: int = 3,
    seed: int = 0,
    monitor_interval: float = 0.1,
    dataset_scale: float = 1.0,
) -> ExperimentResult:
    """Full-batch GraphSAGE; reports per-epoch time and power/energy."""
    fw = get_framework(framework)
    machine = paper_testbed()
    profiler = PhaseProfiler(machine.clock)
    label = f"{_label(framework, 'cpu' if device == 'cpu' else 'cpugpu', False, False).split('-')[0]}-{device.upper()}"
    monitor = EnergyMonitor(machine, interval=monitor_interval)
    monitor.start()
    try:
        with profiler.phase("data_loading"):
            fgraph = fw.load(dataset, machine, scale=dataset_scale)
        net = build_fullbatch_sage(fw, fgraph, seed=seed)
        trainer = FullBatchTrainer(fw, fgraph, net, device=device,
                                   profiler=profiler)
        trainer.setup()
        losses = trainer.train_epochs(epochs)
        report = monitor.stop()
        phases = profiler.snapshot()
        phases["training"] = phases.get("training", 0.0) / max(1, epochs)  # per-epoch
        return ExperimentResult(label=label, phases=phases, energy=report,
                                losses=losses)
    except OutOfMemoryError as exc:
        report = monitor.stop()
        return ExperimentResult(label=label, phases=profiler.snapshot(),
                                energy=report, oom=True, error=str(exc))
    finally:
        gc.collect()


# ----------------------------------------------------------------------
# functional tests (Figures 3-5)
# ----------------------------------------------------------------------
def measure_data_loader(framework: str, dataset: str,
                        dataset_scale: float = 1.0) -> float:
    """Figure 3: seconds to load a dataset into the framework object."""
    fw = get_framework(framework)
    machine = paper_testbed()
    start = machine.clock.now
    fw.load(dataset, machine, scale=dataset_scale)
    return machine.clock.now - start


def measure_sampler_epoch(framework: str, dataset: str, sampler: str,
                          representative_batches: int = 5,
                          seed: int = 0, dataset_scale: float = 1.0) -> Dict[str, float]:
    """Figure 4: seconds to run one sampling epoch (no training).

    Returns ``{"epoch": s, "one_time": s, "batches": n}`` where
    ``one_time`` is CSC conversion + (for ClusterGCN) partitioning.
    """
    fw = get_framework(framework)
    machine = paper_testbed()
    fgraph = fw.load(dataset, machine, scale=dataset_scale)

    one_time_start = machine.clock.now
    if sampler == "neighbor":
        wrapped = graphsage_sampler(fw, fgraph, seed=seed)
    elif sampler == "cluster":
        wrapped = clustergcn_sampler(fw, fgraph, seed=seed)
        wrapped.ensure_partitioned()
    elif sampler == "saint_rw":
        wrapped = graphsaint_sampler(fw, fgraph, seed=seed)
    else:
        raise BenchmarkError(f"unknown sampler {sampler!r}")
    one_time = machine.clock.now - one_time_start

    num_batches = wrapped.num_batches()
    reps = min(representative_batches, num_batches)
    epoch_start = machine.clock.now
    iterator = iter(wrapped.epoch())
    ran = 0
    for _ in range(reps):
        if next(iterator, None) is None:
            break
        ran += 1
    elapsed = machine.clock.now - epoch_start
    if ran:
        elapsed *= num_batches / ran
    return {"epoch": elapsed, "one_time": one_time, "batches": float(num_batches)}


def measure_conv_forward(framework: str, dataset: str, kind: str,
                         device: str = "cpu", out_features: int = 256,
                         seed: int = 0, dataset_scale: float = 1.0,
                         monitor_interval: float = 0.1,
                         fastpath: bool = True) -> ExperimentResult:
    """Figure 5: one forward pass of a conv layer over the full graph.

    The run is energy-monitored so the perf-trajectory sweep can record
    joules per op cell; ``fastpath=False`` runs the reference kernel
    schedules (wall clock only — charged cost is schedule-invariant).
    """
    fw = get_framework(framework)
    machine = paper_testbed()
    label = f"{framework}/{dataset}/{kind}/{device}"
    monitor = EnergyMonitor(machine, interval=monitor_interval)
    monitor.start()
    kernel_cm = nullcontext() if fastpath else use_reference_kernels()
    try:
        with kernel_cm:
            fgraph = fw.load(dataset, machine, scale=dataset_scale)
            with fw.activate(), no_grad():
                target = machine.device(device)
                adj = adj_to_device(fgraph.adj, target, machine.pcie)
                x = to_device(fgraph.features, target, machine.pcie)
                in_features = fgraph.stats.num_features
                if kind == "gcn2":
                    conv = fw.conv(kind, in_features, in_features, seed=seed)
                else:
                    conv = fw.conv(kind, in_features, out_features, seed=seed)
                conv.to(target)
                start = machine.clock.now
                conv(adj, x)
                seconds = machine.clock.now - start
        report = monitor.stop()
        from repro.profiling.kernel_report import group_by_family

        return ExperimentResult(label=label, phases={"forward": seconds},
                                energy=report,
                                kernel_families=group_by_family(machine))
    except OutOfMemoryError as exc:
        monitor.stop()
        return ExperimentResult(label=label, oom=True, error=str(exc))
    finally:
        gc.collect()
