"""Tests for report rendering and repeated-run statistics."""

import pytest

from repro.bench.repeats import RepeatedStats, run_repeated
from repro.hardware.device import KernelCost
from repro.profiling.kernel_report import format_kernel_table, kernel_breakdown


class TestRepeatedStats:
    def test_moments(self):
        # Sample (N-1) std: at the 3-5 repeats benches run, the population
        # formula would understate spread and over-tighten gate envelopes.
        stats = RepeatedStats((1.0, 2.0, 3.0))
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.cov == pytest.approx(0.5)

    def test_constant_series_has_zero_cov(self):
        stats = RepeatedStats((5.0, 5.0, 5.0))
        assert stats.std == 0.0
        assert stats.cov == 0.0

    def test_run_repeated_requires_seeds(self):
        with pytest.raises(ValueError):
            run_repeated([], framework="dglite", dataset="ppi",
                         model="graphsage")

    def test_run_repeated_aggregates(self):
        stats = run_repeated(
            (0, 1), framework="dglite", dataset="ppi", model="graphsage",
            placement="cpu", epochs=1, representative_batches=1,
            dataset_scale=0.3,
        )
        assert set(stats) == {"total_time", "sampling", "energy"}
        assert len(stats["total_time"].values) == 2
        assert stats["total_time"].mean > 0

    def test_same_seed_zero_variance(self):
        stats = run_repeated(
            (3, 3), framework="dglite", dataset="ppi", model="graphsage",
            placement="cpu", epochs=1, representative_batches=1,
            dataset_scale=0.3,
        )
        assert stats["total_time"].cov == pytest.approx(0.0, abs=1e-9)


class TestKernelTable:
    def test_entries_and_fractions(self, machine):
        machine.cpu.execute(KernelCost("spmm.fwd", fixed_time=3.0))
        machine.cpu.execute(KernelCost("matmul", fixed_time=1.0))
        entries = kernel_breakdown(machine)
        assert entries[0].kernel == "spmm.fwd"
        assert entries[0].fraction == pytest.approx(0.75, rel=1e-3)
        assert sum(e.fraction for e in entries) == pytest.approx(1.0, rel=1e-3)

    def test_top_limits_per_device(self, machine):
        for i in range(5):
            machine.cpu.execute(KernelCost(f"k{i}", fixed_time=1.0))
        assert len(kernel_breakdown(machine, top=2)) == 2

    def test_idle_machine_has_no_entries(self, machine):
        machine.clock.advance(1.0)
        assert kernel_breakdown(machine) == []

    def test_format_renders_rows(self, machine):
        machine.cpu.execute(KernelCost("spmm.fwd", fixed_time=1.0))
        text = format_kernel_table(kernel_breakdown(machine), title="Lens")
        assert "Lens" in text
        assert "spmm.fwd" in text
        assert "%" in text
