"""The serving engine: micro-batched layerwise inference on lane schedules.

One :func:`run_serving_experiment` call simulates a serving window on a
fresh paper testbed: a seeded open-loop trace is micro-batched under the
latency budget, and every batch runs four stages on dedicated
:class:`~repro.simtime.LaneScheduler` lanes —

* ``serve.fetch`` — multi-hop block construction plus the feature-store
  read for cache-miss rows (the ``storage.read`` fault seam),
* ``serve.h2d`` — miss rows over PCIe (the ``transfer.h2d`` fault seam)
  and the on-GPU gather of cache-hit rows,
* ``serve.gpu`` / ``serve.cpu`` — sampling-free layerwise inference over
  the batch's exact L-hop blocks (reusing the chunk-block machinery from
  :mod:`repro.models.inference`),
* ``serve.d2h`` — logits back to the host.

With ``pipeline=depth-N`` up to N batches are in flight, so batch
``i+1``'s feature fetch overlaps batch ``i``'s compute; ``off`` (or
``depth-1``) serializes batches.  Work is executed for real inside
``clock.deferred()`` so numerics and RNG order are schedule-independent;
only the measured costs are placed on lanes.

Degraded modes: when a fault site exhausts its recovery budget the
engine either **sheds** the batch (its requests never complete — offered
load above the failure is simply dropped, protecting the budget for
everyone else) or serves **stale**-cache answers (cache-hit rows only,
miss rows zero-filled) so the batch still completes inside its budget.
Stale service requires a feature cache; without one the engine sheds.
"""

from __future__ import annotations

import gc
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.datapipe.config import validate_pipeline_placement
from repro.errors import BenchmarkError, ResilienceError
from repro.frameworks import get_framework
from repro.hardware.device import KernelCost
from repro.kernels.config import use_reference_kernels
from repro.hardware.machine import paper_testbed
from repro.models.inference import batch_blocks
from repro.power.monitor import EnergyMonitor, EnergyReport
from repro.resilience.plan import FaultPlan
from repro.resilience.runtime import session as resilience_session
from repro.serving.batcher import form_batches
from repro.serving.latency import LatencyAccountant
from repro.serving.workload import TRACE_KINDS, generate_trace
from repro.simtime import LaneScheduler
from repro.telemetry import runtime as telemetry
from repro.telemetry.runtime import maybe_span
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad

SERVE_PLACEMENTS = ("cpu", "cpugpu")
DEGRADED_MODES = ("shed", "stale")

#: Latency histogram buckets: 4^-10 s (~1 µs) .. 4^5 s, wide enough for
#: micro-batched inference tails (the default registry buckets start at
#: one full second and would flatten every serving latency into bucket 0).
LATENCY_BUCKETS = tuple(4.0 ** k for k in range(-10, 6))
HIT_RATE_BUCKETS = tuple(round(0.1 * k, 1) for k in range(1, 11))


@dataclass(frozen=True)
class ServeConfig:
    """One serving experiment: workload, batching, placement, degradation."""

    framework: str
    dataset: str
    model: str = "graphsage"
    rate: float = 100.0  # offered load, requests per virtual second
    num_requests: int = 64
    trace: str = "poisson"
    nodes_per_request: int = 1
    budget_s: float = 0.050  # micro-batcher latency budget (max batch wait)
    max_batch: int = 32
    placement: str = "cpugpu"
    pipeline: str = "depth-4"  # batches in flight on the serving lanes
    cache_fraction: float = 0.25
    cache_policy: str = "degree"
    degraded_mode: str = "shed"
    seed: int = 0
    dataset_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.placement not in SERVE_PLACEMENTS:
            raise BenchmarkError(
                f"serve placement must be one of {SERVE_PLACEMENTS}, "
                f"got {self.placement!r} (on-device sampling placements "
                "do not apply: serving is sampling-free)")
        if self.degraded_mode not in DEGRADED_MODES:
            raise BenchmarkError(
                f"unknown degraded mode {self.degraded_mode!r}; "
                f"expected one of {DEGRADED_MODES}")
        if self.trace not in TRACE_KINDS:
            raise BenchmarkError(
                f"unknown trace kind {self.trace!r}; expected {TRACE_KINDS}")
        if self.budget_s <= 0:
            raise BenchmarkError("latency budget must be > 0 seconds")
        if self.max_batch < 1:
            raise BenchmarkError("max batch size must be >= 1")
        if not (0.0 <= self.cache_fraction <= 1.0):
            raise BenchmarkError("cache fraction must be in [0, 1]")
        if self.rate <= 0 or self.num_requests < 1:
            raise BenchmarkError("rate must be > 0 and num_requests >= 1")
        # The single pipeline × placement validation path shared with
        # `repro train` (see repro.datapipe.config).
        validate_pipeline_placement(self.pipeline, self.placement)

    @property
    def depth(self) -> int:
        """Batches in flight: ``off`` and ``depth-1`` both serialize."""
        from repro.datapipe.config import parse_pipeline

        return max(1, parse_pipeline(self.pipeline).depth)

    @property
    def label(self) -> str:
        nick = {"dglite": "DGL", "pyglite": "PyG"}.get(self.framework,
                                                       self.framework)
        return (f"{nick}-serve-{self.placement}/{self.trace}"
                f"@{self.rate:g}rps")


@dataclass
class ServeResult:
    """Outcome of one serving window (one framework at one offered load)."""

    config: ServeConfig
    label: str
    latencies: List[float]  # completed requests only, completion order
    completed: int
    shed: int
    stale: int
    batch_sizes: List[int]
    batch_closes: Dict[str, int]  # "size"/"deadline" close counts
    max_batch_wait: float
    budget_violations: int
    cache_hits: int
    cache_misses: int
    makespan: float
    phases: Dict[str, float] = field(default_factory=dict)
    kernel_families: Dict[str, float] = field(default_factory=dict)
    energy: Optional[EnergyReport] = None
    resilience: Dict[str, object] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        return self.completed + self.shed

    @property
    def throughput(self) -> float:
        return self.completed / self.makespan if self.makespan > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_energy(self) -> float:
        return self.energy.total_energy if self.energy else 0.0

    def latency_summary(self) -> Dict[str, float]:
        accountant = LatencyAccountant()
        accountant.latencies = list(self.latencies)
        return accountant.summary()


def run_serving_experiment(
    config: ServeConfig,
    fault_plan: Optional[Union[str, Dict, FaultPlan]] = None,
    fastpath: bool = True,
    monitor_interval: float = 0.1,
) -> ServeResult:
    """Serve one seeded trace and return the latency/throughput account.

    Builds a fresh machine (clocks and ledgers never leak between
    serving windows), loads the dataset, places the model, warms the
    feature cache, then replays the trace through the micro-batcher and
    lane scheduler.  ``fault_plan`` activates deterministic fault
    injection on the ``storage.read``/``transfer.h2d`` seams;
    ``fastpath=False`` runs the reference kernel schedules (charged
    virtual cost is identical — the sweep's cost-invariance axis).
    """
    from repro.bench.harness import MODEL_BUILDERS, _coerce_fault_plan

    if config.model not in MODEL_BUILDERS:
        raise BenchmarkError(f"unknown model {config.model!r}")
    if config.model != "graphsage":
        raise BenchmarkError(
            "serving needs a layered block model (graphsage)")
    build_model = MODEL_BUILDERS[config.model][0]
    plan = _coerce_fault_plan(fault_plan)
    fw = get_framework(config.framework)
    machine = paper_testbed()
    fault_cm = (resilience_session(plan) if plan is not None
                else nullcontext(None))
    kernel_cm = nullcontext() if fastpath else use_reference_kernels()
    with fault_cm as injector, kernel_cm:
        monitor = EnergyMonitor(machine, interval=monitor_interval)
        monitor.start()
        try:
            fgraph = fw.load(config.dataset, machine,
                             scale=config.dataset_scale)
            result = _serve_trace(config, fw, fgraph, build_model, machine)
            result.energy = monitor.stop()
        except BaseException:
            monitor.stop()
            raise
        finally:
            gc.collect()
        if injector is not None:
            result.resilience = injector.summary()
        from repro.profiling.kernel_report import group_by_family

        result.kernel_families = group_by_family(machine)
        return result


def _serve_trace(config: ServeConfig, fw, fgraph, build_model,
                 machine) -> ServeResult:
    """The serving loop proper (machine/session lifecycle handled above)."""
    graph = fgraph.graph
    clock = machine.clock
    on_gpu = config.placement == "cpugpu"
    target = machine.device("gpu" if on_gpu else "cpu")

    net = build_model(fw, fgraph, seed=config.seed)
    net.eval()
    if on_gpu:
        with fw.activate():
            net.to(machine.gpu, link=machine.pcie)
    layers = list(net._layers)

    cache = None
    if on_gpu and config.cache_fraction > 0:
        from repro.frameworks.feature_cache import GpuFeatureCache

        cache = GpuFeatureCache(fgraph, fraction=config.cache_fraction,
                                policy=config.cache_policy, seed=config.seed)

    # The trace is generated in serving-relative time and shifted to the
    # clock's current now: warmup (load, model copy, cache fill) happened
    # before the serving window opens.
    t0 = clock.now
    trace = [r.shifted(t0) for r in generate_trace(
        config.trace, config.num_requests, config.rate, graph.num_nodes,
        seed=config.seed, nodes_per_request=config.nodes_per_request)]
    batches = form_batches(trace, config.max_batch, config.budget_s)

    sched = LaneScheduler(clock, origin=t0)
    depth = config.depth
    accountant = LatencyAccountant()
    registry = telemetry.metrics()
    x_host = fgraph.features.data
    feat_row_bytes = 4.0 * graph.node_scale * graph.num_features
    compute_lane = "serve.gpu" if on_gpu else "serve.cpu"
    stage_seconds = {"fetch": 0.0, "h2d": 0.0, "compute": 0.0, "d2h": 0.0}
    terminal = []
    shed = stale = 0
    batch_sizes: List[int] = []
    batch_closes: Dict[str, int] = {}
    max_batch_wait = 0.0
    budget_violations = 0

    with no_grad():
        for batch in batches:
            batch_sizes.append(batch.size)
            batch_closes[batch.closed_by] = \
                batch_closes.get(batch.closed_by, 0) + 1
            wait = batch.max_wait()
            max_batch_wait = max(max_batch_wait, wait)
            if wait > config.budget_s + 1e-12:
                budget_violations += 1
            degraded = None

            # -- fetch: block stack + feature-store read for miss rows.
            with clock.deferred() as rec_fetch:
                blocks = batch_blocks(graph, batch.nodes, len(layers), target)
                rows0 = blocks[0].src_nodes
                if cache is not None:
                    mask = cache.record(rows0)
                    hits = int(mask.sum())
                    if registry is not None:
                        hist = registry.histogram(
                            "serve.request_hit_rate",
                            buckets=HIT_RATE_BUCKETS,
                            framework=config.framework)
                        for request in batch.requests:
                            req_mask = cache.hit_mask(request.nodes)
                            hist.observe(float(req_mask.mean()))
                else:
                    mask, hits = None, 0
                misses = int(rows0.size - hits)
                miss_bytes = feat_row_bytes * misses
                hit_bytes = feat_row_bytes * hits
                if miss_bytes > 0:
                    try:
                        machine.read_storage(miss_bytes,
                                             tag="serve-feature-read")
                    except ResilienceError:
                        degraded = (config.degraded_mode if cache is not None
                                    else "shed")

            # -- h2d: miss rows over PCIe, hit rows gathered on the GPU.
            with clock.deferred() as rec_h2d:
                if on_gpu and degraded is None and miss_bytes > 0:
                    try:
                        machine.pcie.h2d(miss_bytes, tag="serve-features")
                    except ResilienceError:
                        degraded = (config.degraded_mode if cache is not None
                                    else "shed")
                if on_gpu and hit_bytes > 0 and degraded != "shed":
                    machine.gpu.execute(KernelCost(
                        name="feature-cache.gather",
                        bytes_moved=2.0 * hit_bytes,
                        compute_eff=0.6, memory_eff=0.6))

            gate = (terminal[len(terminal) - depth].end
                    if len(terminal) >= depth else t0)
            fetch_job = sched.submit(
                "serve.fetch", rec_fetch,
                not_before=max(batch.formed_at, gate),
                tag=f"serve:fetch:{batch.batch_id}")
            h2d_job = sched.submit("serve.h2d", rec_h2d, deps=(fetch_job,),
                                   tag=f"serve:h2d:{batch.batch_id}")
            stage_seconds["fetch"] += rec_fetch.total
            stage_seconds["h2d"] += rec_h2d.total

            if degraded == "shed":
                terminal.append(h2d_job)
                shed += batch.size
                _record_batch(registry, config, batch, "shed", h2d_job)
                continue

            # -- compute: exact layerwise inference over the block stack.
            with clock.deferred() as rec_compute:
                with fw.activate():
                    x = x_host[rows0]
                    if degraded == "stale":
                        # Stale-cache answer: only cached rows carry real
                        # features; the failed miss rows are zero-filled.
                        x = x.copy()
                        x[~mask] = 0.0
                    out = Tensor(x, device=target,
                                 work_scale=graph.node_scale)
                    for i, layer in enumerate(layers):
                        out = layer(blocks[i], out)
                        if i < len(layers) - 1:
                            out = F.relu(out)

            # -- d2h: logits back to the host for the response path.
            with clock.deferred() as rec_d2h:
                if on_gpu:
                    machine.pcie.d2h(out.logical_nbytes, tag="serve-logits")

            compute_job = sched.submit(compute_lane, rec_compute,
                                       deps=(h2d_job,),
                                       tag=f"serve:compute:{batch.batch_id}")
            d2h_job = sched.submit("serve.d2h", rec_d2h, deps=(compute_job,),
                                   tag=f"serve:d2h:{batch.batch_id}")
            stage_seconds["compute"] += rec_compute.total
            stage_seconds["d2h"] += rec_d2h.total
            terminal.append(d2h_job)
            if degraded == "stale":
                stale += batch.size
            for request in batch.requests:
                accountant.complete(request, d2h_job.end)
            _record_batch(registry, config, batch,
                          "stale" if degraded == "stale" else "completed",
                          d2h_job, accountant.latencies[-batch.size:])

    sched.drain()
    makespan = sched.finish - t0
    phases = {
        "sampling": stage_seconds["fetch"],
        "data_movement": stage_seconds["h2d"] + stage_seconds["d2h"],
        "training": stage_seconds["compute"],
    }
    if cache is not None and registry is not None:
        registry.gauge("serve.cache_hit_rate",
                       framework=config.framework).set(cache.hit_rate())
    return ServeResult(
        config=config,
        label=config.label,
        latencies=list(accountant.latencies),
        completed=accountant.count,
        shed=shed,
        stale=stale,
        batch_sizes=batch_sizes,
        batch_closes=batch_closes,
        max_batch_wait=max_batch_wait,
        budget_violations=budget_violations,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        makespan=makespan,
        phases=phases,
    )


def _record_batch(registry, config: ServeConfig, batch, outcome: str,
                  last_job, latencies: Optional[List[float]] = None) -> None:
    """Span + metrics for one dispatched batch (no-ops without a session)."""
    with maybe_span("serve.batch", category="serving",
                    batch_id=batch.batch_id, size=batch.size,
                    closed_by=batch.closed_by, outcome=outcome,
                    formed_at=batch.formed_at,
                    scheduled_end=last_job.end):
        pass
    if registry is None:
        return
    labels = {"framework": config.framework}
    registry.counter("serve.requests", outcome=outcome, **labels) \
        .inc(batch.size)
    registry.counter("serve.batches", closed_by=batch.closed_by, **labels) \
        .inc()
    registry.histogram("serve.batch_size", **labels).observe(batch.size)
    if latencies:
        hist = registry.histogram("serve.latency_seconds",
                                  buckets=LATENCY_BUCKETS, **labels)
        for latency in latencies:
            hist.observe(latency)


def run_serving_curve(
    base: ServeConfig,
    rates: List[float],
    frameworks: List[str],
    fault_plan: Optional[Union[str, Dict, FaultPlan]] = None,
    progress=None,
) -> List[ServeResult]:
    """The throughput-vs-offered-load sweep: one run per framework × rate."""
    from dataclasses import replace

    results = []
    for framework in frameworks:
        for rate in rates:
            config = replace(base, framework=framework, rate=float(rate))
            if progress is not None:
                progress(f"  {config.label}")
            results.append(run_serving_experiment(config,
                                                  fault_plan=fault_plan))
    return results
