"""On-disk dataset storage (.npz + JSON stats sidecar).

The paper's "data loading" phase reads the raw dataset from storage and
builds a framework graph object.  To make that a real, measurable step we
serialize graphs to disk and read them back; the *charged* read cost uses
the logical byte sizes so loading Reddit costs like loading 115 M edges.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import DatasetError
from repro.graph.formats import AdjacencyCSR
from repro.graph.graph import Graph, GraphStats, Split

_FORMAT_VERSION = 1


def save_graph(graph: Graph, directory: Union[str, Path]) -> Path:
    """Serialize ``graph`` into ``directory`` (arrays + stats sidecar)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    np.savez(
        directory / "arrays.npz",
        indptr=graph.adj.indptr,
        indices=graph.adj.indices,
        features=graph.features,
        labels=graph.labels,
        train_mask=graph.train_mask,
        val_mask=graph.val_mask,
        test_mask=graph.test_mask,
    )
    stats = asdict(graph.stats)
    stats["_format_version"] = _FORMAT_VERSION
    (directory / "stats.json").write_text(json.dumps(stats, indent=2))
    return directory


def load_graph(directory: Union[str, Path]) -> Graph:
    """Load a graph previously written by :func:`save_graph`."""
    directory = Path(directory)
    stats_path = directory / "stats.json"
    arrays_path = directory / "arrays.npz"
    if not stats_path.exists() or not arrays_path.exists():
        raise DatasetError(f"no stored dataset at {directory}")
    raw = json.loads(stats_path.read_text())
    version = raw.pop("_format_version", None)
    if version != _FORMAT_VERSION:
        raise DatasetError(f"unsupported dataset format version {version}")
    split = Split(**raw.pop("split"))
    stats = GraphStats(split=split, **raw)
    with np.load(arrays_path) as arrays:
        adj = AdjacencyCSR(
            num_nodes=int(arrays["features"].shape[0]),
            indptr=arrays["indptr"],
            indices=arrays["indices"],
        )
        return Graph(
            adj,
            arrays["features"],
            arrays["labels"],
            arrays["train_mask"],
            arrays["val_mask"],
            arrays["test_mask"],
            stats,
        )


def stored_nbytes(stats: GraphStats) -> int:
    """Logical on-disk footprint charged when loading this dataset."""
    return stats.feature_nbytes() + stats.structure_nbytes() + stats.label_nbytes()
