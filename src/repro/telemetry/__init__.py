"""Unified telemetry: hierarchical spans + cross-stack metrics.

Import surface is deliberately light — only the core tracing/metrics
types and the ambient-session helpers live here, so that importing
``repro.telemetry`` from hot paths (or from ``repro.profiling``, which
the exporters themselves depend on) never forms an import cycle.
Exporters and the run manifest are imported explicitly::

    from repro.telemetry.exporters import write_run_artifacts
    from repro.telemetry.manifest import build_run_manifest
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.runtime import (
    TelemetrySession,
    active,
    maybe_span,
    metrics,
    pop_session,
    push_session,
    session,
    tracer,
)
from repro.telemetry.spans import PHASE_CATEGORY, Span, SpanTracer

__all__ = [
    "PHASE_CATEGORY",
    "Span",
    "SpanTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetrySession",
    "active",
    "maybe_span",
    "metrics",
    "pop_session",
    "push_session",
    "session",
    "tracer",
]
