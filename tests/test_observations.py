"""Paper-observation shape tests at reduced scale.

Each test asserts the *qualitative* claim of one of the paper's eight
observations, using the same harness the benchmark suite uses (smaller
datasets / fewer epochs so the whole module stays fast).
"""

import pytest

from repro.bench.harness import (
    measure_conv_forward,
    measure_data_loader,
    measure_sampler_epoch,
    run_training_experiment,
)

FAST = dict(epochs=2, representative_batches=2)


class TestObservation1DataLoader:
    """PyG's data loader is more efficient than DGL's."""

    @pytest.mark.parametrize("dataset", ["ppi", "reddit"])
    def test_pyg_loads_faster(self, dataset):
        dgl = measure_data_loader("dglite", dataset)
        pyg = measure_data_loader("pyglite", dataset)
        assert pyg < dgl


class TestObservation2Samplers:
    """All three DGL samplers beat PyG's; the SAINT gap is smallest."""

    @pytest.mark.parametrize("sampler", ["neighbor", "cluster", "saint_rw"])
    def test_dgl_sampler_faster(self, sampler):
        dgl = measure_sampler_epoch("dglite", "flickr", sampler)["epoch"]
        pyg = measure_sampler_epoch("pyglite", "flickr", sampler)["epoch"]
        assert dgl < pyg

    def test_saint_gap_smallest(self):
        ratios = {}
        for sampler in ("neighbor", "cluster", "saint_rw"):
            dgl = measure_sampler_epoch("dglite", "flickr", sampler)["epoch"]
            pyg = measure_sampler_epoch("pyglite", "flickr", sampler)["epoch"]
            ratios[sampler] = pyg / dgl
        assert ratios["saint_rw"] == min(ratios.values())

    def test_saint_sampler_cheapest_overall(self):
        times = {
            s: measure_sampler_epoch("dglite", "flickr", s)["epoch"]
            for s in ("neighbor", "cluster", "saint_rw")
        }
        assert times["saint_rw"] == min(times.values())


class TestObservation3ConvLayers:
    """DGL conv layers win on CPU; GPU crossover; PyG OOMs unfused layers."""

    @pytest.mark.parametrize("kind", ["gcn", "sage", "gat", "tag"])
    def test_dgl_faster_on_cpu(self, kind):
        dgl = measure_conv_forward("dglite", "flickr", kind, device="cpu")
        pyg = measure_conv_forward("pyglite", "flickr", kind, device="cpu")
        assert dgl.phases["forward"] < pyg.phases["forward"]

    def test_pyg_faster_on_gpu_for_smallest_graph(self):
        dgl = measure_conv_forward("dglite", "ppi", "gcn", device="gpu")
        pyg = measure_conv_forward("pyglite", "ppi", "gcn", device="gpu")
        assert pyg.phases["forward"] < dgl.phases["forward"]

    def test_dgl_faster_on_gpu_for_largest_graph(self):
        dgl = measure_conv_forward("dglite", "reddit", "gcn", device="gpu")
        pyg = measure_conv_forward("pyglite", "reddit", "gcn", device="gpu")
        assert dgl.phases["forward"] < pyg.phases["forward"]

    def test_gpu_speedup_is_large(self):
        cpu = measure_conv_forward("dglite", "reddit", "gatv2", device="cpu")
        gpu = measure_conv_forward("dglite", "reddit", "gatv2", device="gpu")
        assert cpu.phases["forward"] / gpu.phases["forward"] > 10

    @pytest.mark.parametrize("kind", ["cheb", "gat", "gatv2"])
    def test_pyg_unfused_layers_oom_on_reddit_gpu(self, kind):
        result = measure_conv_forward("pyglite", "reddit", kind, device="gpu")
        assert result.oom

    @pytest.mark.parametrize("kind", ["gcn", "sage", "sg"])
    def test_pyg_fused_layers_fit_on_reddit_gpu(self, kind):
        result = measure_conv_forward("pyglite", "reddit", kind, device="gpu")
        assert not result.oom

    def test_dgl_attention_layers_fit_on_reddit_gpu(self):
        for kind in ("gat", "gatv2", "cheb"):
            result = measure_conv_forward("dglite", "reddit", kind, device="gpu")
            assert not result.oom, kind


class TestObservation4SamplingDominates:
    """Sampling can take up to ~90% of total runtime."""

    def test_sampling_dominates_pyg_cpu(self):
        result = run_training_experiment("pyglite", "reddit", "graphsage",
                                         placement="cpu", **FAST)
        assert result.phase_fraction("sampling") > 0.5

    def test_sampling_large_even_for_dgl(self):
        result = run_training_experiment("dglite", "reddit", "graphsage",
                                         placement="cpu", **FAST)
        assert result.phase_fraction("sampling") > 0.25


class TestObservation5DglGenerallyWins:
    """DGL is generally more efficient in runtime and energy."""

    @pytest.mark.parametrize("model", ["graphsage", "clustergcn"])
    def test_dgl_faster_and_greener_on_large_graph(self, model):
        dgl = run_training_experiment("dglite", "reddit", model,
                                      placement="cpu", **FAST)
        pyg = run_training_experiment("pyglite", "reddit", model,
                                      placement="cpu", **FAST)
        assert dgl.total_time < pyg.total_time
        assert dgl.total_energy < pyg.total_energy

    def test_energy_tracks_runtime_not_power(self):
        """'No clear winner in average power': the ratio of energies is
        close to the ratio of runtimes."""
        dgl = run_training_experiment("dglite", "flickr", "graphsage",
                                      placement="cpu", **FAST)
        pyg = run_training_experiment("pyglite", "flickr", "graphsage",
                                      placement="cpu", **FAST)
        time_ratio = pyg.total_time / dgl.total_time
        energy_ratio = pyg.total_energy / dgl.total_energy
        assert energy_ratio == pytest.approx(time_ratio, rel=0.25)


class TestObservation6Preloading:
    """Pre-loading slashes data movement."""

    def test_movement_reduced_on_reddit(self):
        base = run_training_experiment("dglite", "reddit", "graphsage",
                                       placement="cpugpu", **FAST)
        pre = run_training_experiment("dglite", "reddit", "graphsage",
                                      placement="cpugpu", preload=True, **FAST)
        assert pre.phases["data_movement"] < base.phases["data_movement"] / 2
        assert pre.total_time < base.total_time


class TestObservation7GpuSamplingFraction:
    """GPU sampling shrinks the sampling share but does not eliminate it."""

    def test_sampling_share_shrinks_but_persists(self):
        cpu = run_training_experiment("dglite", "reddit", "graphsage",
                                      placement="cpugpu", **FAST)
        gpu = run_training_experiment("dglite", "reddit", "graphsage",
                                      placement="gpu", **FAST)
        assert gpu.phase_fraction("sampling") < cpu.phase_fraction("sampling")
        assert gpu.phase_fraction("sampling") > 0.05


class TestObservation8GpuSamplingSavesEnergy:
    """DGL-GPU / DGL-UVAGPU: Speedup > 1 and Greenup > 1 vs DGL-CPUGPU."""

    def test_speedup_and_greenup(self):
        from repro.metrics import gps_up
        base = run_training_experiment("dglite", "reddit", "graphsage",
                                       placement="cpugpu", **FAST)
        for placement in ("gpu", "uvagpu"):
            opt = run_training_experiment("dglite", "reddit", "graphsage",
                                          placement=placement, **FAST)
            metrics = gps_up(base.total_time, base.total_energy,
                             opt.total_time, opt.total_energy)
            assert metrics.speedup > 1
            assert metrics.greenup > 1

    def test_uva_slower_than_gpu_resident(self):
        gpu = run_training_experiment("dglite", "reddit", "graphsage",
                                      placement="gpu", **FAST)
        uva = run_training_experiment("dglite", "reddit", "graphsage",
                                      placement="uvagpu", **FAST)
        assert uva.total_time > gpu.total_time
