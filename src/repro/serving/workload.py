"""Seeded request generation for the online serving simulation.

Requests are *open-loop*: arrival times are drawn up front from a seeded
process and never react to server backpressure, so offered load is an
independent variable (the closed-loop alternative hides queueing
collapse — see the throughput-vs-offered-load curves the latency
accountant reports).  Three trace shapes cover the scenarios the
serving layer must survive:

* ``poisson`` — stationary Poisson arrivals at ``rate`` requests/s.
* ``bursty`` — a two-state modulated Poisson process: windows of
  ``burst_width`` consecutive requests alternate between a hot rate
  (``rate * burst_factor``) and a cold rate (``rate / burst_factor``),
  keeping the long-run mean near ``rate`` while stressing the
  micro-batcher's deadline path during lulls and its max-size path
  during bursts.
* ``diurnal`` — a sinusoidally rate-modulated process (period
  ``diurnal_period`` seconds, relative amplitude ``diurnal_amplitude``):
  the next inter-arrival gap is drawn at the instantaneous rate, the
  standard step approximation of an inhomogeneous Poisson process.

Every draw comes from one ``np.random.default_rng(seed)``, so a trace
is a pure function of its parameters — the foundation of the serving
report's byte-identical same-seed guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import BenchmarkError
from repro.graph.formats import INDEX_DTYPE

TRACE_KINDS = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class Request:
    """One node-inference request: score ``nodes`` as of ``arrival``."""

    request_id: int
    arrival: float  # seconds on the virtual clock (trace-relative)
    nodes: np.ndarray  # global node ids to produce logits for

    def shifted(self, offset: float) -> "Request":
        """The same request with its arrival moved by ``offset`` seconds."""
        return Request(self.request_id, self.arrival + offset, self.nodes)


def generate_trace(
    kind: str,
    num_requests: int,
    rate: float,
    num_nodes: int,
    seed: int = 0,
    nodes_per_request: int = 1,
    burst_factor: float = 4.0,
    burst_width: int = 8,
    diurnal_period: float = 1.0,
    diurnal_amplitude: float = 0.8,
) -> List[Request]:
    """Draw one seeded open-loop request trace.

    ``rate`` is the offered load in requests per *virtual* second;
    ``num_nodes`` bounds the node ids requests may ask for (requests
    sample target nodes uniformly — serving popularity skew comes from
    the graph structure via the degree-ordered feature cache, not from
    the workload).
    """
    if kind not in TRACE_KINDS:
        raise BenchmarkError(
            f"unknown trace kind {kind!r}; expected one of {TRACE_KINDS}")
    if num_requests < 1:
        raise BenchmarkError("num_requests must be >= 1")
    if rate <= 0:
        raise BenchmarkError("offered rate must be > 0 requests/s")
    if num_nodes < 1:
        raise BenchmarkError("num_nodes must be >= 1")
    if nodes_per_request < 1:
        raise BenchmarkError("nodes_per_request must be >= 1")
    if burst_factor < 1.0:
        raise BenchmarkError("burst_factor must be >= 1")
    if burst_width < 1:
        raise BenchmarkError("burst_width must be >= 1")
    if diurnal_period <= 0 or not (0.0 <= diurnal_amplitude < 1.0):
        raise BenchmarkError("diurnal period must be > 0 and amplitude in [0, 1)")

    rng = np.random.default_rng(seed)
    unit_gaps = rng.exponential(1.0, size=num_requests)

    if kind == "poisson":
        arrivals = np.cumsum(unit_gaps / rate)
    elif kind == "bursty":
        windows = np.arange(num_requests) // burst_width
        rates = np.where(windows % 2 == 0, rate * burst_factor,
                         rate / burst_factor)
        arrivals = np.cumsum(unit_gaps / rates)
    else:  # diurnal: step through the sinusoidal instantaneous rate
        arrivals = np.empty(num_requests)
        t = 0.0
        omega = 2.0 * np.pi / diurnal_period
        for i in range(num_requests):
            instant = rate * (1.0 + diurnal_amplitude * np.sin(omega * t))
            t += unit_gaps[i] / instant
            arrivals[i] = t

    node_draws = rng.integers(0, num_nodes,
                              size=(num_requests, nodes_per_request))
    return [
        Request(request_id=i, arrival=float(arrivals[i]),
                nodes=node_draws[i].astype(INDEX_DTYPE))
        for i in range(num_requests)
    ]
