"""Tests for the model skeletons and the three paper GNNs."""

import numpy as np
import pytest

from repro.frameworks import get_framework
from repro.kernels.adj import SparseAdj
from repro.models.base import BlockNet, SubgraphNet, make_loss, two_layer_net
from repro.models.clustergcn import build_clustergcn
from repro.models.graphsage import build_graphsage
from repro.models.graphsaint import build_graphsaint
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

RNG = np.random.default_rng(77)


@pytest.fixture
def square_adj():
    src = RNG.integers(0, 20, 160)
    dst = RNG.integers(0, 20, 160)
    return SparseAdj(src, dst, 20, 20)


class TestSubgraphNet:
    def test_forward_shape(self, square_adj):
        fw = get_framework("dglite")
        net = two_layer_net(fw, "gcn", 6, 16, 3, style="subgraph", seed=0)
        x = Tensor(RNG.random((20, 6)).astype(np.float32))
        assert net(square_adj, x).shape == (20, 3)

    def test_training_reduces_loss(self, square_adj):
        fw = get_framework("dglite")
        net = two_layer_net(fw, "gcn", 6, 16, 3, style="subgraph", dropout=0.0, seed=0)
        from repro.tensor.optim import Adam
        opt = Adam(net.parameters(), lr=0.02)
        x = Tensor(RNG.random((20, 6)).astype(np.float32))
        y = RNG.integers(0, 3, 20)
        first = last = None
        for _ in range(40):
            opt.zero_grad()
            loss = F.cross_entropy(net(square_adj, x), y)
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
            last = loss.item()
        assert last < first * 0.7

    def test_dropout_only_in_train_mode(self, square_adj):
        fw = get_framework("dglite")
        net = two_layer_net(fw, "gcn", 6, 16, 3, style="subgraph", dropout=0.9, seed=0)
        x = Tensor(RNG.random((20, 6)).astype(np.float32))
        net.eval()
        a = net(square_adj, x)
        b = net(square_adj, x)
        assert np.allclose(a.data, b.data)  # eval: deterministic


class TestBlockNet:
    def _blocks(self):
        b1 = SparseAdj(np.array([0, 4, 5]), np.array([0, 1, 2]), num_src=6, num_dst=3)
        b2 = SparseAdj(np.array([0, 1, 2]), np.array([0, 0, 1]), num_src=3, num_dst=2)
        return [b1, b2]

    def test_forward_through_blocks(self):
        fw = get_framework("dglite")
        net = two_layer_net(fw, "sage", 4, 8, 3, style="blocks", seed=0)
        x = Tensor(RNG.random((6, 4)).astype(np.float32))
        out = net(self._blocks(), x)
        assert out.shape == (2, 3)

    def test_block_count_must_match_layers(self):
        fw = get_framework("dglite")
        net = two_layer_net(fw, "sage", 4, 8, 3, style="blocks", seed=0)
        x = Tensor(RNG.random((6, 4)).astype(np.float32))
        with pytest.raises(ValueError):
            net(self._blocks()[:1], x)

    def test_invalid_style_rejected(self):
        fw = get_framework("dglite")
        with pytest.raises(ValueError):
            two_layer_net(fw, "sage", 4, 8, 3, style="diagonal")


class TestMakeLoss:
    def test_single_label_uses_cross_entropy(self):
        assert make_loss(False) is F.cross_entropy

    def test_multilabel_uses_bce(self):
        assert make_loss(True) is F.binary_cross_entropy_with_logits


class TestPaperModels:
    @pytest.mark.parametrize("builder,conv_attr", [
        (build_graphsage, "sage"),
        (build_clustergcn, "gcn"),
        (build_graphsaint, "gcn"),
    ])
    def test_two_layers_right_dims(self, machine, builder, conv_attr):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        net = builder(fw, fgraph, hidden=32, seed=0)
        assert net.num_layers == 2
        params = dict(net.named_parameters())
        assert any("conv0" in name for name in params)
        assert any("conv1" in name for name in params)

    def test_graphsage_output_matches_classes(self, machine):
        fw = get_framework("dglite")
        fgraph = fw.load("ppi", machine, scale=0.3)
        net = build_graphsage(fw, fgraph, hidden=16, seed=0)
        sampler = fw.neighbor_sampler(fgraph, fanouts=(4, 4), batch_size=64, seed=0)
        batch = next(iter(sampler.epoch()))
        out = net(batch.adjs, batch.x)
        assert out.shape == (batch.y.shape[0], fgraph.stats.num_classes)
