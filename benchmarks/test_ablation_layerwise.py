"""Ablation: layer-wise samplers (FastGCN / LADIES) vs node-wise GraphSAGE.

The paper's background cites LADIES' "additional computational cost and
non-negligible overhead in the sampling process" relative to FastGCN, and
FastGCN's isolated-node problem.  This bench quantifies both.
"""

import numpy as np

from conftest import emit

from repro.bench import format_series
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed

DATASETS = ("flickr", "reddit")


def _epoch_time(fw_name: str, dataset: str, kind: str, reps: int = 3):
    machine = paper_testbed()
    fw = get_framework(fw_name)
    fgraph = fw.load(dataset, machine)
    if kind == "neighbor":
        sampler = fw.neighbor_sampler(fgraph, seed=0)
    else:
        sampler = fw.extension_sampler(fgraph, kind, seed=0)
    batches = sampler.num_batches()
    start = machine.clock.now
    iterator = iter(sampler.epoch())
    ran = 0
    for _ in range(min(reps, batches)):
        if next(iterator, None) is None:
            break
        ran += 1
    elapsed = (machine.clock.now - start) * batches / max(1, ran)
    return elapsed, sampler


def test_ablation_layerwise(once):
    def run():
        times = {}
        isolated = {}
        for kind in ("neighbor", "fastgcn", "ladies"):
            times[kind] = {}
            for ds in DATASETS:
                elapsed, sampler = _epoch_time("dglite", ds, kind)
                times[kind][ds] = elapsed
                if kind == "fastgcn":
                    isolated[ds] = sampler.last_isolated_fraction
        return times, isolated

    times, isolated = once(run)
    emit("ablation_layerwise",
         format_series("Ablation: layer-wise samplers per epoch (DGLite)",
                       times, unit="s"))

    for ds in DATASETS:
        # LADIES pays its per-layer distribution pass over the frontier's
        # edges — strictly more expensive than FastGCN's fixed draws.
        assert times["ladies"][ds] > times["fastgcn"][ds], ds

    # FastGCN produced isolated frontier nodes somewhere (its known flaw).
    assert any(frac > 0 for frac in isolated.values()), isolated

    # On the dense graph, layer-wise sampling caps per-batch work while
    # node-wise sampling explodes with degree: FastGCN's epoch is cheaper
    # than the 25/10 neighbor sampler on Reddit.
    assert times["fastgcn"]["reddit"] < times["neighbor"]["reddit"]
