"""Dataset specification and the synthetic builder pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graph.formats import AdjacencyCSR
from repro.graph.generators import correlated_features, dcsbm_graph, split_masks
from repro.graph.graph import Graph, GraphStats, Split


@dataclass(frozen=True)
class DatasetSpec:
    """Everything needed to synthesize one benchmark dataset.

    ``logical_*`` fields come straight from Table 1 of the paper.
    ``actual_*`` fields choose the scaled-down size the generator realizes.
    ``in_dgl`` / ``in_pyg`` record whether the real dataset ships inside
    each framework's dataset module — the paper's Observation 1 attributes
    part of the loader gap to PyG bundling five of the six datasets vs
    DGL's three.
    """

    name: str
    description: str
    logical_num_nodes: int
    logical_num_edges: int
    num_features: int
    num_classes: int
    multilabel: bool
    split: Split
    actual_num_nodes: int
    actual_num_edges: int
    num_communities: int = 40
    intra_prob: float = 0.8
    degree_exponent: float = 2.1
    in_dgl: bool = False
    in_pyg: bool = False
    seed: int = 0

    def stats(self) -> GraphStats:
        return GraphStats(
            name=self.name,
            description=self.description,
            logical_num_nodes=self.logical_num_nodes,
            logical_num_edges=self.logical_num_edges,
            num_features=self.num_features,
            num_classes=self.num_classes,
            multilabel=self.multilabel,
            split=self.split,
        )

    @property
    def logical_avg_degree(self) -> float:
        return self.logical_num_edges / self.logical_num_nodes


_CACHE: Dict[Tuple[str, float], Graph] = {}


def build_dataset(spec: DatasetSpec, scale: float = 1.0) -> Graph:
    """Synthesize (or fetch from cache) the graph for ``spec``.

    ``scale`` multiplies the *actual* generated size (1.0 = the spec's
    default reduced size; tests use smaller scales).  Logical stats are
    unaffected — they always describe the paper-scale dataset.
    """
    if scale <= 0:
        raise DatasetError("scale must be positive")
    key = (spec.name, scale)
    if key in _CACHE:
        return _CACHE[key]

    n_nodes = max(32, int(round(spec.actual_num_nodes * scale)))
    n_edges = max(64, int(round(spec.actual_num_edges * scale)))
    coo, communities = dcsbm_graph(
        num_nodes=n_nodes,
        num_edges=n_edges,
        num_communities=min(spec.num_communities, max(2, n_nodes // 16)),
        intra_prob=spec.intra_prob,
        exponent=spec.degree_exponent,
        seed=spec.seed,
    )
    features, labels = correlated_features(
        communities,
        num_features=spec.num_features,
        num_classes=spec.num_classes,
        multilabel=spec.multilabel,
        seed=spec.seed + 1,
    )
    train_mask, val_mask, test_mask = split_masks(
        n_nodes, spec.split.train, spec.split.val, spec.split.test, seed=spec.seed + 2
    )
    graph = Graph(
        coo.to_csr(),
        features,
        labels,
        train_mask,
        val_mask,
        test_mask,
        spec.stats(),
    )
    _CACHE[key] = graph
    return graph


def clear_cache() -> None:
    """Drop all cached graphs (test isolation)."""
    _CACHE.clear()
