"""The run manifest (``run.json``) and schema validation for all artifacts.

``run.json`` is the machine-readable summary of one instrumented run:
what was executed (command, config, dataset, seed), where the time went
(the four-phase rollup derived from the span tree, kernel families),
what moved (the metrics snapshot), and what it cost (energy totals plus
p50/p95/peak power — the paper reports peak power explicitly).

Everything in the manifest is derived from the *virtual* clock and the
seeded simulation, so two runs with the same config and seed emit
byte-identical manifests — asserted by ``tests/test_telemetry.py``.
Wall-clock timings live only in ``events.jsonl``.

The ``validate_*`` functions are the schema gate used by the tests and
the CI telemetry smoke step (via ``repro report --telemetry``): each
returns a list of human-readable problems, empty when the artifact
conforms.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.profiling.profiler import PHASES
from repro.telemetry.runtime import TelemetrySession

RUN_SCHEMA = "repro.telemetry.run/1"

_REQUIRED_KEYS = {
    "schema": str,
    "command": str,
    "label": str,
    "dataset": str,
    "seed": int,
    "config": dict,
    "phases": dict,
    "phase_fractions": dict,
    "total_seconds": (int, float),
    "kernel_families": dict,
    "spans": dict,
    "metrics": list,
    "hardware": dict,
}

_POWER_STAT_KEYS = ("avg", "p50", "p95", "peak")


def build_provenance() -> dict:
    """Environment fingerprint embedded in run manifests and bench artifacts.

    Perf baselines (``BENCH_*.json``) outlive the environment that
    produced them; recording the interpreter/library versions and the
    active kernel schedule makes a drifted comparison diagnosable.
    Everything here is deterministic within one environment, so manifest
    byte-determinism across same-seed runs is preserved.
    """
    import platform

    import numpy
    import scipy

    from repro.kernels.config import kernel_mode

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "platform": platform.system().lower(),
        "kernel_mode": kernel_mode(),
    }


def build_run_manifest(
    *,
    command: str,
    label: str,
    dataset: str,
    seed: int,
    config: Dict[str, object],
    phases: Dict[str, float],
    kernel_families: Dict[str, float],
    session: TelemetrySession,
    energy=None,
    hardware: Optional[Dict[str, object]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> dict:
    """Assemble the deterministic run summary.

    ``energy`` is an :class:`~repro.power.monitor.EnergyReport` (duck
    typed to avoid the import cycle); None when the run was unmonitored.
    """
    total = sum(phases.values())
    manifest: dict = {
        "schema": RUN_SCHEMA,
        "command": command,
        "label": label,
        "dataset": dataset,
        "seed": int(seed),
        "config": dict(config),
        "phases": {name: float(secs) for name, secs in sorted(phases.items())},
        "phase_fractions": {
            name: (secs / total if total > 0 else 0.0)
            for name, secs in sorted(phases.items())
        },
        "total_seconds": total,
        "kernel_families": {k: float(v) for k, v in sorted(kernel_families.items())},
        "spans": {
            "count": len(session.tracer.spans()),
            "max_depth": session.tracer.max_depth(),
            "phase_spans": len(session.tracer.spans(category="phase")),
        },
        "metrics": session.metrics.snapshot(),
        "hardware": dict(hardware or {}),
        "provenance": build_provenance(),
    }
    if energy is not None:
        manifest["energy"] = {
            "duration_s": energy.duration,
            "samples": energy.samples,
            "cpu_joules": energy.cpu_energy,
            "gpu_joules": energy.gpu_energy,
            "total_joules": energy.total_energy,
            "avg_power_w": energy.avg_power,
            "peak_power_w": energy.peak_power,
            "cpu_power_w": energy.cpu_power_stats(),
            "gpu_power_w": energy.gpu_power_stats(),
        }
    else:
        manifest["energy"] = None
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_run_manifest(path: Union[str, Path], manifest: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_run_manifest(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# validators
# ----------------------------------------------------------------------
def validate_run_manifest(manifest: object) -> List[str]:
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return ["manifest is not a JSON object"]
    for key, types in _REQUIRED_KEYS.items():
        if key not in manifest:
            problems.append(f"missing key {key!r}")
        elif not isinstance(manifest[key], types):
            problems.append(f"key {key!r} has wrong type {type(manifest[key]).__name__}")
    if problems:
        return problems
    if manifest["schema"] != RUN_SCHEMA:
        problems.append(f"unknown schema {manifest['schema']!r} (expected {RUN_SCHEMA})")
    for name, secs in manifest["phases"].items():
        if not isinstance(secs, (int, float)) or secs < 0:
            problems.append(f"phase {name!r} has invalid seconds {secs!r}")
    unknown = set(manifest["phases"]) - set(PHASES)
    if unknown:
        problems.append(f"unknown phase name(s) {sorted(unknown)}")
    fraction_sum = sum(manifest["phase_fractions"].values())
    if manifest["phase_fractions"] and not (0.999 <= fraction_sum <= 1.001):
        problems.append(f"phase fractions sum to {fraction_sum}, expected 1")
    spans = manifest["spans"]
    for key in ("count", "max_depth", "phase_spans"):
        if not isinstance(spans.get(key), int) or spans.get(key, -1) < 0:
            problems.append(f"spans.{key} must be a non-negative integer")
    for record in manifest["metrics"]:
        problems.extend(_validate_metric_record(record))
    problems.extend(_validate_hardware(manifest["hardware"]))
    energy = manifest.get("energy")
    if energy is not None:
        problems.extend(_validate_energy(energy))
    return problems


def _validate_metric_record(record: object) -> List[str]:
    if not isinstance(record, dict):
        return ["metric record is not an object"]
    problems = []
    kind = record.get("kind")
    if kind not in ("counter", "gauge", "histogram"):
        problems.append(f"metric {record.get('name')!r}: unknown kind {kind!r}")
    if not isinstance(record.get("name"), str):
        problems.append("metric record missing name")
    if not isinstance(record.get("labels"), dict):
        problems.append(f"metric {record.get('name')!r}: labels must be an object")
    if kind == "histogram":
        if not isinstance(record.get("buckets"), list):
            problems.append(f"histogram {record.get('name')!r} missing buckets")
        if not isinstance(record.get("count"), int):
            problems.append(f"histogram {record.get('name')!r} missing count")
    elif kind in ("counter", "gauge"):
        if not isinstance(record.get("value"), (int, float)):
            problems.append(f"metric {record.get('name')!r} missing value")
    return problems


def _validate_hardware(hardware: object) -> List[str]:
    """Shape-check the machine description (empty = legacy producer)."""
    if not isinstance(hardware, dict):
        return ["hardware is not an object"]
    if not hardware:
        return []
    problems = []
    devices = hardware.get("devices")
    if not isinstance(devices, dict):
        return ["hardware.devices missing or not an object"]
    for name, spec in devices.items():
        if not isinstance(spec, dict):
            problems.append(f"hardware.devices[{name!r}] is not an object")
            continue
        if spec.get("kind") not in ("cpu", "gpu"):
            problems.append(f"hardware.devices[{name!r}].kind must be cpu/gpu")
        for key in ("peak_flops", "mem_bandwidth"):
            value = spec.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"hardware.devices[{name!r}].{key} must be positive")
    for section, rate_key in (("link", "bandwidth"),
                              ("storage", "read_bandwidth")):
        payload = hardware.get(section)
        if payload is None:
            continue
        if not isinstance(payload, dict):
            problems.append(f"hardware.{section} is not an object")
        elif not isinstance(payload.get(rate_key), (int, float)):
            problems.append(f"hardware.{section}.{rate_key} missing or "
                            "non-numeric")
    return problems


def _validate_energy(energy: object) -> List[str]:
    if not isinstance(energy, dict):
        return ["energy is not an object"]
    problems = []
    for key in ("duration_s", "samples", "cpu_joules", "gpu_joules",
                "total_joules", "avg_power_w", "peak_power_w"):
        if not isinstance(energy.get(key), (int, float)):
            problems.append(f"energy.{key} missing or non-numeric")
    for rail in ("cpu_power_w", "gpu_power_w"):
        stats = energy.get(rail)
        if not isinstance(stats, dict):
            problems.append(f"energy.{rail} missing")
            continue
        for key in _POWER_STAT_KEYS:
            if not isinstance(stats.get(key), (int, float)):
                problems.append(f"energy.{rail}.{key} missing or non-numeric")
    return problems


def validate_events_records(records: Sequence[object]) -> List[str]:
    problems: List[str] = []
    if not records:
        return ["events stream is empty"]
    header = records[0]
    if not isinstance(header, dict) or header.get("type") != "header":
        problems.append("first record must be the schema header")
    elif header.get("schema") != "repro.telemetry.events/1":
        problems.append(f"unknown events schema {header.get('schema')!r}")
    seen_ids = set()
    for record in records[1:]:
        if not isinstance(record, dict):
            problems.append("record is not an object")
            continue
        rtype = record.get("type")
        if rtype == "span":
            for key in ("id", "name", "ts", "dur", "depth"):
                if key not in record:
                    problems.append(f"span record missing {key!r}")
            span_id = record.get("id")
            if span_id in seen_ids:
                problems.append(f"duplicate span id {span_id}")
            seen_ids.add(span_id)
            parent = record.get("parent")
            if parent is not None and parent not in seen_ids:
                problems.append(f"span {span_id} has unknown parent {parent}")
        elif rtype == "metric":
            problems.extend(_validate_metric_record(record))
        else:
            problems.append(f"unknown record type {rtype!r}")
    return problems


def validate_chrome_trace(payload: object) -> List[str]:
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["trace is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    pids = set()
    for event in events:
        if not isinstance(event, dict):
            problems.append("trace event is not an object")
            continue
        if event.get("ph") not in ("X", "M"):
            problems.append(f"unexpected event phase {event.get('ph')!r}")
        if "pid" not in event or "name" not in event:
            problems.append("trace event missing pid/name")
        if event.get("ph") == "X":
            pids.add(event.get("pid"))
            if not isinstance(event.get("ts"), (int, float)) \
                    or not isinstance(event.get("dur"), (int, float)):
                problems.append(f"complete event {event.get('name')!r} missing ts/dur")
    named_lanes = {
        (e.get("pid"), e.get("tid"))
        for e in events
        if isinstance(e, dict) and e.get("ph") == "M"
        and e.get("name") == "thread_name"
    }
    for event in events:
        if isinstance(event, dict) and event.get("ph") == "X":
            if (event.get("pid"), event.get("tid")) not in named_lanes:
                problems.append(
                    f"lane pid={event.get('pid')} tid={event.get('tid')} has "
                    "no thread_name metadata"
                )
                break
    return problems


def validate_prometheus_text(text: str) -> List[str]:
    problems: List[str] = []
    typed = set()
    for line_no, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                problems.append(f"line {line_no}: malformed TYPE comment")
            else:
                typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        body = line.rsplit(" ", 1)
        if len(body) != 2:
            problems.append(f"line {line_no}: expected 'name value'")
            continue
        name, value = body
        try:
            float(value)
        except ValueError:
            problems.append(f"line {line_no}: non-numeric value {value!r}")
        base = name.split("{", 1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in typed:
                base = base[: -len(suffix)]
                break
        if base not in typed:
            problems.append(f"line {line_no}: sample {base!r} has no TYPE comment")
    return problems


def validate_run_dir(out_dir: Union[str, Path]) -> List[str]:
    """Validate all four artifacts of one telemetry output directory."""
    from repro.telemetry.exporters import read_events_jsonl

    out = Path(out_dir)
    problems: List[str] = []
    expected = {
        "run.json": lambda p: validate_run_manifest(json.loads(p.read_text())),
        "events.jsonl": lambda p: validate_events_records(read_events_jsonl(p)),
        "trace.json": lambda p: validate_chrome_trace(json.loads(p.read_text())),
        "metrics.prom": lambda p: validate_prometheus_text(p.read_text()),
    }
    for name, check in expected.items():
        path = out / name
        if not path.exists():
            problems.append(f"{name}: missing")
            continue
        try:
            problems.extend(f"{name}: {p}" for p in check(path))
        except (ValueError, json.JSONDecodeError) as exc:
            problems.append(f"{name}: unparseable ({exc})")
    return problems
