"""Vectorized global->local id machinery shared by every sampler.

The paper attributes DGL's sampling advantage to native (C++-profile)
samplers with low per-item overhead (Observation 2, Figs. 4/6/10/14); the
reproduction models that difference through
:mod:`repro.frameworks.profiles`, so our *own* Python overhead must stay
out of the measurement.  This module replaces the per-element dict
lookups and ``np.fromiter`` generators the samplers used to relabel
global node ids into local block coordinates with ``np.searchsorted``
passes, and provides the CSR gather primitive the vectorized samplers
are built on.

Three primitives:

* :func:`relabel` — map global ids to their positions in an id map, one
  ``searchsorted`` per call instead of one dict probe per element.
* :func:`unique_with_seeds` — build a block's node set: the seeds (dst
  prefix, order preserved) followed by the sorted unique extra ids.
* :func:`gather_neighborhoods` — concatenate the CSR neighbor lists of a
  whole frontier with ``np.repeat``/offset arithmetic (no per-seed loop).

:func:`block_locals` composes the first two into the standard bipartite
block layout (dst nodes are a prefix of src nodes, DGL convention).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SamplerError
from repro.graph.formats import (
    INDEX_DTYPE,
    flat_positions,
    gather_neighborhoods,
)

__all__ = [
    "relabel",
    "unique_with_seeds",
    "gather_neighborhoods",
    "flat_positions",
    "block_locals",
]


def relabel(global_ids: np.ndarray, id_map: np.ndarray,
            sorter: np.ndarray = None, validate: bool = True) -> np.ndarray:
    """Map each global id to its position in ``id_map`` (vectorized).

    ``id_map`` holds unique global ids in arbitrary order; the result is
    the local index such that ``id_map[result] == global_ids``.  Raises
    :class:`SamplerError` if any id is missing from the map.  Pass a
    precomputed ``sorter`` (``np.argsort(id_map)``) to amortize the sort
    across several relabel calls against the same map, and
    ``validate=False`` to skip the membership check when the caller
    guarantees every id is present (the result is garbage otherwise).
    """
    global_ids = np.asarray(global_ids, dtype=INDEX_DTYPE)
    id_map = np.asarray(id_map, dtype=INDEX_DTYPE)
    if global_ids.size == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    if id_map.size == 0:
        raise SamplerError("cannot relabel against an empty id map")
    if sorter is None:
        sorter = np.argsort(id_map, kind="stable")
    pos = np.searchsorted(id_map, global_ids, sorter=sorter)
    local = sorter[np.minimum(pos, id_map.size - 1)]
    if validate and not np.array_equal(id_map[local], global_ids):
        missing = global_ids[id_map[local] != global_ids]
        raise SamplerError(
            f"relabel: {missing.size} id(s) not in the id map "
            f"(first missing: {int(missing[0])})"
        )
    return local.astype(INDEX_DTYPE, copy=False)


def unique_with_seeds(seeds: np.ndarray, extra: np.ndarray) -> np.ndarray:
    """Seeds first (order preserved), then sorted unique extras not in seeds.

    This is the block node-set layout: ``seeds`` become the dst prefix
    (self-inclusion) and the extra ids — typically the sampled neighbors —
    are appended deduplicated.
    """
    seeds = np.asarray(seeds, dtype=INDEX_DTYPE)
    extra = np.asarray(extra, dtype=INDEX_DTYPE)
    if extra.size == 0:
        return seeds
    fresh = np.unique(extra)
    if seeds.size:
        # Drop extras that are seeds: a searchsorted membership probe
        # against the sorted seeds (np.setdiff1d re-sorts both sides on
        # every call and costs more than the sampling pass itself).
        sorted_seeds = np.sort(seeds)
        pos = np.minimum(
            np.searchsorted(sorted_seeds, fresh), seeds.size - 1
        )
        fresh = fresh[sorted_seeds[pos] != fresh]
    if fresh.size == 0:
        return seeds
    return np.concatenate([seeds, fresh])


def block_locals(
    src_global: np.ndarray, dst_global: np.ndarray, dst_nodes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the local coordinates of one bipartite block.

    Returns ``(src_nodes, src_local, dst_local)`` with ``dst_nodes`` as a
    prefix of ``src_nodes`` (DGL block layout).  ``dst_nodes`` must be
    duplicate-free.  A single ``np.unique(..., return_inverse=True)`` over
    the concatenated ids yields the node set and the src relabeling in one
    sort; dst ids resolve through the same sorted array.

    Sortedness contract: when ``dst_global`` arrives grouped by
    ``dst_nodes`` in order (every sampler in this repo emits edges that
    way), ``dst_local`` is non-decreasing — i.e. the edges are already in
    :class:`~repro.kernels.adj.SparseAdj`'s canonical dst-sorted order,
    and the block builders may construct the adjacency through the
    argsort-free ``SparseAdj.from_sorted_block``.  Outputs are relabeled
    and in-range by construction, which is what lets that constructor
    skip full bounds re-validation.
    """
    src_global = np.asarray(src_global, dtype=INDEX_DTYPE)
    dst_global = np.asarray(dst_global, dtype=INDEX_DTYPE)
    dst_nodes = np.asarray(dst_nodes, dtype=INDEX_DTYPE)

    combined = np.concatenate([dst_nodes, src_global])
    uniq, inverse = np.unique(combined, return_inverse=True)
    # Permute the sorted uniques into block order — seeds first (input
    # order preserved), then the fresh ids in sorted order.  ``to_local``
    # maps a position in ``uniq`` to a position in ``src_nodes``.
    seed_pos = inverse[:dst_nodes.size]
    is_seed = np.zeros(uniq.size, dtype=bool)
    is_seed[seed_pos] = True
    fresh_pos = np.nonzero(~is_seed)[0]
    to_local = np.empty(uniq.size, dtype=INDEX_DTYPE)
    to_local[seed_pos] = np.arange(dst_nodes.size, dtype=INDEX_DTYPE)
    to_local[fresh_pos] = dst_nodes.size + np.arange(
        fresh_pos.size, dtype=INDEX_DTYPE
    )
    src_nodes = np.empty(uniq.size, dtype=INDEX_DTYPE)
    src_nodes[to_local] = uniq
    src_local = to_local[inverse[dst_nodes.size:]]

    if dst_global.size == 0:
        dst_local = np.empty(0, dtype=INDEX_DTYPE)
    else:
        if uniq.size == 0:
            raise SamplerError("cannot relabel against an empty id map")
        pos = np.minimum(np.searchsorted(uniq, dst_global), uniq.size - 1)
        if not np.array_equal(uniq[pos], dst_global):
            missing = dst_global[uniq[pos] != dst_global]
            raise SamplerError(
                f"relabel: {missing.size} id(s) not in the id map "
                f"(first missing: {int(missing[0])})"
            )
        dst_local = to_local[pos]
    return src_nodes, src_local, dst_local
