"""Deterministic fault injection, recovery policies, and crash–resume.

Public surface:

* :class:`FaultPlan` / :class:`FaultSpec` / :class:`RecoveryPolicy` —
  the declarative schedule (``repro train --faults plan.json``).
* :class:`FaultInjector` + the ambient :func:`session` /
  :func:`active` / :func:`arm` / :func:`with_retries` runtime the
  hot-path seams consult.
* :func:`capture_rng_states` / :func:`restore_rng_states` — the
  generator snapshots that make resumed runs bit-identical.

See ``docs/resilience.md`` for the plan schema and policy semantics.
"""

from repro.resilience.checkpointing import capture_rng_states, restore_rng_states
from repro.resilience.injector import FaultInjector
from repro.resilience.plan import (
    DEFAULT_POLICY,
    FaultPlan,
    FaultSpec,
    KINDS,
    RecoveryPolicy,
    SITES,
)
from repro.resilience.runtime import (
    active,
    arm,
    enabled,
    session,
    with_retries,
)

__all__ = [
    "DEFAULT_POLICY",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KINDS",
    "RecoveryPolicy",
    "SITES",
    "active",
    "arm",
    "capture_rng_states",
    "enabled",
    "restore_rng_states",
    "session",
    "with_retries",
]
