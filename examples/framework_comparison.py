"""Framework microscope: compare DGL-style vs PyG-style kernels layer by layer.

Reproduces the Figure 5 functional test interactively for one dataset:
every conv layer, CPU vs GPU, both frameworks — including the OOM failures
of PyG's unfused attention layers on large graphs.

Run:  python examples/framework_comparison.py [dataset]
"""

import sys

from repro.bench import measure_conv_forward
from repro.datasets import DATASET_NAMES

LAYERS = ("gcn", "gcn2", "cheb", "sage", "gat", "gatv2", "tag", "sg")


def main(dataset: str = "flickr") -> None:
    if dataset not in DATASET_NAMES:
        raise SystemExit(f"unknown dataset {dataset!r}; pick one of {DATASET_NAMES}")

    print(f"One forward pass over the full {dataset} graph (out_dim = 256)\n")
    header = (f"{'layer':<8}{'DGL cpu':>12}{'PyG cpu':>12}{'cpu ratio':>10}"
              f"{'DGL gpu':>12}{'PyG gpu':>12}{'best gpu speedup':>18}")
    print(header)
    print("-" * len(header))

    for kind in LAYERS:
        cells = {}
        for fw in ("dglite", "pyglite"):
            for dev in ("cpu", "gpu"):
                result = measure_conv_forward(fw, dataset, kind, device=dev)
                cells[(fw, dev)] = "OOM" if result.oom else result.phases["forward"]

        def fmt(value):
            return f"{value:>12}" if isinstance(value, str) else f"{value * 1000:>10.2f}ms"

        dgl_cpu, pyg_cpu = cells[("dglite", "cpu")], cells[("pyglite", "cpu")]
        dgl_gpu, pyg_gpu = cells[("dglite", "gpu")], cells[("pyglite", "gpu")]
        ratio = (f"{pyg_cpu / dgl_cpu:>9.1f}x"
                 if not isinstance(pyg_cpu, str) and not isinstance(dgl_cpu, str)
                 else f"{'-':>10}")
        speedup = (f"{dgl_cpu / dgl_gpu:>16.1f}x"
                   if not isinstance(dgl_gpu, str) else f"{'-':>17}")
        print(f"{kind:<8}{fmt(dgl_cpu)}{fmt(pyg_cpu)}{ratio}"
              f"{fmt(dgl_gpu)}{fmt(pyg_gpu)}{speedup}")

    print("\n'OOM' = the unfused gather/scatter path materialized an")
    print("E x 256 message buffer that exceeds the device memory at the")
    print("dataset's paper scale (PyG lacks fused kernels for ChebConv,")
    print("GATConv, and GATv2Conv — Observation 3).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "flickr")
