"""Carbon-emission accounting on top of the energy monitor.

CodeCarbon — the tool the paper uses — exists to convert measured energy
into CO2-equivalent emissions using a grid carbon intensity.  This module
completes that pipeline for the simulated machine: an
:class:`~repro.power.monitor.EnergyReport` plus a grid profile yields
grams of CO2eq, with the same PUE (power-usage-effectiveness) uplift real
trackers apply for datacenter overhead (cooling, distribution).

Intensity defaults are public 2022-era grid averages (gCO2eq/kWh).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.power.monitor import EnergyReport

#: Grid carbon intensity in gCO2eq per kWh (approximate 2022 averages).
GRID_INTENSITY: Dict[str, float] = {
    "world": 475.0,
    "usa": 379.0,
    "texas": 410.0,  # the paper's testbed location (ERCOT)
    "eu": 275.0,
    "france": 85.0,
    "sweden": 45.0,
    "india": 708.0,
    "australia": 531.0,
}

JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class CarbonReport:
    """Emissions attributed to one monitored window."""

    energy_kwh: float
    grid: str
    intensity: float  # gCO2eq / kWh
    pue: float

    @property
    def grams_co2eq(self) -> float:
        return self.energy_kwh * self.pue * self.intensity

    @property
    def kg_co2eq(self) -> float:
        return self.grams_co2eq / 1000.0

    def equivalent_km_driven(self) -> float:
        """Average passenger-car equivalent (~192 gCO2eq/km)."""
        return self.grams_co2eq / 192.0


def carbon_from_energy(report: EnergyReport, grid: str = "texas",
                       pue: float = 1.58) -> CarbonReport:
    """Convert an energy report into emissions.

    ``pue`` defaults to the often-cited global datacenter average (1.58);
    use 1.0 for a bare workstation.
    """
    key = grid.lower()
    if key not in GRID_INTENSITY:
        raise KeyError(
            f"unknown grid {grid!r}; available: {', '.join(sorted(GRID_INTENSITY))}"
        )
    if pue < 1.0:
        raise ValueError("PUE cannot be below 1.0")
    return CarbonReport(
        energy_kwh=report.total_energy / JOULES_PER_KWH,
        grid=key,
        intensity=GRID_INTENSITY[key],
        pue=pue,
    )
