"""Segment reductions over per-edge values, grouped by destination node."""

from __future__ import annotations

import numpy as np

from repro.kernels.adj import SparseAdj
from repro.tensor.context import charge
from repro.tensor.tensor import FLOAT_DTYPE, Tensor


def segment_sum(adj: SparseAdj, values: Tensor, family: str = "scatter") -> Tensor:
    """Sum per-edge values into their destination segment."""
    from repro.kernels.scatter import scatter_add

    return scatter_add(adj, values)


def segment_mean(adj: SparseAdj, values: Tensor, family: str = "scatter") -> Tensor:
    """Mean per-edge values into their destination segment."""
    from repro.kernels.scatter import scatter_mean

    return scatter_mean(adj, values)


def segment_max(adj: SparseAdj, values: Tensor, family: str = "scatter") -> Tensor:
    """Max-reduce per-edge values by destination (max-pool aggregators)."""
    if values.shape[0] != adj.num_edges:
        raise ValueError("values must have one row per edge")
    # maximum.reduceat fast path over the dst-sorted edge order (reference
    # maximum.at scatter behind use_reference_kernels()).
    out_data = adj.max_edges(values.data)
    isolated = ~np.isfinite(out_data)
    out_data[isolated] = 0.0
    out = Tensor(
        out_data,
        device=adj.device,
        requires_grad=values.requires_grad,
        work_scale=adj.node_scale,
        _prev=(values,) if values.requires_grad else (),
        _op="segment_max",
    )
    width = int(np.prod(values.shape[1:])) if values.ndim > 1 else 1
    e_log = adj.logical_num_edges
    charge(adj.device, "segment_max", family, flops=e_log * width,
           bytes_moved=4.0 * 3.0 * e_log * width)

    if out.requires_grad:
        def _backward() -> None:
            # Route gradient to the (first) argmax edge of each segment.
            winners = values.data == out.data[adj.dst]
            grad = np.where(winners, out.grad[adj.dst], 0.0).astype(FLOAT_DTYPE)
            values._accumulate(grad)
            charge(adj.device, "segment_max.bwd", family, flops=e_log * width,
                   bytes_moved=4.0 * 3.0 * e_log * width)
        out._backward = _backward
    return out
