"""Balanced graph partitioning (the METIS substitute for ClusterGCN).

ClusterGCN's sampler needs a one-time partitioning of the input graph into
many small, balanced, low-edge-cut clusters.  The paper uses METIS; we use
a BFS-ordering partitioner with a single boundary-refinement pass, which is
the classic lightweight approximation: BFS order gives locality, chunking
gives balance, and refinement trims the cut.  Its charged cost is the
METIS-like O(E) one-time cost (see the sampler cost model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graph.formats import AdjacencyCSR, INDEX_DTYPE


@dataclass(frozen=True)
class PartitionResult:
    """Assignment of each node to one of ``num_parts`` clusters."""

    num_parts: int
    assignments: np.ndarray  # (num_nodes,) int64 part id
    edge_cut: int  # number of edges crossing parts

    def part_nodes(self, part: int) -> np.ndarray:
        return np.nonzero(self.assignments == part)[0].astype(INDEX_DTYPE)

    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.assignments, minlength=self.num_parts)


def bfs_order(adj: AdjacencyCSR, seed: Optional[int] = None) -> np.ndarray:
    """Visit order of a BFS over all components (random restarts)."""
    rng = np.random.default_rng(seed)
    n = adj.num_nodes
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=INDEX_DTYPE)
    pos = 0
    start_candidates = rng.permutation(n)
    head = 0
    queue: List[int] = []
    while pos < n:
        if not queue:
            while head < n and visited[start_candidates[head]]:
                head += 1
            if head >= n:
                break
            root = int(start_candidates[head])
            visited[root] = True
            queue.append(root)
        node = queue.pop(0)
        order[pos] = node
        pos += 1
        for nbr in adj.neighbors(node):
            nbr = int(nbr)
            if not visited[nbr]:
                visited[nbr] = True
                queue.append(nbr)
    return order[:pos]


def _edge_cut(adj: AdjacencyCSR, assignments: np.ndarray) -> int:
    coo = adj.to_coo()
    return int((assignments[coo.src] != assignments[coo.dst]).sum())


def partition_graph(
    adj: AdjacencyCSR,
    num_parts: int,
    seed: Optional[int] = None,
    refine_passes: int = 1,
) -> PartitionResult:
    """Partition into ``num_parts`` balanced clusters, low edge cut.

    1. Order nodes by BFS (locality-preserving).
    2. Chunk the order into equal-size parts (balance).
    3. Refinement: move boundary nodes to their majority-neighbor part if
       the target part is not already oversubscribed.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = adj.num_nodes
    if num_parts > n:
        raise ValueError(f"cannot split {n} nodes into {num_parts} parts")

    order = bfs_order(adj, seed=seed)
    assignments = np.empty(n, dtype=INDEX_DTYPE)
    # Chunk sizes differ by at most 1.
    base = n // num_parts
    remainder = n % num_parts
    start = 0
    for part in range(num_parts):
        size = base + (1 if part < remainder else 0)
        assignments[order[start:start + size]] = part
        start += size

    max_size = base + 1 + max(1, base // 10)  # allow ~10% imbalance in refinement
    coo = adj.to_coo()
    for _ in range(max(0, refine_passes)):
        sizes = np.bincount(assignments, minlength=num_parts)
        boundary = np.nonzero(assignments[coo.src] != assignments[coo.dst])[0]
        moved = 0
        for node in np.unique(coo.src[boundary]):
            nbrs = adj.neighbors(int(node))
            if nbrs.size == 0:
                continue
            counts = np.bincount(assignments[nbrs], minlength=num_parts)
            target = int(counts.argmax())
            current = int(assignments[node])
            if target == current:
                continue
            if (counts[target] > counts[current] and sizes[target] < max_size
                    and sizes[current] > 1):  # never empty a part
                assignments[node] = target
                sizes[target] += 1
                sizes[current] -= 1
                moved += 1
        if moved == 0:
            break

    return PartitionResult(num_parts, assignments, _edge_cut(adj, assignments))
