"""Tests for the mini-batch trainer: phases, placements, extrapolation."""

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.frameworks import get_framework
from repro.hardware.machine import paper_testbed
from repro.models.clustergcn import build_clustergcn
from repro.models.graphsage import build_graphsage
from repro.models.trainer import MiniBatchTrainer, TrainConfig
from repro.profiling.profiler import PhaseProfiler


def make_trainer(placement="cpu", preload=False, prefetch=False, epochs=1,
                 reps=2, framework="dglite", model="graphsage"):
    fw = get_framework(framework)
    machine = paper_testbed()
    fgraph = fw.load("ppi", machine, scale=0.3)
    if placement == "gpu":
        fgraph.preload_to_gpu()
    if model == "graphsage":
        mode = {"gpu": "gpu", "uvagpu": "uva"}.get(placement, "cpu")
        sampler = fw.neighbor_sampler(fgraph, fanouts=(4, 4), batch_size=64,
                                      mode=mode, seed=0)
        net = build_graphsage(fw, fgraph, hidden=16, seed=0)
    else:
        sampler = fw.cluster_sampler(fgraph, seed=0)
        net = build_clustergcn(fw, fgraph, hidden=16, seed=0)
    config = TrainConfig(epochs=epochs, placement=placement, preload=preload,
                         prefetch=prefetch, representative_batches=reps, seed=0)
    profiler = PhaseProfiler(machine.clock)
    return MiniBatchTrainer(fw, fgraph, sampler, net, config, profiler=profiler)


class TestTrainConfig:
    def test_placement_validated(self):
        with pytest.raises(BenchmarkError):
            TrainConfig(placement="fpga")

    def test_epoch_bounds(self):
        with pytest.raises(BenchmarkError):
            TrainConfig(epochs=0)
        with pytest.raises(BenchmarkError):
            TrainConfig(representative_batches=0)

    def test_placement_flags(self):
        assert not TrainConfig(placement="cpu").trains_on_gpu
        assert TrainConfig(placement="cpugpu").trains_on_gpu
        assert TrainConfig(placement="gpu").samples_on_gpu
        assert not TrainConfig(placement="cpugpu").samples_on_gpu


class TestCpuRun:
    def test_phases_and_losses(self):
        trainer = make_trainer(placement="cpu", epochs=2)
        result = trainer.run()
        assert set(result.phases) >= {"sampling", "training"}
        assert "data_movement" not in result.phases  # nothing moves on CPU
        assert len(result.losses) == 2 * min(2, result.batches_per_epoch)
        assert result.total_time > 0

    def test_loss_decreases_over_epochs(self):
        trainer = make_trainer(placement="cpu", epochs=6, reps=4)
        result = trainer.run()
        first = np.mean(result.losses[:3])
        last = np.mean(result.losses[-3:])
        assert last < first


class TestExtrapolation:
    def test_extrapolated_run_scales_phase_time(self):
        full = make_trainer(placement="cpu", epochs=1, reps=10_000)
        partial = make_trainer(placement="cpu", epochs=1, reps=2)
        full_result = full.run()
        partial_result = partial.run()
        assert partial_result.batches_per_epoch == full_result.batches_per_epoch
        assert partial_result.executed_batches < full_result.executed_batches
        # Extrapolated totals approximate the fully-executed totals.
        assert partial_result.phases["sampling"] == pytest.approx(
            full_result.phases["sampling"], rel=0.5
        )
        assert partial_result.phases["training"] == pytest.approx(
            full_result.phases["training"], rel=0.5
        )

    def test_extrapolation_extends_device_busy_time(self):
        trainer = make_trainer(placement="cpu", epochs=1, reps=1)
        machine = trainer.machine
        result = trainer.run()
        busy = machine.clock.busy_time(machine.cpu.name)
        assert busy > 0
        # busy time should roughly fill the sampling+training phases
        assert busy == pytest.approx(
            result.phases["sampling"] + result.phases["training"], rel=0.2
        )


class TestGpuPlacements:
    def test_cpugpu_has_movement_phase(self):
        result = make_trainer(placement="cpugpu").run()
        assert result.phases.get("data_movement", 0) > 0

    def test_preload_reduces_movement(self):
        base = make_trainer(placement="cpugpu", epochs=1).run()
        pre = make_trainer(placement="cpugpu", preload=True, epochs=1).run()
        # Pre-loading pays one bulk copy but removes per-batch feature
        # copies; on PPI with one epoch the *per-batch* portion shrinks.
        assert pre.phases["data_movement"] != base.phases["data_movement"]

    def test_gpu_sampling_runs(self):
        result = make_trainer(placement="gpu").run()
        assert result.total_time > 0
        assert result.phases.get("sampling", 0) > 0

    def test_uva_sampling_runs(self):
        result = make_trainer(placement="uvagpu").run()
        assert result.total_time > 0

    def test_gpu_sampler_faster_than_cpu_sampler(self):
        cpu = make_trainer(placement="cpugpu", epochs=1).run()
        gpu = make_trainer(placement="gpu", epochs=1).run()
        assert gpu.phases["sampling"] < cpu.phases["sampling"]


class TestPrefetch:
    def test_prefetch_reduces_visible_movement(self):
        base = make_trainer(placement="cpugpu", epochs=1, reps=4).run()
        pref = make_trainer(placement="cpugpu", prefetch=True, epochs=1, reps=4).run()
        assert pref.phases.get("data_movement", 0) <= base.phases["data_movement"]
        # improvement is modest ("albeit a little bit"), not free
        assert pref.total_time <= base.total_time

    def test_prefetch_ignored_by_pyg(self):
        base = make_trainer(placement="cpugpu", epochs=1, framework="pyglite").run()
        pref = make_trainer(placement="cpugpu", prefetch=True, epochs=1,
                            framework="pyglite").run()
        assert pref.phases["data_movement"] == pytest.approx(
            base.phases["data_movement"], rel=1e-6
        )


class TestClusterModel:
    def test_cluster_partition_charged_in_sampling_phase(self):
        trainer = make_trainer(model="clustergcn", placement="cpu", epochs=1)
        result = trainer.run()
        assert result.phases["sampling"] > 0
        assert len(result.losses) > 0

    def test_subgraph_loss_uses_train_rows(self):
        trainer = make_trainer(model="clustergcn", placement="cpu", epochs=1)
        result = trainer.run()
        assert all(np.isfinite(result.losses))
