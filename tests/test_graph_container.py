"""Tests for the Graph container and logical-scale bookkeeping."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.graph import Graph, GraphStats, Split


class TestSplit:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Split(0.5, 0.1, 0.1)
        Split(0.66, 0.12, 0.22)  # ok


class TestGraphStats:
    def test_derived_quantities(self):
        stats = GraphStats("g", "d", 1000, 8000, 32, 4, False, Split(0.6, 0.2, 0.2))
        assert stats.avg_degree == pytest.approx(8.0)
        assert stats.feature_nbytes() == 4 * 1000 * 32
        assert stats.structure_nbytes() == 8 * 1001 + 8 * 8000
        assert stats.label_nbytes() == 8 * 1000

    def test_multilabel_label_bytes(self):
        stats = GraphStats("g", "d", 100, 400, 8, 10, True, Split(0.6, 0.2, 0.2))
        assert stats.label_nbytes() == 4 * 10 * 100


class TestGraph:
    def test_validation(self, tiny_graph):
        with pytest.raises(GraphFormatError):
            Graph(
                tiny_graph.adj,
                tiny_graph.features[:-1],  # wrong row count
                tiny_graph.labels,
                tiny_graph.train_mask,
                tiny_graph.val_mask,
                tiny_graph.test_mask,
                tiny_graph.stats,
            )

    def test_scales_reflect_logical_sizes(self, tiny_graph):
        assert tiny_graph.node_scale == pytest.approx(
            tiny_graph.stats.logical_num_nodes / tiny_graph.num_nodes
        )
        assert tiny_graph.node_scale > 1.0
        assert tiny_graph.edge_scale > 1.0

    def test_mask_node_lists(self, tiny_graph):
        train = tiny_graph.train_nodes()
        val = tiny_graph.val_nodes()
        test = tiny_graph.test_nodes()
        assert train.size + val.size + test.size == tiny_graph.num_nodes
        assert np.intersect1d(train, val).size == 0

    def test_subgraph_basic(self, tiny_graph):
        nodes = np.arange(50)
        sub = tiny_graph.subgraph(nodes)
        assert sub.num_nodes == 50
        assert sub.features.shape == (50, tiny_graph.num_features)
        assert sub.labels.shape[0] == 50

    def test_subgraph_inherits_scales(self, tiny_graph):
        nodes = np.arange(60)
        sub = tiny_graph.subgraph(nodes)
        assert sub.node_scale == pytest.approx(tiny_graph.node_scale, rel=0.02)
        if sub.num_edges:
            assert sub.edge_scale == pytest.approx(tiny_graph.edge_scale, rel=0.02)

    def test_subgraph_edges_internal(self, tiny_graph):
        nodes = np.arange(40)
        sub = tiny_graph.subgraph(nodes)
        assert sub.adj.indices.max(initial=0) < 40
