"""The three benchmarked GNNs and their training pipelines.

GraphSAGE, ClusterGCN, and GraphSAINT as configured in the paper
(Section 4.2): two conv layers, identical hyperparameters across
frameworks, trained for 10 epochs with the samplers of Section 4.1.
"""

from repro.models.base import BlockNet, SubgraphNet, make_loss
from repro.models.trainer import MiniBatchTrainer, RunResult, TrainConfig
from repro.models.graphsage import build_graphsage, graphsage_sampler
from repro.models.clustergcn import build_clustergcn, clustergcn_sampler
from repro.models.graphsaint import build_graphsaint, graphsaint_sampler
from repro.models.fullbatch import FullBatchTrainer, build_fullbatch_sage

__all__ = [
    "BlockNet",
    "FullBatchTrainer",
    "MiniBatchTrainer",
    "RunResult",
    "SubgraphNet",
    "TrainConfig",
    "build_clustergcn",
    "build_fullbatch_sage",
    "build_graphsage",
    "build_graphsaint",
    "clustergcn_sampler",
    "graphsage_sampler",
    "graphsaint_sampler",
    "make_loss",
]
