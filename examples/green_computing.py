"""Green computing: GPS-UP analysis of GPU-based sampling (Figure 20).

Quantifies Speedup / Greenup / Powerup of DGL's GPU-based and UVA-based
neighborhood samplers against the CPU-sampling baseline, reproducing the
paper's green-computing case study.

Run:  python examples/green_computing.py
"""

from repro.bench import run_training_experiment
from repro.metrics import gps_up

DATASETS = ("ppi", "flickr", "reddit")


def main() -> None:
    print("GPS-UP of DGL's GPU/UVA samplers vs DGL-CPUGPU (GraphSAGE)\n")
    header = (f"{'dataset':<10}{'variant':<12}{'speedup':>9}{'greenup':>9}"
              f"{'powerup':>9}  {'category'}")
    print(header)
    print("-" * len(header))

    for dataset in DATASETS:
        base = run_training_experiment("dglite", dataset, "graphsage",
                                       placement="cpugpu", epochs=5,
                                       representative_batches=2)
        for placement, label in (("gpu", "DGL-GPU"), ("uvagpu", "DGL-UVAGPU")):
            opt = run_training_experiment("dglite", dataset, "graphsage",
                                          placement=placement, epochs=5,
                                          representative_batches=2)
            m = gps_up(base.total_time, base.total_energy,
                       opt.total_time, opt.total_energy)
            print(f"{dataset:<10}{label:<12}{m.speedup:>8.2f}x{m.greenup:>8.2f}x"
                  f"{m.powerup:>8.2f}x  {m.category()}")

    print("\nReading the table (Observation 8):")
    print("  * Speedup > 1 and Greenup > 1 everywhere: sampling on the GPU")
    print("    is both faster and more energy-efficient overall.")
    print("  * Powerup > 1: the GPU draws MORE average power while doing")
    print("    it — the energy still drops because the runtime shrinks")
    print("    faster than the power rises. Reddit (avg degree ~492) is")
    print("    the most power-hungry case.")
    print("  * UVA trails GPU-resident sampling slightly: zero-copy host")
    print("    reads cross PCIe instead of hitting onboard GDDR6.")


if __name__ == "__main__":
    main()
