"""Executable checklist of the paper's eight observations.

Each observation is a self-contained check that runs a reduced version of
the relevant experiment and returns pass/fail plus the numbers behind the
verdict.  ``python -m repro observations`` runs all eight — the repo's
headline claim ("all eight observations reproduce") as one command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.bench.harness import (
    measure_conv_forward,
    measure_data_loader,
    measure_sampler_epoch,
    run_training_experiment,
)
from repro.metrics import gps_up

FAST = dict(epochs=2, representative_batches=2)


@dataclass
class ObservationResult:
    """Verdict for one observation."""

    number: int
    claim: str
    passed: bool
    evidence: Dict[str, float] = field(default_factory=dict)


def check_observation_1() -> ObservationResult:
    """PyG's data loader is more efficient than DGL's."""
    dgl = measure_data_loader("dglite", "reddit")
    pyg = measure_data_loader("pyglite", "reddit")
    return ObservationResult(
        1, "PyG's data loader is more efficient than DGL's",
        passed=pyg < dgl,
        evidence={"dgl_s": dgl, "pyg_s": pyg},
    )


def check_observation_2() -> ObservationResult:
    """All three DGL samplers beat PyG's; smallest gap for GraphSAINT."""
    ratios = {}
    ok = True
    for sampler in ("neighbor", "cluster", "saint_rw"):
        dgl = measure_sampler_epoch("dglite", "flickr", sampler)["epoch"]
        pyg = measure_sampler_epoch("pyglite", "flickr", sampler)["epoch"]
        ratios[sampler] = pyg / dgl
        ok = ok and dgl < pyg
    ok = ok and ratios["saint_rw"] == min(ratios.values())
    return ObservationResult(
        2, "All DGL samplers faster; smallest gap for GraphSAINT",
        passed=ok, evidence={f"ratio_{k}": v for k, v in ratios.items()},
    )


def check_observation_3() -> ObservationResult:
    """DGL conv layers win on CPU; GPU crossover; PyG unfused OOMs."""
    cpu_dgl = measure_conv_forward("dglite", "reddit", "gcn", device="cpu")
    cpu_pyg = measure_conv_forward("pyglite", "reddit", "gcn", device="cpu")
    gpu_small_dgl = measure_conv_forward("dglite", "ppi", "gcn", device="gpu")
    gpu_small_pyg = measure_conv_forward("pyglite", "ppi", "gcn", device="gpu")
    oom = measure_conv_forward("pyglite", "reddit", "gat", device="gpu")
    gpu_big = measure_conv_forward("dglite", "reddit", "gcn", device="gpu")
    speedup = cpu_dgl.phases["forward"] / gpu_big.phases["forward"]
    ok = (cpu_dgl.phases["forward"] < cpu_pyg.phases["forward"]
          and gpu_small_pyg.phases["forward"] < gpu_small_dgl.phases["forward"]
          and oom.oom and speedup > 10)
    return ObservationResult(
        3, "DGL wins conv CPU; PyG wins small GPU; big GPU speedups; "
           "PyG attention OOMs",
        passed=ok,
        evidence={"cpu_ratio": cpu_pyg.phases["forward"] / cpu_dgl.phases["forward"],
                  "gpu_speedup": speedup, "pyg_gat_oom": float(oom.oom)},
    )


def check_observation_4() -> ObservationResult:
    """Sampling dominates training time (up to ~90%)."""
    result = run_training_experiment("pyglite", "reddit", "graphsage",
                                     placement="cpu", **FAST)
    frac = result.phase_fraction("sampling")
    return ObservationResult(
        4, "Sampling can take up to ~90% of total runtime",
        passed=frac > 0.6, evidence={"sampling_fraction": frac},
    )


def check_observation_5() -> ObservationResult:
    """DGL generally more efficient in runtime and energy."""
    dgl = run_training_experiment("dglite", "reddit", "graphsage",
                                  placement="cpu", **FAST)
    pyg = run_training_experiment("pyglite", "reddit", "graphsage",
                                  placement="cpu", **FAST)
    ok = dgl.total_time < pyg.total_time and dgl.total_energy < pyg.total_energy
    return ObservationResult(
        5, "DGL generally more efficient (runtime and energy)",
        passed=ok,
        evidence={"time_ratio": pyg.total_time / dgl.total_time,
                  "energy_ratio": pyg.total_energy / dgl.total_energy},
    )


def check_observation_6() -> ObservationResult:
    """Pre-loading significantly reduces data-movement time."""
    base = run_training_experiment("dglite", "reddit", "graphsage",
                                   placement="cpugpu", **FAST)
    pre = run_training_experiment("dglite", "reddit", "graphsage",
                                  placement="cpugpu", preload=True, **FAST)
    saving = (base.phases["data_movement"]
              / max(1e-9, pre.phases["data_movement"]))
    return ObservationResult(
        6, "Pre-loading significantly reduces data movement",
        passed=saving > 5 and pre.total_time < base.total_time,
        evidence={"movement_saving_x": saving,
                  "overall_speedup_x": base.total_time / pre.total_time},
    )


def check_observation_7() -> ObservationResult:
    """GPU sampling shrinks but does not eliminate the sampling share."""
    cpu = run_training_experiment("dglite", "reddit", "graphsage",
                                  placement="cpugpu", **FAST)
    gpu = run_training_experiment("dglite", "reddit", "graphsage",
                                  placement="gpu", **FAST)
    ok = (gpu.phase_fraction("sampling") < cpu.phase_fraction("sampling")
          and gpu.phase_fraction("sampling") > 0.05)
    return ObservationResult(
        7, "GPU sampling shrinks the sampling share but it persists",
        passed=ok,
        evidence={"cpu_sampling_frac": cpu.phase_fraction("sampling"),
                  "gpu_sampling_frac": gpu.phase_fraction("sampling")},
    )


def check_observation_8() -> ObservationResult:
    """GPU sampling saves time AND energy (Speedup > 1, Greenup > 1)."""
    base = run_training_experiment("dglite", "reddit", "graphsage",
                                   placement="cpugpu", **FAST)
    opt = run_training_experiment("dglite", "reddit", "graphsage",
                                  placement="gpu", **FAST)
    metrics = gps_up(base.total_time, base.total_energy,
                     opt.total_time, opt.total_energy)
    return ObservationResult(
        8, "GPU sampling: Speedup > 1 and Greenup > 1",
        passed=metrics.speedup > 1 and metrics.greenup > 1,
        evidence={"speedup": metrics.speedup, "greenup": metrics.greenup,
                  "powerup": metrics.powerup},
    )


CHECKS: List[Callable[[], ObservationResult]] = [
    check_observation_1,
    check_observation_2,
    check_observation_3,
    check_observation_4,
    check_observation_5,
    check_observation_6,
    check_observation_7,
    check_observation_8,
]


def run_all_observations() -> List[ObservationResult]:
    """Run the eight checks in order."""
    return [check() for check in CHECKS]


def format_observation_report(results: List[ObservationResult]) -> str:
    lines = ["Paper observations checklist", "=" * 28]
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        lines.append(f"[{mark}] Obs {r.number}: {r.claim}")
        evidence = ", ".join(f"{k}={v:.3g}" for k, v in r.evidence.items())
        lines.append(f"       {evidence}")
    passed = sum(r.passed for r in results)
    lines.append(f"\n{passed}/{len(results)} observations reproduced")
    return "\n".join(lines)
