"""Figure 21: GraphSAGE breakdown with DGL's GPU- and UVA-based samplers.

The paper: sampling share shrinks vs CPU sampling but still reaches ~40%
(DGL-GPU) / ~60% (DGL-UVAGPU) of total runtime.
"""

from conftest import DATASETS, EPOCHS, REPRESENTATIVE_BATCHES, emit

from repro.bench import run_training_experiment
from repro.profiling.profiler import PHASES


def test_fig21_gpu_sampler_breakdown(once):
    def run():
        out = {}
        for placement in ("cpugpu", "gpu", "uvagpu"):
            out[placement] = {
                ds: run_training_experiment(
                    "dglite", ds, "graphsage", placement=placement,
                    epochs=EPOCHS,
                    representative_batches=REPRESENTATIVE_BATCHES,
                )
                for ds in DATASETS
            }
        return out

    grid = once(run)

    lines = ["Figure 21: breakdown with GPU/UVA-based sampling", "=" * 50]
    for placement in ("gpu", "uvagpu"):
        label = {"gpu": "DGL-GPU", "uvagpu": "DGL-UVAGPU"}[placement]
        lines.append(f"\n{label}")
        for ds, result in grid[placement].items():
            cells = "".join(
                f"{p}={result.phases.get(p, 0.0):.2f}s({100 * result.phase_fraction(p):.0f}%) "
                for p in PHASES
            )
            lines.append(f"  {ds:<15}{cells}")
    emit("fig21_gpu_sampler_breakdown", "\n".join(lines))

    for ds in DATASETS:
        cpu_frac = grid["cpugpu"][ds].phase_fraction("sampling")
        gpu_frac = grid["gpu"][ds].phase_fraction("sampling")
        uva_frac = grid["uvagpu"][ds].phase_fraction("sampling")
        # Observation 7: the sampling share shrinks with GPU sampling...
        assert gpu_frac < cpu_frac, ds
        # ...but remains non-trivial.
        assert gpu_frac > 0.03, ds
        # UVA sampling (zero-copy reads) keeps a larger sampling share.
        assert uva_frac >= gpu_frac, ds

    # Somewhere the sampling share stays large even on GPU (paper: ~40%).
    assert max(grid["gpu"][ds].phase_fraction("sampling") for ds in DATASETS) > 0.2
    assert max(grid["uvagpu"][ds].phase_fraction("sampling") for ds in DATASETS) > 0.35

    # DGL-GPU movement is just the pre-load + initial model; DGL-UVAGPU
    # movement is only the initial model (paper text for Figure 21).
    for ds in DATASETS:
        assert (grid["uvagpu"][ds].phases.get("data_movement", 0.0)
                < grid["gpu"][ds].phases.get("data_movement", 0.0)), ds
