"""Sampling deep dive: the three samplers of the paper, side by side.

Reproduces the Figure 4 functional test with extra detail: per-epoch
runtime, one-time costs (PyG's CSR->CSC conversion, ClusterGCN's METIS
partitioning), batches per epoch, and what one mini-batch actually looks
like under each sampler.

Run:  python examples/sampling_deep_dive.py [dataset]
"""

import sys

from repro.bench import measure_sampler_epoch
from repro.datasets import DATASET_NAMES
from repro.frameworks import get_framework
from repro.hardware import paper_testbed

SAMPLERS = (
    ("neighbor", "GraphSAGE 25/10 fanout, batch 512"),
    ("cluster", "ClusterGCN 2000 parts, 50/batch"),
    ("saint_rw", "GraphSAINT 3000 roots x 2 steps"),
)


def inspect_batches(dataset: str) -> None:
    fw = get_framework("dglite")
    machine = paper_testbed()
    fgraph = fw.load(dataset, machine)

    print(f"\nOne mini-batch from each sampler on {dataset} "
          f"(actual scaled-down sizes):")
    neighbor = fw.neighbor_sampler(fgraph, seed=0)
    batch = next(iter(neighbor.epoch()))
    sizes = " <- ".join(f"{adj.num_dst}" for adj in reversed(batch.adjs))
    print(f"  neighbor : {len(batch.adjs)} blocks, frontier sizes "
          f"{batch.adjs[0].num_src} -> {sizes}, "
          f"{sum(a.num_edges for a in batch.adjs)} sampled edges")

    cluster = fw.cluster_sampler(fgraph, seed=0)
    batch = cluster.sample()
    print(f"  cluster  : {batch.adjs[0].num_dst} nodes / "
          f"{batch.adjs[0].num_edges} edges "
          f"({cluster.algorithm.actual_parts_per_batch} of "
          f"{cluster.algorithm.actual_num_parts} clusters)")

    saint = fw.saint_sampler(fgraph, seed=0)
    batch = saint.sample()
    print(f"  saint_rw : {batch.adjs[0].num_dst} nodes / "
          f"{batch.adjs[0].num_edges} edges "
          f"(from {saint.algorithm.actual_num_roots} walk roots)")


def main(dataset: str = "reddit") -> None:
    if dataset not in DATASET_NAMES:
        raise SystemExit(f"unknown dataset {dataset!r}; pick one of {DATASET_NAMES}")

    print(f"Sampler cost per training epoch on {dataset} (simulated seconds)\n")
    header = (f"{'sampler':<10}{'framework':<10}{'epoch':>10}{'one-time':>10}"
              f"{'batches':>9}")
    print(header)
    print("-" * len(header))
    for sampler, description in SAMPLERS:
        for fw in ("dglite", "pyglite"):
            out = measure_sampler_epoch(fw, dataset, sampler)
            print(f"{sampler:<10}{fw:<10}{out['epoch']:>9.3f}s"
                  f"{out['one_time']:>9.3f}s{out['batches']:>9.0f}")
        print(f"{'':<10}({description})")

    print("\n'one-time' = CSR->CSC conversion (PyG only) plus METIS-style")
    print("partitioning (cluster sampler only); paid once, amortized over")
    print("all epochs.")
    inspect_batches(dataset)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "reddit")
