"""Kernel-level time attribution — the "magnifying glass" view.

The paper's title promises kernel-level insight; this module surfaces it:
every simulated device keeps per-kernel busy-time counters
(:class:`~repro.hardware.device.DeviceCounters`), and the report here
aggregates them into the table that explains *why* a framework is slow —
e.g. PyG-CPU training time concentrating in ``scatter_add`` while DGL's
concentrates in fused ``spmm``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hardware.machine import Machine


@dataclass(frozen=True)
class KernelEntry:
    """One kernel's aggregate activity on one device."""

    device: str
    kernel: str
    seconds: float
    fraction: float  # of that device's busy time


def kernel_breakdown(machine: Machine, top: int = 0) -> List[KernelEntry]:
    """Per-kernel busy seconds for every device, sorted descending.

    ``top`` limits entries per device (0 = all).
    """
    entries: List[KernelEntry] = []
    devices = [machine.cpu] + ([machine.gpu] if machine.gpu is not None else [])
    for device in devices:
        total = device.counters.busy_seconds
        if total <= 0:
            continue
        ranked = sorted(device.counters.by_kernel.items(),
                        key=lambda kv: -kv[1])
        if top:
            ranked = ranked[:top]
        for kernel, seconds in ranked:
            entries.append(KernelEntry(device.name, kernel, seconds,
                                       seconds / total))
    return entries


def group_by_family(machine: Machine) -> Dict[str, float]:
    """Busy seconds grouped by kernel family prefix (spmm, scatter, ...).

    Kernel names follow ``family[.qualifier]`` (``spmm.fwd``,
    ``gather.bwd``, ``neighbor.sample``); grouping on the first dotted
    component gives the coarse attribution used by the benches.
    """
    grouped: Dict[str, float] = {}
    devices = [machine.cpu] + ([machine.gpu] if machine.gpu is not None else [])
    for device in devices:
        for kernel, seconds in device.counters.by_kernel.items():
            family = kernel.split(".")[0]
            grouped[family] = grouped.get(family, 0.0) + seconds
    return grouped


#: ``--sort`` axis -> row field for the metrics-backed breakdown.
KERNEL_SORT_KEYS = {"virtual": "seconds", "flops": "flops", "bytes": "bytes"}

_KERNEL_COUNTER_FIELDS = {
    "kernel.busy_seconds": "seconds",
    "kernel.flops": "flops",
    "kernel.bytes_moved": "bytes",
    "kernel.invocations": "launches",
}


def kernel_rows_from_metrics(metric_records: Sequence[dict],
                             sort: str = "virtual",
                             top: int = 0) -> List[dict]:
    """Per-(device, kernel) rows joined from a run manifest's counters.

    This is the offline twin of :func:`kernel_breakdown`: it needs no
    live :class:`Machine`, only the ``metrics`` list of a ``run.json``,
    so ``repro report --telemetry`` can rank kernels after the fact.
    ``sort`` picks the descending axis (``virtual`` seconds, ``flops``,
    or ``bytes``); ``top`` limits the rows (0 = all).
    """
    if sort not in KERNEL_SORT_KEYS:
        raise ValueError(f"unknown sort axis {sort!r}; expected one of "
                         f"{tuple(KERNEL_SORT_KEYS)}")
    rows: Dict[Tuple[str, str], dict] = {}
    for record in metric_records:
        field = _KERNEL_COUNTER_FIELDS.get(record.get("name"))
        if field is None or record.get("kind") != "counter":
            continue
        labels = record.get("labels", {})
        key = (str(labels.get("device", "?")), str(labels.get("kernel", "?")))
        row = rows.setdefault(key, {"device": key[0], "kernel": key[1],
                                    "seconds": 0.0, "flops": 0.0,
                                    "bytes": 0.0, "launches": 0.0})
        row[field] += float(record.get("value", 0.0))
    axis = KERNEL_SORT_KEYS[sort]
    ranked = sorted(rows.values(),
                    key=lambda r: (-r[axis], r["device"], r["kernel"]))
    return ranked[:top] if top else ranked


def format_metric_kernel_table(rows: Sequence[dict],
                               sort: str = "virtual") -> str:
    """Aligned table for :func:`kernel_rows_from_metrics` output."""
    header = (f"{'device':<24}{'kernel':<26}{'seconds':>11}"
              f"{'gflops':>10}{'MB':>10}{'launches':>10}")
    lines = [f"kernel breakdown (sorted by {sort}):", header,
             "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['device']:<24}{row['kernel']:<26}"
            f"{row['seconds']:>10.4f}s{row['flops'] / 1e9:>10.3f}"
            f"{row['bytes'] / 1e6:>10.2f}{int(row['launches']):>10}")
    return "\n".join(lines)


def format_kernel_table(entries: Sequence[KernelEntry], title: str = "") -> str:
    """Render kernel entries as an aligned text table."""
    lines: List[str] = []
    if title:
        lines += [title, "=" * len(title)]
    header = f"{'device':<24}{'kernel':<28}{'seconds':>12}{'share':>8}"
    lines += [header, "-" * len(header)]
    for entry in entries:
        lines.append(
            f"{entry.device:<24}{entry.kernel:<28}"
            f"{entry.seconds:>11.4f}s{100 * entry.fraction:>7.1f}%"
        )
    return "\n".join(lines)
