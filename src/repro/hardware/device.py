"""Simulated compute devices and the kernel cost model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.memory import MemoryLedger
from repro.hardware.specs import DeviceSpec
from repro.simtime import VirtualClock
from repro.telemetry import runtime as telemetry


@dataclass(frozen=True)
class KernelCost:
    """The work performed by one kernel invocation.

    ``flops`` and ``bytes_moved`` are *logical* quantities (paper-scale work,
    not the scaled-down arrays actually computed on).  ``compute_eff`` and
    ``memory_eff`` come from the framework profile and express how close the
    framework's implementation of this kernel gets to the device's peak.
    ``launches`` lets a single call account for a whole loop of small kernel
    launches (PyG's unfused per-hop ops, Python-loop samplers, ...).
    """

    name: str
    flops: float = 0.0
    bytes_moved: float = 0.0
    compute_eff: float = 1.0
    memory_eff: float = 1.0
    launches: int = 1
    fixed_time: float = 0.0  # extra constant seconds (e.g. format conversion setup)

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise ValueError(f"kernel {self.name}: negative work")
        if not (0 < self.compute_eff <= 1.0) or not (0 < self.memory_eff <= 1.0):
            raise ValueError(f"kernel {self.name}: efficiency must be in (0, 1]")
        if self.launches < 1:
            raise ValueError(f"kernel {self.name}: launches must be >= 1")


@dataclass
class DeviceCounters:
    """Aggregate activity counters for one device."""

    kernels: int = 0
    flops: float = 0.0
    bytes_moved: float = 0.0
    busy_seconds: float = 0.0
    by_kernel: Dict[str, float] = field(default_factory=dict)

    def record(self, cost: KernelCost, seconds: float) -> None:
        self.kernels += cost.launches
        self.flops += cost.flops
        self.bytes_moved += cost.bytes_moved
        self.busy_seconds += seconds
        self.by_kernel[cost.name] = self.by_kernel.get(cost.name, 0.0) + seconds


class Device:
    """A compute device that executes kernels against the roofline model.

    Executing a kernel advances the machine's virtual clock and marks this
    device busy for the kernel's duration, which is what the power rails
    integrate over.
    """

    def __init__(self, spec: DeviceSpec, clock: VirtualClock) -> None:
        self.spec = spec
        self.clock = clock
        self.memory = MemoryLedger(spec.name, spec.mem_capacity)
        self.counters = DeviceCounters()

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> str:
        return self.spec.kind

    def kernel_time(self, cost: KernelCost) -> float:
        """Roofline duration of one kernel invocation, without side effects."""
        compute_t = cost.flops / (self.spec.peak_flops * cost.compute_eff)
        memory_t = cost.bytes_moved / (self.spec.mem_bandwidth * cost.memory_eff)
        return (
            cost.launches * self.spec.kernel_launch_overhead
            + max(compute_t, memory_t)
            + cost.fixed_time
        )

    def execute(self, cost: KernelCost) -> float:
        """Run a kernel: advance the clock, mark busy, update counters."""
        seconds = self.kernel_time(cost)
        self.clock.occupy(self.name, seconds, tag=cost.name)
        self.counters.record(cost, seconds)
        registry = telemetry.metrics()
        if registry is not None:
            labels = {"device": self.name, "kernel": cost.name}
            registry.counter("kernel.invocations", **labels).inc(cost.launches)
            if seconds:
                registry.counter("kernel.busy_seconds", **labels).inc(seconds)
            if cost.flops:
                registry.counter("kernel.flops", **labels).inc(cost.flops)
            if cost.bytes_moved:
                registry.counter("kernel.bytes_moved", **labels).inc(cost.bytes_moved)
        return seconds

    def busy_fraction(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Fraction of [start, end) this device spent busy."""
        if end is None:
            end = self.clock.now
        span = end - start
        if span <= 0:
            return 0.0
        return self.clock.busy_time(self.name, start, end) / span

    def reset_counters(self) -> None:
        self.counters = DeviceCounters()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.spec.name}, kind={self.spec.kind})"
