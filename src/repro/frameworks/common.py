"""Helpers shared by both frameworks' nn modules (normalizations, loops)."""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.formats import INDEX_DTYPE
from repro.kernels.adj import SparseAdj
from repro.tensor.context import charge
from repro.tensor.tensor import FLOAT_DTYPE, Tensor


def with_self_loops(adj: SparseAdj) -> SparseAdj:
    """Square adjacency with one self-loop per node added.

    Loop edges are merged at the end of each node's dst segment — a
    single vectorized insert that keeps the edge list in canonical
    (dst-sorted) order, exactly where the old append-then-argsort placed
    them, so construction can take the argsort-free fast path.
    """
    if adj.num_src != adj.num_dst:
        raise GraphFormatError("self-loops require a square adjacency")
    loops = np.arange(adj.num_dst, dtype=INDEX_DTYPE)
    segment_ends = adj.indptr[1:]
    return SparseAdj.from_sorted_block(
        np.insert(adj.src, segment_ends, loops),
        np.insert(adj.dst, segment_ends, loops),
        num_src=adj.num_src,
        num_dst=adj.num_dst,
        device=adj.device,
        node_scale=adj.node_scale,
        edge_scale=adj.edge_scale,
    )


def gcn_norm_weight(adj: SparseAdj) -> Tensor:
    """Symmetric GCN normalization ``1 / sqrt(d[src] * d[dst])`` per edge.

    Degrees are in-degrees of the (self-loop-including) adjacency; the
    caller is expected to pass an adjacency that already has self-loops.
    """
    deg = np.maximum(adj.in_degrees().astype(FLOAT_DTYPE), 1.0)
    inv_sqrt = 1.0 / np.sqrt(deg)
    weight = inv_sqrt[adj.src] * inv_sqrt[adj.dst]
    e_log = adj.logical_num_edges
    charge(adj.device, "gcn_norm", "elementwise", flops=4.0 * e_log,
           bytes_moved=12.0 * e_log)
    return Tensor(weight, device=adj.device, work_scale=adj.edge_scale,
                  _owns_memory=False)


def neg_laplacian_weight(adj: SparseAdj) -> Tensor:
    """Per-edge weight of ``-D^{-1/2} A D^{-1/2}`` (ChebConv's scaled
    Laplacian with lambda_max = 2: ``L~ = L_sym - I = -D^{-1/2} A D^{-1/2}``)."""
    deg = np.maximum(adj.in_degrees().astype(FLOAT_DTYPE), 1.0)
    inv_sqrt = 1.0 / np.sqrt(deg)
    weight = -(inv_sqrt[adj.src] * inv_sqrt[adj.dst])
    e_log = adj.logical_num_edges
    charge(adj.device, "cheb_norm", "elementwise", flops=4.0 * e_log,
           bytes_moved=12.0 * e_log)
    return Tensor(weight, device=adj.device, work_scale=adj.edge_scale,
                  _owns_memory=False)


def mean_norm_weight(adj: SparseAdj) -> Tensor:
    """Per-edge weight ``1 / d_in[dst]`` turning SpMM-sum into mean."""
    weight = adj.inv_in_degrees()[adj.dst]
    e_log = adj.logical_num_edges
    charge(adj.device, "mean_norm", "elementwise", flops=2.0 * e_log,
           bytes_moved=8.0 * e_log)
    return Tensor(weight, device=adj.device, work_scale=adj.edge_scale,
                  _owns_memory=False)


def dst_rows(x: Tensor, adj: SparseAdj) -> Tensor:
    """Destination-side rows of a (bipartite) block's source features.

    Block layout guarantees dst nodes are the prefix of src nodes, so this
    is a cheap slice.
    """
    if x.shape[0] == adj.num_dst:
        return x
    return x[:adj.num_dst]
