"""Property-based tests on the sampler algorithms (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.base import DatasetSpec, build_dataset
from repro.graph.graph import Split
from repro.sampling.cluster import ClusterSampler
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.randomwalk import RandomWalkSampler

settings.register_profile("repro-sampling", max_examples=15, deadline=None)
settings.load_profile("repro-sampling")


def _graph(seed: int):
    spec = DatasetSpec(
        name=f"prop-{seed}",
        description="property-test graph",
        logical_num_nodes=5_000,
        logical_num_edges=40_000,
        num_features=8,
        num_classes=4,
        multilabel=False,
        split=Split(0.6, 0.2, 0.2),
        actual_num_nodes=200,
        actual_num_edges=1600,
        num_communities=4,
        seed=seed,
    )
    return build_dataset(spec)


GRAPH_SEEDS = st.integers(min_value=0, max_value=5)


class TestNeighborProperties:
    @given(GRAPH_SEEDS, st.integers(1, 8), st.integers(1, 8),
           st.integers(0, 100))
    def test_blocks_always_chain(self, gseed, f1, f2, sseed):
        graph = _graph(gseed)
        sampler = NeighborSampler(graph, fanouts=(f1, f2), batch_size=64,
                                  seed=sseed)
        roots = graph.train_nodes()[:5]
        batch = sampler.sample(roots)
        assert np.array_equal(batch.blocks[0].dst_nodes,
                              batch.blocks[1].src_nodes)
        assert np.array_equal(batch.blocks[-1].dst_nodes, roots)
        for block in batch.blocks:
            assert np.array_equal(block.src_nodes[:block.dst_nodes.size],
                                  block.dst_nodes)

    @given(GRAPH_SEEDS, st.integers(1, 6), st.integers(0, 100))
    def test_fanout_bound_holds(self, gseed, fanout, sseed):
        graph = _graph(gseed)
        sampler = NeighborSampler(graph, fanouts=(fanout,), batch_size=64,
                                  seed=sseed)
        batch = sampler.sample(graph.train_nodes()[:8])
        block = batch.blocks[0]
        if block.num_edges:
            per_dst = np.bincount(block.dst)
            assert per_dst.max() <= fanout

    @given(GRAPH_SEEDS, st.integers(0, 50))
    def test_work_is_positive_and_finite(self, gseed, sseed):
        graph = _graph(gseed)
        sampler = NeighborSampler(graph, seed=sseed)
        batch = sampler.sample(graph.train_nodes()[:4])
        assert batch.work.items > 0
        assert np.isfinite(batch.work.items)
        assert np.isfinite(batch.work.fetch_bytes)


class TestClusterProperties:
    @given(GRAPH_SEEDS, st.integers(2, 12), st.integers(1, 4))
    def test_epoch_touches_each_node_at_most_once(self, gseed, parts, per):
        if per > parts:
            return
        graph = _graph(gseed)
        sampler = ClusterSampler(graph, num_parts=parts, parts_per_batch=per,
                                 seed=0)
        seen = []
        for batch in sampler.epoch_batches():
            seen.extend(batch.nodes.tolist())
        assert len(seen) == len(set(seen))

    @given(GRAPH_SEEDS, st.integers(0, 50))
    def test_batch_edges_stay_local(self, gseed, sseed):
        graph = _graph(gseed)
        sampler = ClusterSampler(graph, seed=sseed)
        batch = sampler.sample()
        if batch.num_edges:
            assert batch.src.max() < batch.num_nodes
            assert batch.dst.max() < batch.num_nodes


class TestWalkProperties:
    @given(GRAPH_SEEDS, st.integers(0, 4), st.integers(0, 50))
    def test_walk_rows_are_paths_or_stalls(self, gseed, length, sseed):
        graph = _graph(gseed)
        sampler = RandomWalkSampler(graph, num_roots=100, walk_length=length,
                                    seed=sseed)
        path = sampler.walk(np.arange(min(20, graph.num_nodes)))
        assert path.shape[1] == length + 1
        for row in path:
            for a, b in zip(row[:-1], row[1:]):
                assert a == b or b in graph.adj.neighbors(int(a))

    @given(GRAPH_SEEDS, st.integers(0, 50))
    def test_subgraph_nodes_sorted_unique(self, gseed, sseed):
        graph = _graph(gseed)
        batch = RandomWalkSampler(graph, seed=sseed).sample()
        assert np.array_equal(batch.nodes, np.unique(batch.nodes))
