"""Gradient checks: every tensor op against central finite differences."""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, cat

RNG = np.random.default_rng(42)
EPS = 1e-2
TOL = 2e-2


def gradcheck(build, *shapes, positive=False):
    """Check d(sum of op output)/d(input_i) against finite differences."""
    arrays = []
    for shape in shapes:
        arr = RNG.random(shape).astype(np.float32) + (0.5 if positive else -0.5)
        arrays.append(arr)

    def run(arrs):
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrs]
        out = build(*tensors)
        return tensors, out

    tensors, out = run(arrays)
    loss = out.sum() if out.data.size > 1 else out
    loss.backward()

    for i, arr in enumerate(arrays):
        flat_index = np.unravel_index(RNG.integers(arr.size), arr.shape)
        perturbed = [a.copy() for a in arrays]
        perturbed[i][flat_index] += EPS
        _, up = run(perturbed)
        perturbed[i][flat_index] -= 2 * EPS
        _, down = run(perturbed)
        fd = (float(up.data.sum()) - float(down.data.sum())) / (2 * EPS)
        ag = float(tensors[i].grad[flat_index])
        assert ag == pytest.approx(fd, abs=TOL, rel=TOL), f"input {i} of {build}"


class TestArithmeticGrads:
    def test_add(self):
        gradcheck(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        gradcheck(lambda a, b: a + b, (3, 4), (4,))

    def test_mul(self):
        gradcheck(lambda a, b: a * b, (3, 4), (3, 4))

    def test_mul_broadcast(self):
        gradcheck(lambda a, b: a * b, (3, 4), (3, 1))

    def test_div(self):
        gradcheck(lambda a, b: a / b, (3, 3), (3, 3), positive=True)

    def test_pow(self):
        gradcheck(lambda a: a ** 3, (4,))

    def test_matmul(self):
        gradcheck(lambda a, b: a @ b, (3, 4), (4, 2))

    def test_sub_rsub(self):
        gradcheck(lambda a: 1.0 - a, (5,))


class TestShapeGrads:
    def test_reshape(self):
        gradcheck(lambda a: (a.reshape(2, 6) * 2).sum(), (3, 4))

    def test_transpose(self):
        gradcheck(lambda a: (a.T @ a), (3, 4))

    def test_index_select(self):
        idx = np.array([0, 2, 2, 1])
        gradcheck(lambda a: a.index_select(idx) * 3, (4, 3))

    def test_slice(self):
        gradcheck(lambda a: a[1:3] * 2, (5, 2))

    def test_cat(self):
        gradcheck(lambda a, b: cat([a * 2, b * 3], axis=0), (2, 3), (4, 3))


class TestReductionGrads:
    def test_sum_all(self):
        gradcheck(lambda a: a.sum(), (3, 4))

    def test_sum_axis(self):
        gradcheck(lambda a: a.sum(axis=1) ** 2, (3, 4))

    def test_mean(self):
        gradcheck(lambda a: a.mean(axis=0) ** 2, (5, 2))

    def test_max(self):
        # distinct values so argmax is stable under perturbation
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        x = Tensor(arr, requires_grad=True)
        x.max(axis=0).sum().backward()
        expected = np.zeros((3, 4), dtype=np.float32)
        expected[2, :] = 1.0
        assert np.allclose(x.grad, expected)


class TestFunctionalGrads:
    def test_relu(self):
        gradcheck(lambda a: F.relu(a), (4, 4))

    def test_leaky_relu(self):
        gradcheck(lambda a: F.leaky_relu(a, 0.1), (4, 4))

    def test_elu(self):
        gradcheck(lambda a: F.elu(a), (4, 4))

    def test_sigmoid(self):
        gradcheck(lambda a: F.sigmoid(a), (4, 4))

    def test_tanh(self):
        gradcheck(lambda a: F.tanh(a), (4, 4))

    def test_exp_log(self):
        gradcheck(lambda a: a.exp(), (3, 3))
        gradcheck(lambda a: a.log(), (3, 3), positive=True)

    def test_softmax(self):
        gradcheck(lambda a: F.softmax(a) ** 2, (3, 5))

    def test_log_softmax(self):
        gradcheck(lambda a: F.log_softmax(a) * 0.5, (3, 5))

    def test_cross_entropy(self):
        labels = np.array([0, 2, 1])
        gradcheck(lambda a: F.cross_entropy(a, labels), (3, 4))

    def test_bce_with_logits(self):
        targets = (RNG.random((3, 4)) > 0.5).astype(np.float32)
        gradcheck(lambda a: F.binary_cross_entropy_with_logits(a, targets), (3, 4))


class TestDropout:
    def test_identity_when_eval(self):
        x = Tensor(np.ones((4, 4), dtype=np.float32), requires_grad=True)
        out = F.dropout(x, p=0.5, training=False)
        assert out is x

    def test_identity_when_p_zero(self):
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        assert F.dropout(x, p=0.0, training=True) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, p=0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_gradient_uses_same_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10), dtype=np.float32), requires_grad=True)
        out = F.dropout(x, p=0.5, training=True, rng=rng)
        out.sum().backward()
        # gradient is the mask itself: zero where dropped, 2.0 where kept
        assert set(np.unique(x.grad)) <= {0.0, 2.0}

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3, dtype=np.float32)), p=1.0)


class TestLossValidation:
    def test_cross_entropy_label_shape_checked(self):
        logits = Tensor(np.zeros((3, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.zeros((3, 4)))

    def test_bce_shape_checked(self):
        logits = Tensor(np.zeros((3, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            F.binary_cross_entropy_with_logits(logits, np.zeros((3, 2)))

    def test_cross_entropy_value_matches_manual(self):
        logits = Tensor(np.log(np.array([[0.25, 0.75], [0.5, 0.5]], dtype=np.float32)))
        loss = F.cross_entropy(logits, np.array([1, 0]))
        expected = -(np.log(0.75) + np.log(0.5)) / 2
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_accuracy_and_f1(self):
        logits = Tensor(np.array([[2.0, 1.0], [0.0, 3.0]], dtype=np.float32))
        assert F.accuracy(logits, np.array([0, 1])) == 1.0
        assert F.accuracy(logits, np.array([1, 1])) == 0.5
        ml_logits = Tensor(np.array([[1.0, -1.0]], dtype=np.float32))
        assert F.micro_f1(ml_logits, np.array([[1.0, 0.0]])) == 1.0
        assert 0.0 <= F.micro_f1(ml_logits, np.array([[0.0, 1.0]])) < 1.0
