"""Declarative experiment suites.

A suite is a JSON-serializable list of experiment specs; each spec names
an experiment kind (``train`` / ``fullbatch`` / ``loader`` / ``sampler`` /
``conv``) plus its parameters.  :func:`run_suite` executes them in order
on fresh machines and returns uniform records; :func:`save_results` /
:func:`load_results` persist them for regression comparisons.

Example::

    suite = [
        {"kind": "train", "framework": "dglite", "dataset": "ppi",
         "model": "graphsage", "placement": "cpu", "epochs": 2},
        {"kind": "conv", "framework": "pyglite", "dataset": "reddit",
         "conv": "gat", "device": "gpu"},
    ]
    records = run_suite(suite)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.bench.harness import (
    measure_conv_forward,
    measure_data_loader,
    measure_sampler_epoch,
    run_fullbatch_experiment,
    run_training_experiment,
)
from repro.errors import BenchmarkError

VALID_KINDS = ("train", "fullbatch", "loader", "sampler", "conv")


def _run_one(spec: Dict) -> Dict:
    kind = spec.get("kind")
    if kind == "train":
        result = run_training_experiment(
            spec["framework"], spec["dataset"], spec["model"],
            placement=spec.get("placement", "cpu"),
            preload=spec.get("preload", False),
            prefetch=spec.get("prefetch", False),
            epochs=spec.get("epochs", 10),
            representative_batches=spec.get("representative_batches", 2),
            feature_cache_fraction=spec.get("feature_cache_fraction", 0.0),
        )
        return {
            "label": result.label,
            "total_time": result.total_time,
            "phases": result.phases,
            "avg_power": result.avg_power,
            "energy": result.total_energy,
            "oom": result.oom,
        }
    if kind == "fullbatch":
        result = run_fullbatch_experiment(
            spec["framework"], spec["dataset"],
            device=spec.get("device", "cpu"),
            epochs=spec.get("epochs", 3),
        )
        return {
            "label": result.label,
            "epoch_time": result.phases.get("training", 0.0),
            "avg_power": result.avg_power,
            "energy": result.total_energy,
            "oom": result.oom,
        }
    if kind == "loader":
        seconds = measure_data_loader(spec["framework"], spec["dataset"])
        return {"label": f"loader/{spec['framework']}", "seconds": seconds}
    if kind == "sampler":
        out = measure_sampler_epoch(spec["framework"], spec["dataset"],
                                    spec.get("sampler", "neighbor"))
        return {"label": f"sampler/{spec['framework']}", **out}
    if kind == "conv":
        result = measure_conv_forward(spec["framework"], spec["dataset"],
                                      spec.get("conv", "gcn"),
                                      device=spec.get("device", "cpu"))
        return {
            "label": result.label,
            "seconds": result.phases.get("forward"),
            "oom": result.oom,
        }
    raise BenchmarkError(
        f"unknown experiment kind {kind!r}; expected one of {VALID_KINDS}"
    )


def run_suite(specs: Sequence[Dict]) -> List[Dict]:
    """Run every spec; each record echoes its spec plus the results."""
    records = []
    for index, spec in enumerate(specs):
        if not isinstance(spec, dict):
            raise BenchmarkError(f"spec #{index} is not an object")
        record = {"spec": dict(spec)}
        record.update(_run_one(spec))
        records.append(record)
    return records


def run_suite_file(path: Union[str, Path]) -> List[Dict]:
    """Load a JSON suite file and run it."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise BenchmarkError("suite file must contain a JSON list of specs")
    return run_suite(payload)


def save_results(records: List[Dict], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(records, indent=2))
    return path


def load_results(path: Union[str, Path]) -> List[Dict]:
    return json.loads(Path(path).read_text())


def compare_results(old: List[Dict], new: List[Dict],
                    tolerance: float = 0.05) -> List[str]:
    """Regressions between two runs of the same suite.

    Returns human-readable deviation messages for any numeric field that
    moved by more than ``tolerance`` (relative).  Simulated results are
    deterministic, so any drift means the code changed behaviour.
    """
    problems = []
    if len(old) != len(new):
        return [f"record count changed: {len(old)} -> {len(new)}"]
    for i, (a, b) in enumerate(zip(old, new)):
        for key, old_value in a.items():
            if key in ("spec", "label") or not isinstance(old_value, (int, float)):
                continue
            new_value = b.get(key)
            if not isinstance(new_value, (int, float)):
                problems.append(f"#{i} {key}: missing in new results")
                continue
            if old_value == 0:
                continue
            drift = abs(new_value - old_value) / abs(old_value)
            if drift > tolerance:
                problems.append(
                    f"#{i} ({a.get('label', '?')}) {key}: "
                    f"{old_value:.6g} -> {new_value:.6g} ({100 * drift:.1f}%)"
                )
    return problems
