"""Virtual time for the simulated machine.

All runtimes reported by the benchmark harness come from a
:class:`VirtualClock` that kernels and transfers advance explicitly.  Real
numpy execution time never leaks into results, which makes every figure
deterministic and lets the cost models represent the paper's testbed (dual
Xeon Silver 4114 + Quadro RTX 8000) rather than this container.

Devices can advance the clock in two modes:

* ``advance(dt)`` — serial progress: the whole machine moves forward.
* ``occupy(device_key, dt)`` — per-device busy tracking used by the power
  model to integrate dynamic power only while a device is actually busy.

The clock also supports *async overlap windows* used by DGLite's
pre-fetching case study: inside ``overlap()`` the maximum of the overlapped
durations is charged instead of their sum.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class DeferredRecord:
    """Work measured inside a :meth:`VirtualClock.deferred` block."""

    total: float = 0.0
    busy: Dict[str, float] = field(default_factory=dict)


@dataclass
class BusyInterval:
    """A half-open interval [start, end) during which a device was busy."""

    device: str
    start: float
    end: float
    tag: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class VirtualClock:
    """A monotonically advancing simulated clock with busy-interval tracking."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._defer_depth: int = 0
        self._defer_record: Optional["DeferredRecord"] = None
        self._busy: List[BusyInterval] = []
        # Per-device sorted indexes for O(log n) busy_time queries: the
        # energy monitor samples busy_time thousands of times per run.
        # Intervals per device are disjoint and start-ordered because the
        # clock is serial.
        self._starts: Dict[str, List[float]] = {}
        self._ends: Dict[str, List[float]] = {}
        self._cumdur: Dict[str, List[float]] = {}
        self._overlap_depth: int = 0
        self._overlap_max: float = 0.0
        self._listeners: List[Callable[[float, float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def add_listener(self, fn: Callable[[float, float], None]) -> None:
        """Register ``fn(old_now, new_now)`` to run on every advance."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[float, float], None]) -> None:
        self._listeners.remove(fn)

    def advance(self, dt: float) -> None:
        """Move simulated time forward by ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        if self._defer_depth > 0:
            self._defer_record.total += dt
            return
        if self._overlap_depth > 0:
            # Inside an overlap window durations race; record the longest.
            self._overlap_max = max(self._overlap_max, dt)
            return
        old = self._now
        self._now += dt
        for fn in self._listeners:
            fn(old, self._now)

    def occupy(self, device: str, dt: float, tag: str = "") -> None:
        """Advance the clock by ``dt`` and mark ``device`` busy during it."""
        if dt < 0:
            raise ValueError(f"cannot occupy for negative dt={dt}")
        if self._defer_depth > 0:
            rec = self._defer_record
            rec.total += dt
            rec.busy[device] = rec.busy.get(device, 0.0) + dt
            return
        start = self._now
        # Record the interval before advancing so clock listeners (power
        # sampling) see the kernel that is causing this advance.
        if dt > 0 and self._overlap_depth == 0:
            self._busy.append(BusyInterval(device, start, start + dt, tag))
            starts = self._starts.setdefault(device, [])
            ends = self._ends.setdefault(device, [])
            cum = self._cumdur.setdefault(device, [0.0])
            starts.append(start)
            ends.append(start + dt)
            cum.append(cum[-1] + dt)
        self.advance(dt)

    @contextmanager
    def deferred(self) -> Iterator["DeferredRecord"]:
        """Measure work inside the block without applying it to the clock.

        Every ``advance``/``occupy`` inside the block accumulates into the
        returned :class:`DeferredRecord` (total seconds + per-device busy)
        and leaves ``now`` untouched.  The caller decides how to apply the
        measured cost afterwards — e.g. the multi-worker sampling path
        divides it by the worker speedup and overlaps part of it with the
        previous batch's training.  Nesting is not supported.
        """
        if self._defer_depth > 0:
            raise RuntimeError("deferred() blocks cannot nest")
        record = DeferredRecord()
        self._defer_depth += 1
        self._defer_record = record
        try:
            yield record
        finally:
            self._defer_depth -= 1
            self._defer_record = None

    def occupy_parallel(self, durations: Dict[str, float], tag: str = "parallel",
                        backfill: bool = False) -> None:
        """Mark several devices busy over the same window.

        With ``backfill=False`` the clock advances by the longest duration
        and every device is busy from the old ``now`` — a synchronous
        parallel region (e.g. a ring all-reduce).  With ``backfill=True``
        nothing advances: intervals are recorded ending at the current
        ``now``, crediting devices that worked concurrently with an
        already-executed serial segment (the data-parallel trainer charges
        replica GPUs this way).  Backfill requires each device to have
        been idle over its window; overlapping an existing interval raises.
        """
        durations = {d: dt for d, dt in durations.items() if dt > 0}
        for device, dt in durations.items():
            if dt < 0:
                raise ValueError("negative duration")
        if not durations:
            return
        if not backfill:
            start = self._now
            longest = max(durations.values())
            for device, dt in durations.items():
                self._busy.append(BusyInterval(device, start, start + dt, tag))
                starts = self._starts.setdefault(device, [])
                ends = self._ends.setdefault(device, [])
                cum = self._cumdur.setdefault(device, [0.0])
                starts.append(start)
                ends.append(start + dt)
                cum.append(cum[-1] + dt)
            self.advance(longest)
            return
        for device, dt in durations.items():
            start = self._now - dt
            ends = self._ends.setdefault(device, [])
            if ends and ends[-1] > start + 1e-12:
                raise ValueError(
                    f"backfill window for {device!r} overlaps existing busy time"
                )
            self._busy.append(BusyInterval(device, start, self._now, tag))
            starts = self._starts.setdefault(device, [])
            cum = self._cumdur.setdefault(device, [0.0])
            starts.append(start)
            ends.append(self._now)
            cum.append(cum[-1] + dt)

    @contextmanager
    def overlap(self, device: str = "", tag: str = "overlap") -> Iterator[None]:
        """Charge the *max* of the durations advanced inside the window.

        Models asynchronous copy/compute overlap (DGL pre-fetching).  Nested
        overlaps share one window.
        """
        self._overlap_depth += 1
        if self._overlap_depth == 1:
            self._overlap_max = 0.0
        try:
            yield
        finally:
            self._overlap_depth -= 1
            if self._overlap_depth == 0:
                dt = self._overlap_max
                self._overlap_max = 0.0
                if device:
                    self.occupy(device, dt, tag)
                else:
                    self.advance(dt)

    def busy_time(self, device: str, start: float = 0.0, end: Optional[float] = None) -> float:
        """Total busy seconds for ``device`` within [start, end)."""
        if end is None:
            end = self._now
        starts = self._starts.get(device)
        if not starts or end <= start:
            return 0.0
        ends = self._ends[device]
        cum = self._cumdur[device]
        # Intervals are disjoint and ordered; find the overlapping slice.
        lo = bisect.bisect_right(ends, start)
        hi = bisect.bisect_left(starts, end)
        if lo >= hi:
            return 0.0
        total = cum[hi] - cum[lo]
        total -= max(0.0, start - starts[lo])  # clip leading interval
        total -= max(0.0, ends[hi - 1] - end)  # clip trailing interval
        return max(0.0, total)

    def busy_intervals(self, device: Optional[str] = None) -> List[BusyInterval]:
        """Busy intervals, optionally filtered by device key."""
        if device is None:
            return list(self._busy)
        return [iv for iv in self._busy if iv.device == device]

    def reset(self) -> None:
        """Reset time to zero and forget busy history (listeners survive)."""
        self._now = 0.0
        self._busy.clear()
        self._starts.clear()
        self._ends.clear()
        self._cumdur.clear()
        self._overlap_depth = 0
        self._overlap_max = 0.0


@dataclass
class Stopwatch:
    """Measures elapsed *virtual* time between start/stop marks."""

    clock: VirtualClock
    _start: Optional[float] = field(default=None, init=False)
    elapsed: float = field(default=0.0, init=False)

    def start(self) -> "Stopwatch":
        self._start = self.clock.now
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += self.clock.now - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @contextmanager
    def timing(self) -> Iterator["Stopwatch"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()
