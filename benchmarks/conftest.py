"""Shared benchmark configuration.

Every module regenerates one table/figure of the paper: it runs the
experiment grid on the simulated machine, prints the figure-shaped table,
writes it to ``benchmarks/results/<name>.txt``, and asserts the paper's
qualitative observations on the produced numbers.

Conventions:

* ``DATASETS`` is Table 1 order (small -> large).
* Training figures use the paper's hyperparameters (10 epochs, fanouts
  25/10 batch 512, 2000/50 clusters, 3000x2 walks); each epoch executes
  ``REPRESENTATIVE_BATCHES`` batches for real and extrapolates the rest on
  the virtual clock.
* All reported times/energies are *simulated* (paper-testbed model), so
  shapes — orderings, ratios, crossovers — are the comparison target, not
  absolute values.
"""

from __future__ import annotations

from pathlib import Path

import pytest

DATASETS = ("ppi", "flickr", "ogbn-arxiv", "reddit", "yelp", "ogbn-products")
FRAMEWORKS = ("dglite", "pyglite")
EPOCHS = 10
REPRESENTATIVE_BATCHES = 2

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/.

    The write is atomic (temp file + ``os.replace``): an interrupted bench
    run must never leave a truncated ``results/*.txt`` that a later
    ``repro report`` would aggregate as if it were complete.
    """
    from repro.bench.artifacts import atomic_write_text

    atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")
    print("\n" + text)


@pytest.fixture
def once(benchmark):
    """Run a grid exactly once under pytest-benchmark timing."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return run
