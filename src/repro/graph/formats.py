"""Sparse adjacency formats and conversions.

All three formats describe a directed edge set over ``num_nodes`` nodes;
undirected graphs store both directions.  Conversions are implemented with
numpy sorting primitives (no scipy) so their work can be charged faithfully
by the kernels layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError

INDEX_DTYPE = np.int64


def _as_index(arr) -> np.ndarray:
    out = np.asarray(arr, dtype=INDEX_DTYPE)
    if out.ndim != 1:
        raise GraphFormatError("index arrays must be 1-D")
    return out


@dataclass(frozen=True)
class AdjacencyCOO:
    """Edge list: ``(src[i], dst[i])`` is the i-th directed edge."""

    num_nodes: int
    src: np.ndarray
    dst: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", _as_index(self.src))
        object.__setattr__(self, "dst", _as_index(self.dst))
        if self.src.shape != self.dst.shape:
            raise GraphFormatError("src and dst must have equal length")
        if self.num_nodes < 0:
            raise GraphFormatError("num_nodes must be non-negative")
        if self.src.size and (self.src.max() >= self.num_nodes or self.src.min() < 0):
            raise GraphFormatError("src index out of range")
        if self.dst.size and (self.dst.max() >= self.num_nodes or self.dst.min() < 0):
            raise GraphFormatError("dst index out of range")

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    def to_csr(self) -> "AdjacencyCSR":
        """Sort edges by source and build row pointers."""
        order = np.argsort(self.src, kind="stable")
        sorted_src = self.src[order]
        indptr = np.zeros(self.num_nodes + 1, dtype=INDEX_DTYPE)
        counts = np.bincount(sorted_src, minlength=self.num_nodes)
        indptr[1:] = np.cumsum(counts)
        return AdjacencyCSR(self.num_nodes, indptr, self.dst[order], edge_ids=order)

    def to_csc(self) -> "AdjacencyCSC":
        """Sort edges by destination and build column pointers."""
        order = np.argsort(self.dst, kind="stable")
        sorted_dst = self.dst[order]
        indptr = np.zeros(self.num_nodes + 1, dtype=INDEX_DTYPE)
        counts = np.bincount(sorted_dst, minlength=self.num_nodes)
        indptr[1:] = np.cumsum(counts)
        return AdjacencyCSC(self.num_nodes, indptr, self.src[order], edge_ids=order)

    def reverse(self) -> "AdjacencyCOO":
        return AdjacencyCOO(self.num_nodes, self.dst, self.src)

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.src, minlength=self.num_nodes).astype(INDEX_DTYPE)

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.dst, minlength=self.num_nodes).astype(INDEX_DTYPE)


@dataclass(frozen=True)
class AdjacencyCSR:
    """Compressed sparse row: out-neighbors of node u are
    ``indices[indptr[u]:indptr[u+1]]``.

    ``edge_ids`` maps each CSR position back to the originating COO edge id,
    which keeps per-edge data (attention scores, weights) aligned across
    format conversions.
    """

    num_nodes: int
    indptr: np.ndarray
    indices: np.ndarray
    edge_ids: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "indptr", _as_index(self.indptr))
        object.__setattr__(self, "indices", _as_index(self.indices))
        if self.indptr.size != self.num_nodes + 1:
            raise GraphFormatError("indptr must have num_nodes + 1 entries")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise GraphFormatError("indptr endpoints are inconsistent")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self.indices.size and (self.indices.max() >= self.num_nodes or self.indices.min() < 0):
            raise GraphFormatError("neighbor index out of range")

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    def neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def to_coo(self) -> AdjacencyCOO:
        src = np.repeat(np.arange(self.num_nodes, dtype=INDEX_DTYPE), np.diff(self.indptr))
        return AdjacencyCOO(self.num_nodes, src, self.indices)

    def to_csc(self) -> "AdjacencyCSC":
        coo = self.to_coo()
        return coo.to_csc()

    def transpose(self) -> "AdjacencyCSR":
        """CSR of the reversed edge set (used by SpMM backward)."""
        coo = self.to_coo()
        return coo.reverse().to_csr()


@dataclass(frozen=True)
class AdjacencyCSC:
    """Compressed sparse column: in-neighbors of node v are
    ``indices[indptr[v]:indptr[v+1]]``."""

    num_nodes: int
    indptr: np.ndarray
    indices: np.ndarray
    edge_ids: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "indptr", _as_index(self.indptr))
        object.__setattr__(self, "indices", _as_index(self.indices))
        if self.indptr.size != self.num_nodes + 1:
            raise GraphFormatError("indptr must have num_nodes + 1 entries")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise GraphFormatError("indptr endpoints are inconsistent")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self.indices.size and (self.indices.max() >= self.num_nodes or self.indices.min() < 0):
            raise GraphFormatError("neighbor index out of range")

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    def in_neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def to_coo(self) -> AdjacencyCOO:
        dst = np.repeat(np.arange(self.num_nodes, dtype=INDEX_DTYPE), np.diff(self.indptr))
        return AdjacencyCOO(self.num_nodes, self.indices, dst)


def flat_positions(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + lengths[i])`` ranges.

    The offset-arithmetic core of every vectorized CSR gather: equivalent
    to ``np.concatenate([np.arange(s, s + l) for s, l in zip(starts,
    lengths)])`` without the Python loop.
    """
    lengths = np.asarray(lengths, dtype=INDEX_DTYPE)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    starts = np.asarray(starts, dtype=INDEX_DTYPE)
    segment_starts = np.cumsum(lengths) - lengths
    return (np.repeat(starts - segment_starts, lengths)
            + np.arange(total, dtype=INDEX_DTYPE))


def gather_neighborhoods(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather the CSR neighbor lists of every node in ``nodes`` at once.

    Returns ``(neighbors, degrees, positions)`` where ``neighbors`` is the
    concatenation of each node's neighbor list (in ``nodes`` order),
    ``degrees`` the per-node counts, and ``positions`` the CSR edge
    positions each gathered neighbor came from (for edge-id tracking).
    """
    nodes = np.asarray(nodes, dtype=INDEX_DTYPE)
    starts = indptr[nodes]
    degrees = (indptr[nodes + 1] - starts).astype(INDEX_DTYPE, copy=False)
    positions = flat_positions(starts, degrees)
    return indices[positions], degrees, positions


def induced_subgraph(
    csr: AdjacencyCSR, nodes: np.ndarray, order: str = "src",
) -> Tuple[AdjacencyCOO, np.ndarray]:
    """Node-induced subgraph with relabelled node ids.

    Returns the subgraph edge list (in local ids, ordered by the position
    of each node in ``nodes``) and the original edge ids kept.  ``nodes``
    must be duplicate-free.

    ``order`` picks which endpoint the gathered CSR row becomes: with
    ``"src"`` (the default) edges come out src-sorted; with ``"dst"`` the
    row is the destination and edges come out **dst-sorted** — the
    canonical :class:`~repro.kernels.adj.SparseAdj` order, so downstream
    adjacency construction can skip its argsort.  For the symmetrized
    graphs used throughout this repo the two orientations describe the
    same edge set.

    Only the selected rows are touched: the members' neighbor lists are
    gathered in one vectorized pass and filtered by a membership lookup,
    so the cost is O(incident edges of ``nodes``), not O(all edges).
    """
    if order not in ("src", "dst"):
        raise ValueError("order must be 'src' or 'dst'")
    nodes = _as_index(nodes)
    mapping = np.full(csr.num_nodes, -1, dtype=INDEX_DTYPE)
    mapping[nodes] = np.arange(nodes.size, dtype=INDEX_DTYPE)
    neighbors, degrees, positions = gather_neighborhoods(
        csr.indptr, csr.indices, nodes
    )
    local_other = mapping[neighbors]
    keep = local_other >= 0
    local_owner = np.repeat(np.arange(nodes.size, dtype=INDEX_DTYPE), degrees)
    if order == "src":
        sub = AdjacencyCOO(nodes.size, local_owner[keep], local_other[keep])
    else:
        sub = AdjacencyCOO(nodes.size, local_other[keep], local_owner[keep])
    return sub, positions[keep]


def remove_self_loops(coo: AdjacencyCOO) -> AdjacencyCOO:
    keep = coo.src != coo.dst
    return AdjacencyCOO(coo.num_nodes, coo.src[keep], coo.dst[keep])


def add_self_loops(coo: AdjacencyCOO) -> AdjacencyCOO:
    loop = np.arange(coo.num_nodes, dtype=INDEX_DTYPE)
    return AdjacencyCOO(
        coo.num_nodes,
        np.concatenate([coo.src, loop]),
        np.concatenate([coo.dst, loop]),
    )


def coalesce(coo: AdjacencyCOO) -> AdjacencyCOO:
    """Remove duplicate edges, keeping the edge set sorted by (src, dst)."""
    if coo.num_edges == 0:
        return coo
    keys = coo.src * coo.num_nodes + coo.dst
    unique_keys = np.unique(keys)
    return AdjacencyCOO(
        coo.num_nodes,
        (unique_keys // coo.num_nodes).astype(INDEX_DTYPE),
        (unique_keys % coo.num_nodes).astype(INDEX_DTYPE),
    )


def symmetrize(coo: AdjacencyCOO) -> AdjacencyCOO:
    """Make the edge set undirected (add reverse edges, dedupe)."""
    both = AdjacencyCOO(
        coo.num_nodes,
        np.concatenate([coo.src, coo.dst]),
        np.concatenate([coo.dst, coo.src]),
    )
    return coalesce(both)
