"""Scaling out: why more GPUs don't help until sampling scales too.

Combines the two scaling extensions: multi-GPU data-parallel training
(ring all-reduce) and the sampler worker pool.  Reproduces, in one table,
the practical lesson behind the paper's Observation 4: throwing GPUs at a
sampling-bound workload is wasted silicon.

Run:  python examples/scaling_out.py
"""

from repro.distributed import DataParallelTrainer, multi_gpu_testbed
from repro.frameworks import get_framework
from repro.hardware import paper_testbed
from repro.models.graphsage import build_graphsage, graphsage_sampler
from repro.models.trainer import MiniBatchTrainer, TrainConfig

DATASET = "reddit"


def multi_gpu_row(k: int):
    machine = multi_gpu_testbed(k)
    fw = get_framework("dglite")
    fgraph = fw.load(DATASET, machine)
    sampler = graphsage_sampler(fw, fgraph, seed=0)
    net = build_graphsage(fw, fgraph, seed=0)
    trainer = DataParallelTrainer(fw, fgraph, sampler, net, epochs=3,
                                  representative_steps=2)
    return trainer.run()


def workers_row(workers: int):
    machine = paper_testbed()
    fw = get_framework("dglite")
    fgraph = fw.load(DATASET, machine)
    sampler = graphsage_sampler(fw, fgraph, seed=0)
    net = build_graphsage(fw, fgraph, seed=0)
    config = TrainConfig(epochs=3, placement="cpugpu", num_workers=workers,
                         representative_batches=2)
    return MiniBatchTrainer(fw, fgraph, sampler, net, config).run()


def main() -> None:
    print(f"GraphSAGE on {DATASET}, 3 epochs, simulated testbed\n")

    print("Adding GPUs (data-parallel, inline sampling):")
    print(f"{'GPUs':>6}{'total':>10}{'sampling':>11}{'training':>11}{'speedup':>9}")
    base = None
    for k in (1, 2, 4, 8):
        r = multi_gpu_row(k)
        base = base or r.total_time
        print(f"{k:>6}{r.total_time:>9.1f}s"
              f"{r.phases.get('sampling', 0):>10.1f}s"
              f"{r.phases.get('training', 0):>10.2f}s"
              f"{base / r.total_time:>8.2f}x")

    print("\nAdding sampling workers instead (1 GPU, pipelined):")
    print(f"{'workers':>8}{'total':>10}{'sampling':>11}{'speedup':>9}")
    base = None
    for w in (0, 2, 4, 8):
        r = workers_row(w)
        base = base or r.total_time
        print(f"{w:>8}{r.total_time:>9.1f}s"
              f"{r.phases.get('sampling', 0):>10.1f}s"
              f"{base / r.total_time:>8.2f}x")

    print("\nLesson (Observation 4, operationalized): the sampler is the")
    print("serial stage. Eight GPUs buy almost nothing; eight sampling")
    print("workers on one GPU buy more than the whole second-through-")
    print("eighth GPU combined.")


if __name__ == "__main__":
    main()
