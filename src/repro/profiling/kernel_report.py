"""Kernel-level time attribution — the "magnifying glass" view.

The paper's title promises kernel-level insight; this module surfaces it:
every simulated device keeps per-kernel busy-time counters
(:class:`~repro.hardware.device.DeviceCounters`), and the report here
aggregates them into the table that explains *why* a framework is slow —
e.g. PyG-CPU training time concentrating in ``scatter_add`` while DGL's
concentrates in fused ``spmm``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hardware.machine import Machine


@dataclass(frozen=True)
class KernelEntry:
    """One kernel's aggregate activity on one device."""

    device: str
    kernel: str
    seconds: float
    fraction: float  # of that device's busy time


def kernel_breakdown(machine: Machine, top: int = 0) -> List[KernelEntry]:
    """Per-kernel busy seconds for every device, sorted descending.

    ``top`` limits entries per device (0 = all).
    """
    entries: List[KernelEntry] = []
    devices = [machine.cpu] + ([machine.gpu] if machine.gpu is not None else [])
    for device in devices:
        total = device.counters.busy_seconds
        if total <= 0:
            continue
        ranked = sorted(device.counters.by_kernel.items(),
                        key=lambda kv: -kv[1])
        if top:
            ranked = ranked[:top]
        for kernel, seconds in ranked:
            entries.append(KernelEntry(device.name, kernel, seconds,
                                       seconds / total))
    return entries


def group_by_family(machine: Machine) -> Dict[str, float]:
    """Busy seconds grouped by kernel family prefix (spmm, scatter, ...).

    Kernel names follow ``family[.qualifier]`` (``spmm.fwd``,
    ``gather.bwd``, ``neighbor.sample``); grouping on the first dotted
    component gives the coarse attribution used by the benches.
    """
    grouped: Dict[str, float] = {}
    devices = [machine.cpu] + ([machine.gpu] if machine.gpu is not None else [])
    for device in devices:
        for kernel, seconds in device.counters.by_kernel.items():
            family = kernel.split(".")[0]
            grouped[family] = grouped.get(family, 0.0) + seconds
    return grouped


def format_kernel_table(entries: Sequence[KernelEntry], title: str = "") -> str:
    """Render kernel entries as an aligned text table."""
    lines: List[str] = []
    if title:
        lines += [title, "=" * len(title)]
    header = f"{'device':<24}{'kernel':<28}{'seconds':>12}{'share':>8}"
    lines += [header, "-" * len(header)]
    for entry in entries:
        lines.append(
            f"{entry.device:<24}{entry.kernel:<28}"
            f"{entry.seconds:>11.4f}s{100 * entry.fraction:>7.1f}%"
        )
    return "\n".join(lines)
