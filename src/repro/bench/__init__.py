"""Experiment harness: one entry point per paper experiment family."""

from repro.bench.harness import (
    ExperimentResult,
    measure_conv_forward,
    measure_data_loader,
    measure_sampler_epoch,
    run_fullbatch_experiment,
    run_training_experiment,
)
from repro.bench.format import format_matrix, format_series

__all__ = [
    "ExperimentResult",
    "format_matrix",
    "format_series",
    "measure_conv_forward",
    "measure_data_loader",
    "measure_sampler_epoch",
    "run_fullbatch_experiment",
    "run_training_experiment",
]
