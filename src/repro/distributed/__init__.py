"""Multi-GPU data-parallel training (extension).

The paper's related work points at distributed GNN training
characterizations (Lin et al., IEEE CAL 2022); this package extends the
simulated testbed to a single host with multiple GPUs and models
synchronous data-parallel training: per step, each GPU trains one batch
shard, gradients ring-all-reduce over the inter-GPU link, and every
replica applies the same update.

The headline result the ablation bench shows: scaling is quickly bounded
by the *CPU sampling* stage that the paper's Observation 4 identifies —
adding GPUs parallelizes compute but not the (host-side) samplers.
"""

from repro.distributed.machine import MultiGpuMachine, multi_gpu_testbed
from repro.distributed.collective import ring_allreduce_time, ring_allreduce
from repro.distributed.trainer import DataParallelTrainer, ScalingResult

__all__ = [
    "DataParallelTrainer",
    "MultiGpuMachine",
    "ScalingResult",
    "multi_gpu_testbed",
    "ring_allreduce",
    "ring_allreduce_time",
]
