"""Table 1: dataset statistics (logical = paper scale, actual = generated)."""

from conftest import DATASETS, emit

from repro.datasets import get_dataset, list_datasets


def test_table1_dataset_statistics(once):
    def run():
        rows = []
        for spec in list_datasets():
            graph = get_dataset(spec.name)
            rows.append((spec, graph))
        return rows

    rows = once(run)

    header = (f"{'Dataset':<15}{'#Nodes':>12}{'#Edges':>14}{'#Feat':>7}"
              f"{'#Cls':>6}{'Multi':>7}{'Train/Val/Test':>18}"
              f"{'actual N':>10}{'actual E':>10}")
    lines = ["TABLE 1: DATASET STATISTICS", "=" * len(header), header,
             "-" * len(header)]
    for spec, graph in rows:
        split = f"{spec.split.train:.2f}/{spec.split.val:.2f}/{spec.split.test:.2f}"
        lines.append(
            f"{spec.name:<15}{spec.logical_num_nodes:>12,}"
            f"{spec.logical_num_edges:>14,}{spec.num_features:>7}"
            f"{spec.num_classes:>6}{str(spec.multilabel):>7}{split:>18}"
            f"{graph.num_nodes:>10,}{graph.num_edges:>10,}"
        )
    emit("table1_datasets", "\n".join(lines))

    # Table 1 invariants.
    assert [spec.name for spec, _ in rows] == list(DATASETS)
    sizes = [spec.logical_num_nodes for spec, _ in rows]
    assert sizes == sorted(sizes), "Table 1 is ordered small -> large by nodes"
    reddit = next(spec for spec, _ in rows if spec.name == "reddit")
    assert reddit.logical_num_edges == max(s.logical_num_edges for s, _ in rows)
