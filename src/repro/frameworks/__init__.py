"""The two GNN framework implementations under test.

* :mod:`repro.frameworks.dglite` — models DGL v0.8.2: graph-centric
  ``DGLiteGraph``, fused g-SpMM/g-SDDMM kernels for all conv layers,
  native (C++-rate) samplers, GPU- and UVA-based neighborhood sampling,
  asynchronous pre-fetching.
* :mod:`repro.frameworks.pyglite` — models PyG v2.0.4: tensor-first
  ``Data`` objects, gather/scatter ``MessagePassing`` with a fused path
  for only part of the layer zoo, Python-rate samplers requiring CSC.

Both sit on the same substrate (autograd tensors + sparse kernels +
simulated machine); their behavioural differences come exclusively from
their :class:`~repro.frameworks.profiles.FrameworkProfile` and from which
kernel *paths* their layer implementations take.
"""

from repro.frameworks.base import Framework, FrameworkBatch, FrameworkGraph
from repro.frameworks.profiles import (
    DGLITE_PROFILE,
    FrameworkProfile,
    PROFILES,
    PYGLITE_PROFILE,
    SamplerCosts,
)


def get_framework(name: str) -> Framework:
    """Instantiate a framework by name ("dglite" or "pyglite")."""
    from repro.frameworks.dglite import DGLite
    from repro.frameworks.pyglite import PyGLite

    key = name.lower()
    if key in ("dglite", "dgl"):
        return DGLite()
    if key in ("pyglite", "pyg"):
        return PyGLite()
    raise ValueError(f"unknown framework {name!r} (expected 'dglite' or 'pyglite')")


__all__ = [
    "DGLITE_PROFILE",
    "Framework",
    "FrameworkBatch",
    "FrameworkGraph",
    "FrameworkProfile",
    "PROFILES",
    "PYGLITE_PROFILE",
    "SamplerCosts",
    "get_framework",
]
