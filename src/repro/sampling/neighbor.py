"""GraphSAGE's k-hop neighborhood sampler.

Sampling runs backwards from the batch roots (DGL block convention): the
*last* fanout is applied to the roots, earlier fanouts to successive
frontiers, producing one bipartite block per GNN layer.

Scaling: the driver shrinks the paper's batch size (512 roots) by the
dataset's node scale, so the number of batches per epoch matches the
paper-scale run.  Per-root subtree sizes are absolute (fanout-capped), but
the scaled-down graph has lower degrees than the logical one, so each hop
carries a *degree correction* ``min(f, d_logical) / min(f, d_actual)``
folded into the blocks' logical edge scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SamplerError
from repro.graph.formats import INDEX_DTYPE
from repro.graph.graph import Graph
from repro.sampling.base import Block, BlockSample, SampleWork


def sample_block_neighbors(
    indptr: np.ndarray,
    indices: np.ndarray,
    seeds: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
):
    """Sample up to ``fanout`` neighbors (without replacement) per seed.

    Returns (srcs, dsts) as global ids (dst = the seed) and the number of
    neighbor candidates examined.
    """
    if fanout < 1:
        raise SamplerError("fanout must be >= 1")
    srcs: List[np.ndarray] = []
    dsts: List[np.ndarray] = []
    examined = 0
    for seed in seeds:
        lo, hi = indptr[seed], indptr[seed + 1]
        degree = int(hi - lo)
        if degree == 0:
            continue
        examined += degree
        neighborhood = indices[lo:hi]
        if degree <= fanout:
            chosen = neighborhood
        else:
            chosen = neighborhood[rng.choice(degree, size=fanout, replace=False)]
        srcs.append(chosen)
        dsts.append(np.full(chosen.size, seed, dtype=INDEX_DTYPE))
    if srcs:
        return np.concatenate(srcs), np.concatenate(dsts), examined
    empty = np.empty(0, dtype=INDEX_DTYPE)
    return empty, empty, examined


class NeighborSampler:
    """Mini-batch iterator over root batches with per-layer fanouts."""

    def __init__(
        self,
        graph: Graph,
        fanouts: Sequence[int] = (25, 10),
        batch_size: int = 512,
        seed: Optional[int] = None,
    ) -> None:
        if not fanouts:
            raise SamplerError("fanouts must be non-empty")
        self.graph = graph
        self.fanouts = tuple(int(f) for f in fanouts)
        self.paper_batch_size = int(batch_size)
        # Shrink roots by node scale so batches/epoch match paper scale.
        self.actual_batch_size = max(2, int(round(batch_size / graph.node_scale)))
        self.rng = np.random.default_rng(seed)
        self._indptr = graph.adj.indptr
        self._indices = graph.adj.indices
        # Mean degrees drive the per-hop degree correction.
        self._d_actual = max(1.0, graph.num_edges / max(1, graph.num_nodes))
        self._d_logical = max(1.0, graph.stats.avg_degree)

    def num_batches(self, train_nodes: int) -> int:
        return max(1, int(np.ceil(train_nodes / self.actual_batch_size)))

    def hop_correction(self, fanout: int) -> float:
        """Logical/actual sampled-neighbor ratio for one hop."""
        return min(fanout, self._d_logical) / min(fanout, self._d_actual)

    def sample(self, roots: np.ndarray) -> BlockSample:
        """Build one mini-batch of blocks for the given batch roots."""
        roots = np.asarray(roots, dtype=INDEX_DTYPE)
        if roots.size == 0:
            raise SamplerError("cannot sample an empty root batch")
        node_scale = self.graph.node_scale
        work = SampleWork()
        blocks: List[Block] = []
        seeds = roots
        cumulative = node_scale  # logical/actual ratio of the current frontier
        # Output-side layer first (last fanout applies to the roots).
        for fanout in reversed(self.fanouts):
            src_g, dst_g, examined = sample_block_neighbors(
                self._indptr, self._indices, seeds, fanout, self.rng
            )
            correction = self.hop_correction(fanout)
            edge_scale = cumulative * correction
            # Charged items: neighbors examined plus entries sampled.
            work.items += (examined + src_g.size) * edge_scale

            # Block node set: dst nodes first (self-inclusion), then new srcs.
            dst_nodes = seeds
            extra = np.setdiff1d(np.unique(src_g), dst_nodes, assume_unique=False)
            src_nodes = np.concatenate([dst_nodes, extra])
            lookup = {int(n): i for i, n in enumerate(src_nodes)}
            src_local = np.fromiter(
                (lookup[int(s)] for s in src_g), count=src_g.size, dtype=INDEX_DTYPE
            )
            dst_lookup = {int(n): i for i, n in enumerate(dst_nodes)}
            dst_local = np.fromiter(
                (dst_lookup[int(d)] for d in dst_g), count=dst_g.size, dtype=INDEX_DTYPE
            )
            blocks.append(
                Block(
                    src_nodes=src_nodes,
                    dst_nodes=dst_nodes,
                    src=src_local,
                    dst=dst_local,
                    edge_scale=edge_scale,
                    node_scale=cumulative,
                )
            )
            seeds = src_nodes
            cumulative = edge_scale

        blocks.reverse()  # input-side block first
        input_nodes = blocks[0].src_nodes
        work.fetch_bytes = (
            4.0 * input_nodes.size * cumulative * self.graph.num_features
        )
        return BlockSample(
            blocks=blocks,
            input_nodes=input_nodes,
            output_nodes=roots,
            work=work,
        )

    def epoch_batches(self, shuffle: bool = True):
        """Yield batches of roots covering the training set once."""
        train = self.graph.train_nodes()
        if shuffle:
            train = self.rng.permutation(train)
        for start in range(0, train.size, self.actual_batch_size):
            roots = train[start:start + self.actual_batch_size]
            if roots.size:
                yield self.sample(roots)
