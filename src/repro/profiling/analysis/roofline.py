"""Roofline attribution: where every kernel sits relative to peak.

Joins the per-kernel ``kernel.flops`` / ``kernel.bytes_moved`` /
``kernel.busy_seconds`` counters against the device peaks recorded in
the run manifest's ``hardware`` section, classifying each (device,
kernel) series compute-, memory-, or overhead-bound with arithmetic
intensity and achieved %-of-peak.  PCIe traffic is attributed as
transfer-bound against the link's DMA bandwidth.

All ratio math is guarded: missing peaks, zero busy time, or zero
denominators yield 0.0 (or a null intensity), never a
``ZeroDivisionError`` — a run on a machine with no recorded hardware
section still analyzes, it just cannot be placed on the roofline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.profiling.analysis.bundle import RunBundle, device_peaks, link_spec


def pct_of_peak(achieved: float, peak: float) -> float:
    """``achieved / peak`` guarded against zero/negative/missing peaks."""
    if peak is None or peak <= 0 or achieved <= 0:
        return 0.0
    return achieved / peak


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return 0.0
    return numerator / denominator


def _kernel_series(bundle: RunBundle) -> Dict[tuple, Dict[str, float]]:
    """(device, kernel) -> {flops, bytes, seconds, launches}."""
    series: Dict[tuple, Dict[str, float]] = {}
    for metric, field in (("kernel.flops", "flops"),
                          ("kernel.bytes_moved", "bytes"),
                          ("kernel.busy_seconds", "seconds"),
                          ("kernel.invocations", "launches")):
        for labels, value in bundle.counter_series(metric).items():
            labeled = dict(labels)
            key = (labeled.get("device", "?"), labeled.get("kernel", "?"))
            entry = series.setdefault(key, {"flops": 0.0, "bytes": 0.0,
                                            "seconds": 0.0, "launches": 0.0})
            entry[field] += value
    return series


def _classify(flops: float, nbytes: float, peak_flops: float,
              mem_bw: float) -> str:
    """Which roofline wall the kernel leans on, from ideal times."""
    if flops <= 0 and nbytes <= 0:
        return "overhead"  # launch-latency / fixed-time only
    compute_t = _ratio(flops, peak_flops)
    memory_t = _ratio(nbytes, mem_bw)
    if compute_t <= 0 and memory_t <= 0:
        return "unknown"  # no hardware peaks recorded
    return "compute" if compute_t >= memory_t else "memory"


def roofline_attribution(bundle: RunBundle) -> dict:
    """Roofline payload: per-kernel entries plus the transfer lanes."""
    peaks = device_peaks(bundle)
    entries: List[dict] = []
    for (device, kernel), work in sorted(_kernel_series(bundle).items()):
        spec = peaks.get(device, {})
        peak_flops = float(spec.get("peak_flops", 0.0) or 0.0)
        mem_bw = float(spec.get("mem_bandwidth", 0.0) or 0.0)
        seconds = work["seconds"]
        flops, nbytes = work["flops"], work["bytes"]
        intensity: Optional[float] = (flops / nbytes if nbytes > 0 else None)
        entries.append({
            "device": device,
            "kernel": kernel,
            "seconds": seconds,
            "flops": flops,
            "bytes": nbytes,
            "launches": work["launches"],
            "bound": _classify(flops, nbytes, peak_flops, mem_bw),
            "intensity_flops_per_byte": intensity,
            "pct_peak_compute": pct_of_peak(_ratio(flops, seconds), peak_flops),
            "pct_peak_memory": pct_of_peak(_ratio(nbytes, seconds), mem_bw),
        })
    entries.sort(key=lambda e: (-e["seconds"], e["device"], e["kernel"]))
    by_bound: Dict[str, float] = {}
    for entry in entries:
        by_bound[entry["bound"]] = by_bound.get(entry["bound"], 0.0) \
            + entry["seconds"]
    transfers = _transfer_entries(bundle)
    for transfer in transfers:
        by_bound["transfer"] = by_bound.get("transfer", 0.0) \
            + transfer["seconds"]
    return {
        "kernels": entries,
        "transfers": transfers,
        "seconds_by_bound": {k: by_bound[k] for k in sorted(by_bound)},
    }


def _transfer_entries(bundle: RunBundle) -> List[dict]:
    """PCIe traffic as transfer-bound roofline entries (one per lane tag)."""
    link = link_spec(bundle) or {}
    lane = str(link.get("lane", "pcie"))
    bandwidth = float(link.get("bandwidth", 0.0) or 0.0)
    bytes_by_direction = {
        dict(labels).get("direction", "?"): value
        for labels, value in bundle.counter_series("pcie.bytes").items()
    }
    # Lane-qualified keys ("pcie@copy", "pcie@h2d") are the pipeline's
    # per-stage PCIe timelines; they are still this link's traffic.
    seconds_total = sum(iv.duration for iv in bundle.intervals
                        if iv.lane == lane
                        or iv.lane.startswith(lane + "@"))
    if not bytes_by_direction and seconds_total <= 0:
        return []
    total_bytes = sum(bytes_by_direction.values())
    return [{
        "lane": lane,
        "seconds": seconds_total,
        "bytes": total_bytes,
        "bytes_by_direction": {k: bytes_by_direction[k]
                               for k in sorted(bytes_by_direction)},
        "bound": "transfer",
        "pct_peak_bandwidth": pct_of_peak(_ratio(total_bytes, seconds_total),
                                          bandwidth),
    }]
