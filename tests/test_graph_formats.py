"""Tests for adjacency formats and conversions."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.formats import (
    AdjacencyCOO,
    AdjacencyCSC,
    AdjacencyCSR,
    add_self_loops,
    coalesce,
    induced_subgraph,
    remove_self_loops,
    symmetrize,
)


@pytest.fixture
def coo():
    # 5 nodes: 0->1, 0->2, 1->2, 3->0, 2->2 (self loop), duplicate 0->1
    return AdjacencyCOO(
        5,
        np.array([0, 0, 1, 3, 2, 0]),
        np.array([1, 2, 2, 0, 2, 1]),
    )


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphFormatError):
            AdjacencyCOO(3, np.array([0, 1]), np.array([0]))

    def test_out_of_range_src_rejected(self):
        with pytest.raises(GraphFormatError):
            AdjacencyCOO(2, np.array([2]), np.array([0]))

    def test_negative_index_rejected(self):
        with pytest.raises(GraphFormatError):
            AdjacencyCOO(2, np.array([-1]), np.array([0]))

    def test_csr_indptr_length_checked(self):
        with pytest.raises(GraphFormatError):
            AdjacencyCSR(3, np.array([0, 1]), np.array([0]))

    def test_csr_indptr_monotonic(self):
        with pytest.raises(GraphFormatError):
            AdjacencyCSR(2, np.array([0, 2, 1]), np.array([0]))

    def test_csr_endpoint_consistency(self):
        with pytest.raises(GraphFormatError):
            AdjacencyCSR(2, np.array([0, 1, 3]), np.array([0, 1]))

    def test_csc_neighbor_range_checked(self):
        with pytest.raises(GraphFormatError):
            AdjacencyCSC(2, np.array([0, 1, 2]), np.array([0, 5]))


class TestConversions:
    def test_coo_to_csr_neighbors(self, coo):
        csr = coo.to_csr()
        assert sorted(csr.neighbors(0).tolist()) == [1, 1, 2]
        assert csr.neighbors(4).size == 0
        assert csr.num_edges == coo.num_edges

    def test_coo_to_csc_in_neighbors(self, coo):
        csc = coo.to_csc()
        assert sorted(csc.in_neighbors(2).tolist()) == [0, 1, 2]
        assert csc.in_neighbors(0).tolist() == [3]

    def test_csr_roundtrip_through_coo(self, coo):
        csr = coo.to_csr()
        back = csr.to_coo()
        orig = sorted(zip(coo.src.tolist(), coo.dst.tolist()))
        round_ = sorted(zip(back.src.tolist(), back.dst.tolist()))
        assert orig == round_

    def test_csr_to_csc_preserves_edges(self, coo):
        csr = coo.to_csr()
        csc = csr.to_csc()
        orig = sorted(zip(coo.src.tolist(), coo.dst.tolist()))
        via = sorted(zip(csc.to_coo().src.tolist(), csc.to_coo().dst.tolist()))
        assert orig == via

    def test_transpose_reverses_edges(self, coo):
        csr = coo.to_csr()
        trans = csr.transpose()
        orig = sorted(zip(coo.src.tolist(), coo.dst.tolist()))
        rev = sorted(zip(trans.to_coo().dst.tolist(), trans.to_coo().src.tolist()))
        assert orig == rev

    def test_degrees(self, coo):
        assert coo.out_degrees().tolist() == [3, 1, 1, 1, 0]
        assert coo.in_degrees().tolist() == [1, 2, 3, 0, 0]
        csr = coo.to_csr()
        assert csr.degrees().tolist() == [3, 1, 1, 1, 0]


class TestEdgeOps:
    def test_remove_self_loops(self, coo):
        clean = remove_self_loops(coo)
        assert clean.num_edges == coo.num_edges - 1
        assert not np.any(clean.src == clean.dst)

    def test_add_self_loops(self):
        coo = AdjacencyCOO(3, np.array([0]), np.array([1]))
        with_loops = add_self_loops(coo)
        assert with_loops.num_edges == 4
        loops = with_loops.src == with_loops.dst
        assert loops.sum() == 3

    def test_coalesce_removes_duplicates(self, coo):
        unique = coalesce(coo)
        assert unique.num_edges == coo.num_edges - 1
        pairs = list(zip(unique.src.tolist(), unique.dst.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_coalesce_empty(self):
        empty = AdjacencyCOO(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert coalesce(empty).num_edges == 0

    def test_symmetrize(self):
        coo = AdjacencyCOO(3, np.array([0, 1]), np.array([1, 2]))
        sym = symmetrize(coo)
        pairs = set(zip(sym.src.tolist(), sym.dst.tolist()))
        assert (1, 0) in pairs and (2, 1) in pairs
        # symmetric: every edge has its reverse
        assert all((d, s) in pairs for s, d in pairs)

    def test_reverse(self, coo):
        rev = coo.reverse()
        assert rev.src.tolist() == coo.dst.tolist()
        assert rev.dst.tolist() == coo.src.tolist()


class TestInducedSubgraph:
    def test_keeps_only_internal_edges(self, coo):
        nodes = np.array([0, 1, 2])
        sub, kept = induced_subgraph(coo.to_csr(), nodes)
        # edge 3->0 must be dropped (node 3 outside)
        assert sub.num_edges == coo.num_edges - 1
        assert kept.size == sub.num_edges

    def test_relabels_to_local_ids(self):
        coo = AdjacencyCOO(4, np.array([2, 3]), np.array([3, 2]))
        sub, _ = induced_subgraph(coo.to_csr(), np.array([2, 3]))
        pairs = set(zip(sub.src.tolist(), sub.dst.tolist()))
        assert pairs == {(0, 1), (1, 0)}

    def test_node_order_defines_local_ids(self):
        coo = AdjacencyCOO(4, np.array([2]), np.array([3]))
        sub, _ = induced_subgraph(coo.to_csr(), np.array([3, 2]))
        assert (sub.src[0], sub.dst[0]) == (1, 0)

    def test_empty_selection(self, coo):
        sub, kept = induced_subgraph(coo.to_csr(), np.array([], dtype=np.int64))
        assert sub.num_edges == 0
        assert sub.num_nodes == 0
