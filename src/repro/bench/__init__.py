"""Experiment harness: one entry point per paper experiment family."""

from repro.bench.harness import (
    ExperimentResult,
    measure_conv_forward,
    measure_data_loader,
    measure_sampler_epoch,
    run_fullbatch_experiment,
    run_training_experiment,
)
from repro.bench.format import format_matrix, format_series
from repro.bench.artifacts import (
    load_sweep_artifact,
    validate_sweep_artifact,
    write_sweep_artifact,
)
from repro.bench.gate import compare_artifacts, format_gate_report
from repro.bench.sweep import SweepCell, run_sweep

__all__ = [
    "ExperimentResult",
    "SweepCell",
    "compare_artifacts",
    "format_gate_report",
    "format_matrix",
    "format_series",
    "load_sweep_artifact",
    "run_sweep",
    "validate_sweep_artifact",
    "write_sweep_artifact",
    "measure_conv_forward",
    "measure_data_loader",
    "measure_sampler_epoch",
    "run_fullbatch_experiment",
    "run_training_experiment",
]
