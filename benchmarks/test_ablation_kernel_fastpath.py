"""Ablation: kernel fast-path layer vs. the reference schedules.

The fast paths (cached edge-incidence SpMM for segment sums, in-place CSR
data swaps, cached transpose, argsort-free block construction) exist to
keep our numpy backend from contaminating wall-clock measurements — the
paper's observations are about framework overheads, not about ours.  This
bench pins down where the fast paths matter:

* ``scatter_add``-style segment sums (every unfused PyG-like backward):
  the cached incidence SpMM must beat the ``np.add.at`` reference by a
  wide margin (>= 5x asserted) at representative block scale.
* an unfused attention layer step (gather -> softmax -> scatter), where
  segment reductions are a large share of the step;
* a sampled pyglite GraphSAGE epoch, which is dense-layer dominated — the
  fast path must simply never regress it (parity gate, not a speedup
  claim; the charged cost model is schedule-invariant by construction and
  tested in tests/test_kernels_fastpath.py).

All reference timings run the *identical* public API under
``use_reference_kernels()``, so the comparison covers exactly the code
production runs take.
"""

import time

import numpy as np

from conftest import emit

from repro.bench.harness import run_training_experiment
from repro.frameworks.pyglite.nn import GATConv
from repro.hardware import paper_testbed
from repro.kernels.adj import SparseAdj
from repro.kernels.config import use_reference_kernels
from repro.tensor.tensor import Tensor

NUM_SRC = 50_000
NUM_DST = 50_000
NUM_EDGES = 500_000
FEATURES = 32
MIN_SCATTER_SPEEDUP = 5.0
MIN_LAYER_SPEEDUP = 1.05
MAX_EPOCH_REGRESSION = 1.25


def best_of(fn, repeats=5):
    # Best-of-N wall clock: scheduler noise on shared runners only ever
    # inflates a measurement, so the minimum is the estimate.
    fn()  # warm-up
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _scatter_micro():
    """Segment sum over a block-scale edge set, fast vs np.add.at."""
    rng = np.random.default_rng(0)
    adj = SparseAdj(rng.integers(0, NUM_SRC, NUM_EDGES),
                    rng.integers(0, NUM_DST, NUM_EDGES),
                    num_src=NUM_SRC, num_dst=NUM_DST)
    vals = rng.standard_normal((NUM_EDGES, FEATURES)).astype(np.float32)

    def run_fast():
        return adj.sum_edges(vals, side="dst")

    def run_ref():
        with use_reference_kernels():
            return adj.sum_edges(vals, side="dst")

    fast_s = best_of(run_fast)
    ref_s = best_of(run_ref)

    # Gradient-side reduction (gather backward scatters into src buckets).
    def run_fast_src():
        return adj.sum_edges(vals, side="src")

    def run_ref_src():
        with use_reference_kernels():
            return adj.sum_edges(vals, side="src")

    fast_src_s = best_of(run_fast_src)
    ref_src_s = best_of(run_ref_src)

    assert np.allclose(run_fast(), run_ref(), rtol=1e-6, atol=1e-6)
    assert np.allclose(run_fast_src(), run_ref_src(), rtol=1e-6, atol=1e-6)
    return {
        "dst_fast_ms": 1000.0 * fast_s, "dst_ref_ms": 1000.0 * ref_s,
        "dst_speedup": ref_s / fast_s,
        "src_fast_ms": 1000.0 * fast_src_s, "src_ref_ms": 1000.0 * ref_src_s,
        "src_speedup": ref_src_s / fast_src_s,
    }


def _gat_layer_step():
    """Unfused attention layer fwd+bwd: segment reductions under load."""
    machine = paper_testbed()
    rng = np.random.default_rng(1)
    num_src, num_dst, num_edges, feats = 30_000, 10_000, 200_000, 64
    adj = SparseAdj(rng.integers(0, num_src, num_edges),
                    rng.integers(0, num_dst, num_edges),
                    num_src=num_src, num_dst=num_dst, device=machine.cpu)
    layer = GATConv(feats, feats, heads=4, seed=0)
    for param in layer.parameters():
        param.device = machine.cpu
    x_data = rng.standard_normal((num_src, feats)).astype(np.float32)

    def step():
        x = Tensor(x_data, device=machine.cpu, requires_grad=True)
        layer(adj, x).sum().backward()

    fast_s = best_of(step, repeats=3)
    with use_reference_kernels():
        ref_s = best_of(step, repeats=3)
    return {"fast_ms": 1000.0 * fast_s, "ref_ms": 1000.0 * ref_s,
            "speedup": ref_s / fast_s}


def _graphsage_epoch():
    """Sampled pyglite GraphSAGE end to end; interleaved to ride out noise."""
    def run():
        run_training_experiment(
            framework="pyglite", dataset="reddit", model="graphsage",
            epochs=1, representative_batches=4, seed=0, dataset_scale=2.0)

    run()  # warm dataset/module caches outside the timed region
    fast_times, ref_times = [], []
    for _ in range(4):
        start = time.perf_counter()
        run()
        fast_times.append(time.perf_counter() - start)
        with use_reference_kernels():
            start = time.perf_counter()
            run()
            ref_times.append(time.perf_counter() - start)
    fast_s, ref_s = min(fast_times), min(ref_times)
    return {"fast_s": fast_s, "ref_s": ref_s, "ratio": fast_s / ref_s}


def _run():
    return {"scatter": _scatter_micro(), "gat": _gat_layer_step(),
            "epoch": _graphsage_epoch()}


def test_ablation_kernel_fastpath(once):
    row = once(_run)
    sc, gat, ep = row["scatter"], row["gat"], row["epoch"]

    lines = [
        f"Ablation: kernel fast paths vs reference schedules "
        f"({NUM_EDGES:,} edges, {FEATURES} features)",
        f"  scatter_add (dst)   fast {sc['dst_fast_ms']:>8.1f} ms"
        f"   np.add.at {sc['dst_ref_ms']:>8.1f} ms"
        f"   speedup {sc['dst_speedup']:>5.1f}x",
        f"  gather bwd (src)    fast {sc['src_fast_ms']:>8.1f} ms"
        f"   np.add.at {sc['src_ref_ms']:>8.1f} ms"
        f"   speedup {sc['src_speedup']:>5.1f}x",
        f"  unfused GAT step    fast {gat['fast_ms']:>8.0f} ms"
        f"   reference {gat['ref_ms']:>8.0f} ms"
        f"   speedup {gat['speedup']:>5.1f}x",
        f"  pyglite SAGE epoch  fast {ep['fast_s']:>8.3f} s "
        f"   reference {ep['ref_s']:>8.3f} s "
        f"   ratio {ep['ratio']:>6.2f} (dense-dominated; parity gate)",
    ]
    emit("ablation_kernel_fastpath", "\n".join(lines))

    assert sc["dst_speedup"] >= MIN_SCATTER_SPEEDUP
    assert gat["speedup"] >= MIN_LAYER_SPEEDUP
    # The epoch is dominated by dense layer matmuls; the kernel layer's job
    # there is to never be the bottleneck.
    assert ep["ratio"] <= MAX_EPOCH_REGRESSION
