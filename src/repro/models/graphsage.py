"""GraphSAGE (Hamilton et al. 2017) as benchmarked in the paper.

Two SAGEConv (mean-aggregator) layers trained on neighborhood-sampled
blocks: fanouts 25/10, batch size 512, Adam.  Supports all four placements
(CPU, CPU-sample + GPU-train, GPU-sampled, UVA-sampled) plus the
pre-loading and pre-fetching case studies.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.frameworks.base import Framework, FrameworkGraph
from repro.models.base import two_layer_net
from repro.tensor.module import Module

FANOUTS = (25, 10)
BATCH_SIZE = 512
HIDDEN = 256


def build_graphsage(framework: Framework, fgraph: FrameworkGraph,
                    hidden: int = HIDDEN, dropout: float = 0.5,
                    seed: int = 0) -> Module:
    """The paper's 2-layer GraphSAGE model for this dataset."""
    stats = fgraph.stats
    return two_layer_net(
        framework,
        "sage",
        in_features=stats.num_features,
        hidden=hidden,
        out_features=stats.num_classes,
        style="blocks",
        dropout=dropout,
        seed=seed,
    )


def graphsage_sampler(framework: Framework, fgraph: FrameworkGraph,
                      mode: str = "cpu", fanouts: Tuple[int, ...] = FANOUTS,
                      batch_size: int = BATCH_SIZE, seed: Optional[int] = 0):
    """The paper's neighborhood sampler configuration (25/10, batch 512).

    ``seed`` defaults to 0 (deterministic); pass ``None`` for a
    nondeterministic RNG.
    """
    return framework.neighbor_sampler(
        fgraph, fanouts=fanouts, batch_size=batch_size, mode=mode, seed=seed
    )
