"""Deliberately broken fixture for the CI ``lint-deep`` self-test.

This fake kernel performs raw matrix work without ever charging the
virtual clock — exactly the cost-accounting bug UNCHARGED-COST exists to
catch.  The shallow (flat) pass must accept this file; the deep pass
must reject it.  CI runs both directions, so a silently-broken
interprocedural analysis cannot pass the gate by finding nothing.

Never import this module from real code.
"""


def _fuse(a, b):
    # raw work, no clock.occupy on any path, and the only caller below
    # does not charge on this function's behalf either
    return a @ b


def fused_uncharged_spmm(a, b):
    return _fuse(a, b)
