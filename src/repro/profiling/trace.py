"""Chrome-trace export of the simulated timeline (compatibility shim).

Historically this module owned its own device-lane Chrome-trace writer
while :mod:`repro.telemetry.exporters` grew a second, merged one.  The
implementations are now deduplicated: the single lane-id scheme and
event builder live in the exporters module, and everything here is a
thin delegation kept for the established public API (``trace_events``,
``write_trace``, ``summarize_trace``).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.simtime import VirtualClock


def trace_events(clock: VirtualClock, time_unit: float = 1e6) -> List[dict]:
    """Busy intervals as Chrome 'complete' (ph=X) events.

    Delegates to :func:`repro.telemetry.exporters.device_trace_events`,
    the one device-lane trace implementation.
    """
    from repro.telemetry.exporters import device_trace_events

    return device_trace_events(clock, time_unit)


def write_trace(clock: VirtualClock, path: Union[str, Path]) -> Path:
    """Write the timeline to ``path`` as a Chrome trace JSON file.

    Delegates to the merged-trace writer with no span tracer, so the
    device-only and merged traces share one payload format.
    """
    from repro.telemetry.exporters import write_merged_trace

    return write_merged_trace(path, clock, tracer=None)


def summarize_trace(clock: VirtualClock) -> dict:
    """Per-device totals and top tags (quick textual timeline summary)."""
    totals: dict = {}
    tags: dict = {}
    for interval in clock.busy_intervals():
        totals[interval.device] = totals.get(interval.device, 0.0) + interval.duration
        key = (interval.device, interval.tag)
        tags[key] = tags.get(key, 0.0) + interval.duration
    top = sorted(tags.items(), key=lambda kv: -kv[1])[:10]
    return {
        "wall": clock.now,
        "device_busy": totals,
        "top_tags": [
            {"device": d, "tag": t, "seconds": s} for (d, t), s in top
        ],
    }
