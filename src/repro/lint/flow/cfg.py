"""Per-function control-flow graphs and a forward may-dataflow solver.

The CFG is statement-granular: each executable statement becomes one
node, plus two virtual nodes (ENTRY and EXIT).  Branching constructs
(`if`/`while`/`for`/`try`) contribute the edges one would expect; a few
deliberate approximations keep the graph small and the analyses sound
for the rules built on top of it:

* every statement inside a ``try`` body gets an edge to every handler of
  that ``try`` (an exception may fire anywhere in the body);
* ``finally`` blocks run after the normal body/handler exits, and
  ``return``/``raise`` inside a ``try`` with a ``finally`` routes
  *through* the finally block before reaching EXIT — a restore-in-finally
  genuinely kills facts on the early-return path (``break``/``continue``
  keep their direct edges; the codebase does not break out of guarded
  loops);
* ``with`` bodies are linear (the context manager's ``__exit__`` is not
  modeled as a branch);
* nested function and class definitions are opaque single statements —
  they get their own CFG when analyzed, and interprocedural effects flow
  through summaries, not through this graph.

:func:`reach_forward` runs the classic forward may-analysis (union at
joins, gen/kill per node) used by STALE-CACHE and SPAN-FLOW.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set

ENTRY = 0
EXIT = 1


@dataclass
class CFG:
    """Control-flow graph for one function body."""

    stmt_of: Dict[int, ast.stmt] = field(default_factory=dict)
    succ: Dict[int, Set[int]] = field(default_factory=dict)
    pred: Dict[int, Set[int]] = field(default_factory=dict)

    def nodes(self) -> List[int]:
        return sorted(self.succ)

    def add_node(self, stmt: Optional[ast.stmt] = None) -> int:
        node = len(self.succ) if self.succ else 0
        while node in self.succ:  # ENTRY/EXIT pre-registered out of order
            node += 1
        self.succ[node] = set()
        self.pred[node] = set()
        if stmt is not None:
            self.stmt_of[node] = stmt
        return node

    def add_edge(self, src: int, dst: int) -> None:
        self.succ[src].add(dst)
        self.pred[dst].add(src)


class _Loop:
    """Break/continue targets for the innermost enclosing loop."""

    def __init__(self, head: int) -> None:
        self.head = head
        self.breaks: List[int] = []


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.add_node()  # ENTRY == 0
        self.cfg.add_node()  # EXIT == 1
        self.loops: List[_Loop] = []
        # one entry per enclosing try-with-finally currently being built:
        # return/raise nodes register here instead of edging to EXIT, and
        # get routed through the finally block once it exists.
        self.abrupt_stack: List[List[int]] = []

    # ``frontier`` is the set of nodes whose fall-through reaches the
    # next statement; an empty frontier means control cannot arrive.
    def seq(self, stmts: Sequence[ast.stmt], frontier: Set[int]) -> Set[int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: Set[int]) -> Set[int]:
        node = self.cfg.add_node(stmt)
        for src in frontier:
            self.cfg.add_edge(src, node)

        if isinstance(stmt, ast.If):
            then_out = self.seq(stmt.body, {node})
            else_out = self.seq(stmt.orelse, {node}) if stmt.orelse else {node}
            return then_out | else_out

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            loop = _Loop(node)
            self.loops.append(loop)
            body_out = self.seq(stmt.body, {node})
            self.loops.pop()
            for src in body_out:
                self.cfg.add_edge(src, node)  # back edge
            exits = {node} | set(loop.breaks)
            if stmt.orelse:
                exits = self.seq(stmt.orelse, {node}) | set(loop.breaks)
            return exits

        if isinstance(stmt, ast.Try):
            abrupt: List[int] = []
            if stmt.finalbody:
                self.abrupt_stack.append(abrupt)
            body_nodes_before = len(self.cfg.succ)
            body_out = self.seq(stmt.body, {node})
            # node ids are allocated consecutively, so this range is
            # exactly the statements created for the try body
            body_nodes = list(range(body_nodes_before, len(self.cfg.succ)))
            handler_entries: List[int] = []
            handler_outs: Set[int] = set()
            for handler in stmt.handlers:
                entry = self.cfg.add_node(handler)  # the ``except X:`` line
                handler_entries.append(entry)
                handler_outs |= self.seq(handler.body, {entry})
            # an exception may fire at the try statement itself or at any
            # statement of its body
            for src in [node] + body_nodes:
                for entry in handler_entries:
                    self.cfg.add_edge(src, entry)
            else_out = self.seq(stmt.orelse, body_out) if stmt.orelse else body_out
            frontier = else_out | handler_outs
            if stmt.finalbody:
                self.abrupt_stack.pop()
                # finally also runs when an uncaught exception escapes the
                # body; model that with direct edges from body statements.
                escape = set() if handler_entries else {node, *body_nodes}
                frontier = self.seq(stmt.finalbody,
                                    frontier | escape | set(abrupt))
                if abrupt:
                    # a return/raise that entered the finally leaves the
                    # function after it — via any outer finally first.
                    for src in frontier:
                        self._exit_edge(src)
            return frontier

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.seq(stmt.body, {node})

        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._exit_edge(node)
            return set()

        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1].breaks.append(node)
            else:
                self.cfg.add_edge(node, EXIT)
            return set()

        if isinstance(stmt, ast.Continue):
            if self.loops:
                self.cfg.add_edge(node, self.loops[-1].head)
            else:
                self.cfg.add_edge(node, EXIT)
            return set()

        # plain statement (incl. nested def/class, treated opaquely)
        return {node}

    def _exit_edge(self, node: int) -> None:
        """Leave the function from ``node`` — through the innermost
        enclosing try-with-finally when there is one."""
        if self.abrupt_stack:
            self.abrupt_stack[-1].append(node)
        else:
            self.cfg.add_edge(node, EXIT)


def build_cfg(fn: ast.AST) -> CFG:
    """Build the CFG for a FunctionDef / AsyncFunctionDef body."""
    builder = _Builder()
    body = getattr(fn, "body", [])
    frontier = builder.seq(body, {ENTRY})
    for src in frontier:
        builder.cfg.add_edge(src, EXIT)
    if not body:
        builder.cfg.add_edge(ENTRY, EXIT)
    return builder.cfg


def reach_forward(
    cfg: CFG,
    gen: Dict[int, FrozenSet[Hashable]],
    kill: Dict[int, FrozenSet[Hashable]],
) -> Dict[int, FrozenSet[Hashable]]:
    """Forward may-analysis: IN[n] = ∪ OUT[p]; OUT[n] = (IN[n] − kill) ∪ gen.

    Returns the IN set of every node — the facts that *may* hold just
    before the node executes on at least one path.
    """
    empty: FrozenSet[Hashable] = frozenset()
    in_sets: Dict[int, FrozenSet[Hashable]] = {n: empty for n in cfg.succ}
    out_sets: Dict[int, FrozenSet[Hashable]] = {n: empty for n in cfg.succ}
    queue = deque(sorted(cfg.succ))
    queued = set(queue)
    while queue:
        node = queue.popleft()
        queued.discard(node)
        new_in = empty
        for p in cfg.pred[node]:
            new_in |= out_sets[p]
        new_out = (new_in - kill.get(node, empty)) | gen.get(node, empty)
        in_sets[node] = new_in
        if new_out != out_sets[node]:
            out_sets[node] = new_out
            for s in cfg.succ[node]:
                if s not in queued:
                    queue.append(s)
                    queued.add(s)
    return in_sets
