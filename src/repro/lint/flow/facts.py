"""Per-function syntactic facts: the inputs to effect summaries.

For every function in the :class:`~repro.lint.flow.callgraph.Program`
this module extracts, in one traversal each, the events the deep rules
reason about:

* **charge sites** — calls whose dotted leaf is a virtual-clock charge
  primitive (``occupy`` / ``occupy_parallel`` / ``advance``);
* **work sites** — operations that move bytes or do flops without going
  through an in-program function: the ``@`` matrix multiply on untyped
  operands, ``einsum``/``tensordot``/``dot``/``matmul``/``vdot`` calls
  that resolve to nothing in-program, and buffered ufunc scatters
  (``np.add.at`` / ``.reduceat``);
* **call sites** — resolved in-program callees, plus the set of
  *protected* exceptions absorbed by enclosing handlers at that point;
* **raise sites** — direct raises of the protected exceptions;
* **RNG sources** — unseeded ``default_rng()`` / ``RandomState()``
  constructions (the taint seeds for RNG-FLOW).

A ``@`` whose operand is *typed* as an in-program class with a
``__matmul__``/``matmul`` method is recorded as a call edge to that
method instead of a raw work site — ``x @ self.weight`` in
``Linear.forward`` dispatches to ``Tensor.matmul`` (which charges), it
does not do raw flops at that line.

All constants that mirror repo semantics (exception hierarchy, SparseAdj
cache slots) live here so there is exactly one place to update when
:mod:`repro.errors` or :mod:`repro.kernels.adj` grows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lint.flow.callgraph import (
    FunctionInfo, Program, dotted, infer_env,
)

# ---------------------------------------------------------------------------
# repo-semantic constants
# ---------------------------------------------------------------------------

#: Virtual-clock charge primitives (see repro.simtime.VirtualClock).
CHARGE_LEAVES = frozenset({"occupy", "occupy_parallel", "advance"})

#: Flop-shaped numpy entry points when they resolve to nothing in-program.
WORK_CALL_LEAVES = frozenset({"einsum", "tensordot", "dot", "matmul", "vdot"})

#: ``np.<ufunc>.at`` / ``.reduceat`` buffered scatter parents.
UFUNC_PARENTS = frozenset({"add", "subtract", "multiply", "maximum",
                           "minimum", "logaddexp"})
UFUNC_METHODS = frozenset({"at", "reduceat"})

#: Unseeded constructions of these factories are RNG taint sources.
RNG_FACTORIES = frozenset({"default_rng", "RandomState"})

#: The telemetry primitive whose return value is an *open* span.
SPAN_OPEN_LEAF = "start_span"

#: Exceptions the resilience layer uses for control flow; swallowing one
#: outside ``repro.resilience`` hides an injected fault from the caller.
PROTECTED_EXCEPTIONS = frozenset({"RecoveryExhausted", "FaultPlanError"})

#: Ancestors of the protected exceptions (mirrors repro.errors): a
#: handler naming any of these absorbs the protected exception too.
EXCEPTION_PARENTS: Dict[str, Tuple[str, ...]] = {
    "RecoveryExhausted": ("ResilienceError", "ReproError", "Exception",
                          "BaseException"),
    "FaultPlanError": ("ResilienceError", "ReproError", "Exception",
                       "BaseException"),
}

#: Handler types FAULT-SWALLOW considers indiscriminate.  Catching
#: ``ResilienceError`` or a protected exception by name is a deliberate
#: decision; catching ``Exception`` (or everything) is not.
BROAD_HANDLER_NAMES = frozenset({"Exception", "BaseException"})

#: SparseAdj lazily-derived cache slots (mirrors repro.kernels.adj);
#: assigning ``None`` to one is an invalidation.
CACHE_SLOTS = frozenset({"_mat_t", "_in_degrees", "_out_degrees",
                         "_inv_in_degrees", "_inc_dst", "_inc_src",
                         "_perm_src", "_indptr_src"})

#: Accessor methods that serve from (and lazily fill) those caches.
CACHE_ACCESSORS = frozenset({"_transpose", "in_degrees", "out_degrees",
                             "inv_in_degrees", "_incidence", "src_order",
                             "src_indptr"})

#: Raw scipy CSR buffers; assigning to ``X.<buffer>`` mutates structure
#: the caches were derived from.
CSR_BUFFERS = frozenset({"data", "indices", "indptr"})

#: Restoring the pristine default buffer un-dirties the matrix (the
#: ``finally:`` idiom in SparseAdj.matmul_data / rmatmul).
RESTORE_LEAVES = frozenset({"_default_data", "_default_data_t"})

_FN_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


# ---------------------------------------------------------------------------
# fact records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CallSite:
    """One resolved in-program call (or typed ``@`` dispatch)."""

    node: ast.AST
    dotted: str
    callees: Tuple[str, ...]
    caught: FrozenSet[str]          # protected names absorbed around here
    arg_roots: Tuple[str, ...]      # dotted receiver + argument expressions


@dataclass(frozen=True)
class WorkSite:
    node: ast.AST
    kind: str                       # human-readable, used in messages


@dataclass(frozen=True)
class RaiseSite:
    node: ast.AST
    name: str
    caught: FrozenSet[str]


@dataclass
class FunctionFacts:
    """Everything extracted from one function body (nested defs excluded)."""

    info: FunctionInfo
    env: Dict[str, str]
    charges: List[ast.AST] = field(default_factory=list)
    work: List[WorkSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    rng_sources: List[ast.Call] = field(default_factory=list)


# ---------------------------------------------------------------------------
# handler classification
# ---------------------------------------------------------------------------
def handler_type_names(handler: ast.ExceptHandler) -> FrozenSet[str]:
    """Leaf names of the exception types a handler catches ("" = bare)."""
    if handler.type is None:
        return frozenset({"*"})
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    names = set()
    for t in types:
        name = dotted(t)
        if name:
            names.add(name.rpartition(".")[2])
    return frozenset(names)


def handler_absorbs(handler: ast.ExceptHandler) -> FrozenSet[str]:
    """Protected exceptions this handler would catch."""
    names = handler_type_names(handler)
    if "*" in names:
        return PROTECTED_EXCEPTIONS
    absorbed = set()
    for exc in PROTECTED_EXCEPTIONS:
        if exc in names or any(p in names for p in EXCEPTION_PARENTS[exc]):
            absorbed.add(exc)
    return frozenset(absorbed)


def handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler re-raise (bare ``raise``) on some path?"""
    for node in ast.walk(handler):
        if isinstance(node, _FN_NODES):
            continue
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


def handler_is_broad(handler: ast.ExceptHandler) -> bool:
    names = handler_type_names(handler)
    return "*" in names or bool(names & BROAD_HANDLER_NAMES)


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------
def _expr_roots(call: ast.Call) -> Tuple[str, ...]:
    roots: List[str] = []
    if isinstance(call.func, ast.Attribute):
        recv = dotted(call.func.value)
        if recv:
            roots.append(recv)
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        name = dotted(arg)
        if name:
            roots.append(name)
    return tuple(roots)


def _raise_name(node: ast.Raise) -> str:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    name = dotted(exc) if exc is not None else ""
    return name.rpartition(".")[2]


class _Extractor:
    def __init__(self, program: Program, facts: FunctionFacts) -> None:
        self.program = program
        self.facts = facts

    def scan(self) -> None:
        self._walk(self.facts.info.node, frozenset())

    def _walk(self, node: ast.AST, caught: FrozenSet[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FN_NODES) or isinstance(child, ast.ClassDef):
                continue  # nested definitions get their own facts
            if isinstance(child, ast.Try):
                absorbed = frozenset()
                for handler in child.handlers:
                    if not handler_reraises(handler):
                        absorbed |= handler_absorbs(handler)
                for stmt in child.body:
                    self._classify(stmt, caught | absorbed)
                    self._walk(stmt, caught | absorbed)
                for part in (child.handlers, child.orelse, child.finalbody):
                    for stmt in part:
                        self._classify(stmt, caught)
                        self._walk(stmt, caught)
                continue
            self._classify(child, caught)
            self._walk(child, caught)

    def _classify(self, node: ast.AST, caught: FrozenSet[str]) -> None:
        if isinstance(node, ast.Call):
            self._call(node, caught)
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            self._matmul(node, caught)
        elif isinstance(node, ast.Raise):
            name = _raise_name(node)
            if name in PROTECTED_EXCEPTIONS:
                self.facts.raises.append(RaiseSite(node, name, caught))

    def _call(self, node: ast.Call, caught: FrozenSet[str]) -> None:
        facts, program = self.facts, self.program
        func = node.func
        name = dotted(func)
        leaf = name.rpartition(".")[2] if name else ""

        if leaf in CHARGE_LEAVES:
            facts.charges.append(node)
        if leaf in RNG_FACTORIES and not node.args and not node.keywords:
            facts.rng_sources.append(node)

        callees = program.resolve_call(facts.info, facts.env, node)
        if callees:
            facts.calls.append(CallSite(
                node=node, dotted=name, callees=callees, caught=caught,
                arg_roots=_expr_roots(node)))
            return
        if leaf in UFUNC_METHODS and isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Attribute) \
                and func.value.attr in UFUNC_PARENTS:
            facts.work.append(WorkSite(
                node, f"buffered ufunc scatter '{name}'"))
        elif leaf in WORK_CALL_LEAVES and leaf not in CHARGE_LEAVES:
            facts.work.append(WorkSite(node, f"flop-bearing call '{name}'"))

    def _matmul(self, node: ast.BinOp, caught: FrozenSet[str]) -> None:
        facts, program = self.facts, self.program
        for operand in (node.left, node.right):
            cls = program.expr_type(facts.info, facts.env, operand)
            if cls is None:
                continue
            target = program.lookup_method(cls, "__matmul__") \
                or program.lookup_method(cls, "matmul")
            if target:
                facts.calls.append(CallSite(
                    node=node, dotted="@", callees=(target,), caught=caught,
                    arg_roots=tuple(n for n in (dotted(node.left),
                                                dotted(node.right)) if n)))
                return
        facts.work.append(WorkSite(node, "matrix multiply '@'"))


def build_facts(program: Program) -> Dict[str, FunctionFacts]:
    """Extract facts for every function, nested scopes inheriting types."""
    envs: Dict[str, Dict[str, str]] = {}
    all_facts: Dict[str, FunctionFacts] = {}
    # registration order guarantees parents precede their nested functions
    for qualname, info in program.functions.items():
        outer = envs.get(info.parent) if info.parent else None
        env = infer_env(program, info, outer)
        envs[qualname] = env
        facts = FunctionFacts(info=info, env=env)
        _Extractor(program, facts).scan()
        all_facts[qualname] = facts
    return all_facts
