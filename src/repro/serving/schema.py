"""The versioned ``repro.serve/1`` serving-report schema.

One report records one serving study: the workload/batching
configuration plus, per framework × offered load, the latency tail
(p50/p95/p99 by exact nearest-rank), achieved throughput, request
outcomes, cache behaviour, and phase attribution.  The writer is
deterministic — sorted keys, fixed indentation, atomic replace, and
**no volatile provenance** (no timestamps, no git state) — so two runs
with the same seed produce byte-identical files; the CI serve-smoke job
``cmp``'s them to hold that line.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.serving.engine import ServeConfig, ServeResult

SERVE_SCHEMA = "repro.serve/1"

_CONFIG_KEYS = (
    "dataset", "model", "trace", "num_requests", "nodes_per_request",
    "budget_s", "max_batch", "placement", "pipeline", "cache_fraction",
    "cache_policy", "degraded_mode", "seed", "dataset_scale",
)
_SUMMARY_KEYS = ("p50", "p95", "p99", "mean", "max")
_RESULT_NUMERIC_KEYS = (
    "offered_load", "throughput", "completed", "shed", "stale",
    "cache_hits", "cache_misses", "hit_rate", "makespan_s",
    "max_batch_wait_s", "budget_violations", "energy_j",
)


def build_serve_report(config: ServeConfig,
                       results: List[ServeResult]) -> dict:
    """Assemble one report from measured serving windows.

    The shared workload/batching knobs come from ``config``; each entry
    carries its own framework and offered load (the sweep axes).  Entries
    are sorted by ``(framework, offered_load)`` so the on-disk order is
    independent of execution order.
    """
    entries = []
    for result in sorted(results,
                         key=lambda r: (r.config.framework, r.config.rate)):
        summary = result.latency_summary()
        entries.append({
            "framework": result.config.framework,
            "label": result.label,
            "offered_load": float(result.config.rate),
            "throughput": result.throughput,
            "latency": {k: float(summary[k]) for k in _SUMMARY_KEYS},
            "completed": result.completed,
            "shed": result.shed,
            "stale": result.stale,
            "batches": {
                "count": len(result.batch_sizes),
                "mean_size": (sum(result.batch_sizes)
                              / len(result.batch_sizes)
                              if result.batch_sizes else 0.0),
                "closed_by": dict(sorted(result.batch_closes.items())),
            },
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "hit_rate": result.hit_rate,
            "makespan_s": result.makespan,
            "max_batch_wait_s": result.max_batch_wait,
            "budget_violations": result.budget_violations,
            "energy_j": result.total_energy,
            "phases": {k: float(v)
                       for k, v in sorted(result.phases.items())},
        })
    return {
        "schema": SERVE_SCHEMA,
        "config": {key: getattr(config, key) for key in _CONFIG_KEYS},
        "results": entries,
    }


def write_serve_report(path: Union[str, Path], report: dict) -> Path:
    """Validate then atomically write one report (deterministic bytes)."""
    from repro.bench.artifacts import atomic_write_text

    problems = validate_serve_payload(report)
    if problems:
        raise ValueError(
            f"refusing to write invalid serve report: {problems[0]}"
            + (f" (+{len(problems) - 1} more)" if len(problems) > 1 else ""))
    return atomic_write_text(
        path, json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_serve_report(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text())


def validate_serve_payload(report: object) -> List[str]:
    """Schema-gate one report; returns human-readable problems."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != SERVE_SCHEMA:
        problems.append(f"unknown schema {report.get('schema')!r} "
                        f"(expected {SERVE_SCHEMA})")
    config = report.get("config")
    if not isinstance(config, dict):
        problems.append("config must be an object")
    else:
        for key in _CONFIG_KEYS:
            if key not in config:
                problems.append(f"config missing {key!r}")
    results = report.get("results")
    if not isinstance(results, list) or not results:
        return problems + ["results must be a non-empty list"]
    for index, entry in enumerate(results):
        for problem in _validate_entry(entry):
            problems.append(f"result #{index}: {problem}")
    keys = [(e.get("framework"), e.get("offered_load"))
            for e in results if isinstance(e, dict)]
    if keys != sorted(keys, key=lambda k: (str(k[0]), k[1] or 0.0)):
        problems.append("results are not sorted by (framework, offered_load)")
    return problems


def _validate_entry(entry: object) -> List[str]:
    if not isinstance(entry, dict):
        return ["entry is not an object"]
    problems = []
    if not isinstance(entry.get("framework"), str) or not entry.get("framework"):
        problems.append("missing framework")
    for key in _RESULT_NUMERIC_KEYS:
        if not isinstance(entry.get(key), (int, float)):
            problems.append(f"{key} missing or non-numeric")
    latency = entry.get("latency")
    if not isinstance(latency, dict):
        problems.append("latency must be an object")
    else:
        for key in _SUMMARY_KEYS:
            if not isinstance(latency.get(key), (int, float)):
                problems.append(f"latency.{key} missing or non-numeric")
    for section in ("phases",):
        mapping = entry.get(section)
        if not isinstance(mapping, dict) or not all(
                isinstance(v, (int, float)) for v in mapping.values()):
            problems.append(f"{section} must map names to numbers")
    batches = entry.get("batches")
    if not isinstance(batches, dict) \
            or not isinstance(batches.get("count"), int) \
            or not isinstance(batches.get("closed_by"), dict):
        problems.append("batches must carry count and closed_by")
    return problems


def format_serve_table(report: dict) -> str:
    """Human-readable summary table for the CLI."""
    lines = [f"{'cell':<34} {'p50(ms)':>9} {'p95(ms)':>9} {'p99(ms)':>9} "
             f"{'rps':>8} {'hit%':>6} {'shed':>5}"]
    for entry in report["results"]:
        lat = entry["latency"]
        lines.append(
            f"{entry['label']:<34} {lat['p50'] * 1e3:>9.3f} "
            f"{lat['p95'] * 1e3:>9.3f} {lat['p99'] * 1e3:>9.3f} "
            f"{entry['throughput']:>8.1f} {entry['hit_rate'] * 100:>6.1f} "
            f"{entry['shed']:>5d}")
    return "\n".join(lines)
