"""Critical-path extraction over the merged device timeline.

The virtual clock records one busy interval per kernel/transfer on each
lane (CPU, GPU, PCIe, storage, sampler workers, replicas).  The chain of
intervals that *bounds* end-to-end time is recovered with a backward
walk: starting from the makespan, repeatedly pick the interval whose end
is latest at the current frontier (ties broken by longest duration, then
lane/name order — fully deterministic), jump to its start, and account
any uncovered gap as idle time.  Overlapped work that finishes earlier
than the picked interval is, by construction, off the critical path —
which is exactly what makes overlap-hiding refactors measurable: time a
lane spends *off* the path is its slack.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence

from repro.profiling.analysis.bundle import LaneInterval, RunBundle

#: Two interval ends within this distance count as the same instant.
EPS = 1e-9

#: Chronological segments kept in the payload (the full chain can run to
#: thousands of kernels; aggregates in ``by_lane``/``top`` stay exact).
MAX_SEGMENTS = 400

#: Aggregated (lane, kernel) contributors reported.
TOP_CONTRIBUTORS = 20


def extract_critical_path(bundle: RunBundle) -> dict:
    """The critical-path analysis payload for one run."""
    intervals = [iv for iv in bundle.intervals if iv.duration > EPS]
    if not intervals:
        return {
            "makespan": 0.0,
            "total_seconds": bundle.total_seconds,
            "critical_seconds": 0.0,
            "idle_seconds": 0.0,
            "overlap_seconds": 0.0,
            "coverage": 0.0,
            "segments": [],
            "segments_total": 0,
            "by_lane": {},
            "top": [],
        }
    chain, idle = _walk(intervals)
    merged = _merge_chain(chain)
    critical_total = sum(seg["seconds"] for seg in merged)
    makespan = max(iv.end for iv in intervals)
    by_lane = _lane_stats(intervals, merged, makespan)
    return {
        "makespan": makespan,
        "total_seconds": bundle.total_seconds,
        "critical_seconds": critical_total,
        "idle_seconds": idle,
        "overlap_seconds": _overlap_seconds(intervals),
        "coverage": critical_total / makespan if makespan > 0 else 0.0,
        "segments": merged[:MAX_SEGMENTS],
        "segments_total": len(merged),
        "by_lane": by_lane,
        "top": _top_contributors(merged),
    }


def _overlap_seconds(intervals: Sequence[LaneInterval]) -> float:
    """Busy time hidden behind other lanes' busy time.

    Sum of all interval durations minus the length of their union: zero
    on a fully serial schedule, and exactly the seconds a pipelined run
    (``pipeline=depth-N``, prefetching, parallel workers) kept two or
    more resources busy at once.
    """
    total = sum(iv.duration for iv in intervals)
    union = 0.0
    cur_start = cur_end = None
    for iv in sorted(intervals, key=lambda iv: (iv.start, iv.end)):
        if cur_end is None or iv.start > cur_end + EPS:
            if cur_end is not None:
                union += cur_end - cur_start
            cur_start, cur_end = iv.start, iv.end
        elif iv.end > cur_end:
            cur_end = iv.end
    if cur_end is not None:
        union += cur_end - cur_start
    return max(0.0, total - union)


def _walk(intervals: Sequence[LaneInterval]):
    """Backward walk from the makespan; returns (chain, idle_seconds).

    The chain comes out in reverse-chronological order.
    """
    by_end = sorted(intervals, key=lambda iv: (iv.end, iv.duration,
                                               iv.lane, iv.name))
    ends = [iv.end for iv in by_end]
    t = ends[-1]
    chain: List[LaneInterval] = []
    idle = 0.0
    while t > EPS:
        idx = bisect.bisect_right(ends, t + EPS) - 1
        if idx < 0:
            idle += t
            break
        frontier = by_end[idx].end
        if frontier < t - EPS:
            idle += t - frontier
            t = frontier
            continue
        # Collect every interval ending at the frontier instant and pick
        # the bounding one: longest first, then lane/name order.
        best = by_end[idx]
        j = idx - 1
        while j >= 0 and ends[j] >= frontier - EPS:
            candidate = by_end[j]
            key = (-candidate.duration, candidate.lane, candidate.name)
            if key < (-best.duration, best.lane, best.name):
                best = candidate
            j -= 1
        chain.append(best)
        t = best.start
    return chain, idle


def _merge_chain(chain: Sequence[LaneInterval]) -> List[dict]:
    """Chronological segments, consecutive same-(lane, name) runs merged."""
    merged: List[dict] = []
    for iv in reversed(chain):
        if merged and merged[-1]["lane"] == iv.lane \
                and merged[-1]["name"] == iv.name \
                and iv.start <= merged[-1]["end"] + EPS:
            merged[-1]["end"] = iv.end
            merged[-1]["seconds"] += iv.duration
            merged[-1]["count"] += 1
            continue
        merged.append({"lane": iv.lane, "name": iv.name, "start": iv.start,
                       "end": iv.end, "seconds": iv.duration, "count": 1})
    return merged


def _lane_stats(intervals: Sequence[LaneInterval], merged: Sequence[dict],
                makespan: float) -> Dict[str, dict]:
    busy: Dict[str, float] = {}
    for iv in intervals:
        busy[iv.lane] = busy.get(iv.lane, 0.0) + iv.duration
    critical: Dict[str, float] = {}
    for seg in merged:
        critical[seg["lane"]] = critical.get(seg["lane"], 0.0) + seg["seconds"]
    return {
        lane: {
            "busy_seconds": busy.get(lane, 0.0),
            "critical_seconds": critical.get(lane, 0.0),
            # Slack: time this lane sat idle while the run progressed —
            # the headroom an overlap refactor could hide work in.
            "slack_seconds": max(0.0, makespan - busy.get(lane, 0.0)),
        }
        for lane in sorted(busy)
    }


def _top_contributors(merged: Sequence[dict]) -> List[dict]:
    totals: Dict[tuple, dict] = {}
    for seg in merged:
        key = (seg["lane"], seg["name"])
        entry = totals.setdefault(key, {"lane": seg["lane"], "name": seg["name"],
                                        "seconds": 0.0, "count": 0})
        entry["seconds"] += seg["seconds"]
        entry["count"] += seg["count"]
    ranked = sorted(totals.values(),
                    key=lambda e: (-e["seconds"], e["lane"], e["name"]))
    return ranked[:TOP_CONTRIBUTORS]
