"""Ablation: wall-clock overhead of the telemetry layer.

The telemetry session adds span bookkeeping and metric updates to every
hot path (sampling, kernels, PCIe, allocator, trainer). The budget is
<5% wall-clock overhead versus an identical untelemetered run, and zero
drift on the *simulated* numbers (the virtual clock never observes
telemetry work).

Methodology: interleaved best-of-N timing — alternate off/on runs so
machine noise (frequency scaling, page cache) hits both arms equally,
then compare the minima. Best-of-N is the standard estimator for the
deterministic cost floor of a workload.
"""

import time

from conftest import emit

from repro.bench import format_series, run_training_experiment

ROUNDS = 5


def _run(telemetry_dir=None):
    t0 = time.perf_counter()
    result = run_training_experiment(
        "dglite", "flickr", "graphsage", placement="cpugpu",
        epochs=3, representative_batches=2,
        telemetry_dir=telemetry_dir,
    )
    return time.perf_counter() - t0, result


def test_ablation_telemetry_overhead(once, tmp_path):
    def run():
        off, on = [], []
        baseline = telemetered = None
        for i in range(ROUNDS):
            dt, baseline = _run()
            off.append(dt)
            dt, telemetered = _run(str(tmp_path / f"round-{i}"))
            on.append(dt)
        return off, on, baseline, telemetered

    off, on, baseline, telemetered = once(run)
    best_off, best_on = min(off), min(on)
    overhead = (best_on - best_off) / best_off

    series = {
        "telemetry-off": {"best_ms": best_off * 1e3,
                          "mean_ms": sum(off) / len(off) * 1e3},
        "telemetry-on": {"best_ms": best_on * 1e3,
                         "mean_ms": sum(on) / len(on) * 1e3},
        "overhead": {"best_ms": overhead * 100.0,
                     "mean_ms": float("nan")},
    }
    emit("ablation_telemetry_overhead",
         format_series("Ablation: telemetry wall-clock overhead "
                       "(overhead row is percent)",
                       series, unit="ms", precision=2))

    # The budget from the issue: under 5% on the best-of-N floor.
    assert overhead < 0.05, (
        f"telemetry overhead {overhead:.1%} exceeds the 5% budget "
        f"(off {best_off * 1e3:.1f} ms vs on {best_on * 1e3:.1f} ms)")

    # Telemetry must never perturb the simulation itself.
    assert telemetered.total_time == baseline.total_time
    for phase, secs in baseline.phases.items():
        assert abs(telemetered.phases[phase] - secs) < 1e-9

    # And the instrumented run actually produced its artifacts.
    assert set(telemetered.artifacts) == {"events", "metrics", "trace",
                                          "manifest"}
