"""Hierarchical span tracing over the virtual and wall clocks.

A *span* is a named, nested interval of work: it records when it started
and ended on the simulated :class:`~repro.simtime.VirtualClock` (the
timebase every figure reports) **and** on the host wall clock (the
timebase the overhead ablation budgets), plus structured attributes and
parent/child identity.  The tracer replaces the flat, non-reentrant
phases of the old ``PhaseProfiler``: spans nest freely, and the paper's
four-phase rollup is derived as a *view* over the span tree
(:meth:`SpanTracer.phase_rollup`) instead of being the storage format.

Spans tagged with ``category="phase"`` participate in the rollup with
**exclusive** time semantics: a phase span's contribution is its own
duration minus the duration of any phase spans nested inside it, so
nesting never double-counts and a run without nested phases reproduces
the legacy profiler's numbers exactly.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.simtime import VirtualClock

#: Category marking spans that contribute to the four-phase rollup.
PHASE_CATEGORY = "phase"


@dataclass
class Span:
    """One nested interval of work with dual-clock timing."""

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    category: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)
    start_virtual: float = 0.0
    end_virtual: Optional[float] = None
    start_wall: float = 0.0
    end_wall: Optional[float] = None
    #: Seconds credited without clock movement (epoch extrapolation).
    credited: float = 0.0
    #: Virtual seconds consumed by *nested* phase spans (rollup exclusion).
    child_phase_virtual: float = field(default=0.0, repr=False)

    @property
    def closed(self) -> bool:
        return self.end_virtual is not None

    @property
    def virtual_seconds(self) -> float:
        if self.end_virtual is None:
            return 0.0
        return self.end_virtual - self.start_virtual

    @property
    def wall_seconds(self) -> float:
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    @property
    def phase_seconds(self) -> float:
        """This span's exclusive contribution to the phase rollup."""
        return self.virtual_seconds - self.child_phase_virtual + self.credited

    def to_event(self) -> Dict[str, object]:
        """JSON-lines record (``type: span``) for the event exporter."""
        event: Dict[str, object] = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "category": self.category,
            "ts": self.start_virtual,
            "dur": self.virtual_seconds,
            "wall_ts": self.start_wall,
            "wall_dur": self.wall_seconds,
        }
        if self.credited:
            event["credited"] = self.credited
        if self.attrs:
            event["attrs"] = dict(self.attrs)
        return event


class _SpanContext:
    """Exception-safe context manager around one open span.

    Class-based (not a generator) so ``__exit__`` always runs — including
    during generator teardown paths that bypass a ``@contextmanager``'s
    resume — and the tracer's stack can never be left dangling.
    """

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.end_span(self.span)
        return False


class SpanTracer:
    """Collects a tree of spans against a virtual clock + wall clock.

    ``clock`` may be ``None`` (virtual timestamps stay 0; useful for unit
    tests of pure structure).  ``wall_clock`` is injectable so tests can
    pin wall time deterministically.
    """

    def __init__(self, clock: Optional[VirtualClock] = None,
                 wall_clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._wall = wall_clock
        self._ids = itertools.count(1)
        self._stack: List[Span] = []
        self._spans: List[Span] = []

    # ------------------------------------------------------------------
    def _now_virtual(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def current(self) -> Optional[Span]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, category: str = "", **attrs) -> _SpanContext:
        """Open a child span of the current span; use as a context manager."""
        return _SpanContext(self, self.start_span(name, category, **attrs))

    def start_span(self, name: str, category: str = "", **attrs) -> Span:
        """Low-level open (prefer :meth:`span`; ``repro lint`` flags this
        outside the telemetry package via TELEMETRY-LEAK)."""
        parent = self.current()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            category=category,
            attrs=dict(attrs),
            start_virtual=self._now_virtual(),
            start_wall=self._wall(),
        )
        self._stack.append(span)
        self._spans.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span``, unwinding any dangling children left open."""
        if span.closed:
            return
        while self._stack:
            top = self._stack.pop()
            if top is not span:
                # A child was abandoned (e.g. generator teardown skipped
                # its exit); close it at the same instant so the stack
                # and the rollup stay consistent.
                top.attrs.setdefault("abandoned", True)
            self._close(top)
            if top is span:
                return
        # Span was not on the stack (already unwound defensively).
        self._close(span)

    def _close(self, span: Span) -> None:
        span.end_virtual = self._now_virtual()
        span.end_wall = self._wall()
        if span.category == PHASE_CATEGORY:
            for ancestor in reversed(self._stack):
                if ancestor.category == PHASE_CATEGORY:
                    ancestor.child_phase_virtual += span.virtual_seconds
                    break

    def credit(self, name: str, seconds: float, category: str = PHASE_CATEGORY,
               **attrs) -> Span:
        """Record ``seconds`` of extrapolated work as a zero-length span.

        Used when representative batches stand in for a full epoch: the
        clock did not move, but the rollup must still account the time.
        """
        if seconds < 0:
            raise ValueError("cannot credit negative time")
        parent = self.current()
        now_v, now_w = self._now_virtual(), self._wall()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            category=category,
            attrs=dict(attrs),
            start_virtual=now_v,
            end_virtual=now_v,
            start_wall=now_w,
            end_wall=now_w,
            credited=seconds,
        )
        self._spans.append(span)
        return span

    # ------------------------------------------------------------------
    def spans(self, category: Optional[str] = None) -> List[Span]:
        """All spans in start order, optionally filtered by category."""
        if category is None:
            return list(self._spans)
        return [s for s in self._spans if s.category == category]

    def iter_closed(self) -> Iterator[Span]:
        return (s for s in self._spans if s.closed)

    def max_depth(self) -> int:
        return max((s.depth for s in self._spans), default=-1) + 1

    def phase_rollup(self) -> Dict[str, float]:
        """Exclusive virtual seconds per phase name (the paper's 4-phase
        breakdown as a view over the span tree)."""
        rollup: Dict[str, float] = {}
        for span in self._spans:
            if span.category != PHASE_CATEGORY or not span.closed:
                continue
            rollup[span.name] = rollup.get(span.name, 0.0) + span.phase_seconds
        return rollup
