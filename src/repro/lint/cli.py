"""CLI glue for the ``repro lint`` subcommand.

Kept separate from ``repro.cli`` so the linter stays importable without
the numeric stack (CI runs it before installing heavy extras would even
matter) and so ``repro.cli`` only wires one function pair.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional

from repro.lint.baseline import (
    BaselineError,
    DEFAULT_BASELINE_NAME,
    load_baseline,
    save_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.reporting import format_json, format_text
from repro.lint.rules import RULES


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    parser = subparsers.add_parser(
        "lint",
        help="static analysis: hot-path, determinism, and autograd invariants",
        description=(
            "AST-based lint over the reproduction stack. Rules: "
            + ", ".join(f"{r.name} ({r.severity})" for r in RULES.values())
            + ". Exit 0 when no new (non-baselined) findings."
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--deep", action="store_true",
                        help="also run the whole-program interprocedural "
                             "pass (call graph + effect summaries): "
                             "UNCHARGED-COST, RNG-FLOW, STALE-CACHE, "
                             "SPAN-FLOW, FAULT-SWALLOW, LANE-FLOW")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule names to run "
                             f"(default: all of {', '.join(RULES)}; deep "
                             "rules additionally need --deep)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current findings "
                             "and exit 0")
    parser.add_argument("--verbose", action="store_true",
                        help="also list baselined findings in text output")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _resolve_baseline_path(arg: Optional[str]) -> Optional[Path]:
    if arg is not None:
        return Path(arg)
    default = Path(DEFAULT_BASELINE_NAME)
    return default if default.exists() else None


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        from repro.lint.flow.rules import DEEP_RULES

        for rule in RULES.values():
            print(f"{rule.name:<16}{rule.severity:<9}{rule.description}")
        for rule in DEEP_RULES.values():
            print(f"{rule.name:<16}{rule.severity:<9}[deep] "
                  f"{rule.description}")
        return 0

    select = args.select.split(",") if args.select else None
    baseline_path = _resolve_baseline_path(args.baseline)
    baseline = None
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}")
            return 2
    elif args.baseline is not None and not args.update_baseline:
        print(f"error: baseline file {args.baseline} does not exist "
              "(use --update-baseline to create it)")
        return 2

    try:
        result = lint_paths(args.paths, select=select, baseline=baseline,
                            deep=args.deep)
    except KeyError as exc:
        print(f"error: {exc.args[0]}")
        return 2

    if args.update_baseline:
        target = baseline_path if baseline_path is not None \
            else Path(DEFAULT_BASELINE_NAME)
        written = save_baseline(result.findings + result.baselined, target)
        print(f"wrote {written} baseline entr{'y' if written == 1 else 'ies'} "
              f"to {target}")
        return 0

    if args.format == "json":
        print(format_json(result))
    else:
        print(format_text(result, verbose=args.verbose))
    return 0 if result.ok else 1
