"""Finding formatters: human text and a stable machine-readable JSON.

The JSON schema (version 2) is a contract for downstream tooling
(pre-commit hooks, dashboards); it is documented in ``docs/lint.md`` and
covered by ``tests/test_lint.py``::

    {
      "version": 2,
      "tool": "repro-lint",
      "ok": bool,                  # no new findings
      "deep": bool,                # interprocedural pass ran (--deep)
      "summary": {
        "files_checked": int,
        "new": int,                # findings that gate (exit 1)
        "baselined": int,          # matched the baseline
        "suppressed": int,         # silenced by inline comments
        "by_rule": {"RULE": int, ...},       # new findings only
        "by_severity": {"error": int, ...}   # new findings only
      },
      "findings": [                # new findings, sorted by location
        {"rule": str, "severity": str, "path": str,
         "line": int, "col": int, "message": str}
      ]
    }

Fields are only ever *added* within a schema version; removals or
renames bump ``version``.  Version 2 added the top-level ``deep`` flag
alongside the ``repro lint --deep`` interprocedural pass, so consumers
can tell a clean shallow run from a clean deep run.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

from repro.lint.engine import LintResult

SCHEMA_VERSION = 2


def format_text(result: LintResult, verbose: bool = False) -> str:
    """One ``path:line:col: RULE message`` row per new finding + summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} [{f.severity}] {f.message}"
        for f in result.findings
    ]
    summary = (
        f"{len(result.findings)} new finding(s) in {result.files_checked} "
        f"file(s) ({len(result.baselined)} baselined, "
        f"{result.suppressed} suppressed)"
    )
    if verbose and result.baselined:
        lines.append("baselined (not gating):")
        lines.extend(
            f"  {f.path}:{f.line}: {f.rule} {f.message}" for f in result.baselined
        )
    lines.append(summary)
    return "\n".join(lines)


def to_json_payload(result: LintResult) -> Dict[str, object]:
    by_rule = Counter(f.rule for f in result.findings)
    by_severity = Counter(f.severity for f in result.findings)
    return {
        "version": SCHEMA_VERSION,
        "tool": "repro-lint",
        "ok": result.ok,
        "deep": result.deep,
        "summary": {
            "files_checked": result.files_checked,
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
        "findings": [f.to_dict() for f in result.findings],
    }


def format_json(result: LintResult) -> str:
    return json.dumps(to_json_payload(result), indent=2)
