"""Device specifications calibrated to the paper's testbed.

All experiments in the paper run on a Linux server with dual Intel Xeon
Silver 4114 CPUs @ 2.2 GHz (64 GB RAM) and an NVIDIA Quadro RTX 8000
(48 GB).  The constants below are public datasheet numbers for those parts;
they are the anchor for every simulated runtime.

The cost model is a classic roofline:

    t_kernel = launch_overhead + max(flops / (peak_flops * eff_c),
                                     bytes / (mem_bw * eff_m))

where the efficiency factors ``eff_c``/``eff_m`` come from the *framework
profile* (see :mod:`repro.frameworks.profiles`), because the paper's central
finding is that the same mathematical kernel runs at very different
efficiencies in DGL vs PyG.
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = 2**30
GB = 10**9


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a compute device."""

    name: str
    kind: str  # "cpu" | "gpu"
    peak_flops: float  # single-precision FLOP/s
    mem_bandwidth: float  # bytes/s
    mem_capacity: int  # bytes
    kernel_launch_overhead: float  # seconds per kernel invocation
    idle_power: float  # watts drawn when idle
    busy_power: float  # watts drawn when fully busy

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError(f"{self.name}: peak rates must be positive")
        if self.busy_power < self.idle_power:
            raise ValueError(f"{self.name}: busy power below idle power")


@dataclass(frozen=True)
class CpuSpec(DeviceSpec):
    """CPU-specific spec (sockets/cores drive sampler parallelism)."""

    sockets: int = 2
    cores_per_socket: int = 10
    smt: int = 2

    @property
    def total_threads(self) -> int:
        return self.sockets * self.cores_per_socket * self.smt


@dataclass(frozen=True)
class GpuSpec(DeviceSpec):
    """GPU-specific spec."""

    sm_count: int = 72


@dataclass(frozen=True)
class LinkSpec:
    """A host<->device interconnect."""

    name: str
    bandwidth: float  # bytes/s, effective
    latency: float  # seconds per transfer
    # Zero-copy (UVA) reads traverse the link per access; effective
    # bandwidth is lower than bulk DMA because accesses are fine-grained.
    uva_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")


# Dual Intel Xeon Silver 4114: 2 x 10 cores @ 2.2 GHz, AVX-512.
# Peak SP ~ 2 sockets * 10 cores * 2.2e9 Hz * 32 flops/cycle ~ 1.4 TFLOP/s,
# 6-channel DDR4-2400 per socket ~ 230 GB/s aggregate (115 GB/s each).
PAPER_CPU = CpuSpec(
    name="xeon-silver-4114-x2",
    kind="cpu",
    peak_flops=1.4e12,
    mem_bandwidth=230e9,
    mem_capacity=64 * GIB,
    kernel_launch_overhead=2e-6,  # function-call + threadpool wake-up
    idle_power=60.0,  # two sockets + DRAM at idle
    busy_power=190.0,  # 2 x 85 W TDP + DRAM activity
    sockets=2,
    cores_per_socket=10,
    smt=2,
)

# NVIDIA Quadro RTX 8000 (TU102): 16.3 TFLOP/s SP, 672 GB/s GDDR6, 48 GB.
PAPER_GPU = GpuSpec(
    name="quadro-rtx-8000",
    kind="gpu",
    peak_flops=16.3e12,
    mem_bandwidth=672e9,
    mem_capacity=48 * GIB,
    kernel_launch_overhead=8e-6,  # CUDA launch + framework dispatch
    idle_power=55.0,
    busy_power=260.0,  # 295 W TDP, sustained below
    sm_count=72,
)

# PCIe 3.0 x16: ~16 GB/s raw, ~12 GB/s effective for pageable copies.
# UVA zero-copy access streams at a fraction of DMA bandwidth.
PAPER_PCIE = LinkSpec(
    name="pcie3-x16",
    bandwidth=12e9,
    latency=10e-6,
    uva_bandwidth=9e9,
)

# ----------------------------------------------------------------------
# An alternative laptop-class testbed, used by the hardware-portability
# ablation: do the paper's conclusions survive on consumer hardware?
# ----------------------------------------------------------------------

# 8-core mobile CPU (Ryzen 7 / i7-class): ~0.7 TFLOP/s SP, dual-channel
# DDR4-3200, 16 GB RAM.
LAPTOP_CPU = CpuSpec(
    name="mobile-8core",
    kind="cpu",
    peak_flops=0.7e12,
    mem_bandwidth=50e9,
    mem_capacity=16 * GIB,
    kernel_launch_overhead=2e-6,
    idle_power=15.0,
    busy_power=55.0,
    sockets=1,
    cores_per_socket=8,
    smt=2,
)

# Mobile RTX 3060-class GPU: ~10 TFLOP/s SP, 336 GB/s, 6 GB VRAM — the
# small memory is the interesting part (more OOMs than the RTX 8000).
LAPTOP_GPU = GpuSpec(
    name="mobile-rtx3060",
    kind="gpu",
    peak_flops=10.0e12,
    mem_bandwidth=336e9,
    mem_capacity=6 * GIB,
    kernel_launch_overhead=8e-6,
    idle_power=12.0,
    busy_power=90.0,
    sm_count=30,
)

# Laptop PCIe 4.0 x8-ish effective rates.
LAPTOP_PCIE = LinkSpec(
    name="pcie4-x8",
    bandwidth=10e9,
    latency=12e-6,
    uva_bandwidth=7e9,
)
