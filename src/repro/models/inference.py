"""Layer-wise mini-batch inference (the paper's explicitly-excluded side).

Section 4.1 notes "we do not consider the inference of each model in this
paper"; this extension fills the gap using the standard technique from the
DGL/PyG examples: instead of sampling (which biases predictions), layer-
wise inference computes each GNN layer for *all* nodes before moving to
the next layer, processing nodes in batches so the layer's working set
fits device memory.

Cost structure differs from training: no neighbor explosion (each layer
touches every edge exactly once), but features stream through the device
per layer — so data movement, not sampling, dominates GPU inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import BenchmarkError
from repro.frameworks.base import Framework, FrameworkGraph
from repro.graph.formats import INDEX_DTYPE, gather_neighborhoods
from repro.kernels.adj import SparseAdj
from repro.sampling.relabel import block_locals
from repro.kernels.transfer import to_device
from repro.profiling.profiler import PhaseProfiler
from repro.tensor import functional as F
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor, no_grad


@dataclass
class InferenceResult:
    """Logits plus the phase breakdown of the inference pass."""

    logits: np.ndarray
    phases: dict

    @property
    def total_time(self) -> float:
        return sum(self.phases.values())


def layerwise_inference(
    framework: Framework,
    fgraph: FrameworkGraph,
    model: Module,
    device: str = "cpu",
    batch_nodes: int = 65536,
    profiler: Optional[PhaseProfiler] = None,
    pipeline: str = "off",
) -> InferenceResult:
    """Full-graph inference one layer at a time, in node batches.

    ``batch_nodes`` is the *paper-scale* number of output rows per chunk;
    it is shrunk by the dataset's node scale like every other batch knob.
    ``pipeline`` (``off`` or ``depth-N``) streams the chunks of each
    layer through the datapipe lane scheduler, overlapping feature
    staging and PCIe copies with the previous chunk's compute; the layer
    boundary stays a barrier (layer ``i+1`` reads every chunk of layer
    ``i``).  Logits are bit-identical in both modes.
    """
    from repro.datapipe.config import parse_pipeline

    if not hasattr(model, "_layers"):
        raise BenchmarkError("layerwise_inference needs a layered model")
    machine = fgraph.machine
    target = machine.device(device)
    profiler = profiler or PhaseProfiler(machine.clock)
    graph = fgraph.graph
    actual_chunk = max(1, int(round(batch_nodes / graph.node_scale)))
    depth = parse_pipeline(pipeline).depth

    model.eval()
    layers = list(model._layers)
    x_host = fgraph.features.data
    with no_grad():
        for i, layer in enumerate(layers):
            if depth > 0:
                x_host = _pipelined_layer(
                    framework, fgraph, layer, x_host, target,
                    actual_chunk, depth, profiler,
                    apply_relu=i < len(layers) - 1,
                )
                continue
            outputs = []
            for start in range(0, graph.num_nodes, actual_chunk):
                rows = np.arange(start, min(start + actual_chunk,
                                            graph.num_nodes))
                # Block: all in-edges of this chunk's rows.
                block = _chunk_block(graph, rows, target)
                with profiler.phase("data_movement"), framework.activate():
                    x_in = Tensor(x_host[block_src_nodes(block, rows)],
                                  device=machine.cpu,
                                  work_scale=graph.node_scale)
                    if target.kind == "gpu":
                        x_in = to_device(x_in, target, machine.pcie,
                                         tag="inference-features")
                with profiler.phase("training"), framework.activate():
                    out = layer(block, x_in)
                    if i < len(layers) - 1:
                        out = F.relu(out)
                if target.kind == "gpu":
                    with profiler.phase("data_movement"):
                        machine.pcie.d2h(out.logical_nbytes,
                                         tag="inference-outputs")
                outputs.append(out.data)
            x_host = np.concatenate(outputs, axis=0)
    return InferenceResult(logits=x_host, phases=profiler.snapshot())


def _pipelined_layer(framework, fgraph, layer, x_host, target,
                     actual_chunk, depth, profiler, apply_relu):
    """One GNN layer's chunks streamed through the datapipe scheduler."""
    from repro.datapipe.pipeline import Stage, run_epoch
    from repro.datapipe.staging import StagingPool

    machine = fgraph.machine
    graph = fgraph.graph
    on_gpu = target.kind == "gpu"
    pool = StagingPool(machine, depth, label="inference")

    def fetch(index, rows):
        block = _chunk_block(graph, rows, target)
        with framework.activate():
            x_in = Tensor(x_host[block_src_nodes(block, rows)],
                          device=machine.cpu, work_scale=graph.node_scale)
        pool.stage_host(index, x_in.logical_nbytes)
        return block, x_in

    def h2d(index, payload):
        block, x_in = payload
        pool.stage_gpu(index, x_in.logical_nbytes)
        with framework.activate():
            x_in = to_device(x_in, target, machine.pcie,
                             tag="inference-features")
        return block, x_in

    def compute(index, payload):
        block, x_in = payload
        with framework.activate():
            out = layer(block, x_in)
            if apply_relu:
                out = F.relu(out)
        return out

    def d2h(index, out):
        machine.pcie.d2h(out.logical_nbytes, tag="inference-outputs")
        return out.data

    stages = [Stage("fetch", "data_movement", fn=fetch, lanes=("fetch",))]
    if on_gpu:
        stages.append(Stage("h2d", "data_movement", fn=h2d, lanes=("h2d",)))
    stages.append(Stage("compute", "training", fn=compute, lanes=("train",)))
    if on_gpu:
        stages.append(Stage("d2h", "data_movement", fn=d2h, lanes=("d2h",)))
    else:
        stages.append(Stage("d2h", "data_movement",
                            fn=lambda i, out: out.data, lanes=("d2h",)))

    source = (np.arange(start, min(start + actual_chunk, graph.num_nodes))
              for start in range(0, graph.num_nodes, actual_chunk))
    try:
        report = run_epoch(machine, stages, source, depth,
                           label="inference")
    finally:
        pool.close()
    for phase, seconds in sorted(report.phases.items()):
        profiler.add(phase, seconds)
    return np.concatenate(report.outputs, axis=0)


def _chunk_block(graph, rows: np.ndarray, device) -> SparseAdj:
    """Bipartite block: every in-edge of ``rows`` (dst-prefix layout).

    One vectorized CSR gather + the shared relabel machinery — no
    per-row slicing or dict probes — and the per-row grouping means the
    edge list is already dst-sorted, so adjacency construction skips its
    argsort via ``from_sorted_block``.
    """
    src_global, degrees, _ = gather_neighborhoods(
        graph.adj.indptr, graph.adj.indices, rows
    )
    dst_local = np.repeat(np.arange(rows.size, dtype=INDEX_DTYPE), degrees)
    src_nodes, src_local, _ = block_locals(
        src_global, np.empty(0, dtype=INDEX_DTYPE), rows
    )
    adj = SparseAdj.from_sorted_block(
        src_local, dst_local, num_src=src_nodes.size,
        num_dst=rows.size, device=device,
        node_scale=graph.node_scale, edge_scale=graph.edge_scale)
    adj.src_nodes = src_nodes  # stashed for feature lookup
    return adj


def block_src_nodes(block: SparseAdj, rows: np.ndarray) -> np.ndarray:
    """Global feature rows needed by a chunk block."""
    return block.src_nodes


def batch_blocks(graph, nodes: np.ndarray, num_layers: int, device) -> list:
    """The L-hop block stack for exact (sampling-free) batch inference.

    Walks ``num_layers`` hops of in-edges outward from ``nodes`` with
    :func:`_chunk_block`, innermost layer first — ``blocks[0]`` consumes
    raw features of ``blocks[0].src_nodes`` and ``blocks[-1]`` emits one
    output row per requested node.  Layer ``l``'s output rows are exactly
    layer ``l+1``'s source rows, so the stack feeds a layered model
    directly.  The online serving engine scores micro-batches this way:
    no neighbor sampling, hence no prediction bias per request.
    """
    nodes = np.asarray(nodes, dtype=INDEX_DTYPE)
    blocks = []
    rows = nodes
    for _ in range(num_layers):
        block = _chunk_block(graph, rows, device)
        blocks.append(block)
        rows = block.src_nodes
    blocks.reverse()
    return blocks
