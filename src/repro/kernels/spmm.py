"""Fused sparse-dense matrix multiplication (g-SpMM).

This is DGL's ``update_all`` kernel and PyG's ``matmul(SparseTensor, X)``
fast path.  One kernel aggregates messages without materializing them, so
its working set is O(E + N*F) — never O(E*F).

Weighted forward/backward calls go through the adjacency's reusable CSR
structure (in-place ``.data`` swap, cached transpose) — no scipy matrix is
rebuilt per call; see :mod:`repro.kernels.adj`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PlacementError
from repro.kernels.adj import SparseAdj
from repro.tensor.context import charge
from repro.tensor.tensor import FLOAT_DTYPE, Tensor


def _check_device(adj: SparseAdj, *tensors: Tensor) -> None:
    for t in tensors:
        if t is None:
            continue
        if t.device is not adj.device and t.device is not None and adj.device is not None:
            raise PlacementError(
                f"adjacency on {getattr(adj.device, 'name', None)} but tensor on "
                f"{getattr(t.device, 'name', None)}"
            )


def spmm(adj: SparseAdj, x: Tensor, weight: Optional[Tensor] = None,
         family: str = "spmm") -> Tensor:
    """``out[d] = sum_{e:(s->d)} w[e] * x[s]`` as one fused kernel.

    ``x`` is ``(num_src, F)`` or multi-head ``(num_src, H, D)``; ``weight``
    (optional, per-edge) is ``(E,)`` or ``(E, H)`` in the adjacency's
    canonical edge order.  Output rows are destination nodes.
    """
    _check_device(adj, x, weight)
    if x.shape[0] != adj.num_src:
        raise ValueError(f"x has {x.shape[0]} rows, adjacency expects {adj.num_src}")

    multihead = x.ndim == 3
    if weight is not None and multihead:
        if weight.shape != (adj.num_edges, x.shape[1]):
            raise ValueError("multi-head weight must be (E, H)")
        heads = x.shape[1]
        out_data = np.empty((adj.num_dst, heads, x.shape[2]), dtype=FLOAT_DTYPE)
        for h in range(heads):
            out_data[:, h, :] = adj.matmul_data(weight.data[:, h], x.data[:, h, :])
    elif weight is not None:
        if weight.shape != (adj.num_edges,):
            raise ValueError("weight must be (E,)")
        out_data = adj.matmul_data(weight.data, x.data)
    elif multihead:
        flat = x.data.reshape(adj.num_src, -1)
        out_data = adj.matmul_data(None, flat).reshape(adj.num_dst, *x.shape[1:])
    else:
        out_data = adj.matmul_data(None, x.data)

    parents = (x,) if weight is None else (x, weight)
    out = Tensor(
        out_data,
        device=adj.device,
        requires_grad=any(p.requires_grad for p in parents),
        work_scale=adj.node_scale,
        _prev=tuple(p for p in parents if p.requires_grad),
        _op=family,
    )

    feat_width = int(np.prod(x.shape[1:]))
    e_log = adj.logical_num_edges
    n_log = adj.logical_num_src + adj.logical_num_dst
    flops = 2.0 * e_log * feat_width
    bytes_moved = 4.0 * (2.0 * e_log + n_log * feat_width)
    charge(adj.device, f"{family}.fwd", family, flops=flops, bytes_moved=bytes_moved)

    if out.requires_grad:
        def _backward() -> None:
            if x.requires_grad:
                if weight is not None and multihead:
                    grad_x = np.empty_like(x.data)
                    # Per-head, not per-element: H is tiny and each
                    # iteration is one full SpMM.
                    for h in range(x.shape[1]):  # repro-lint: disable=HOTLOOP
                        grad_x[:, h, :] = adj.rmatmul(out.grad[:, h, :], weight.data[:, h])
                elif weight is not None:
                    grad_x = adj.rmatmul(out.grad, weight.data)
                elif multihead:
                    grad_x = adj.rmatmul(out.grad.reshape(adj.num_dst, -1)).reshape(x.shape)
                else:
                    grad_x = adj.rmatmul(out.grad)
                x._accumulate(grad_x)
            if weight is not None and weight.requires_grad:
                # dW[e] = <x[src[e]], grad[dst[e]]>, an SDDMM.
                if multihead:
                    grad_w = np.einsum(
                        "ehd,ehd->eh", x.data[adj.src], out.grad[adj.dst]
                    ).astype(FLOAT_DTYPE)
                else:
                    grad_w = (x.data[adj.src] * out.grad[adj.dst]).sum(axis=1).astype(FLOAT_DTYPE)
                weight._accumulate(grad_w)
            charge(adj.device, f"{family}.bwd", family, flops=2.0 * flops,
                   bytes_moved=2.0 * bytes_moved)
        out._backward = _backward
    return out
