"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's experiment families:

* ``datasets`` — print Table 1.
* ``loader`` — Figure 3 (data-loader runtime for one or all datasets).
* ``samplers`` — Figure 4 (per-epoch sampler runtime).
* ``conv`` — Figure 5 (conv-layer forward runtime).
* ``train`` — Figures 6-21 (one end-to-end training experiment).
* ``serve`` — online inference serving with latency-budget
  micro-batching (``repro.serve/1`` report).
* ``fullbatch`` — Figures 22-24 (full-batch GraphSAGE).
* ``bench sweep`` / ``bench gate`` — perf-trajectory sweep matrix and
  the regression gate over the committed ``BENCH_*.json`` baselines.
* ``profile analyze`` / ``profile diff`` — offline critical-path,
  roofline, and differential analysis over telemetry directories.
* ``lint`` — static analysis enforcing the stack's hot-path,
  determinism, and autograd invariants.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.bench import (
    measure_conv_forward,
    measure_data_loader,
    measure_sampler_epoch,
    run_fullbatch_experiment,
    run_training_experiment,
)
from repro.datasets import DATASET_NAMES, list_datasets
from repro.profiling.profiler import PHASES

FRAMEWORKS = ("dglite", "pyglite")


def _dataset_args(value: str) -> List[str]:
    if value == "all":
        return list(DATASET_NAMES)
    if value not in DATASET_NAMES:
        raise argparse.ArgumentTypeError(
            f"unknown dataset {value!r}; pick 'all' or one of {DATASET_NAMES}"
        )
    return [value]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for the IISWC'22 GNN-framework "
                    "characterization study.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print Table 1")

    loader = sub.add_parser("loader", help="Figure 3: data-loader runtime")
    loader.add_argument("--dataset", type=_dataset_args, default=list(DATASET_NAMES))

    samplers = sub.add_parser("samplers", help="Figure 4: sampler runtime")
    samplers.add_argument("--dataset", type=_dataset_args, default=["flickr"])
    samplers.add_argument("--sampler", choices=("neighbor", "cluster", "saint_rw"),
                          default="neighbor")
    samplers.add_argument("--seed", type=int, default=0,
                          help="sampler RNG seed (default 0, deterministic)")

    conv = sub.add_parser("conv", help="Figure 5: conv-layer forward runtime")
    conv.add_argument("--dataset", type=_dataset_args, default=["flickr"])
    conv.add_argument("--kind", default="gcn",
                      choices=("gcn", "gcn2", "cheb", "sage", "gat", "gatv2",
                               "tag", "sg"))
    conv.add_argument("--device", choices=("cpu", "gpu"), default="cpu")

    train = sub.add_parser("train", help="Figures 6-21: end-to-end training")
    train.add_argument("--framework", choices=FRAMEWORKS, default="dglite")
    train.add_argument("--dataset", type=_dataset_args, default=["ppi"])
    train.add_argument("--model",
                       choices=("graphsage", "clustergcn", "graphsaint"),
                       default="graphsage")
    train.add_argument("--placement",
                       choices=("cpu", "cpugpu", "gpu", "uvagpu"),
                       default="cpu")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--preload", action="store_true")
    train.add_argument("--prefetch", action="store_true")
    train.add_argument("--cache-fraction", type=float, default=0.0)
    train.add_argument("--workers", type=int, default=0,
                       help="parallel sampling workers (0 = inline)")
    train.add_argument("--pipeline", default="off", metavar="SPEC",
                       help="datapipe streaming: 'off' (serial schedule) or "
                            "'depth-N' (N mini-batches in flight on "
                            "dedicated sampler/PCIe/GPU lanes)")
    train.add_argument("--seed", type=int, default=0,
                       help="sampler/model RNG seed (default 0, deterministic)")
    train.add_argument("--telemetry", default=None, metavar="DIR",
                       help="write run.json/events.jsonl/metrics.prom/"
                            "trace.json to DIR (per-dataset subdirs when "
                            "multiple datasets are selected)")
    train.add_argument("--faults", default=None, metavar="PLAN",
                       help="JSON fault plan to inject deterministically "
                            "(schema in docs/resilience.md)")
    train.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                       help="save a resumable checkpoint every K epochs "
                            "(default: off)")
    train.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="checkpoint file for --checkpoint-every "
                            "(default out/ckpt.npz)")
    train.add_argument("--resume-from", default=None, metavar="PATH",
                       help="resume training from a checkpoint written by "
                            "--checkpoint-every")
    train.add_argument("--halt-after", type=int, default=None, metavar="E",
                       help="stop after E epochs as a simulated crash "
                            "(pair with --checkpoint-every, then resume)")
    train.add_argument("--reference-kernels", action="store_true",
                       help="run on the naive reference kernel schedule "
                            "(A/B partner for `repro profile diff`; charged "
                            "virtual cost is identical to the fast path)")

    serve = sub.add_parser(
        "serve",
        help="online inference serving: latency-budget micro-batching on "
             "the virtual clock (repro.serve/1 report)")
    serve.add_argument("--framework", choices=FRAMEWORKS + ("both",),
                       default="both")
    serve.add_argument("--dataset", choices=DATASET_NAMES, default="ppi")
    serve.add_argument("--rates", default="100", metavar="R1,R2,...",
                       help="comma-separated offered loads in requests per "
                            "virtual second (one serving window each)")
    serve.add_argument("--requests", type=int, default=64,
                       help="requests per serving window (default 64)")
    serve.add_argument("--trace", choices=("poisson", "bursty", "diurnal"),
                       default="poisson")
    serve.add_argument("--nodes-per-request", type=int, default=1)
    serve.add_argument("--budget-ms", type=float, default=50.0,
                       help="micro-batcher latency budget: no request waits "
                            "in the batcher longer than this (default 50)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batch size cap (default 32)")
    serve.add_argument("--placement", choices=("cpu", "cpugpu"),
                       default="cpugpu")
    serve.add_argument("--pipeline", default="depth-4", metavar="SPEC",
                       help="'off' (serial batches) or 'depth-N' (N batches "
                            "in flight on the serving lanes; default depth-4)")
    serve.add_argument("--cache-fraction", type=float, default=0.25)
    serve.add_argument("--cache-policy", choices=("degree", "random"),
                       default="degree")
    serve.add_argument("--degraded", choices=("shed", "stale"),
                       default="shed",
                       help="on exhausted fault recovery: shed the batch or "
                            "serve stale-cache answers (default shed)")
    serve.add_argument("--seed", type=int, default=0,
                       help="trace/model RNG seed (default 0, deterministic)")
    serve.add_argument("--scale", type=float, default=1.0,
                       help="dataset logical-scale multiplier (default 1.0)")
    serve.add_argument("--faults", default=None, metavar="PLAN",
                       help="JSON fault plan for degraded-mode injection "
                            "(schema in docs/resilience.md)")
    serve.add_argument("--out", default=None, metavar="FILE",
                       help="write the repro.serve/1 JSON report here "
                            "(byte-identical across same-seed runs)")
    serve.add_argument("--reference-kernels", action="store_true",
                       help="run on the naive reference kernel schedule "
                            "(charged virtual cost is identical)")

    fullbatch = sub.add_parser("fullbatch", help="Figures 22-24: full-batch SAGE")
    fullbatch.add_argument("--framework", choices=FRAMEWORKS, default="dglite")
    fullbatch.add_argument("--dataset", type=_dataset_args, default=["ppi"])
    fullbatch.add_argument("--device", choices=("cpu", "gpu"), default="cpu")
    fullbatch.add_argument("--epochs", type=int, default=3)
    fullbatch.add_argument("--seed", type=int, default=0,
                           help="model RNG seed (default 0, deterministic)")

    sub.add_parser("observations",
                   help="run the eight-observation reproduction checklist")

    report = sub.add_parser("report",
                            help="aggregate benchmarks/results/*.txt into one file")
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--out", default=None,
                        help="write to this file instead of stdout")
    report.add_argument("--telemetry", default=None, metavar="DIR",
                        help="validate and summarize a telemetry output "
                             "directory instead of aggregating result tables")
    report.add_argument("--top", type=int, default=0, metavar="N",
                        help="with --telemetry: show the top N kernels in "
                             "the breakdown (default: all)")
    report.add_argument("--sort", choices=("virtual", "flops", "bytes"),
                        default="virtual",
                        help="with --telemetry: kernel breakdown sort axis "
                             "(default: virtual seconds)")

    profile = sub.add_parser(
        "profile",
        help="offline analysis over telemetry artifacts (repro.profile/1)")
    profile_sub = profile.add_subparsers(dest="profile_command", required=True)
    analyze = profile_sub.add_parser(
        "analyze",
        help="critical path + roofline + flamegraph for one run directory")
    analyze.add_argument("dir", help="telemetry directory from "
                                     "`repro train --telemetry DIR`")
    analyze.add_argument("--out", default=None, metavar="DIR",
                         help="write profile.json/flame.folded here instead "
                              "of into the run directory")
    analyze.add_argument("--format", choices=("text", "json"), default="text")
    pdiff = profile_sub.add_parser(
        "diff",
        help="attribute the virtual-time delta between two run directories")
    pdiff.add_argument("base", help="baseline telemetry directory")
    pdiff.add_argument("current", help="comparison telemetry directory")
    pdiff.add_argument("--out", default=None, metavar="FILE",
                       help="also write the repro.profile/1 diff JSON here")
    pdiff.add_argument("--format", choices=("text", "json"), default="text")

    bench = sub.add_parser(
        "bench",
        help="perf-trajectory sweeps and regression gates (BENCH_*.json)")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    sweep = bench_sub.add_parser(
        "sweep",
        help="run the kernel/training sweep matrix and write BENCH_*.json")
    sweep.add_argument("--area",
                       choices=("kernels", "training", "serving", "all"),
                       default="all")
    sweep.add_argument("--out-dir", default=".",
                       help="directory for BENCH_<area>.json (default: repo "
                            "root, i.e. the committed baselines)")
    sweep.add_argument("--seeds", default="0,1,2",
                       help="comma-separated seeds; the spread across them "
                            "is the gate's noise envelope")

    gate = bench_sub.add_parser(
        "gate",
        help="re-run the baseline's sweep cells and fail on regression "
             "beyond the noise envelope")
    gate.add_argument("--area",
                      choices=("kernels", "training", "serving", "all"),
                      default="all")
    gate.add_argument("--baseline-dir", default=".",
                      help="directory holding the committed BENCH_*.json")
    gate.add_argument("--k", type=float, default=None,
                      help="noise-envelope width: mean + k*sample_std "
                           "(default 3.0)")
    gate.add_argument("--rel-slack", type=float, default=None,
                      help="relative floor for zero-std cells (default 0.02)")
    gate.add_argument("--format", choices=("text", "json"), default="text")
    gate.add_argument("--out", default=None,
                      help="also write the JSON gate report to this file")
    gate.add_argument("--inject-slowdown", default=None, metavar="CELL=FACTOR",
                      help="self-test: scale one fresh cell's gated metrics "
                           "by FACTOR before comparing (must fail the gate)")

    suite = sub.add_parser("suite", help="run a JSON experiment suite")
    suite.add_argument("path", help="suite JSON file (list of specs)")
    suite.add_argument("--out", default=None,
                       help="write result records to this JSON file")
    suite.add_argument("--compare", default=None,
                       help="compare against previous results; non-zero exit "
                            "on drift beyond --tolerance")
    suite.add_argument("--tolerance", type=float, default=0.05)

    from repro.lint.cli import add_lint_parser

    add_lint_parser(sub)
    return parser


def cmd_datasets() -> None:
    print(f"{'dataset':<15}{'#nodes':>12}{'#edges':>14}{'#feat':>7}"
          f"{'#cls':>6}{'task':>12}{'split':>18}")
    for spec in list_datasets():
        task = "multi-label" if spec.multilabel else "single"
        split = f"{spec.split.train:.2f}/{spec.split.val:.2f}/{spec.split.test:.2f}"
        print(f"{spec.name:<15}{spec.logical_num_nodes:>12,}"
              f"{spec.logical_num_edges:>14,}{spec.num_features:>7}"
              f"{spec.num_classes:>6}{task:>12}{split:>18}")


def cmd_loader(datasets: List[str]) -> None:
    print(f"{'dataset':<15}" + "".join(f"{fw:>12}" for fw in FRAMEWORKS))
    for ds in datasets:
        cells = "".join(
            f"{measure_data_loader(fw, ds):>11.3f}s" for fw in FRAMEWORKS
        )
        print(f"{ds:<15}{cells}")


def cmd_samplers(datasets: List[str], sampler: str, seed: int = 0) -> None:
    print(f"sampler = {sampler}")
    print(f"{'dataset':<15}{'DGLite':>12}{'PyGLite':>12}{'ratio':>8}")
    for ds in datasets:
        dgl = measure_sampler_epoch("dglite", ds, sampler, seed=seed)["epoch"]
        pyg = measure_sampler_epoch("pyglite", ds, sampler, seed=seed)["epoch"]
        print(f"{ds:<15}{dgl:>11.3f}s{pyg:>11.3f}s{pyg / dgl:>7.1f}x")


def cmd_conv(datasets: List[str], kind: str, device: str) -> None:
    print(f"layer = {kind}, device = {device}, out_dim = 256")
    print(f"{'dataset':<15}{'DGLite':>14}{'PyGLite':>14}")
    for ds in datasets:
        cells = []
        for fw in FRAMEWORKS:
            result = measure_conv_forward(fw, ds, kind, device=device)
            cells.append("OOM" if result.oom
                         else f"{result.phases['forward'] * 1000:.3f}ms")
        print(f"{ds:<15}{cells[0]:>14}{cells[1]:>14}")


def cmd_train(args: argparse.Namespace) -> None:
    fault_plan = args.faults
    if fault_plan is not None:
        from repro.errors import FaultPlanError
        from repro.resilience import FaultPlan

        try:
            fault_plan = FaultPlan.from_file(fault_plan)
        except FaultPlanError as exc:
            raise SystemExit(f"repro train: {exc}")
    checkpoint = args.checkpoint
    if args.checkpoint_every and not checkpoint:
        checkpoint = "out/ckpt.npz"
    for ds in args.dataset:
        telemetry_dir = None
        if args.telemetry:
            telemetry_dir = args.telemetry
            if len(args.dataset) > 1:
                from pathlib import Path

                telemetry_dir = str(Path(args.telemetry) / ds)
        result = run_training_experiment(
            args.framework, ds, args.model, placement=args.placement,
            preload=args.preload, prefetch=args.prefetch, epochs=args.epochs,
            feature_cache_fraction=args.cache_fraction,
            num_workers=args.workers,
            pipeline=args.pipeline,
            seed=args.seed,
            telemetry_dir=telemetry_dir,
            fastpath=not args.reference_kernels,
            fault_plan=fault_plan,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=checkpoint,
            resume_from=args.resume_from,
            halt_after_epochs=args.halt_after,
        )
        print(f"\n{result.label} / {args.model} / {ds} "
              f"({args.epochs} epochs, {result.batches_per_epoch} batches/epoch)")
        for phase in PHASES:
            seconds = result.phases.get(phase, 0.0)
            print(f"  {phase:<15}{seconds:>10.2f}s "
                  f"{100 * result.phase_fraction(phase):>5.1f}%")
        print(f"  {'total':<15}{result.total_time:>10.2f}s")
        print(f"  avg power {result.avg_power:.1f} W, "
              f"energy {result.total_energy:.1f} J")
        if result.resilience:
            r = result.resilience
            print(f"  faults: {r.get('injected', 0)} injected, "
                  f"{r.get('recovered', 0)} recovered, "
                  f"{r.get('retries', 0)} retries, "
                  f"{r.get('degraded', 0)} degraded")
        if not result.completed:
            print(f"  halted after --halt-after {args.halt_after} epoch(s); "
                  f"resume with --resume-from {checkpoint}")
        if result.artifacts:
            print("  telemetry:")
            for name in sorted(result.artifacts):
                print(f"    {name:<10}{result.artifacts[name]}")


def _parse_rates(value: str) -> List[float]:
    try:
        rates = [float(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"repro serve: invalid rate list {value!r}")
    if not rates or any(r <= 0 for r in rates):
        raise SystemExit("repro serve: need at least one positive rate")
    return rates


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import BenchmarkError, FaultPlanError
    from repro.serving import (
        ServeConfig,
        build_serve_report,
        format_serve_table,
        run_serving_curve,
        write_serve_report,
    )

    fault_plan = args.faults
    if fault_plan is not None:
        from repro.resilience import FaultPlan

        try:
            fault_plan = FaultPlan.from_file(fault_plan)
        except FaultPlanError as exc:
            raise SystemExit(f"repro serve: {exc}")
    rates = _parse_rates(args.rates)
    frameworks = (list(FRAMEWORKS) if args.framework == "both"
                  else [args.framework])
    try:
        base = ServeConfig(
            framework=frameworks[0],
            dataset=args.dataset,
            rate=rates[0],
            num_requests=args.requests,
            trace=args.trace,
            nodes_per_request=args.nodes_per_request,
            budget_s=args.budget_ms / 1000.0,
            max_batch=args.max_batch,
            placement=args.placement,
            pipeline=args.pipeline,
            cache_fraction=args.cache_fraction,
            cache_policy=args.cache_policy,
            degraded_mode=args.degraded,
            seed=args.seed,
            dataset_scale=args.scale,
        )
    except BenchmarkError as exc:
        raise SystemExit(f"repro serve: {exc}")
    print(f"serve: {args.dataset} {args.trace} trace, "
          f"{args.requests} requests/window, budget {args.budget_ms:g} ms, "
          f"max batch {args.max_batch}, seed {args.seed}")
    results = run_serving_curve(base, rates, frameworks,
                                fault_plan=fault_plan, progress=print)
    report = build_serve_report(base, results)
    print()
    print(format_serve_table(report))
    shed = sum(r.shed for r in results)
    stale = sum(r.stale for r in results)
    if shed or stale:
        print(f"degraded service: {shed} request(s) shed, "
              f"{stale} served stale")
    if args.out:
        path = write_serve_report(args.out, report)
        print(f"wrote {path}")
    return 0


def cmd_fullbatch(args: argparse.Namespace) -> None:
    for ds in args.dataset:
        result = run_fullbatch_experiment(args.framework, ds,
                                          device=args.device,
                                          epochs=args.epochs,
                                          seed=args.seed)
        if result.oom:
            print(f"{result.label} / {ds}: OOM ({result.error})")
            continue
        print(f"{result.label} / {ds}: "
              f"{result.phases['training'] * 1000:.3f} ms/epoch, "
              f"avg power {result.avg_power:.1f} W, "
              f"energy {result.total_energy:.1f} J")


def cmd_telemetry_report(out_dir: str, top: int = 0,
                         sort: str = "virtual") -> int:
    """Validate a telemetry bundle and print the run summary."""
    from pathlib import Path

    from repro.profiling.kernel_report import (
        format_metric_kernel_table,
        kernel_rows_from_metrics,
    )
    from repro.telemetry.manifest import load_run_manifest, validate_run_dir

    problems = validate_run_dir(out_dir)
    if problems:
        print(f"{len(problems)} schema problem(s) in {out_dir}:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    manifest = load_run_manifest(Path(out_dir) / "run.json")
    print(f"{manifest['label']} / {manifest['dataset']} "
          f"(command={manifest['command']}, seed={manifest['seed']})")
    for phase in PHASES:
        seconds = manifest["phases"].get(phase, 0.0)
        fraction = manifest["phase_fractions"].get(phase, 0.0)
        print(f"  {phase:<15}{seconds:>10.2f}s {100 * fraction:>5.1f}%")
    print(f"  {'total':<15}{manifest['total_seconds']:>10.2f}s")
    spans = manifest["spans"]
    print(f"  spans: {spans['count']} ({spans['phase_spans']} phase, "
          f"max depth {spans['max_depth']}); metrics: {len(manifest['metrics'])}")
    rows = kernel_rows_from_metrics(manifest["metrics"], sort=sort, top=top)
    if rows:
        for line in format_metric_kernel_table(rows, sort=sort).splitlines():
            print(f"  {line}")
    fastpath = {}
    for record in manifest["metrics"]:
        if record["name"] in ("kernel.fastpath.hit", "kernel.fastpath.miss"):
            path = record.get("labels", {}).get("path", "?")
            key = "hit" if record["name"].endswith("hit") else "miss"
            fastpath.setdefault(path, {"hit": 0, "miss": 0})[key] += record["value"]
    if fastpath:
        print("  kernel fast-path:")
        for path in sorted(fastpath):
            hits, misses = fastpath[path]["hit"], fastpath[path]["miss"]
            total = hits + misses
            rate = 100.0 * hits / total if total else 0.0
            print(f"    {path:<16}{int(hits):>8} hit {int(misses):>8} miss "
                  f"({rate:.1f}% fast)")
    faults = {}
    for record in manifest["metrics"]:
        name = record["name"]
        if not name.startswith("fault."):
            continue
        site = record.get("labels", {}).get("site", "?")
        event = name.split(".", 1)[1]  # injected/recovered/retries/degraded
        bucket = faults.setdefault(
            site, {"injected": 0, "recovered": 0, "retries": 0, "degraded": 0})
        bucket[event] = bucket.get(event, 0) + record["value"]
    if faults:
        print("  resilience:")
        for site in sorted(faults):
            counts = faults[site]
            line = (f"    {site:<16}{int(counts['injected']):>4} injected "
                    f"{int(counts['recovered']):>4} recovered "
                    f"{int(counts['retries']):>4} retries")
            if counts["degraded"]:
                line += f" {int(counts['degraded'])} degraded"
            print(line)
    energy = manifest.get("energy")
    if energy:
        print(f"  energy {energy['total_joules']:.1f} J, "
              f"avg power {energy['avg_power_w']:.1f} W, "
              f"peak {energy['peak_power_w']:.1f} W")
        for rail in ("cpu", "gpu"):
            stats = energy[f"{rail}_power_w"]
            print(f"  {rail} power  p50 {stats['p50']:.1f} W, "
                  f"p95 {stats['p95']:.1f} W, peak {stats['peak']:.1f} W")
    print(f"telemetry bundle OK: {out_dir}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Concatenate every emitted result table into one report."""
    from pathlib import Path

    if args.telemetry:
        return cmd_telemetry_report(args.telemetry, top=args.top,
                                    sort=args.sort)
    results_dir = Path(args.results_dir)
    files = sorted(results_dir.glob("*.txt"))
    if not files:
        print(f"no result tables under {results_dir} "
              "(run `pytest benchmarks/ --benchmark-only` first)")
        return 1
    sections = [f"Aggregated benchmark report ({len(files)} tables)\n"]
    for path in files:
        sections.append(f"\n### {path.stem}\n")
        sections.append(path.read_text().rstrip())
    text = "\n".join(sections) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out} ({len(files)} tables)")
    else:
        print(text)
    return 0


def _bench_areas(value: str) -> List[str]:
    from repro.bench.artifacts import SWEEP_AREAS

    return list(SWEEP_AREAS) if value == "all" else [value]


def _parse_seeds(value: str) -> List[int]:
    try:
        seeds = [int(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"repro bench: invalid seed list {value!r}")
    if not seeds:
        raise SystemExit("repro bench: need at least one seed")
    return seeds


def cmd_bench_sweep(args: argparse.Namespace) -> int:
    from repro.bench.artifacts import artifact_path, write_sweep_artifact
    from repro.bench.sweep import run_sweep

    seeds = _parse_seeds(args.seeds)
    for area in _bench_areas(args.area):
        print(f"sweep: {area} (seeds {seeds})")
        artifact = run_sweep(area, seeds=seeds, progress=print)
        path = write_sweep_artifact(artifact_path(args.out_dir, area), artifact)
        print(f"wrote {path} ({len(artifact['cells'])} cells)")
    return 0


def cmd_bench_gate(args: argparse.Namespace) -> int:
    from repro.bench import gate as bench_gate
    from repro.bench.sweep import SweepCell, run_sweep

    k = args.k if args.k is not None else bench_gate.DEFAULT_NOISE_K
    rel_slack = (args.rel_slack if args.rel_slack is not None
                 else bench_gate.DEFAULT_REL_SLACK)
    injection = None
    if args.inject_slowdown:
        cell_id, _, factor = args.inject_slowdown.partition("=")
        try:
            injection = (cell_id, float(factor))
        except ValueError:
            raise SystemExit("repro bench gate: --inject-slowdown expects "
                             "CELL=FACTOR (e.g. conv/dglite/gcn/ppi/x1/fast=2)")
    results = []
    injected = False
    for area in _bench_areas(args.area):
        baseline = bench_gate.load_baseline(args.baseline_dir, area)
        if baseline is None:
            results.append(bench_gate.GateResult(
                area=area, regressions=[], improvements=[],
                problems=[f"no committed baseline BENCH_{area}.json under "
                          f"{args.baseline_dir} (run `repro bench sweep`)"]))
            continue
        cells = [SweepCell.from_params(cell["params"])
                 for cell in baseline.get("cells", [])]
        fresh = run_sweep(area, seeds=baseline.get("seeds", [0]), cells=cells)
        if injection is not None and any(c["id"] == injection[0]
                                        for c in fresh["cells"]):
            fresh = bench_gate.inject_slowdown(fresh, *injection)
            injected = True
        results.append(bench_gate.compare_artifacts(
            baseline, fresh, k=k, rel_slack=rel_slack))
    if injection is not None and not injected:
        raise SystemExit(f"repro bench gate: --inject-slowdown cell "
                         f"{injection[0]!r} not found in any swept area")
    payload = bench_gate.gate_report_payload(results)
    if args.out:
        from repro.bench.artifacts import atomic_write_text

        atomic_write_text(args.out, json.dumps(payload, indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(bench_gate.format_gate_report(results))
    return 0 if payload["passed"] else 1


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.errors import BenchmarkError

    try:
        if args.profile_command == "analyze":
            from repro.profiling.analysis import (
                analyze_run_dir,
                format_profile_report,
            )

            payload = analyze_run_dir(args.dir, out_dir=args.out)
            if args.format == "json":
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                print(format_profile_report(payload))
                for name, path in sorted(payload["artifacts"].items()):
                    print(f"wrote {name}: {path}")
            return 0
        from repro.profiling.analysis import diff_run_dirs, format_diff_report

        payload = diff_run_dirs(args.base, args.current)
        if args.out:
            from repro.profiling.analysis import write_profile_json

            path = write_profile_json(args.out, payload)
            print(f"wrote diff: {path}")
        if args.format == "json":
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(format_diff_report(payload))
        return 0
    except BenchmarkError as exc:
        print(f"repro profile: {exc}")
        return 1


def cmd_bench(args: argparse.Namespace) -> int:
    if args.bench_command == "sweep":
        return cmd_bench_sweep(args)
    return cmd_bench_gate(args)


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.bench.suite import (
        compare_results,
        load_results,
        run_suite_file,
        save_results,
    )

    records = run_suite_file(args.path)
    for record in records:
        summary = {k: v for k, v in record.items() if k != "spec"}
        print(json.dumps(summary))
    if args.out:
        save_results(records, args.out)
        print(f"wrote {len(records)} records to {args.out}")
    if args.compare:
        problems = compare_results(load_results(args.compare), records,
                                   tolerance=args.tolerance)
        if problems:
            print(f"\n{len(problems)} regression(s) vs {args.compare}:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"\nno regressions vs {args.compare}")
    return 0


def _validate_parsed_args(parser: argparse.ArgumentParser,
                          args: argparse.Namespace) -> None:
    """Cross-flag checks that argparse cannot express per-argument.

    ``--pipeline depth-N`` is CPU-side sampling overlap: combining it
    with an on-device sampling placement is rejected here, at parse
    time, as a hard argument error (exit code 2) — the same shared
    validation path (:func:`repro.datapipe.config.
    validate_pipeline_placement`) runs again inside ``TrainConfig`` and
    ``ServeConfig`` for programmatic callers.
    """
    if args.command in ("train", "serve"):
        from repro.datapipe.config import validate_pipeline_placement
        from repro.errors import BenchmarkError

        try:
            validate_pipeline_placement(args.pipeline, args.placement)
        except BenchmarkError as exc:
            parser.error(str(exc))


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_parsed_args(parser, args)
    if args.command == "datasets":
        cmd_datasets()
    elif args.command == "loader":
        cmd_loader(args.dataset)
    elif args.command == "samplers":
        cmd_samplers(args.dataset, args.sampler, seed=args.seed)
    elif args.command == "conv":
        cmd_conv(args.dataset, args.kind, args.device)
    elif args.command == "train":
        cmd_train(args)
    elif args.command == "serve":
        return cmd_serve(args)
    elif args.command == "fullbatch":
        cmd_fullbatch(args)
    elif args.command == "observations":
        from repro.bench.observations import (
            format_observation_report,
            run_all_observations,
        )

        results = run_all_observations()
        print(format_observation_report(results))
        return 0 if all(r.passed for r in results) else 1
    elif args.command == "report":
        return cmd_report(args)
    elif args.command == "profile":
        return cmd_profile(args)
    elif args.command == "bench":
        return cmd_bench(args)
    elif args.command == "suite":
        return cmd_suite(args)
    elif args.command == "lint":
        from repro.lint.cli import cmd_lint

        return cmd_lint(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
