"""Tests for the executable observation checklist."""

import pytest

from repro.bench.observations import (
    CHECKS,
    ObservationResult,
    format_observation_report,
    run_all_observations,
)


class TestChecklist:
    def test_eight_checks_registered(self):
        assert len(CHECKS) == 8

    @pytest.mark.parametrize("check", CHECKS,
                             ids=[f"obs{i + 1}" for i in range(len(CHECKS))])
    def test_each_observation_passes(self, check):
        result = check()
        assert isinstance(result, ObservationResult)
        assert result.passed, result.evidence
        assert result.evidence  # every verdict carries its numbers

    def test_numbers_are_ordered(self):
        results = run_all_observations()
        assert [r.number for r in results] == list(range(1, 9))

    def test_report_rendering(self):
        results = [
            ObservationResult(1, "claim A", True, {"x": 1.0}),
            ObservationResult(2, "claim B", False, {"y": 2.0}),
        ]
        text = format_observation_report(results)
        assert "[PASS] Obs 1" in text
        assert "[FAIL] Obs 2" in text
        assert "1/2 observations reproduced" in text

    def test_cli_observations_command(self, capsys):
        from repro.cli import main
        assert main(["observations"]) == 0
        out = capsys.readouterr().out
        assert "8/8 observations reproduced" in out
