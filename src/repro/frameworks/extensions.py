"""Extension samplers beyond the paper's benchmarked trio.

The paper's Sections 2.1 and 4.1 discuss — but do not benchmark —
GraphSAINT's node/edge sampling variants and the layer-wise FastGCN /
LADIES samplers.  These wrappers plug those algorithms into the same
charging machinery, so the ablation benches can quantify the trade-offs
the paper only cites (node/edge sampling inferior to random walks;
LADIES' "non-negligible overhead").
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.frameworks.base import (
    Framework,
    FrameworkBatch,
    FrameworkGraph,
    _BlockSamplerWrapper,
    _SubgraphSamplerWrapper,
)
from repro.sampling.layerwise import FastGCNSampler, LadiesSampler
from repro.sampling.saint_variants import SaintEdgeSampler, SaintNodeSampler


class WrappedSaintNodeSampler(_SubgraphSamplerWrapper):
    """GraphSAINT node-sampling variant."""

    kind = "saint_node"

    def __init__(self, framework: Framework, fgraph: FrameworkGraph,
                 budget: int = 6000, seed: Optional[int] = None) -> None:
        super().__init__(framework, fgraph, mode="cpu")
        self.algorithm = SaintNodeSampler(fgraph.graph, budget, seed)

    def num_batches(self) -> int:
        return self.algorithm.num_batches()

    def sample(self) -> FrameworkBatch:
        with self.framework.activate():
            return self._assemble(self.algorithm.sample())

    def epoch(self) -> Iterator[FrameworkBatch]:
        with self.framework.activate():
            for sample in self.algorithm.epoch_batches():
                yield self._assemble(sample)


class WrappedSaintEdgeSampler(_SubgraphSamplerWrapper):
    """GraphSAINT edge-sampling variant."""

    kind = "saint_edge"

    def __init__(self, framework: Framework, fgraph: FrameworkGraph,
                 budget: int = 4000, seed: Optional[int] = None) -> None:
        super().__init__(framework, fgraph, mode="cpu")
        self.algorithm = SaintEdgeSampler(fgraph.graph, budget, seed)

    def num_batches(self) -> int:
        return self.algorithm.num_batches()

    def sample(self) -> FrameworkBatch:
        with self.framework.activate():
            return self._assemble(self.algorithm.sample())

    def epoch(self) -> Iterator[FrameworkBatch]:
        with self.framework.activate():
            for sample in self.algorithm.epoch_batches():
                yield self._assemble(sample)


class WrappedFastGCNSampler(_BlockSamplerWrapper):
    """FastGCN layer-wise sampler (independent per-layer draws)."""

    kind = "fastgcn"

    def __init__(self, framework: Framework, fgraph: FrameworkGraph,
                 layer_sizes=(400, 400), batch_size: int = 512,
                 seed: Optional[int] = None) -> None:
        super().__init__(framework, fgraph, mode="cpu")
        self.algorithm = FastGCNSampler(fgraph.graph, layer_sizes, batch_size, seed)

    def _hops(self) -> int:
        return len(self.algorithm.layer_sizes)

    @property
    def last_isolated_fraction(self) -> float:
        """Fraction of frontier nodes left without sampled in-neighbors."""
        return self.algorithm.last_isolated_fraction


class WrappedLadiesSampler(_BlockSamplerWrapper):
    """LADIES layer-dependent importance sampler."""

    kind = "ladies"

    def __init__(self, framework: Framework, fgraph: FrameworkGraph,
                 layer_sizes=(400, 400), batch_size: int = 512,
                 seed: Optional[int] = None) -> None:
        super().__init__(framework, fgraph, mode="cpu")
        self.algorithm = LadiesSampler(fgraph.graph, layer_sizes, batch_size, seed)

    def _hops(self) -> int:
        return len(self.algorithm.layer_sizes)


EXTENSION_SAMPLERS = {
    "saint_node": WrappedSaintNodeSampler,
    "saint_edge": WrappedSaintEdgeSampler,
    "fastgcn": WrappedFastGCNSampler,
    "ladies": WrappedLadiesSampler,
}


def make_extension_sampler(framework: Framework, fgraph: FrameworkGraph,
                           kind: str, seed: Optional[int] = 0, **kwargs):
    """Build one of the extension samplers by name.

    ``seed`` defaults to 0 (deterministic); pass ``None`` for a
    nondeterministic RNG.
    """
    if kind not in EXTENSION_SAMPLERS:
        raise KeyError(
            f"unknown extension sampler {kind!r}; "
            f"available: {', '.join(EXTENSION_SAMPLERS)}"
        )
    framework._prepare_sampling(fgraph)
    return EXTENSION_SAMPLERS[kind](framework, fgraph, seed=seed, **kwargs)
