"""Tests for on-disk dataset storage."""

import numpy as np
import pytest

from repro.datasets.storage import load_graph, save_graph, stored_nbytes
from repro.errors import DatasetError


class TestRoundtrip:
    def test_save_load_preserves_everything(self, tiny_graph, tmp_path):
        save_graph(tiny_graph, tmp_path / "g")
        loaded = load_graph(tmp_path / "g")
        assert loaded.num_nodes == tiny_graph.num_nodes
        assert loaded.num_edges == tiny_graph.num_edges
        assert np.allclose(loaded.features, tiny_graph.features)
        assert np.array_equal(loaded.labels, tiny_graph.labels)
        assert np.array_equal(loaded.train_mask, tiny_graph.train_mask)
        assert loaded.stats == tiny_graph.stats

    def test_multilabel_roundtrip(self, tiny_multilabel_graph, tmp_path):
        save_graph(tiny_multilabel_graph, tmp_path / "ml")
        loaded = load_graph(tmp_path / "ml")
        assert loaded.labels.shape == tiny_multilabel_graph.labels.shape
        assert loaded.stats.multilabel

    def test_save_creates_directory(self, tiny_graph, tmp_path):
        target = tmp_path / "deep" / "nested"
        save_graph(tiny_graph, target)
        assert (target / "arrays.npz").exists()
        assert (target / "stats.json").exists()


class TestErrors:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_graph(tmp_path / "nothing")

    def test_bad_version_rejected(self, tiny_graph, tmp_path):
        save_graph(tiny_graph, tmp_path / "g")
        stats_file = tmp_path / "g" / "stats.json"
        stats_file.write_text(stats_file.read_text().replace(
            '"_format_version": 1', '"_format_version": 99'))
        with pytest.raises(DatasetError):
            load_graph(tmp_path / "g")


class TestLogicalFootprint:
    def test_stored_bytes_use_logical_stats(self, tiny_graph):
        nbytes = stored_nbytes(tiny_graph.stats)
        # Much bigger than the actual arrays: it is the paper-scale read.
        assert nbytes > tiny_graph.features.nbytes
        expected = (tiny_graph.stats.feature_nbytes()
                    + tiny_graph.stats.structure_nbytes()
                    + tiny_graph.stats.label_nbytes())
        assert nbytes == expected


class TestCorruptedFiles:
    """Damage every file the loader touches; always get a DatasetError
    naming the offending path, never a raw zipfile/json/KeyError."""

    @pytest.fixture
    def stored(self, tiny_graph, tmp_path):
        save_graph(tiny_graph, tmp_path / "g")
        return tmp_path / "g"

    def test_invalid_json_stats(self, stored):
        (stored / "stats.json").write_text("{not json at all")
        with pytest.raises(DatasetError, match="stats.json"):
            load_graph(stored)

    def test_non_object_stats(self, stored):
        (stored / "stats.json").write_text("[1, 2, 3]")
        with pytest.raises(DatasetError, match="not an object"):
            load_graph(stored)

    def test_valid_json_missing_split(self, stored):
        import json as _json
        raw = _json.loads((stored / "stats.json").read_text())
        del raw["split"]
        (stored / "stats.json").write_text(_json.dumps(raw))
        with pytest.raises(DatasetError, match="malformed dataset stats"):
            load_graph(stored)

    def test_valid_json_unexpected_field(self, stored):
        import json as _json
        raw = _json.loads((stored / "stats.json").read_text())
        raw["surprise"] = 1
        (stored / "stats.json").write_text(_json.dumps(raw))
        with pytest.raises(DatasetError, match="malformed dataset stats"):
            load_graph(stored)

    def test_torn_write_truncates_npz(self, stored):
        path = stored / "arrays.npz"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # simulated torn write
        with pytest.raises(DatasetError, match="arrays.npz"):
            load_graph(stored)

    def test_npz_is_not_a_zipfile(self, stored):
        (stored / "arrays.npz").write_bytes(b"this is no archive")
        with pytest.raises(DatasetError, match="arrays.npz"):
            load_graph(stored)

    def test_npz_missing_array(self, stored, tiny_graph):
        np.savez(stored / "arrays.npz",
                 indptr=tiny_graph.adj.indptr,
                 indices=tiny_graph.adj.indices,
                 features=tiny_graph.features)  # labels + masks dropped
        with pytest.raises(DatasetError, match="missing array"):
            load_graph(stored)
