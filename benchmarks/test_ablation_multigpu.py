"""Ablation: multi-GPU data-parallel scaling (extension).

The paper's related work cites distributed GNN-training characterizations
(Lin et al. 2022); this bench runs synchronous data-parallel GraphSAGE on
1/2/4/8 simulated RTX 8000s and shows the scaling wall the paper's
Observation 4 predicts: compute parallelizes, the host-side sampler and
the shared PCIe link do not.
"""

from conftest import emit

from repro.bench import format_series
from repro.distributed import DataParallelTrainer, multi_gpu_testbed
from repro.frameworks import get_framework
from repro.models.graphsage import build_graphsage, graphsage_sampler

GPUS = (1, 2, 4, 8)
DATASET = "reddit"


def _run(k: int):
    machine = multi_gpu_testbed(k)
    fw = get_framework("dglite")
    fgraph = fw.load(DATASET, machine)
    sampler = graphsage_sampler(fw, fgraph, seed=0)
    net = build_graphsage(fw, fgraph, seed=0)
    trainer = DataParallelTrainer(fw, fgraph, sampler, net, epochs=3,
                                  representative_steps=2)
    return trainer.run()


def test_ablation_multigpu_scaling(once):
    results = once(lambda: {k: _run(k) for k in GPUS})

    base = results[1]
    series = {
        f"{k}-gpu": {
            "total_s": r.total_time,
            "speedup": base.total_time / r.total_time,
            "sampling_s": r.phases.get("sampling", 0.0),
            "training_s": r.phases.get("training", 0.0),
            "energy_kJ": r.total_energy / 1000.0,
        }
        for k, r in results.items()
    }
    emit("ablation_multigpu",
         format_series(f"Ablation: data-parallel GraphSAGE scaling on {DATASET}",
                       series, unit="mixed", precision=2))

    # Compute scales: the training phase shrinks roughly with GPU count.
    assert results[8].phases["training"] < results[1].phases["training"] / 4

    # But the end-to-end speedup stalls far below linear — the CPU
    # sampler and the shared PCIe link serialize (Amdahl via Obs 4).
    speedup_8 = base.total_time / results[8].total_time
    assert speedup_8 < 2.0, f"8-GPU speedup {speedup_8:.2f}x should be sub-2x"
    assert results[8].phases["sampling"] > 0.7 * base.phases["sampling"]

    # More replicas, more joules: energy rises monotonically with k.
    energies = [results[k].total_energy for k in GPUS]
    assert all(a < b for a, b in zip(energies, energies[1:]))

    # Throughput per GPU degrades: 8 GPUs are < 8x as useful as one.
    assert speedup_8 / 8 < 0.25
