"""The mini-batch training driver with four-phase accounting.

Executes real training batches (sampling, movement, forward/backward/step)
against the virtual clock.  Because the paper-scale epoch can have hundreds
of batches, each epoch runs ``representative_batches`` batches for real and
extrapolates the rest: remaining batches are charged the measured per-batch
device busy time per phase, preserving the breakdown, the power timeline,
and the totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datapipe.config import parse_pipeline, validate_pipeline_placement
from repro.errors import BenchmarkError, RecoveryExhausted
from repro.frameworks.base import Framework, FrameworkBatch, FrameworkGraph
from repro.hardware.machine import Machine
from repro.kernels.transfer import adj_to_device, to_device
from repro.models.base import make_loss
from repro.profiling.profiler import PhaseProfiler
from repro.resilience import runtime as resilience
from repro.telemetry import runtime as telemetry
from repro.telemetry.runtime import maybe_span
from repro.tensor.module import Module
from repro.tensor.optim import Adam
from repro.tensor.tensor import Tensor

PLACEMENTS = ("cpu", "cpugpu", "gpu", "uvagpu")


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters and execution placement for one training run."""

    epochs: int = 10
    lr: float = 1e-3
    dropout: float = 0.5
    placement: str = "cpu"
    preload: bool = False  # pre-load graph + features to GPU (case study 1)
    prefetch: bool = False  # overlap movement with training (DGL only)
    # Parallel sampling workers (DGL/PyG dataloader num_workers).  0 =
    # inline sampling as the paper measures; w >= 1 divides sampling time
    # by a sublinear speedup and pipelines it behind GPU training.
    num_workers: int = 0
    # Streaming datapipe: "off" runs the legacy serial schedule;
    # "depth-N" allows N mini-batches in flight on per-resource lanes
    # (sampler workers, PCIe, GPU) — depth-1 equals the serial schedule.
    pipeline: str = "off"
    representative_batches: int = 4
    seed: int = 0
    # Crash–resume: save a checkpoint every K completed epochs (0 = off),
    # resume from a previous checkpoint, and/or halt after E epochs to
    # simulate a mid-run kill (the run reports ``completed=False``).
    checkpoint_every: int = 0
    checkpoint_path: Optional[str] = None
    resume_from: Optional[str] = None
    halt_after_epochs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise BenchmarkError(f"unknown placement {self.placement!r}")
        if self.epochs < 1 or self.representative_batches < 1:
            raise BenchmarkError("epochs and representative_batches must be >= 1")
        if self.num_workers < 0:
            raise BenchmarkError("num_workers must be >= 0")
        if self.num_workers and self.placement in ("gpu", "uvagpu"):
            raise BenchmarkError(
                "sampling workers apply to CPU-side samplers only"
            )
        # Shared validation path (also run at CLI parse time and by
        # ``repro serve``): parses the spec and rejects depth-N under
        # the on-device sampling placements.
        depth = validate_pipeline_placement(self.pipeline, self.placement).depth
        if depth > 0 and self.prefetch:
            raise BenchmarkError(
                "pipeline subsumes prefetch; use one or the other"
            )
        if self.checkpoint_every < 0:
            raise BenchmarkError("checkpoint_every must be >= 0")
        if self.checkpoint_every and not self.checkpoint_path:
            raise BenchmarkError("checkpoint_every needs a checkpoint_path")
        if self.halt_after_epochs is not None and self.halt_after_epochs < 1:
            raise BenchmarkError("halt_after_epochs must be >= 1")

    @property
    def pipeline_depth(self) -> int:
        """Parsed depth of the ``pipeline`` knob (0 = serial schedule)."""
        return parse_pipeline(self.pipeline).depth

    @property
    def trains_on_gpu(self) -> bool:
        return self.placement != "cpu"

    @property
    def samples_on_gpu(self) -> bool:
        return self.placement in ("gpu", "uvagpu")


@dataclass
class RunResult:
    """Outcome of one training run."""

    label: str
    phases: Dict[str, float]
    epochs: int
    batches_per_epoch: int
    executed_batches: int
    losses: List[float] = field(default_factory=list)
    # False when halt_after_epochs cut the run short (simulated crash);
    # start_epoch > 0 marks a run resumed from a checkpoint.
    completed: bool = True
    start_epoch: int = 0

    @property
    def total_time(self) -> float:
        return sum(self.phases.values())

    def phase_fraction(self, name: str) -> float:
        total = self.total_time
        return self.phases.get(name, 0.0) / total if total > 0 else 0.0


class _UsageMeter:
    """Per-device busy-second deltas used for epoch extrapolation."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def snapshot(self) -> Dict[str, float]:
        snap = {
            "cpu": self.machine.cpu.counters.busy_seconds,
            "pcie": self.machine.pcie.counters.seconds,
        }
        if self.machine.gpu is not None:
            snap["gpu"] = self.machine.gpu.counters.busy_seconds
        return snap

    @staticmethod
    def delta(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
        return {key: after[key] - before.get(key, 0.0) for key in after}


class MiniBatchTrainer:
    """Drives one (framework, dataset, sampler, model, placement) run."""

    def __init__(
        self,
        framework: Framework,
        fgraph: FrameworkGraph,
        sampler,
        model: Module,
        config: TrainConfig,
        profiler: Optional[PhaseProfiler] = None,
        label: str = "",
        feature_cache=None,
    ) -> None:
        if feature_cache is not None and config.prefetch:
            raise BenchmarkError(
                "feature caching and pre-fetching cannot be combined"
            )
        self.framework = framework
        self.fgraph = fgraph
        self.sampler = sampler
        self.model = model
        self.config = config
        self.machine = fgraph.machine
        self.profiler = profiler or PhaseProfiler(self.machine.clock)
        self.label = label or f"{framework.name}-{config.placement}"
        self.loss_fn = make_loss(fgraph.stats.multilabel)
        self.feature_cache = feature_cache
        self._usage = _UsageMeter(self.machine)
        # Set when the worker pool burned through its respawn budget and
        # sampling fell back to inline (no speedup, no pipelining).
        self._workers_degraded = False

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """One-time costs: pre-loading, partitioning, initial model copy."""
        config = self.config
        if config.preload or config.placement == "gpu":
            with self.profiler.phase("data_movement"):
                if not self.fgraph.preloaded_gpu:
                    self.fgraph.preload_to_gpu()
        if hasattr(self.sampler, "ensure_partitioned"):
            with self.profiler.phase("sampling"):
                self.sampler.ensure_partitioned()
        if config.trains_on_gpu:
            with self.profiler.phase("data_movement"), self.framework.activate():
                self.model.to(self.machine.gpu, link=self.machine.pcie)
        self.optimizer = Adam(self.model.parameters(), lr=config.lr)

    # ------------------------------------------------------------------
    def _move_batch(self, batch: FrameworkBatch) -> FrameworkBatch:
        """Charge the per-batch CPU->GPU movement (subgraph + features + labels)."""
        gpu = self.machine.gpu
        link = self.machine.pcie
        with self.framework.activate():
            moved_x = batch.x.device is not gpu
            batch.adjs = [
                adj_to_device(adj, gpu, link, tag="batch-graph") for adj in batch.adjs
            ]
            if (moved_x and self.feature_cache is not None
                    and batch.input_nodes is not None):
                self._move_features_cached(batch, gpu, link)
            else:
                batch.x = to_device(batch.x, gpu, link, tag="batch-features")
            if moved_x and batch.y_logical_nbytes > 0:
                link.h2d(batch.y_logical_nbytes, tag="batch-labels")
        return batch

    def _move_features_cached(self, batch: FrameworkBatch, gpu, link) -> None:
        """Move only cache-miss feature rows; gather hits on the GPU."""
        from repro.hardware.device import KernelCost

        mask = self.feature_cache.record(batch.input_nodes)
        hit_fraction = float(mask.mean()) if mask.size else 0.0
        miss_bytes = batch.x.logical_nbytes * (1.0 - hit_fraction)
        hit_bytes = batch.x.logical_nbytes * hit_fraction
        if miss_bytes > 0:
            link.h2d(miss_bytes, tag="batch-features-miss")
        if hit_bytes > 0:
            # On-device gather of the cached rows into the batch tensor.
            gpu.execute(KernelCost(name="feature-cache.gather",
                                   bytes_moved=2.0 * hit_bytes,
                                   compute_eff=0.6, memory_eff=0.6))
        batch.x = to_device(batch.x, gpu, None)  # bytes already charged

    def worker_speedup(self) -> float:
        """Effective sampling parallelism from ``num_workers``.

        Sublinear (85% scaling per doubling), capped at the physical
        cores so oversubscription cannot fabricate speedup.
        """
        w = self.config.num_workers
        if w <= 1:
            return 1.0
        cores = getattr(self.machine.cpu.spec, "cores_per_socket", 10) * \
            getattr(self.machine.cpu.spec, "sockets", 1)
        return min(float(cores), w ** 0.85)

    def _sample_with_workers(self, batch_iter, prev_train_dt: float,
                             phase_usage, phase_wall):
        """Sample via the worker pool: parallel, pipelined behind training.

        The batch is built physically inside a deferred clock region; its
        measured cost is divided by the worker speedup, and (when training
        runs on the GPU) the portion covered by the previous batch's
        training step is hidden — the CPU busy time for that portion is
        backfilled into the elapsed training window.
        """
        clock = self.machine.clock
        with clock.deferred() as record:
            batch = next(batch_iter, None)
        if batch is None:
            return None
        if self._workers_degraded:
            # Respawn budget exhausted earlier in the run: inline
            # sampling, full cost, no overlap with training.
            speedup = 1.0
        else:
            speedup = self.worker_speedup()
        effective = record.total / speedup
        if not self._workers_degraded:
            effective = self._survive_worker_crashes(effective, record.total)
        can_pipeline = self.config.trains_on_gpu and not self._workers_degraded
        hidden = min(prev_train_dt, effective) if can_pipeline else 0.0
        residual = effective - hidden

        before = self._usage.snapshot()
        start = clock.now
        total = max(record.total, 1e-12)
        with self.profiler.phase("sampling"):
            for device, busy in record.busy.items():
                visible = (busy / total) * residual
                if visible > 0:
                    clock.occupy(device, visible, tag="sampling-workers")
            if hidden > 0:
                hidden_busy = {
                    device: (busy / total) * hidden
                    for device, busy in record.busy.items()
                }
                try:
                    clock.occupy_parallel(hidden_busy, tag="sampling-pipelined",
                                          backfill=True)
                except ValueError:
                    # The backfill window was not idle (e.g. CPU-side work
                    # during training); charge serially instead.
                    for device, busy in hidden_busy.items():
                        clock.occupy(device, busy, tag="sampling-workers")
        elapsed = clock.now - start
        phase_wall["sampling"] = phase_wall.get("sampling", 0.0) + elapsed
        delta = self._usage.delta(before, self._usage.snapshot())
        bucket = phase_usage.setdefault("sampling", {})
        for key, value in delta.items():
            bucket[key] = bucket.get(key, 0.0) + value
        return batch

    def _survive_worker_crashes(self, effective: float,
                                inline_total: float) -> float:
        """The ``sampler.worker`` fault site: crashed sampling workers.

        Arms once per respawn attempt.  Each crash wastes ``severity`` of
        the parallel sampling cost, pays the policy's backoff as respawn
        latency, and re-runs; past ``max_retries`` crashes the pool is
        torn down for the rest of the run (graceful degradation to inline
        sampling) when the policy allows it.  Returns the sampling cost
        the caller should charge.  All recovery time lands in the
        "sampling" phase but outside the per-batch usage window, so
        extrapolated batches are not billed for it.
        """
        injector = resilience.active()
        if injector is None:
            return effective
        clock = self.machine.clock
        policy = injector.policy("sampler.worker")
        cpu_name = self.machine.cpu.name
        crashes = 0
        while True:
            fault = injector.arm("sampler.worker")
            if fault is None or fault.kind != "crash":
                break
            crashes += 1
            injector.record_injected("sampler.worker", "crash")
            wasted = effective * fault.severity
            delay = injector.backoff_delay("sampler.worker", crashes)
            with self.profiler.phase("sampling"), \
                    maybe_span("recover.respawn", category="resilience",
                               attempt=crashes, wasted_seconds=wasted):
                if wasted > 0:
                    clock.occupy(cpu_name, wasted, tag="sampling-worker-crash")
                if delay > 0:
                    clock.advance(delay)  # worker respawn latency
            if crashes > policy.max_retries:
                if policy.degrade:
                    self._workers_degraded = True
                    injector.record_degraded("sampler.worker")
                    injector.record_recovered("sampler.worker",
                                              action="degrade")
                    return inline_total
                raise RecoveryExhausted("sampler.worker", crashes)
            # Each crash is cleared by one respawn; a pool that keeps
            # crashing re-arms fresh occurrences until it degrades.
            injector.record_retry("sampler.worker")
            injector.record_recovered("sampler.worker", action="respawn")
        return effective

    def _movement_seconds(self, batch: FrameworkBatch) -> float:
        """PCIe seconds the batch copy would take (prefetch accounting)."""
        gpu = self.machine.gpu
        link = self.machine.pcie
        seconds = 0.0
        for adj in batch.adjs:
            if adj.device is not gpu:
                seconds += link.transfer_time(adj.structure_nbytes())
        if batch.x.device is not gpu:
            seconds += link.transfer_time(batch.x.logical_nbytes)
            if batch.y_logical_nbytes > 0:
                seconds += link.transfer_time(batch.y_logical_nbytes)
        return seconds

    def _relocate_silently(self, batch: FrameworkBatch) -> None:
        """Re-place batch tensors on GPU without charging (already copied)."""
        gpu = self.machine.gpu
        batch.adjs = [adj_to_device(adj, gpu, None) for adj in batch.adjs]
        batch.x = to_device(batch.x, gpu, None)

    def _train_step(self, batch: FrameworkBatch) -> float:
        """One forward/backward/update on a mini-batch."""
        self.model.train()
        self.optimizer.zero_grad()
        with self.framework.activate():
            if batch.kind == "blocks":
                logits = self.model(batch.adjs, batch.x)
                y = batch.y
            else:
                logits = self.model(batch.adjs[0], batch.x)
                rows = batch.train_rows
                if rows is not None and rows.size > 0:
                    logits = logits[rows.astype(np.int64)]
                    y = batch.y[rows]
                else:
                    y = batch.y
            loss = self.loss_fn(logits, y)
            loss.backward()
            self.optimizer.step()
        return loss.item()

    # ------------------------------------------------------------------
    # streaming datapipe (pipeline=depth-N)
    # ------------------------------------------------------------------
    def pipeline_workers(self) -> int:
        """Sampler-worker lanes for the pipelined schedule.

        One worker per in-flight slot by default (DataLoader-style
        ``prefetch_factor`` semantics); an explicit ``num_workers``
        bounds the pool.  Capped at the physical cores so a deep queue
        cannot fabricate parallelism the testbed does not have.
        """
        config = self.config
        depth = config.pipeline_depth
        cores = getattr(self.machine.cpu.spec, "cores_per_socket", 10) * \
            getattr(self.machine.cpu.spec, "sockets", 1)
        workers = config.num_workers if config.num_workers > 0 else depth
        return max(1, min(workers, depth, int(cores)))

    def _pipeline_inflation(self, workers: int) -> float:
        """Per-job cost inflation preserving the sublinear worker model.

        ``workers`` lanes run concurrently, but aggregate throughput must
        match the serial path's ``worker_speedup`` (85% scaling per
        doubling): each job is stretched by ``workers / speedup`` so the
        pool's effective rate stays sublinear.
        """
        if workers <= 1:
            return 1.0
        cores = getattr(self.machine.cpu.spec, "cores_per_socket", 10) * \
            getattr(self.machine.cpu.spec, "sockets", 1)
        speedup = min(float(cores), workers ** 0.85)
        return workers / speedup

    def _batch_staging_bytes(self, batch: FrameworkBatch) -> float:
        """Logical bytes one in-flight batch pins (structure + x + y)."""
        structure = sum(adj.structure_nbytes() for adj in batch.adjs)
        return structure + batch.x.logical_nbytes + batch.y_logical_nbytes

    def _run_pipelined_epoch(self, reps: int, num_batches: int,
                             losses: List[float]) -> int:
        """One epoch on the datapipe; returns executed batch count."""
        from repro.datapipe.pipeline import Stage, run_epoch
        from repro.datapipe.staging import StagingPool

        config = self.config
        workers = 1 if self._workers_degraded else self.pipeline_workers()
        depth = 1 if self._workers_degraded else config.pipeline_depth
        needs_move = config.trains_on_gpu and not config.samples_on_gpu
        pool = StagingPool(self.machine, depth)

        def fetch(index: int, sample) -> FrameworkBatch:
            batch = self.sampler.assemble_features(sample)
            pool.stage_host(index, self._batch_staging_bytes(batch))
            return batch

        def copy(index: int, batch: FrameworkBatch) -> FrameworkBatch:
            pool.stage_gpu(index, self._batch_staging_bytes(batch))
            return self._move_batch(batch)

        def train(index: int, batch: FrameworkBatch) -> float:
            return self._train_step(batch)

        stages = [
            Stage("sample", "sampling",
                  fn=lambda i, req: self.sampler.sample_structure(req),
                  lanes=tuple(f"worker/{w}" for w in range(workers)),
                  scale=self._pipeline_inflation(workers),
                  fault_site="sampler.worker"),
            Stage("fetch", "sampling", fn=fetch, lanes=("fetch",)),
        ]
        if needs_move:
            stages.append(Stage("copy", "data_movement", fn=copy,
                                lanes=("copy",)))
        stages.append(Stage("train", "training", fn=train, lanes=("train",)))

        try:
            report = run_epoch(
                self.machine, stages, self.sampler.epoch_requests(), depth,
                limit=reps, extrapolate_to=num_batches, label=self.label,
            )
        finally:
            pool.close()
        if report.degraded:
            # The worker pool burned its respawn budget: the rest of the
            # run degrades to a single-lane depth-1 pipe (inline analogue).
            self._workers_degraded = True
        losses.extend(report.outputs)
        for phase, seconds in sorted(report.phases.items()):
            self.profiler.add(phase, seconds)
        return report.executed

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Run the configured number of epochs; return the breakdown."""
        config = self.config
        self.setup()
        num_batches = self.sampler.num_batches()
        reps = min(config.representative_batches, num_batches)
        losses: List[float] = []
        executed = 0
        start_epoch = 0
        completed = True
        if config.resume_from:
            start_epoch, losses, executed = self._resume(config.resume_from)

        prev_train_dt = 0.0
        for epoch in range(start_epoch, config.epochs):
            if config.pipeline_depth > 0:
                with maybe_span("train.epoch", epoch=epoch, label=self.label,
                                pipeline=config.pipeline):
                    ran = self._run_pipelined_epoch(reps, num_batches, losses)
                executed += ran
                done = epoch + 1
                if (config.checkpoint_every
                        and done % config.checkpoint_every == 0):
                    self._save_checkpoint(done, losses, executed)
                if (config.halt_after_epochs is not None
                        and done >= start_epoch + config.halt_after_epochs
                        and done < config.epochs):
                    completed = False
                    break
                continue
            batch_iter = iter(self.sampler.epoch())
            phase_usage: Dict[str, Dict[str, float]] = {}
            phase_wall: Dict[str, float] = {}
            ran = 0
            with maybe_span("train.epoch", epoch=epoch, label=self.label):
                for _ in range(reps):
                    with maybe_span("train.batch", index=ran):
                        if config.num_workers > 0:
                            batch = self._sample_with_workers(
                                batch_iter, prev_train_dt if ran > 0 else 0.0,
                                phase_usage, phase_wall,
                            )
                        else:
                            batch = self._timed_phase("sampling",
                                                      lambda: next(batch_iter, None),
                                                      phase_usage, phase_wall)
                        if batch is None:
                            break
                        needs_move = config.trains_on_gpu and not config.samples_on_gpu
                        prefetching = (
                            needs_move
                            and config.prefetch
                            and self.framework.profile.supports_prefetch
                            and ran > 0  # the first batch of an epoch cannot overlap
                        )
                        if needs_move and not prefetching:
                            self._timed_phase(
                                "data_movement", lambda: self._move_batch(batch),
                                phase_usage, phase_wall,
                            )
                        elif prefetching:
                            # Asynchronous pre-fetching: this batch's copy ran
                            # behind the previous batch's compute.  Only the part
                            # of the copy that exceeds one training step remains
                            # visible as data movement.
                            pending_move = self._movement_seconds(batch)
                            self._relocate_silently(batch)
                        train_start = self.machine.clock.now
                        loss = self._timed_phase("training",
                                                 lambda: self._train_step(batch),
                                                 phase_usage, phase_wall)
                        prev_train_dt = self.machine.clock.now - train_start
                        if prefetching:
                            train_dt = self.machine.clock.now - train_start
                            residual = max(0.0, pending_move - train_dt)
                            if residual > 0:
                                self._timed_phase(
                                    "data_movement",
                                    lambda: self.machine.clock.occupy(
                                        "pcie", residual, tag="prefetch-residual"),
                                    phase_usage, phase_wall,
                                )
                        losses.append(loss)
                        ran += 1
            executed += ran

            remaining = num_batches - ran
            if remaining > 0 and ran > 0:
                self._extrapolate(phase_usage, phase_wall, ran, remaining)

            done = epoch + 1
            if (config.checkpoint_every
                    and done % config.checkpoint_every == 0):
                self._save_checkpoint(done, losses, executed)
            if (config.halt_after_epochs is not None
                    and done >= start_epoch + config.halt_after_epochs
                    and done < config.epochs):
                completed = False  # simulated crash: stop mid-run
                break

        registry = telemetry.metrics()
        if registry is not None:
            labels = {"label": self.label}
            registry.counter("trainer.epochs", **labels).inc(config.epochs)
            registry.counter("trainer.batches_executed", **labels).inc(executed)
            registry.counter("trainer.batches_extrapolated", **labels).inc(
                config.epochs * num_batches - executed
            )

        return RunResult(
            label=self.label,
            phases=self.profiler.snapshot(),
            epochs=config.epochs,
            batches_per_epoch=num_batches,
            executed_batches=executed,
            losses=losses,
            completed=completed,
            start_epoch=start_epoch,
        )

    # ------------------------------------------------------------------
    def _save_checkpoint(self, next_epoch: int, losses: List[float],
                         executed: int) -> None:
        """Persist everything a resumed process needs for bit-identical
        continuation: model + optimizer state, loss history, phase
        totals, and every RNG the loop consumes.  The write itself is
        off the virtual clock's critical path (asynchronous checkpoint
        I/O), so checkpointing never perturbs the reported breakdown.
        """
        from repro.models.checkpoint import save_checkpoint
        from repro.resilience.checkpointing import capture_rng_states

        with maybe_span("checkpoint.save", category="resilience",
                        epoch=next_epoch):
            save_checkpoint(
                self.config.checkpoint_path, self.model, self.optimizer,
                metadata={
                    "kind": "train-resume",
                    "label": self.label,
                    "epoch": next_epoch,
                    "executed_batches": executed,
                    "losses": [float(v) for v in losses],
                    "phases": self.profiler.snapshot(),
                    "rng": capture_rng_states(self.model, self.sampler),
                },
            )
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("checkpoint.saves", label=self.label).inc()

    def _resume(self, path: str):
        """Restore a ``train-resume`` checkpoint written by this driver."""
        from repro.models.checkpoint import CheckpointError, load_checkpoint
        from repro.resilience.checkpointing import restore_rng_states

        with maybe_span("recover.resume", category="resilience",
                        path=str(path)):
            meta = load_checkpoint(path, self.model, self.optimizer)
            if meta.get("kind") != "train-resume":
                raise CheckpointError(
                    f"{path} is not a training checkpoint (kind="
                    f"{meta.get('kind')!r}); save with checkpoint_every"
                )
            restore_rng_states(self.model, self.sampler, meta.get("rng", {}))
            # The checkpointed phase totals cover everything up to the
            # kill point; this process has re-charged loading/setup on a
            # fresh clock, so credit only the difference.  The prefix is
            # identical by determinism, hence the delta is exactly the
            # killed run's training progress.
            current = self.profiler.snapshot()
            for phase, seconds in meta.get("phases", {}).items():
                delta = seconds - current.get(phase, 0.0)
                if delta < -1e-9:
                    raise CheckpointError(
                        f"resume accounting mismatch for {phase!r}: this "
                        f"run already charged {current.get(phase, 0.0):.6f}s "
                        f"but the checkpoint recorded {seconds:.6f}s"
                    )
                if delta > 0:
                    self.profiler.add(phase, delta)
            start_epoch = int(meta["epoch"])
            losses = [float(v) for v in meta.get("losses", [])]
            executed = int(meta.get("executed_batches", 0))
        registry = telemetry.metrics()
        if registry is not None:
            registry.counter("checkpoint.resumes", label=self.label).inc()
        return start_epoch, losses, executed

    # ------------------------------------------------------------------
    def _timed_phase(self, name: str, fn, usage: Dict[str, Dict[str, float]],
                     wall: Dict[str, float]):
        before = self._usage.snapshot()
        start = self.machine.clock.now
        with self.profiler.phase(name):
            result = fn()
        elapsed = self.machine.clock.now - start
        wall[name] = wall.get(name, 0.0) + elapsed
        delta = self._usage.delta(before, self._usage.snapshot())
        bucket = usage.setdefault(name, {})
        for key, value in delta.items():
            bucket[key] = bucket.get(key, 0.0) + value
        return result

    def _extrapolate(self, usage: Dict[str, Dict[str, float]],
                     wall: Dict[str, float], ran: int, remaining: int) -> None:
        """Charge the non-executed batches at measured per-batch rates."""
        clock = self.machine.clock
        device_names = {
            "cpu": self.machine.cpu.name,
            "pcie": "pcie",
        }
        if self.machine.gpu is not None:
            device_names["gpu"] = self.machine.gpu.name
        for phase in ("sampling", "data_movement", "training"):
            if phase not in wall:
                continue
            scale = remaining / ran
            busy_total = 0.0
            for key, seconds in usage.get(phase, {}).items():
                extra = seconds * scale
                if extra > 0:
                    clock.occupy(device_names[key], extra, tag=f"extrapolate:{phase}")
                    busy_total += extra
            idle = wall[phase] * scale - busy_total
            if idle > 0:
                clock.advance(idle)
            self.profiler.add(phase, wall[phase] * scale)
