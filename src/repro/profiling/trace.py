"""Chrome-trace export of the simulated timeline.

Writes the virtual clock's busy intervals as a Chrome Trace Event JSON
(load in ``chrome://tracing`` or Perfetto) so the simulated machine's
timeline — CPU kernels, GPU kernels, PCIe transfers, storage reads — can
be inspected visually, kernel by kernel.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from repro.simtime import VirtualClock

#: Stable thread ids per device lane in the trace viewer.
_LANES = ("storage", "pcie")


def trace_events(clock: VirtualClock, time_unit: float = 1e6) -> List[dict]:
    """Busy intervals as Chrome 'complete' (ph=X) events.

    ``time_unit`` scales seconds into the trace's microsecond timestamps.
    Lane (tid) assignment is deterministic: the well-known ``_LANES``
    devices get fixed ids, remaining devices are numbered by sorted name
    rather than first-seen order, so traces from two runs of the same
    config diff cleanly.
    """
    lanes = {device: tid for tid, device in enumerate(_LANES)}
    seen = {interval.device for interval in clock.busy_intervals()}
    for device in sorted(seen - set(_LANES)):
        lanes[device] = len(lanes)

    def lane_id(device: str) -> int:
        if device not in lanes:  # devices appearing mid-iteration
            lanes[device] = len(lanes)
        return lanes[device]

    events = []
    for interval in clock.busy_intervals():
        events.append({
            "name": interval.tag or "busy",
            "cat": interval.device,
            "ph": "X",
            "ts": interval.start * time_unit,
            "dur": interval.duration * time_unit,
            "pid": 0,
            "tid": lane_id(interval.device),
        })
    # lane naming metadata
    for device, tid in lanes.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": device},
        })
    return events


def write_trace(clock: VirtualClock, path: Union[str, Path]) -> Path:
    """Write the timeline to ``path`` as a Chrome trace JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": trace_events(clock),
        "displayTimeUnit": "ms",
        "metadata": {"source": "repro simulated machine"},
    }
    path.write_text(json.dumps(payload))
    return path


def summarize_trace(clock: VirtualClock) -> dict:
    """Per-device totals and top tags (quick textual timeline summary)."""
    totals: dict = {}
    tags: dict = {}
    for interval in clock.busy_intervals():
        totals[interval.device] = totals.get(interval.device, 0.0) + interval.duration
        key = (interval.device, interval.tag)
        tags[key] = tags.get(key, 0.0) + interval.duration
    top = sorted(tags.items(), key=lambda kv: -kv[1])[:10]
    return {
        "wall": clock.now,
        "device_busy": totals,
        "top_tags": [
            {"device": d, "tag": t, "seconds": s} for (d, t), s in top
        ],
    }
