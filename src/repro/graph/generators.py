"""Synthetic graph generators used by the dataset builders.

Real-world graphs in the paper (social, citation, co-purchase, PPI) share
two structural traits that matter for sampler and kernel performance:
heavy-tailed degree distributions and community structure.  The generator
here is a degree-corrected stochastic block model: node degrees follow a
truncated power law, endpoints prefer their own community, and the final
edge set is symmetrized and deduplicated.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.formats import (
    AdjacencyCOO,
    INDEX_DTYPE,
    coalesce,
    remove_self_loops,
    symmetrize,
)


def power_law_degrees(
    num_nodes: int,
    target_edges: int,
    exponent: float = 2.1,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample a degree sequence with a truncated power-law tail.

    The sequence is rescaled so it sums to roughly ``target_edges`` stubs.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    raw = rng.pareto(exponent - 1.0, size=num_nodes) + 1.0
    raw = np.minimum(raw, num_nodes ** 0.8)  # clip extreme hubs
    degrees = raw / raw.sum() * target_edges
    return np.maximum(1, np.round(degrees)).astype(INDEX_DTYPE)


def dcsbm_graph(
    num_nodes: int,
    num_edges: int,
    num_communities: int = 20,
    intra_prob: float = 0.8,
    exponent: float = 2.1,
    seed: Optional[int] = None,
) -> Tuple[AdjacencyCOO, np.ndarray]:
    """Degree-corrected SBM with power-law degrees.

    Returns an undirected (symmetrized, deduplicated, loop-free) edge list
    and the community assignment per node.  The realized edge count lands
    near ``num_edges`` (dedup removes a few percent).
    """
    if num_communities < 1:
        raise ValueError("num_communities must be >= 1")
    rng = np.random.default_rng(seed)
    communities = rng.integers(0, num_communities, size=num_nodes).astype(INDEX_DTYPE)
    degrees = power_law_degrees(num_nodes, num_edges, exponent=exponent, rng=rng)
    weights = degrees.astype(np.float64)
    weights /= weights.sum()

    # Draw directed stubs: sources by degree weight; destinations by degree
    # weight within the source's community with prob intra_prob, else global.
    n_draw = num_edges
    src = rng.choice(num_nodes, size=n_draw, p=weights).astype(INDEX_DTYPE)
    dst = np.empty(n_draw, dtype=INDEX_DTYPE)
    intra = rng.random(n_draw) < intra_prob

    # Global draws for the inter-community endpoints.
    n_inter = int((~intra).sum())
    if n_inter:
        dst[~intra] = rng.choice(num_nodes, size=n_inter, p=weights)

    # Community-restricted draws, one community at a time.
    order = np.argsort(communities, kind="stable")
    comm_sorted = communities[order]
    boundaries = np.searchsorted(comm_sorted, np.arange(num_communities + 1))
    for c in range(num_communities):
        members = order[boundaries[c]:boundaries[c + 1]]
        mask = intra & (communities[src] == c)
        count = int(mask.sum())
        if count == 0 or members.size == 0:
            if count:
                dst[mask] = rng.choice(num_nodes, size=count, p=weights)
            continue
        member_w = weights[members]
        member_w = member_w / member_w.sum()
        dst[mask] = rng.choice(members, size=count, p=member_w)

    coo = AdjacencyCOO(num_nodes, src, dst)
    coo = remove_self_loops(coo)
    coo = symmetrize(coo)
    return coo, communities


def erdos_renyi_graph(num_nodes: int, num_edges: int,
                      seed: Optional[int] = None) -> AdjacencyCOO:
    """Uniform random directed multigraph, deduplicated (test workloads)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges).astype(INDEX_DTYPE)
    dst = rng.integers(0, num_nodes, size=num_edges).astype(INDEX_DTYPE)
    return coalesce(remove_self_loops(AdjacencyCOO(num_nodes, src, dst)))


def ring_graph(num_nodes: int) -> AdjacencyCOO:
    """Deterministic bidirectional ring (smallest sane connected graph)."""
    ids = np.arange(num_nodes, dtype=INDEX_DTYPE)
    nxt = (ids + 1) % num_nodes
    return AdjacencyCOO(
        num_nodes,
        np.concatenate([ids, nxt]),
        np.concatenate([nxt, ids]),
    )


def correlated_features(
    communities: np.ndarray,
    num_features: int,
    num_classes: int,
    multilabel: bool = False,
    labels_per_node: float = 2.0,
    noise: float = 1.0,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Node features and labels correlated with community membership.

    Each community gets a class-mixture and a feature centroid; node
    features are centroid + Gaussian noise, so a GNN can actually learn
    from these graphs (training-loss tests rely on this signal).
    """
    rng = np.random.default_rng(seed)
    communities = np.asarray(communities)
    num_nodes = communities.size
    num_communities = int(communities.max()) + 1 if num_nodes else 0

    centroids = rng.standard_normal((num_communities, num_features)).astype(np.float32)
    features = centroids[communities] + noise * rng.standard_normal(
        (num_nodes, num_features)
    ).astype(np.float32)

    community_class = rng.integers(0, num_classes, size=num_communities)
    if multilabel:
        labels = np.zeros((num_nodes, num_classes), dtype=np.float32)
        primary = community_class[communities]
        labels[np.arange(num_nodes), primary] = 1.0
        extra_prob = min(0.9, max(0.0, labels_per_node - 1.0) / max(1, num_classes))
        extra = rng.random((num_nodes, num_classes)) < extra_prob
        labels = np.maximum(labels, extra.astype(np.float32))
    else:
        labels = community_class[communities].astype(INDEX_DTYPE)
        flip = rng.random(num_nodes) < 0.1
        labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
    return features, labels


def split_masks(
    num_nodes: int,
    train: float,
    val: float,
    test: float,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random fixed split masks matching the paper's Train/Val/Test column."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_nodes)
    n_train = int(round(train * num_nodes))
    n_val = int(round(val * num_nodes))
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train:n_train + n_val]] = True
    test_mask[order[n_train + n_val:]] = True
    return train_mask, val_mask, test_mask
